//! Property-based tests for the numerical substrate.

use proptest::prelude::*;
use trimgame_numerics::gk::{GkScratch, GkSummary};
use trimgame_numerics::quantile::{percentile, percentile_of, percentile_partition, Interpolation};
use trimgame_numerics::rand_ext::{derive_seed, laplace, seeded_rng, NormalSampler};
use trimgame_numerics::simd;
use trimgame_numerics::sketch::P2Quantile;
use trimgame_numerics::stats::{mean, mse, sse, variance, OnlineStats};
use trimgame_numerics::{bisect, brent};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6_f64..1e6_f64, 1..max_len)
}

proptest! {
    #[test]
    fn percentile_is_monotone_in_p(data in finite_vec(64), p1 in 0.0_f64..1.0, p2 in 0.0_f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        for interp in [Interpolation::Linear, Interpolation::Matlab, Interpolation::Lower, Interpolation::Nearest] {
            let a = percentile(&data, lo, interp);
            let b = percentile(&data, hi, interp);
            prop_assert!(a <= b + 1e-9, "p={lo}->{a}, p={hi}->{b}, {interp:?}");
        }
    }

    #[test]
    fn percentile_within_data_range(data in finite_vec(64), p in 0.0_f64..1.0) {
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for interp in [Interpolation::Linear, Interpolation::Matlab, Interpolation::Lower, Interpolation::Nearest] {
            let v = percentile(&data, p, interp);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn percentile_invariant_to_shuffling(mut data in finite_vec(32), p in 0.0_f64..1.0) {
        let original = percentile(&data, p, Interpolation::Linear);
        data.reverse();
        let reversed = percentile(&data, p, Interpolation::Linear);
        prop_assert!((original - reversed).abs() < 1e-9);
    }

    #[test]
    fn percentile_of_is_bounded(data in finite_vec(64), x in -1e6_f64..1e6) {
        let p = percentile_of(&data, x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn percentile_of_is_monotone_in_x(data in finite_vec(64), x1 in -1e6_f64..1e6, x2 in -1e6_f64..1e6) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(percentile_of(&data, lo) <= percentile_of(&data, hi) + 1e-12);
    }

    #[test]
    fn mean_within_range(data in finite_vec(64)) {
        let m = mean(&data);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn variance_non_negative(data in finite_vec(64)) {
        prop_assert!(variance(&data) >= -1e-9);
    }

    #[test]
    fn mean_shift_equivariance(data in finite_vec(64), c in -1e3_f64..1e3) {
        let shifted: Vec<f64> = data.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - (mean(&data) + c)).abs() < 1e-6);
        // Variance is shift-invariant.
        let tol = f64::max(1e-3, variance(&data) * 1e-9);
        prop_assert!((variance(&shifted) - variance(&data)).abs() < tol);
    }

    #[test]
    fn sse_mse_relation(a in finite_vec(64)) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let s = sse(&a, &b);
        let m = mse(&a, &b);
        prop_assert!(s >= 0.0);
        prop_assert!((m * a.len() as f64 - s).abs() < 1e-6 * s.max(1.0));
    }

    #[test]
    fn online_stats_agree_with_batch(data in finite_vec(128)) {
        let mut acc = OnlineStats::new();
        acc.extend(&data);
        prop_assert!((acc.mean() - mean(&data)).abs() < 1e-6 * mean(&data).abs().max(1.0));
        prop_assert!((acc.variance() - variance(&data)).abs() < 1e-6 * variance(&data).max(1.0));
    }

    #[test]
    fn online_stats_merge_is_associative_enough(a in finite_vec(64), b in finite_vec(64)) {
        let mut left = OnlineStats::new();
        left.extend(&a);
        let mut right = OnlineStats::new();
        right.extend(&b);
        left.merge(&right);

        let mut combined = OnlineStats::new();
        combined.extend(&a);
        combined.extend(&b);

        prop_assert_eq!(left.count(), combined.count());
        prop_assert!((left.mean() - combined.mean()).abs() < 1e-6 * combined.mean().abs().max(1.0));
        prop_assert!((left.variance() - combined.variance()).abs() < 1e-6 * combined.variance().max(1.0));
    }

    #[test]
    fn derive_seed_deterministic_and_spread(master in any::<u64>(), s1 in 0_u64..1000, s2 in 0_u64..1000) {
        prop_assert_eq!(derive_seed(master, s1), derive_seed(master, s1));
        if s1 != s2 {
            prop_assert_ne!(derive_seed(master, s1), derive_seed(master, s2));
        }
    }

    #[test]
    fn brent_and_bisect_agree_on_linear_roots(a in 0.1_f64..10.0, b in -5.0_f64..5.0) {
        // f(x) = a x + b has root -b/a; bracket it generously.
        let root = -b / a;
        let lo = root - 10.0;
        let hi = root + 10.0;
        let rb = brent(|x| a * x + b, lo, hi, 1e-12).unwrap();
        let rr = bisect(|x| a * x + b, lo, hi, 1e-10).unwrap();
        prop_assert!((rb - root).abs() < 1e-8);
        prop_assert!((rr - root).abs() < 1e-6);
    }

    #[test]
    fn normal_sampler_is_deterministic_under_seed(seed in any::<u64>(), mean_v in -10.0_f64..10.0, sd in 0.0_f64..5.0) {
        let sampler = NormalSampler::new(mean_v, sd);
        let mut r1 = seeded_rng(seed);
        let mut r2 = seeded_rng(seed);
        for _ in 0..8 {
            prop_assert_eq!(sampler.sample(&mut r1), sampler.sample(&mut r2));
        }
    }

    #[test]
    fn laplace_is_finite(seed in any::<u64>(), mu in -10.0_f64..10.0, b in 0.01_f64..10.0) {
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            let x = laplace(&mut rng, mu, b);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn p2_sketch_stays_in_range(data in prop::collection::vec(-1e3_f64..1e3, 8..256), p in 0.05_f64..0.95) {
        let mut sketch = P2Quantile::new(p);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &data {
            sketch.insert(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let est = sketch.estimate().unwrap();
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "estimate {est} outside [{lo}, {hi}]");
    }
}

/// Values drawn from a tiny discrete grid so percentile anchors and trim
/// thresholds collide with data points — the adversarial tie cases of the
/// SIMD kernel contract.
fn tied_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-8i32..8).prop_map(|i| f64::from(i) * 0.5), 1..max_len)
}

proptest! {
    #[test]
    fn simd_filter_f64_bit_identical_to_scalar(values in tied_vec(300), lo in -8.0_f64..8.0, width in 0.0_f64..8.0) {
        for band_lo in [None, Some(lo)] {
            let hi = lo + width;
            let keep = |v: f64| v <= hi && band_lo.is_none_or(|b| v >= b);
            let mut mask = vec![false; values.len()];
            let mut kept = vec![0.0; values.len()];
            let k = simd::filter_f64(&values, &mut mask, &mut kept, band_lo, hi);
            let ref_mask: Vec<bool> = values.iter().map(|&v| keep(v)).collect();
            let ref_kept: Vec<f64> = values.iter().copied().filter(|&v| keep(v)).collect();
            prop_assert_eq!(&mask, &ref_mask);
            prop_assert_eq!(k, ref_kept.len());
            // Bit-identical: compare the raw bit patterns, not just values.
            let kept_bits: Vec<u64> = kept[..k].iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u64> = ref_kept.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(kept_bits, ref_bits);
        }
    }

    #[test]
    fn simd_filter_f32_bit_identical_to_scalar(values in prop::collection::vec((-8i32..8).prop_map(|i| i as f32 * 0.5), 1..300), lo in -8.0_f32..8.0, width in 0.0_f32..8.0) {
        for band_lo in [None, Some(lo)] {
            let hi = lo + width;
            let keep = |v: f32| v <= hi && band_lo.is_none_or(|b| v >= b);
            let mut mask = vec![false; values.len()];
            let mut kept = vec![0.0f32; values.len()];
            let k = simd::filter_f32(&values, &mut mask, &mut kept, band_lo, hi);
            let ref_mask: Vec<bool> = values.iter().map(|&v| keep(v)).collect();
            let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| keep(v)).collect();
            prop_assert_eq!(&mask, &ref_mask);
            prop_assert_eq!(k, ref_kept.len());
            let kept_bits: Vec<u32> = kept[..k].iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = ref_kept.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(kept_bits, ref_bits);
        }
    }

    #[test]
    fn simd_partition_band_counts_exactly(values in tied_vec(300), lo in -8.0_f64..8.0, width in 0.0_f64..8.0) {
        let hi = lo + width;
        let mut band = vec![0.0; values.len()];
        let (below, band_len, above) = simd::partition_band(&values, lo, hi, &mut band);
        prop_assert_eq!(below, values.iter().filter(|&&v| v < lo).count());
        prop_assert_eq!(above, values.iter().filter(|&&v| v > hi).count());
        let ref_band: Vec<f64> = values.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
        prop_assert_eq!(below + band_len + above, values.len());
        prop_assert_eq!(&band[..band_len], ref_band.as_slice());
    }

    #[test]
    fn gk_batched_ingest_matches_sequential_rank_guarantee(
        base in tied_vec(64),
        reps in 1_usize..40,
        chunk in 1_usize..97,
        q in 0.0_f64..=1.0,
    ) {
        // Batched ingest must honor the same ε·n rank guarantee as
        // per-value insertion, for every arrival order — including the
        // adversarial ones: pre-sorted, reverse-sorted, and the heavy
        // ties `tied_vec` generates.
        let eps = 0.05;
        let as_is: Vec<f64> = base.iter().copied().cycle().take(base.len() * reps).collect();
        let mut sorted_order = as_is.clone();
        sorted_order.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let reversed: Vec<f64> = sorted_order.iter().rev().copied().collect();
        let n = as_is.len() as f64;
        let band = 2.0 * eps * n + 1.0;
        let sorted = sorted_order.clone();
        for (order, data) in [("as-is", &as_is), ("sorted", &sorted_order), ("reversed", &reversed)] {
            let mut seq = GkSummary::new(eps);
            for &v in data.iter() {
                seq.insert(v);
            }
            let mut bat = GkSummary::new(eps);
            let mut scratch = GkScratch::new();
            for c in data.chunks(chunk) {
                bat.insert_batch(c, &mut scratch);
            }
            prop_assert_eq!(bat.count(), seq.count());
            for (path, s) in [("sequential", &seq), ("batched", &bat)] {
                let est = s.query(q).unwrap();
                // Under ties the estimate's true rank is an interval;
                // measure the distance from the nearest achievable rank.
                let lo = sorted.partition_point(|&v| v < est) as f64;
                let hi = sorted.partition_point(|&v| v <= est) as f64;
                let target = q * n;
                let dist = if target < lo {
                    lo - target
                } else if target > hi {
                    target - hi
                } else {
                    0.0
                };
                prop_assert!(
                    dist <= band,
                    "{}/{} q={}: est {} rank [{}, {}] target {}",
                    order, path, q, est, lo, hi, target
                );
            }
            // Min and max stay exact on both ingest paths.
            prop_assert_eq!(bat.query(0.0), seq.query(0.0));
            prop_assert_eq!(bat.query(1.0), seq.query(1.0));
        }
    }

    #[test]
    fn percentile_partition_matches_sorted_reference(base in tied_vec(48), reps in 1_usize..200, p in 0.0_f64..=1.0) {
        // Tiling the base block past the partition cutoff creates heavy
        // ties and stride-aligned periodicity — the adversarial regime for
        // a sampled pivot bracket (worst case it falls back, still exact).
        let data: Vec<f64> = base.iter().copied().cycle().take(base.len() * reps.max(1)).collect();
        let mut scratch = Vec::new();
        for interp in [Interpolation::Linear, Interpolation::Matlab, Interpolation::Lower, Interpolation::Nearest] {
            let expect = percentile(&data, p, interp);
            let got = percentile_partition(&data, p, interp, &mut scratch);
            prop_assert_eq!(got.to_bits(), expect.to_bits(), "{:?} p={} n={}", interp, p, data.len());
        }
    }
}
