//! Discrete variational machinery: action functionals and Euler–Lagrange
//! residuals.
//!
//! Axiom 1 of the paper states that the infinite collection game follows
//! the least action principle `δS = δ∫L dr = 0` (Eq. 3), and Lemma 2 gives
//! the corresponding Euler–Lagrange equations (Eq. 4). This module makes
//! those statements *testable*:
//!
//! * [`discrete_action`] evaluates `S ≈ Σ L(q_i, (q_{i+1}−q_i)/h, r_i)·h`
//!   along a sampled path;
//! * [`euler_lagrange_residual`] computes
//!   `∂L/∂q_i − d/dr (∂L/∂q̇_i)` along a trajectory by finite differences —
//!   near zero exactly when the trajectory satisfies the equations of
//!   motion;
//! * [`action_of_perturbed`] perturbs a path with endpoints fixed, so tests
//!   can confirm that true trajectories are stationary (indeed minimal for
//!   the kinetic-dominated Lagrangians used here).

use crate::lagrangian::Lagrangian;
use crate::ode::Trajectory;
use rand::Rng;

/// Discrete action of a uniformly sampled path.
///
/// `path[i]` is the coordinate vector at `r0 + i·h`; velocities are forward
/// differences, so the last sample contributes no term (rectangle rule over
/// the `len − 1` intervals).
///
/// # Panics
/// Panics if the path has fewer than two samples or `h <= 0`.
#[must_use]
pub fn discrete_action<L: Lagrangian>(lag: &L, path: &[Vec<f64>], r0: f64, h: f64) -> f64 {
    assert!(path.len() >= 2, "action needs at least two samples");
    assert!(h > 0.0, "step must be positive");
    let dof = lag.dof();
    let mut qdot = vec![0.0; dof];
    let mut action = 0.0;
    for i in 0..path.len() - 1 {
        debug_assert_eq!(path[i].len(), dof);
        for d in 0..dof {
            qdot[d] = (path[i + 1][d] - path[i][d]) / h;
        }
        action += lag.eval(&path[i], &qdot, r0 + i as f64 * h) * h;
    }
    action
}

/// Euler–Lagrange residuals `∂L/∂q_i − d/dr(∂L/∂q̇_i)` along a trajectory.
///
/// Returns one vector per interior sample (the first and last samples are
/// skipped because `d/dr` is taken by central differences). A trajectory
/// satisfies the equations of motion iff all residuals vanish.
#[must_use]
pub fn euler_lagrange_residual<L: Lagrangian>(lag: &L, traj: &Trajectory) -> Vec<Vec<f64>> {
    let n = traj.len();
    if n < 3 {
        return Vec::new();
    }
    let h = traj.step();
    let dof = lag.dof();
    let mut out = Vec::with_capacity(n - 2);
    for i in 1..n - 1 {
        let mut res = vec![0.0; dof];
        for (d, slot) in res.iter_mut().enumerate() {
            let dl_dq = lag.dl_dq(&traj.q[i], &traj.qdot[i], traj.r[i], d);
            let p_next = lag.dl_dqdot(&traj.q[i + 1], &traj.qdot[i + 1], traj.r[i + 1], d);
            let p_prev = lag.dl_dqdot(&traj.q[i - 1], &traj.qdot[i - 1], traj.r[i - 1], d);
            let dp_dr = (p_next - p_prev) / (2.0 * h);
            *slot = dl_dq - dp_dr;
        }
        out.push(res);
    }
    out
}

/// Largest absolute Euler–Lagrange residual along a trajectory — a single
/// figure of merit for "does this trajectory obey the equations of motion".
#[must_use]
pub fn max_residual<L: Lagrangian>(lag: &L, traj: &Trajectory) -> f64 {
    euler_lagrange_residual(lag, traj)
        .iter()
        .flat_map(|v| v.iter().map(|x| x.abs()))
        .fold(0.0, f64::max)
}

/// Action of a path after adding a smooth random perturbation that vanishes
/// at both endpoints (the admissible variations of Eq. 1).
///
/// The perturbation for coordinate `d` is
/// `amp · ξ_d · sin(π i / (n−1))`, with `ξ_d` drawn uniformly from
/// `[−1, 1]`. Returns `(perturbed_action, perturbed_path)`.
pub fn action_of_perturbed<L: Lagrangian, R: Rng + ?Sized>(
    lag: &L,
    path: &[Vec<f64>],
    r0: f64,
    h: f64,
    amp: f64,
    rng: &mut R,
) -> (f64, Vec<Vec<f64>>) {
    let n = path.len();
    let dof = lag.dof();
    let xi: Vec<f64> = (0..dof).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let mut perturbed = path.to_vec();
    for (i, q) in perturbed.iter_mut().enumerate() {
        let shape = (std::f64::consts::PI * i as f64 / (n - 1) as f64).sin();
        for d in 0..dof {
            q[d] += amp * xi[d] * shape;
        }
    }
    (discrete_action(lag, &perturbed, r0, h), perturbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrangian::{CoupledOscillatorLagrangian, FreeLagrangian};
    use crate::ode::rk4_integrate;
    use crate::rand_ext::seeded_rng;

    /// Straight-line path between two points, sampled uniformly.
    fn straight_path(q0: &[f64], q1: &[f64], n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                q0.iter().zip(q1).map(|(a, b)| a + t * (b - a)).collect()
            })
            .collect()
    }

    #[test]
    fn action_of_uniform_motion() {
        // L = m v^2 / 2 along q(t) = v t for t in [0, 1]: S = m v^2 / 2.
        let lag = FreeLagrangian::new(vec![2.0]);
        let n = 1001;
        let h = 1.0 / (n - 1) as f64;
        let path = straight_path(&[0.0], &[3.0], n);
        let action = discrete_action(&lag, &path, 0.0, h);
        assert!((action - 0.5 * 2.0 * 9.0).abs() < 1e-9);
    }

    #[test]
    fn straight_line_minimizes_free_action() {
        let lag = FreeLagrangian::new(vec![1.0, 1.0]);
        let n = 200;
        let h = 1.0 / (n - 1) as f64;
        let path = straight_path(&[0.0, 1.0], &[2.0, -1.0], n);
        let s_true = discrete_action(&lag, &path, 0.0, h);
        let mut rng = seeded_rng(17);
        for _ in 0..50 {
            let (s_pert, perturbed) = action_of_perturbed(&lag, &path, 0.0, h, 0.3, &mut rng);
            // Endpoints stay fixed.
            assert_eq!(perturbed[0], path[0]);
            assert_eq!(perturbed[n - 1], path[n - 1]);
            assert!(
                s_pert >= s_true - 1e-12,
                "perturbed action {s_pert} below true action {s_true}"
            );
        }
    }

    #[test]
    fn oscillator_trajectory_is_stationary() {
        // Compare the action of the true (RK4) trajectory against paths
        // perturbed around it: within a half period, the true path is a
        // minimum of the action.
        let lag = CoupledOscillatorLagrangian::new(1.0, 1.0, 1.0);
        let h = 0.002;
        let steps = 500; // duration 1.0, well under half period (~4.44)
        let traj = rk4_integrate(&lag, 0.0, &[1.0, 0.0], &[0.0, 0.0], h, steps);
        let s_true = discrete_action(&lag, &traj.q, 0.0, h);
        let mut rng = seeded_rng(23);
        for _ in 0..30 {
            let (s_pert, _) = action_of_perturbed(&lag, &traj.q, 0.0, h, 0.05, &mut rng);
            assert!(
                s_pert >= s_true - 1e-7,
                "perturbed action {s_pert} below true {s_true}"
            );
        }
    }

    #[test]
    fn residual_vanishes_on_true_trajectory() {
        let lag = CoupledOscillatorLagrangian::new(1.0, 2.0, 1.5);
        let traj = rk4_integrate(&lag, 0.0, &[0.5, -0.5], &[0.1, 0.0], 0.001, 2_000);
        let r = max_residual(&lag, &traj);
        assert!(r < 1e-4, "max residual {r}");
    }

    #[test]
    fn residual_large_on_wrong_trajectory() {
        // A path that ignores the spring: straight lines are NOT solutions
        // of the coupled oscillator when the spring is stretched.
        let lag = CoupledOscillatorLagrangian::new(1.0, 1.0, 5.0);
        let n = 101;
        let h = 0.01;
        let q: Vec<Vec<f64>> = (0..n).map(|i| vec![1.0 + i as f64 * h, 0.0]).collect();
        let qdot: Vec<Vec<f64>> = (0..n).map(|_| vec![1.0, 0.0]).collect();
        let traj = Trajectory {
            r: (0..n).map(|i| i as f64 * h).collect(),
            q,
            qdot,
        };
        let r = max_residual(&lag, &traj);
        assert!(r > 1.0, "expected a large residual, got {r}");
    }

    #[test]
    fn residual_empty_for_short_trajectories() {
        let lag = FreeLagrangian::new(vec![1.0]);
        let traj = Trajectory {
            r: vec![0.0, 0.1],
            q: vec![vec![0.0], vec![0.1]],
            qdot: vec![vec![1.0], vec![1.0]],
        };
        assert!(euler_lagrange_residual(&lag, &traj).is_empty());
        assert_eq!(max_residual(&lag, &traj), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn action_needs_two_samples() {
        let lag = FreeLagrangian::new(vec![1.0]);
        let _ = discrete_action(&lag, &[vec![0.0]], 0.0, 0.1);
    }
}
