//! Seeded randomness helpers and distribution sampling.
//!
//! Every stochastic component in the workspace takes an explicit RNG so that
//! experiments are reproducible; [`seeded_rng`] and [`derive_seed`] give a
//! deterministic per-repetition seeding scheme. Gaussian sampling uses the
//! Marsaglia polar method and Laplace sampling uses the inverse CDF — both
//! implemented here so the workspace needs no distribution crate beyond
//! `rand` itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a [`StdRng`] from a 64-bit seed.
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a master seed.
///
/// Uses the SplitMix64 finalizer so consecutive stream indices yield
/// well-separated seeds (the recommended way to seed many parallel
/// repetitions from one master seed).
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one standard normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws one `Laplace(mu, b)` variate via the inverse CDF.
///
/// # Panics
/// Panics if `b <= 0`.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, mu: f64, b: f64) -> f64 {
    assert!(b > 0.0, "laplace scale must be positive, got {b}");
    // u uniform on (-1/2, 1/2); x = mu - b*sign(u)*ln(1 - 2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    mu - b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Reusable sampler for `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalSampler {
    mean: f64,
    sd: f64,
}

impl NormalSampler {
    /// Creates a sampler for `N(mean, sd²)`.
    ///
    /// # Panics
    /// Panics if `sd < 0`.
    #[must_use]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd >= 0.0,
            "standard deviation must be non-negative, got {sd}"
        );
        Self { mean, sd }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }

    /// Fills `out` with independent samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, variance};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(2024);
        let xs: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {}", mean(&xs));
        assert!((variance(&xs) - 1.0).abs() < 0.03, "var {}", variance(&xs));
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = seeded_rng(7);
        let sampler = NormalSampler::new(3.0, 2.0);
        let xs: Vec<f64> = (0..100_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.05);
        assert!((variance(&xs) - 4.0).abs() < 0.15);
    }

    #[test]
    fn normal_sampler_zero_sd_is_constant() {
        let mut rng = seeded_rng(7);
        let sampler = NormalSampler::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_sampler_rejects_negative_sd() {
        let _ = NormalSampler::new(0.0, -1.0);
    }

    #[test]
    fn laplace_moments() {
        let mut rng = seeded_rng(11);
        let b = 1.5;
        let xs: Vec<f64> = (0..100_000).map(|_| laplace(&mut rng, 0.5, b)).collect();
        // Mean mu, variance 2 b^2.
        assert!((mean(&xs) - 0.5).abs() < 0.05);
        assert!((variance(&xs) - 2.0 * b * b).abs() < 0.25);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn laplace_rejects_bad_scale() {
        let mut rng = seeded_rng(0);
        let _ = laplace(&mut rng, 0.0, 0.0);
    }

    #[test]
    fn sample_into_fills_buffer() {
        let mut rng = seeded_rng(3);
        let sampler = NormalSampler::new(0.0, 1.0);
        let mut buf = [0.0_f64; 64];
        sampler.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
