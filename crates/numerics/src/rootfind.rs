//! Scalar root finding.
//!
//! Section III-B defines the balance point `x_L` by `P(x_L) = T(x_L)` — the
//! position where the loss from accepted poison equals the trimming
//! overhead. Solving it means finding a root of `P − T` over the input
//! domain, for arbitrary user-supplied payoff curves; [`brent`] is the
//! workhorse and [`bisect`] the simple fallback.

/// Error raised by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed {
        /// Function value at the left endpoint.
        fa: f64,
        /// Function value at the right endpoint.
        fb: f64,
    },
    /// The iteration budget was exhausted before reaching the tolerance.
    MaxIterations {
        /// Best estimate of the root when the budget ran out.
        best: f64,
    },
    /// An endpoint or function value was NaN.
    NotFinite,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotBracketed { fa, fb } => {
                write!(f, "root not bracketed: f(a)={fa}, f(b)={fb}")
            }
            RootError::MaxIterations { best } => {
                write!(f, "max iterations exceeded; best estimate {best}")
            }
            RootError::NotFinite => write!(f, "non-finite endpoint or function value"),
        }
    }
}

impl std::error::Error for RootError {}

const MAX_ITER: usize = 200;

/// Bisection on `[a, b]`. Requires `f(a)` and `f(b)` to have opposite signs.
///
/// Converges linearly; guaranteed as long as `f` is continuous.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, RootError> {
    if !(a.is_finite() && b.is_finite()) {
        return Err(RootError::NotFinite);
    }
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let fhi = f(hi);
    if !(flo.is_finite() && fhi.is_finite()) {
        return Err(RootError::NotFinite);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(RootError::NotBracketed { fa: flo, fb: fhi });
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(RootError::NotFinite);
        }
        if fmid == 0.0 || (hi - lo) / 2.0 < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(RootError::MaxIterations {
        best: 0.5 * (lo + hi),
    })
}

/// Brent's method on `[a, b]`: inverse quadratic interpolation with a
/// bisection safeguard. Requires a sign change between the endpoints.
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, RootError> {
    if !(a.is_finite() && b.is_finite()) {
        return Err(RootError::NotFinite);
    }
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if !(fa.is_finite() && fb.is_finite()) {
        return Err(RootError::NotFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..MAX_ITER {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let between = {
            let lo = (3.0 * a + b) / 4.0;
            let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
            s > lo && s < hi
        };
        let cond = !between
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NotFinite);
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations { best: b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2() {
        let root = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_cos_root() {
        let root = brent(f64::cos, 0.0, 3.0, 1e-14).unwrap();
        assert!((root - std::f64::consts::FRAC_PI_2).abs() < 1e-10);
    }

    #[test]
    fn unbracketed_root_is_rejected() {
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12).unwrap_err();
        assert!(matches!(err, RootError::NotBracketed { .. }));
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).unwrap_err();
        assert!(matches!(err, RootError::NotBracketed { .. }));
    }

    #[test]
    fn endpoint_roots_returned_immediately() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn non_finite_endpoints_rejected() {
        assert_eq!(
            brent(|x| x, f64::NAN, 1.0, 1e-9).unwrap_err(),
            RootError::NotFinite
        );
        assert_eq!(
            bisect(|x| x, 0.0, f64::INFINITY, 1e-9).unwrap_err(),
            RootError::NotFinite
        );
    }

    #[test]
    fn brent_handles_reversed_interval_signs() {
        // Root of a decreasing function.
        let root = brent(|x| 1.0 - x, 0.0, 5.0, 1e-14).unwrap();
        assert!((root - 1.0).abs() < 1e-10);
    }

    #[test]
    fn balance_point_style_problem() {
        // Poison loss grows with x, trimming overhead shrinks with x;
        // balance point solves p(x) = t(x) as in Section III-B.
        let poison = |x: f64| 0.8 * x;
        let overhead = |x: f64| (1.0 - x).powi(2);
        let xl = brent(|x| poison(x) - overhead(x), 0.0, 1.0, 1e-14).unwrap();
        assert!((poison(xl) - overhead(xl)).abs() < 1e-10);
        assert!(xl > 0.0 && xl < 1.0);
    }

    #[test]
    fn display_formats() {
        let e = RootError::NotBracketed { fa: 1.0, fb: 2.0 };
        assert!(e.to_string().contains("not bracketed"));
        let e = RootError::MaxIterations { best: 0.5 };
        assert!(e.to_string().contains("max iterations"));
        assert!(RootError::NotFinite.to_string().contains("non-finite"));
    }
}
