//! Descriptive statistics used across the workspace.
//!
//! The evaluation section of the paper reports SSE (sum of squared errors,
//! Fig. 4/5), Euclidean centroid distance (Fig. 4/5) and MSE (Fig. 9). These
//! helpers implement those metrics plus the usual moments. [`OnlineStats`]
//! is a Welford accumulator so round-wise collectors can track data quality
//! without buffering values.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (dividing by `n`). Returns `0.0` for fewer than two
/// elements.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (dividing by `n - 1`). Returns `0.0` for fewer
/// than two elements.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Sum of squared errors between observations and predictions,
/// `SSE = Σ (y_i − ŷ_i)²` (the Fig. 4/5 y-axis metric).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn sse(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        predicted.len(),
        "sse: length mismatch ({} vs {})",
        observed.len(),
        predicted.len()
    );
    observed
        .iter()
        .zip(predicted)
        .map(|(y, yhat)| (y - yhat) * (y - yhat))
        .sum()
}

/// Mean squared error (the Fig. 9 y-axis metric). Returns `0.0` for empty
/// input.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn mse(observed: &[f64], predicted: &[f64]) -> f64 {
    if observed.is_empty() {
        return 0.0;
    }
    sse(observed, predicted) / observed.len() as f64
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Minimum of a slice ignoring NaNs. Returns `None` on empty input or if all
/// entries are NaN.
#[must_use]
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                Some(m) if m <= x => m,
                _ => x,
            })
        })
}

/// Maximum of a slice ignoring NaNs. Returns `None` on empty input or if all
/// entries are NaN.
#[must_use]
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                Some(m) if m >= x => m,
                _ => x,
            })
        })
}

/// Numerically stable streaming moments (Welford's algorithm).
///
/// Used by the collector to keep per-round quality statistics without
/// retaining raw values, mirroring the "public board" which records only
/// retained data summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Feeds every value of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` before any observation).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance (`0.0` before two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running sample variance (`0.0` before two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest observation (`None` before any observation).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` before any observation).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The raw accumulator state `(n, mean, m2, min, max)` exactly as
    /// stored — `min`/`max` are `+∞`/`−∞` before any observation and the
    /// mean is the raw running mean, not the `0.0`-defaulted view of
    /// [`OnlineStats::mean`]. This is the bit-exact serialization surface:
    /// `from_raw_parts(s.raw_parts())` reconstructs a accumulator equal to
    /// `s` under `==` and bit-for-bit in every field.
    #[must_use]
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::raw_parts`] output.
    /// No invariants are re-derived — the caller owns round-trip fidelity.
    #[must_use]
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Population variance of [2, 4, 4, 4, 5, 5, 7, 9] is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_matches_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let m = mean(&xs);
        let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
        assert!((std_dev(&xs) - (ss / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sse_zero_for_identical() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(sse(&xs, &xs), 0.0);
    }

    #[test]
    fn sse_known_value() {
        assert!((sse(&[1.0, 2.0], &[0.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mse_is_sse_over_n() {
        assert!((mse(&[1.0, 2.0], &[0.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_empty_is_zero() {
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sse_panics_on_mismatch() {
        let _ = sse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn euclidean_345() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 2.0, -1.0, f64::NAN, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
    }

    #[test]
    fn min_max_empty() {
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn online_stats_matches_batch() {
        let xs = [0.3, -1.2, 4.5, 2.2, 0.0, -0.7, 9.1];
        let mut acc = OnlineStats::new();
        acc.extend(&xs);
        assert_eq!(acc.count(), xs.len() as u64);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), Some(-1.2));
        assert_eq!(acc.max(), Some(9.1));
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let xs = [0.3, -1.2, 4.5, 2.2];
        let ys = [0.0, -0.7, 9.1];
        let mut a = OnlineStats::new();
        a.extend(&xs);
        let mut b = OnlineStats::new();
        b.extend(&ys);
        a.merge(&b);

        let mut all = OnlineStats::new();
        all.extend(&xs);
        all.extend(&ys);

        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut acc = OnlineStats::new();
        acc.extend(&[0.3, -1.2, 4.5, 2.2, 0.0]);
        let (n, mean, m2, min, max) = acc.raw_parts();
        let back = OnlineStats::from_raw_parts(n, mean, m2, min, max);
        assert_eq!(back, acc);
        assert_eq!(back.mean().to_bits(), acc.mean().to_bits());
        // The empty accumulator round-trips its ±∞ sentinels too.
        let empty = OnlineStats::new();
        let (n, mean, m2, min, max) = empty.raw_parts();
        assert_eq!(min, f64::INFINITY);
        assert_eq!(max, f64::NEG_INFINITY);
        assert_eq!(OnlineStats::from_raw_parts(n, mean, m2, min, max), empty);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.extend(&[1.0, 2.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
