//! Numerical substrate for the `trimgame` workspace.
//!
//! The paper ("Interactive Trimming against Evasive Online Data Manipulation
//! Attacks", ICDE 2024) models the infinite collection game with the
//! machinery of analytical mechanics: the principle of least action, the
//! Euler–Lagrange equation, and a harmonic-oscillator interaction term. This
//! crate provides that machinery, plus the percentile/statistics primitives
//! every other crate builds on:
//!
//! * [`stats`] — descriptive statistics (mean, variance, SSE, MSE, …).
//! * [`quantile`] — exact percentile computation with several interpolation
//!   conventions (the paper describes positions "in terms of data
//!   percentiles").
//! * [`sketch`] — the P² streaming quantile estimator, so thresholds can be
//!   maintained over unbounded streams without buffering rounds.
//! * [`rootfind`] — bisection and Brent's method (used to solve the balance
//!   point `P(x_L) = T(x_L)` of Section III-B).
//! * [`ode`] — a fixed-step RK4 integrator for second-order systems.
//! * [`lagrangian`] — Lagrangian trait and the two system Lagrangians of the
//!   paper (free / equilibrium, Theorem 2; coupled oscillator, Definition 2).
//! * [`variational`] — discrete action functionals and Euler–Lagrange
//!   residuals to verify least-action claims numerically.
//! * [`oscillator`] — closed-form solution of the coupled two-mass oscillator
//!   (Theorem 4) for cross-checking the integrator.
//! * [`rand_ext`] — seeded RNG helpers plus Gaussian/Laplace sampling
//!   implemented in-crate (polar Box–Muller; inverse-CDF Laplace).

pub mod gk;
pub mod lagrangian;
pub mod ode;
pub mod oscillator;
pub mod quantile;
pub mod rand_ext;
pub mod rootfind;
pub mod simd;
pub mod sketch;
pub mod stats;
pub mod variational;

pub use gk::GkSummary;
pub use lagrangian::{CoupledOscillatorLagrangian, FreeLagrangian, Lagrangian};
pub use ode::{rk4_integrate, rk4_step, SecondOrderSystem, Trajectory};
pub use oscillator::CoupledOscillator;
pub use quantile::{percentile, percentile_of, Interpolation};
pub use rand_ext::{derive_seed, laplace, seeded_rng, standard_normal, NormalSampler};
pub use rootfind::{bisect, brent, RootError};
pub use sketch::P2Quantile;
pub use stats::{mean, mse, sse, variance, OnlineStats};
