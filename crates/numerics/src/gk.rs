//! Greenwald–Khanna ε-approximate streaming quantiles.
//!
//! The P² sketch ([`crate::sketch`]) tracks *one* pre-declared quantile in
//! O(1) space; a collector running the trimming game, however, adjusts
//! its threshold percentile every round (Tit-for-tat switches between
//! `T̄` and `T`, Elastic moves continuously), so it needs *any* quantile
//! of the stream on demand. The GK summary (Greenwald & Khanna, SIGMOD
//! 2001) answers rank queries within `ε·n` using
//! `O((1/ε)·log(ε·n))` tuples — the standard database-systems answer.
//!
//! Each tuple `(v, g, Δ)` covers a band of ranks: `g` is the gap from the
//! previous tuple's minimum rank, and `Δ` the extra rank uncertainty. The
//! invariant `g + Δ ≤ ⌊2εn⌋` is maintained by periodic compression.
//!
//! Two ingest paths share the invariant:
//!
//! * [`GkSummary::insert`] — one observation at a time: a binary search
//!   plus a `Vec::insert` memmove, with compression on the standard
//!   `1/(2ε)` schedule. The right call when values genuinely arrive one
//!   by one.
//! * [`GkSummary::insert_batch`] — a whole batch at once: sort the batch
//!   into a reusable [`GkScratch`], then a **single merge sweep** splices
//!   every value into the tuple list with compression fused into the same
//!   pass — one allocation-free rebuild instead of N memmoves. This is
//!   the per-round collection path (`SketchThreshold::observe`), and what
//!   makes the memory-bounded defender cheaper than sorting the batch.
//!
//! A large batch arriving at an **empty** summary (the bulk-load shape)
//! skips the sort entirely: a fixed-width histogram over the
//! order-preserving integer keys counts every bucket and tracks its
//! maximum in one vectorizable pass, then each run of buckets collapses
//! into one tuple `(bucket max, exact count, 0)` — an equi-depth
//! histogram with *exact* ranks, built in O(n). Only buckets whose count
//! overflows the `⌊2εn⌋` band (heavy ties, pathological skew) fall back
//! to sorting just their own elements.
//!
//! A large batch arriving at a **warm** summary skips the full comparison
//! sort too: the keys are staged into buckets keyed on the existing tuple
//! boundaries (a counting scatter through prefix sums), and only each
//! near-singleton bucket is sorted — the concatenation is already
//! globally sorted because the bucket order is the boundary order.

/// One GK summary tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// Reusable scratch for [`GkSummary::insert_batch`]: the order-preserving
/// integer keys of the incoming batch, the merge-sweep output buffer, and
/// the histogram state of the bulk first-fill path. Buffers grow to the
/// high-water mark and are reused allocation-free afterwards; one scratch
/// can serve any number of summaries.
#[derive(Debug, Clone, Default)]
pub struct GkScratch {
    keys: Vec<u64>,
    merged: Vec<Tuple>,
    counts: Vec<u32>,
    maxes: Vec<u64>,
    spill: Vec<u64>,
    stage: Vec<u64>,
}

/// A batch at least this large arriving at an empty summary is ingested
/// through the histogram first-fill instead of the comparison sort (below
/// this the sort is already cheap and the histogram clear dominates).
const HIST_MIN: usize = 2048;

/// log2 of the histogram bucket count for the bulk first-fill path: 4096
/// fixed-width key buckets keep the count/max tables L1/L2-resident while
/// leaving typical bucket loads far below the `⌊2εn⌋` merge band.
const HIST_BUCKETS_LOG2: u32 = 12;

/// Warm batches below this size skip the tuple-boundary staging and sort
/// directly — pdqsort on a short key array beats the scatter's
/// bookkeeping passes.
const STAGE_MIN: usize = 192;

/// A summary thinner than this has too few boundary buckets for staging
/// to shrink the per-bucket sorts; the direct sort wins.
const STAGE_MIN_TUPLES: usize = 16;

/// A staged bucket larger than this (a skewed fill concentrating much of
/// the batch between two adjacent tuple boundaries) sorts by LSB radix
/// over the integer keys instead of pdqsort — linear passes beat the
/// `O(m log m)` comparison sort once the bucket is big enough to
/// amortize the histogram work.
const RADIX_MIN: usize = 256;

/// LSB radix sort over the monotone `u64` sort keys: eight stable
/// counting passes over 8-bit digits, alternating between `keys` and
/// `tmp`. Digit positions where every key shares the same byte are
/// skipped entirely — the common case for a staged bucket, whose keys
/// lie between two adjacent tuple boundaries and therefore share their
/// high bytes. A stable radix sort of integers produces exactly the
/// ascending order of `sort_unstable`, so callers may mix the two
/// freely without changing any downstream result.
///
/// `tmp` must be at least as long as `keys`; its contents are clobbered.
fn radix_sort_keys(keys: &mut [u64], tmp: &mut [u64]) {
    let n = keys.len();
    debug_assert!(tmp.len() >= n);
    debug_assert!(u32::try_from(n).is_ok());
    let tmp = &mut tmp[..n];
    // One read pass builds all eight digit histograms.
    let mut hist = [[0u32; 256]; 8];
    crate::simd::radix_digit_histograms(keys, &mut hist);
    let mut in_keys = true;
    for (d, h) in hist.iter_mut().enumerate() {
        // A constant digit permutes nothing: skip the pass.
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        // Prefix sums turn counts into write cursors.
        let mut acc = 0u32;
        for c in h.iter_mut() {
            let start = acc;
            acc += *c;
            *c = start;
        }
        let (src, dst): (&[u64], &mut [u64]) = if in_keys {
            (&*keys, &mut *tmp)
        } else {
            (&*tmp, &mut *keys)
        };
        for &k in src {
            let cursor = &mut h[((k >> (8 * d)) & 0xFF) as usize];
            dst[*cursor as usize] = k;
            *cursor += 1;
        }
        in_keys = !in_keys;
    }
    if !in_keys {
        keys.copy_from_slice(tmp);
    }
}

/// Maps a (non-NaN) `f64` to a `u64` whose unsigned order equals the
/// float's total order: flip the sign bit for positives, all bits for
/// negatives. Sorting plain integers is markedly faster than sorting
/// floats through a comparator, and it is what lets the batch ingest use
/// the branchless integer sort. Public because the order-preserving
/// integer domain is also the natural encoding domain for bit-packed
/// `f64` columns (the stream crate's frame format packs these keys).
#[inline]
#[must_use]
pub fn sort_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b ^ (1 << 63)
    } else {
        !b
    }
}

/// Inverse of [`sort_key`].
#[inline]
#[must_use]
pub fn key_value(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k ^ (1 << 63) } else { !k })
}

impl GkScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A Greenwald–Khanna quantile summary with error bound `epsilon`.
#[derive(Debug, Clone)]
pub struct GkSummary {
    epsilon: f64,
    tuples: Vec<Tuple>,
    n: u64,
    since_compress: u64,
    /// Cached query index: `index[i]` is the running maximum of
    /// `rank_max` over tuples `0..=i`. Monotone non-decreasing, so
    /// [`GkSummary::query`] binary-searches it instead of scanning the
    /// tuple list. Rebuilt by compression and batch ingest; a plain
    /// `insert` marks it stale instead of paying O(tuples) per value.
    index: Vec<u64>,
    index_dirty: bool,
}

impl PartialEq for GkSummary {
    fn eq(&self, other: &Self) -> bool {
        // The query index is a cache over `tuples`; staleness is not a
        // logical difference.
        self.epsilon == other.epsilon
            && self.tuples == other.tuples
            && self.n == other.n
            && self.since_compress == other.since_compress
    }
}

/// Appends `t` to `out`, merging it with the last survivor when the
/// combined band still satisfies the invariant — compression fused into
/// the emission sweep. The first tuple is kept intact (exact minimum),
/// and merging folds the predecessor INTO the successor, so the maximum
/// value is always preserved as the last tuple's value.
fn fuse_push(out: &mut Vec<Tuple>, cap: u64, t: Tuple) {
    if out.len() > 1 {
        let last = out.last_mut().expect("non-empty");
        if last.g + t.g + t.delta <= cap {
            *last = Tuple {
                v: t.v,
                g: last.g + t.g,
                delta: t.delta,
            };
            return;
        }
    }
    out.push(t);
}

impl GkSummary {
    /// Creates a summary with rank error `ε ∈ (0, 0.5)`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 0.5`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "GkSummary requires 0 < epsilon < 0.5, got {epsilon}"
        );
        Self {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
            index: Vec::new(),
            index_dirty: false,
        }
    }

    /// The configured rank-error bound.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations consumed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of summary tuples currently held (the space cost).
    #[must_use]
    pub fn tuples_len(&self) -> usize {
        self.tuples.len()
    }

    /// Inserts one observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn insert(&mut self, v: f64) {
        assert!(!v.is_nan(), "GkSummary cannot ingest NaN");
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        // Find insertion position (first tuple with value >= v).
        let pos = self.tuples.partition_point(|t| t.v < v);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: exact rank.
            0
        } else {
            cap.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        self.index_dirty = true;
        // Compress every ~1/(2ε) insertions (standard schedule).
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Ingests a whole batch in one pass: sorts `batch` into `scratch`,
    /// then merge-sweeps it against the existing tuple list with
    /// compression fused into the sweep — a single rebuild under the same
    /// `⌊2εn⌋` invariant (with `n` the post-batch count), instead of one
    /// `Vec::insert` memmove per value. Rank guarantees are identical to
    /// sequential ingestion (`ε·n` on every quantile); tuple layouts may
    /// differ because the compression points differ.
    ///
    /// # Panics
    /// Panics if the batch contains NaN.
    pub fn insert_batch(&mut self, batch: &[f64], scratch: &mut GkScratch) {
        self.insert_batches(&[batch], scratch);
    }

    /// Ingests several pre-staged batches in **one** merge sweep — the
    /// collector's coalesced rounds arrive as a list of per-round slices,
    /// and walking the tuple list once for the lot amortizes the sweep
    /// the same way [`GkSummary::insert_batch`] amortizes per-value
    /// insertion. Bit-identical to `insert_batch` over the concatenation
    /// of the slices (the keys are gathered into one staged array before
    /// sorting), and carries the same `ε·n` rank guarantee as any other
    /// ingestion order.
    ///
    /// # Panics
    /// Panics if any batch contains NaN.
    pub fn insert_batches(&mut self, batches: &[&[f64]], scratch: &mut GkScratch) {
        let total: usize = batches.iter().map(|b| b.len()).sum();
        if total == 0 {
            return;
        }
        scratch.keys.clear();
        scratch.keys.reserve(total);
        let mut any_nan = false;
        for batch in batches {
            for &v in *batch {
                any_nan |= v.is_nan();
                scratch.keys.push(sort_key(v));
            }
        }
        assert!(!any_nan, "GkSummary cannot ingest NaN");
        if self.tuples.is_empty() && total >= HIST_MIN {
            self.bulk_first_fill(scratch);
            return;
        }
        self.stage_batch_keys(scratch);

        let n_after = self.n + total as u64;
        let cap = (2.0 * self.epsilon * n_after as f64).floor() as u64;

        let out = &mut scratch.merged;
        out.clear();
        out.reserve(self.tuples.len() + total);

        let mut news = scratch.keys.iter().map(|&k| key_value(k));
        let mut next_new = news.next();
        for &t in &self.tuples {
            // Ascending-sorted new values splice in exactly where
            // sequential insertion would put them (ties land before the
            // equal tuple, matching `partition_point(|t| t.v < v)`).
            // A brand-new minimum has exact rank; interior values take
            // the original GK fresh-tuple uncertainty `g_succ + Δ_succ −
            // 1` from their pre-batch successor `t` — every element
            // hidden in `t`'s band could lie below the new value.
            let interior_delta = (t.g + t.delta).saturating_sub(1);
            while let Some(v) = next_new {
                if v > t.v {
                    break;
                }
                let delta = if out.is_empty() { 0 } else { interior_delta };
                fuse_push(out, cap, Tuple { v, g: 1, delta });
                next_new = news.next();
            }
            fuse_push(out, cap, t);
        }
        // Values above the old maximum: inserted in ascending order each
        // is the exact new maximum (delta 0), as sequential `insert` does
        // at the upper end — and as the whole batch is when the summary
        // starts empty.
        while let Some(v) = next_new {
            fuse_push(out, cap, Tuple { v, g: 1, delta: 0 });
            next_new = news.next();
        }

        std::mem::swap(&mut self.tuples, out);
        self.n = n_after;
        self.since_compress = 0;
        self.rebuild_index();
    }

    /// Sorts the staged batch keys (`scratch.keys`) for the warm merge
    /// sweep. Small batches and thin summaries take the direct comparison
    /// sort; past the cutoffs the keys are staged into buckets keyed on
    /// the **existing tuple boundaries** — one binary search per key, a
    /// counting scatter through prefix sums, then a tiny sort per bucket.
    /// With `k` tuples a warm batch of `n` does `O(n log k)` search work
    /// plus `O(n log(n/k))` total sort work on near-singleton buckets,
    /// instead of the full `O(n log n)` comparison sort, and the bucket
    /// order matches the boundary order so the concatenation is already
    /// globally sorted. The staged order is bit-identical to the direct
    /// sort (keys are totally ordered integers), so the downstream merge
    /// — and every summary it builds — is unchanged.
    fn stage_batch_keys(&self, scratch: &mut GkScratch) {
        let stage_worthy = scratch.keys.len() >= STAGE_MIN
            && self.tuples.len() >= STAGE_MIN_TUPLES
            && u32::try_from(scratch.keys.len()).is_ok();
        if !stage_worthy {
            scratch.keys.sort_unstable();
            return;
        }
        let GkScratch {
            keys,
            counts,
            maxes,
            spill,
            stage,
            ..
        } = scratch;
        maxes.clear();
        maxes.extend(self.tuples.iter().map(|t| sort_key(t.v)));
        counts.clear();
        counts.resize(maxes.len() + 1, 0);
        // Pass 1: bucket of each key (first boundary ≥ key), remembered in
        // `spill` so the scatter pass needn't search again.
        spill.clear();
        spill.reserve(keys.len());
        for &k in keys.iter() {
            let b = maxes.partition_point(|&bk| bk < k);
            counts[b] += 1;
            spill.push(b as u64);
        }
        // Prefix sums turn counts into write cursors; pass 2 scatters.
        let mut acc = 0u32;
        for c in counts.iter_mut() {
            let start = acc;
            acc += *c;
            *c = start;
        }
        stage.clear();
        stage.resize(keys.len(), 0);
        for (&k, &b) in keys.iter().zip(spill.iter()) {
            let cursor = &mut counts[b as usize];
            stage[*cursor as usize] = k;
            *cursor += 1;
        }
        // Cursors now sit at each bucket's end; sort the keys inside
        // every bucket (cross-bucket order is the boundary order). A
        // skewed fill can concentrate most of the batch in one bucket —
        // past RADIX_MIN the linear radix passes beat pdqsort, and
        // `spill` (dead after the scatter) provides the temp space.
        let mut start = 0usize;
        for &end in counts.iter() {
            let end = end as usize;
            let len = end - start;
            if len > RADIX_MIN {
                radix_sort_keys(&mut stage[start..end], &mut spill[..len]);
            } else if len > 1 {
                stage[start..end].sort_unstable();
            }
            start = end;
        }
        debug_assert!(stage.windows(2).all(|w| w[0] <= w[1]));
        std::mem::swap(keys, stage);
    }

    /// Bulk first-fill: builds the summary for a large batch arriving at
    /// an empty summary without sorting it. One pass bins the keys (in
    /// `scratch.keys`) into fixed-width buckets, counting each bucket and
    /// tracking its maximum; runs of buckets then collapse into tuples
    /// `(run max, exact count, 0)` whose ranks are *exact* — the run max
    /// is a real element and the cumulative count is precisely the number
    /// of elements ≤ it. A bucket whose count alone exceeds the `⌊2εn⌋`
    /// band (heavy ties, extreme skew) spills its elements to a sort and
    /// is emitted in exact chunks instead. The global minimum keeps its
    /// own leading tuple, matching the sequential path's exact extremes.
    fn bulk_first_fill(&mut self, scratch: &mut GkScratch) {
        let n = scratch.keys.len() as u64;
        let cap = (2.0 * self.epsilon * n as f64).floor() as u64;
        let target = cap.max(1);
        let out = &mut scratch.merged;
        out.clear();

        let (mut min_key, mut max_key) = (u64::MAX, u64::MIN);
        for &k in &scratch.keys {
            min_key = min_key.min(k);
            max_key = max_key.max(k);
        }
        out.push(Tuple {
            v: key_value(min_key),
            g: 1,
            delta: 0,
        });

        if min_key == max_key {
            // Constant batch: tied tuples in invariant-sized chunks.
            let v = key_value(min_key);
            let mut rest = n - 1;
            while rest > 0 {
                let g = target.min(rest);
                out.push(Tuple { v, g, delta: 0 });
                rest -= g;
            }
        } else {
            let range = max_key - min_key;
            let shift = (64 - range.leading_zeros()).saturating_sub(HIST_BUCKETS_LOG2);
            let buckets = ((range >> shift) + 1) as usize;
            scratch.counts.clear();
            scratch.counts.resize(buckets, 0);
            scratch.maxes.clear();
            scratch.maxes.resize(buckets, u64::MIN);
            for &k in &scratch.keys {
                let b = ((k - min_key) >> shift) as usize;
                scratch.counts[b] += 1;
                scratch.maxes[b] = scratch.maxes[b].max(k);
            }
            // The minimum already has its own tuple; its bucket stops
            // counting it (and, below, stops spilling one copy of it).
            scratch.counts[0] -= 1;

            scratch.spill.clear();
            if scratch.counts.iter().any(|&c| u64::from(c) > target) {
                let mut min_skipped = false;
                for &k in &scratch.keys {
                    let b = ((k - min_key) >> shift) as usize;
                    if u64::from(scratch.counts[b]) > target {
                        if k == min_key && !min_skipped {
                            min_skipped = true;
                        } else {
                            scratch.spill.push(k);
                        }
                    }
                }
                scratch.spill.sort_unstable();
            }

            let mut group_g = 0u64;
            let mut group_max = u64::MIN;
            let mut spilled = 0usize;
            for b in 0..buckets {
                let c = u64::from(scratch.counts[b]);
                if c == 0 {
                    continue;
                }
                if c > target {
                    if group_g > 0 {
                        out.push(Tuple {
                            v: key_value(group_max),
                            g: group_g,
                            delta: 0,
                        });
                        group_g = 0;
                    }
                    let elems = &scratch.spill[spilled..spilled + c as usize];
                    spilled += c as usize;
                    let mut i = 0usize;
                    while i < elems.len() {
                        let take = (target as usize).min(elems.len() - i);
                        out.push(Tuple {
                            v: key_value(elems[i + take - 1]),
                            g: take as u64,
                            delta: 0,
                        });
                        i += take;
                    }
                } else if group_g + c <= target {
                    group_g += c;
                    group_max = scratch.maxes[b];
                } else {
                    out.push(Tuple {
                        v: key_value(group_max),
                        g: group_g,
                        delta: 0,
                    });
                    group_g = c;
                    group_max = scratch.maxes[b];
                }
            }
            if group_g > 0 {
                out.push(Tuple {
                    v: key_value(group_max),
                    g: group_g,
                    delta: 0,
                });
            }
        }

        std::mem::swap(&mut self.tuples, out);
        self.n = n;
        self.since_compress = 0;
        self.rebuild_index();
    }

    /// Merges adjacent tuples whose combined band still satisfies the
    /// invariant `g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋`, in place: a write
    /// cursor folds survivors toward the front and one `truncate` drops
    /// the tail — no allocation.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        // `w` is the index of the last surviving tuple. Keep the first
        // tuple intact (exact minimum); merging folds the predecessor
        // INTO the successor, so the maximum value is always preserved as
        // the last tuple's value.
        let mut w = 0usize;
        for r in 1..self.tuples.len() {
            let t = self.tuples[r];
            if w > 0 && self.tuples[w].g + t.g + t.delta <= cap {
                self.tuples[w] = Tuple {
                    v: t.v,
                    g: self.tuples[w].g + t.g,
                    delta: t.delta,
                };
            } else {
                w += 1;
                self.tuples[w] = t;
            }
        }
        self.tuples.truncate(w + 1);
        self.rebuild_index();
    }

    /// Rebuilds the cumulative-rank query index (running max of
    /// `rank_max`) from the tuple list.
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index.reserve(self.tuples.len());
        let mut rank_min = 0u64;
        let mut running = 0u64;
        for t in &self.tuples {
            rank_min += t.g;
            running = running.max(rank_min + t.delta);
            self.index.push(running);
        }
        self.index_dirty = false;
    }

    /// Queries the value at quantile `q ∈ [0, 1]` (rank error ≤ `ε·n`).
    /// Returns `None` before any observation.
    ///
    /// The scan condition reduces to "the first tuple whose `rank_max`
    /// reaches `target − ε·n`" (the two-sided check is redundant: with
    /// `bound = ε·n`, `target ≤ rank_max + bound ⟺ rank_max ≥ target −
    /// bound`), so with a fresh index this is one binary search; only a
    /// summary made stale by single-value inserts falls back to the scan.
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    #[must_use]
    pub fn query(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} not in [0,1]");
        if self.tuples.is_empty() {
            return None;
        }
        // The extremes are tracked exactly: the first tuple is the
        // minimum and merging always folds predecessors into successors,
        // so the last tuple is the maximum.
        if q >= 1.0 {
            return self.tuples.last().map(|t| t.v);
        }
        let target = (q * self.n as f64).ceil() as u64;
        let floor = target.saturating_sub((self.epsilon * self.n as f64) as u64);
        if !self.index_dirty {
            let i = self.index.partition_point(|&m| m < floor);
            // The last tuple's rank_max is ≥ n ≥ target ≥ floor, so the
            // search always lands in range; clamp defensively anyway.
            return Some(self.tuples[i.min(self.tuples.len() - 1)].v);
        }
        let mut rank_min = 0u64;
        for t in &self.tuples {
            rank_min += t.g;
            if rank_min + t.delta >= floor {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{percentile, Interpolation};
    use crate::rand_ext::{seeded_rng, standard_normal};
    use rand::Rng;

    #[test]
    fn empty_summary_returns_none() {
        let s = GkSummary::new(0.01);
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "0 < epsilon < 0.5")]
    fn bad_epsilon_rejected() {
        let _ = GkSummary::new(0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = GkSummary::new(0.01);
        s.insert(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn batch_nan_rejected() {
        let mut s = GkSummary::new(0.01);
        let mut scratch = GkScratch::new();
        s.insert_batch(&[1.0, f64::NAN, 2.0], &mut scratch);
    }

    #[test]
    fn rank_error_within_epsilon_uniform() {
        let eps = 0.01;
        let n = 50_000usize;
        let mut rng = seeded_rng(1);
        let mut s = GkSummary::new(eps);
        let mut all = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen();
            s.insert(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = s.query(q).unwrap();
            // True rank of the estimate must be within 2*eps*n of target.
            let rank = all.partition_point(|&v| v < est) as f64 / n as f64;
            assert!(
                (rank - q).abs() <= 2.0 * eps + 1e-9,
                "q={q}: rank {rank} too far"
            );
        }
    }

    #[test]
    fn rank_error_within_epsilon_gaussian() {
        let eps = 0.005;
        let n = 100_000usize;
        let mut rng = seeded_rng(2);
        let mut s = GkSummary::new(eps);
        let mut all = Vec::with_capacity(n);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            s.insert(x);
            all.push(x);
        }
        // GK guarantees rank error, not value error; in the thin Gaussian
        // tail a compliant estimate can sit far from the exact value, so
        // assert the actual guarantee.
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let est = s.query(0.99).unwrap();
        let rank = all.partition_point(|&v| v < est) as f64 / n as f64;
        assert!(
            (rank - 0.99).abs() <= 2.0 * eps + 1e-9,
            "rank {rank} of estimate {est} too far from 0.99"
        );
    }

    #[test]
    fn batch_rank_error_within_epsilon() {
        // The tentpole contract at bench scale: one summary fed in
        // per-round batches answers every quantile within the ε·n band.
        let eps = 0.01;
        let n = 100_000usize;
        let batch_len = 1_000;
        let mut rng = seeded_rng(11);
        let mut s = GkSummary::new(eps);
        let mut scratch = GkScratch::new();
        let mut all = Vec::with_capacity(n);
        let mut batch = Vec::with_capacity(batch_len);
        while all.len() < n {
            batch.clear();
            for _ in 0..batch_len {
                batch.push(rng.gen::<f64>() * 1000.0);
            }
            s.insert_batch(&batch, &mut scratch);
            all.extend_from_slice(&batch);
        }
        assert_eq!(s.count(), n as u64);
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = s.query(q).unwrap();
            let rank = all.partition_point(|&v| v < est) as f64 / n as f64;
            assert!(
                (rank - q).abs() <= 2.0 * eps + 1e-9,
                "q={q}: rank {rank} too far"
            );
        }
    }

    #[test]
    fn insert_batches_is_bit_identical_to_concatenated_insert_batch() {
        // The multi-batch sweep gathers every slice's keys into one staged
        // array, so it must produce the exact tuple list of a single
        // `insert_batch` over the concatenation — cold-start (bulk
        // first-fill), warm, and empty-slice shapes alike.
        let mut rng = seeded_rng(23);
        let big: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>() * 100.0).collect();
        let (a, b) = big.split_at(1500);
        let shapes: Vec<Vec<&[f64]>> = vec![
            vec![a, b],                        // cold start crossing HIST_MIN
            vec![&big[..7], &[], &big[7..80]], // small + empty slices
            vec![&big[..300], &big[300..900], &big[900..]],
        ];
        for slices in shapes {
            let concat: Vec<f64> = slices.iter().flat_map(|s| s.iter().copied()).collect();
            let mut warm_seed = GkSummary::new(0.02);
            warm_seed.insert_batch(&big[..512], &mut GkScratch::new());
            for seed in [GkSummary::new(0.02), warm_seed] {
                let mut multi = seed.clone();
                let mut single = seed;
                multi.insert_batches(&slices, &mut GkScratch::new());
                single.insert_batch(&concat, &mut GkScratch::new());
                assert_eq!(multi, single, "{} slices", slices.len());
            }
        }
        // All-empty input is a no-op.
        let mut s = GkSummary::new(0.02);
        s.insert_batches(&[&[], &[][..]], &mut GkScratch::new());
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn insert_batches_rejects_nan_in_any_slice() {
        let mut s = GkSummary::new(0.01);
        s.insert_batches(&[&[1.0], &[f64::NAN][..]], &mut GkScratch::new());
    }

    #[test]
    fn batch_handles_adversarial_orders() {
        // Sorted, reverse-sorted, duplicate-heavy and constant batches:
        // the rank guarantee must hold for every arrival order.
        let eps = 0.02;
        let n = 20_000;
        let streams: Vec<(&str, Vec<f64>)> = vec![
            ("sorted", (0..n).map(f64::from).collect()),
            ("reversed", (0..n).rev().map(f64::from).collect()),
            (
                "duplicate-heavy",
                (0..n).map(|i| f64::from(i % 7)).collect(),
            ),
            ("constant", vec![42.0; n as usize]),
        ];
        for (name, values) in streams {
            let mut s = GkSummary::new(eps);
            let mut scratch = GkScratch::new();
            for chunk in values.chunks(256) {
                s.insert_batch(chunk, &mut scratch);
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &q in &[0.0, 0.1, 0.5, 0.9, 1.0] {
                let est = s.query(q).unwrap();
                let lo = sorted.partition_point(|&v| v < est) as f64;
                let hi = sorted.partition_point(|&v| v <= est) as f64;
                let target = q * values.len() as f64;
                // The estimate's true rank is an interval under ties;
                // the nearest achievable rank must be within the band.
                let dist = if target < lo {
                    lo - target
                } else if target > hi {
                    target - hi
                } else {
                    0.0
                };
                assert!(
                    dist <= 2.0 * eps * values.len() as f64 + 1.0,
                    "{name} q={q}: est {est} rank [{lo}, {hi}] vs target {target}"
                );
            }
            assert_eq!(s.query(0.0), Some(sorted[0]), "{name}: min not exact");
            assert_eq!(
                s.query(1.0),
                Some(sorted[sorted.len() - 1]),
                "{name}: max not exact"
            );
        }
    }

    #[test]
    fn bulk_first_fill_rank_error_within_epsilon() {
        // One large batch into an empty summary takes the sort-free
        // histogram path; every quantile must still honor the ε·n band,
        // and extremes stay exact. Shapes chosen to stress the binning:
        // uniform (spread), sorted/reversed (order-independence),
        // duplicate-heavy and constant (bucket overflow → spill), and an
        // extreme outlier (all mass collapses into one bucket → spill).
        let eps = 0.02;
        let n = 50_000usize;
        let mut rng = seeded_rng(13);
        let mut with_outlier: Vec<f64> = (0..n - 1).map(|_| rng.gen::<f64>()).collect();
        with_outlier.push(1e300);
        let mut rng = seeded_rng(14);
        let streams: Vec<(&str, Vec<f64>)> = vec![
            (
                "uniform",
                (0..n).map(|_| rng.gen::<f64>() * 1000.0).collect(),
            ),
            ("sorted", (0..n).map(|i| i as f64).collect()),
            ("reversed", (0..n).rev().map(|i| i as f64).collect()),
            ("duplicate-heavy", (0..n).map(|i| (i % 7) as f64).collect()),
            ("constant", vec![42.0; n]),
            ("outlier", with_outlier),
        ];
        for (name, values) in streams {
            let mut s = GkSummary::new(eps);
            s.insert_batch(&values, &mut GkScratch::new());
            assert_eq!(s.count(), n as u64, "{name}");
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &q in &[0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let est = s.query(q).unwrap();
                let lo = sorted.partition_point(|&v| v < est) as f64;
                let hi = sorted.partition_point(|&v| v <= est) as f64;
                let tgt = q * n as f64;
                let dist = (lo - tgt).max(tgt - hi).max(0.0);
                assert!(
                    dist <= 2.0 * eps * n as f64 + 1.0,
                    "{name} q={q}: est {est} rank [{lo}, {hi}] vs target {tgt}"
                );
            }
            assert_eq!(s.query(0.0), Some(sorted[0]), "{name}: min not exact");
            assert_eq!(s.query(1.0), Some(sorted[n - 1]), "{name}: max not exact");
            assert!(
                s.tuples_len() < 200,
                "{name}: first fill too large: {} tuples",
                s.tuples_len()
            );
        }
    }

    #[test]
    fn bulk_first_fill_then_streaming_keeps_guarantee() {
        // The bulk-load shape followed by ordinary streaming: histogram
        // first fill, then chunked and single-value ingest on top.
        let eps = 0.01;
        let mut rng = seeded_rng(15);
        let bulk: Vec<f64> = (0..30_000).map(|_| rng.gen::<f64>() * 100.0).collect();
        let mut s = GkSummary::new(eps);
        let mut scratch = GkScratch::new();
        s.insert_batch(&bulk, &mut scratch);
        let mut all = bulk;
        for _ in 0..20 {
            let chunk: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() * 100.0).collect();
            s.insert_batch(&chunk, &mut scratch);
            all.extend_from_slice(&chunk);
        }
        for _ in 0..500 {
            let x = rng.gen::<f64>() * 100.0;
            s.insert(x);
            all.push(x);
        }
        assert_eq!(s.count(), all.len() as u64);
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let est = s.query(q).unwrap();
            let rank = all.partition_point(|&v| v < est) as f64 / all.len() as f64;
            assert!((rank - q).abs() <= 2.0 * eps + 1e-9, "q={q}: rank {rank}");
        }
    }

    #[test]
    fn batch_and_sequential_ingest_interleave() {
        // Mixed usage — some values one at a time, some in batches — keeps
        // one coherent summary.
        let mut s = GkSummary::new(0.02);
        let mut scratch = GkScratch::new();
        let mut all = Vec::new();
        let mut rng = seeded_rng(9);
        for round in 0..50 {
            if round % 2 == 0 {
                let batch: Vec<f64> = (0..200).map(|_| rng.gen::<f64>() * 10.0).collect();
                s.insert_batch(&batch, &mut scratch);
                all.extend_from_slice(&batch);
            } else {
                for _ in 0..200 {
                    let x = rng.gen::<f64>() * 10.0;
                    s.insert(x);
                    all.push(x);
                }
            }
        }
        assert_eq!(s.count(), all.len() as u64);
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.1, 0.5, 0.9] {
            let est = s.query(q).unwrap();
            let rank = all.partition_point(|&v| v < est) as f64 / all.len() as f64;
            assert!((rank - q).abs() <= 2.0 * 0.02 + 1e-9, "q={q}: rank {rank}");
        }
    }

    #[test]
    fn warm_staged_batch_is_arrival_order_independent() {
        // Prime a summary past the staging cutoffs, then ingest one warm
        // batch in three arrival orders: the boundary-bucket scatter must
        // reproduce the direct sort's key sequence exactly, so all three
        // summaries are identical.
        let mut rng = seeded_rng(17);
        let prime: Vec<f64> = (0..4_000).map(|_| rng.gen::<f64>() * 100.0).collect();
        let batch: Vec<f64> = (0..2_000)
            .map(|_| rng.gen::<f64>() * 120.0 - 10.0)
            .collect();
        let mut asc = batch.clone();
        asc.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut desc = asc.clone();
        desc.reverse();
        let mut scratch = GkScratch::new();
        let build = |order: &[f64], scratch: &mut GkScratch| {
            let mut s = GkSummary::new(0.01);
            s.insert_batch(&prime, scratch);
            assert!(
                s.tuples_len() >= STAGE_MIN_TUPLES,
                "prime too thin to stage"
            );
            s.insert_batch(order, scratch);
            s
        };
        let shuffled = build(&batch, &mut scratch);
        let ascending = build(&asc, &mut scratch);
        let descending = build(&desc, &mut scratch);
        assert_eq!(shuffled, ascending);
        assert_eq!(shuffled, descending);
    }

    #[test]
    fn skewed_warm_batch_takes_radix_and_matches_element_wise() {
        // 90% of the batch lands between two adjacent boundaries of the
        // primed summary, forcing one bucket past RADIX_MIN: the radix
        // path must leave the summary identical to the same values
        // arriving pre-sorted (which exercises the comparison path at
        // staging level) — bit-for-bit, not just rank-equivalent.
        let mut rng = seeded_rng(23);
        let prime: Vec<f64> = (0..4_000).map(|_| rng.gen::<f64>() * 100.0).collect();
        let mut batch: Vec<f64> = (0..RADIX_MIN * 4)
            .map(|i| {
                if i % 10 == 0 {
                    rng.gen::<f64>() * 100.0
                } else {
                    50.0 + rng.gen::<f64>() * 1e-6
                }
            })
            .collect();
        let mut scratch = GkScratch::new();
        let build = |order: &[f64], scratch: &mut GkScratch| {
            let mut s = GkSummary::new(0.01);
            s.insert_batch(&prime, scratch);
            s.insert_batch(order, scratch);
            s
        };
        let skewed = build(&batch, &mut scratch);
        batch.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sorted = build(&batch, &mut scratch);
        assert_eq!(skewed, sorted);
    }

    proptest::proptest! {
        /// The radix pass is a drop-in for `sort_unstable` on the u64
        /// sort keys: bit-identical output on arbitrary keys, including
        /// the shared-high-byte distributions staged buckets produce.
        #[test]
        fn radix_sort_is_bit_identical_to_sort_unstable(
            mut keys in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..1500),
            base in proptest::prelude::any::<u64>(),
            lows in proptest::collection::vec(0u64..4096, 0..1500),
        ) {
            // Mix arbitrary keys with a run sharing all high bytes (the
            // constant-digit skip path).
            keys.extend(lows.iter().map(|&l| (base & !0xFFF_u64) | l));
            let mut reference = keys.clone();
            reference.sort_unstable();
            let mut tmp = vec![0u64; keys.len()];
            radix_sort_keys(&mut keys, &mut tmp);
            proptest::prop_assert_eq!(keys, reference);
        }
    }

    #[test]
    fn batch_space_is_sublinear() {
        let eps = 0.01;
        let mut rng = seeded_rng(3);
        let mut s = GkSummary::new(eps);
        let mut scratch = GkScratch::new();
        let mut batch = Vec::with_capacity(512);
        for _ in 0..(100_000 / 512 + 1) {
            batch.clear();
            for _ in 0..512 {
                batch.push(rng.gen::<f64>());
            }
            s.insert_batch(&batch, &mut scratch);
        }
        assert!(
            s.tuples_len() < 4_000,
            "summary too large: {} tuples",
            s.tuples_len()
        );
    }

    #[test]
    fn space_is_sublinear() {
        let eps = 0.01;
        let mut rng = seeded_rng(3);
        let mut s = GkSummary::new(eps);
        for _ in 0..100_000 {
            s.insert(rng.gen::<f64>());
        }
        // O((1/eps) log(eps n)) ~ 100 * log(1000) ~ 700; assert well below
        // the raw stream size.
        assert!(
            s.tuples_len() < 4_000,
            "summary too large: {} tuples",
            s.tuples_len()
        );
    }

    #[test]
    fn min_and_max_are_exact() {
        let mut s = GkSummary::new(0.05);
        let values = [5.0, -2.0, 9.0, 0.5, 7.5, -1.0, 3.3];
        for &v in &values {
            s.insert(v);
        }
        assert_eq!(s.query(0.0), Some(-2.0));
        assert_eq!(s.query(1.0), Some(9.0));
        let mut b = GkSummary::new(0.05);
        b.insert_batch(&values, &mut GkScratch::new());
        assert_eq!(b.query(0.0), Some(-2.0));
        assert_eq!(b.query(1.0), Some(9.0));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut s = GkSummary::new(0.05);
        s.insert(1.0);
        let before = s.clone();
        s.insert_batch(&[], &mut GkScratch::new());
        assert_eq!(s, before);
    }

    #[test]
    fn sorted_and_reversed_streams_agree() {
        let eps = 0.02;
        let n = 20_000;
        let mut asc = GkSummary::new(eps);
        let mut desc = GkSummary::new(eps);
        for i in 0..n {
            asc.insert(f64::from(i));
            desc.insert(f64::from(n - 1 - i));
        }
        for &q in &[0.1, 0.5, 0.9] {
            let a = asc.query(q).unwrap();
            let d = desc.query(q).unwrap();
            let target = q * f64::from(n);
            assert!(
                (a - target).abs() <= 2.0 * eps * f64::from(n) + 1.0,
                "asc q={q}: {a}"
            );
            assert!(
                (d - target).abs() <= 2.0 * eps * f64::from(n) + 1.0,
                "desc q={q}: {d}"
            );
        }
    }

    #[test]
    fn supports_on_demand_threshold_changes() {
        // The collection-game use case: one summary, many different
        // percentile queries as the strategy moves its threshold.
        let mut rng = seeded_rng(4);
        let mut s = GkSummary::new(0.01);
        let mut all = Vec::new();
        for _ in 0..30_000 {
            let x = rng.gen::<f64>() * 100.0;
            s.insert(x);
            all.push(x);
        }
        for &t in &[0.87, 0.873, 0.89, 0.90, 0.91, 0.95] {
            let est = s.query(t).unwrap();
            let exact = percentile(&all, t, Interpolation::Linear);
            assert!((est - exact).abs() < 2.5, "t={t}: {est} vs {exact}");
        }
    }

    #[test]
    fn indexed_query_matches_scan_query() {
        // The same summary state answered through both query paths: the
        // binary-searched index (clean, right after a batch) and the
        // linear scan (stale, right after a single insert that does not
        // change any answer-relevant ranks... so instead force the scan
        // by cloning pre-index state). Here we compare a batch-built
        // summary against an insert-built one on the *reduction* itself:
        // every query of the clean summary must equal what the scan
        // returns on identical tuples.
        let mut rng = seeded_rng(21);
        let values: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 50.0).collect();
        let mut s = GkSummary::new(0.01);
        s.insert_batch(&values, &mut GkScratch::new());
        assert!(!s.index_dirty);
        let mut stale = s.clone();
        stale.index_dirty = true; // force the scan path on identical tuples
        for q in (0..=100).map(|i| f64::from(i) / 100.0) {
            assert_eq!(s.query(q), stale.query(q), "q={q}");
        }
    }
}
