//! Greenwald–Khanna ε-approximate streaming quantiles.
//!
//! The P² sketch ([`crate::sketch`]) tracks *one* pre-declared quantile in
//! O(1) space; a collector running the trimming game, however, adjusts
//! its threshold percentile every round (Tit-for-tat switches between
//! `T̄` and `T`, Elastic moves continuously), so it needs *any* quantile
//! of the stream on demand. The GK summary (Greenwald & Khanna, SIGMOD
//! 2001) answers rank queries within `ε·n` using
//! `O((1/ε)·log(ε·n))` tuples — the standard database-systems answer.
//!
//! Each tuple `(v, g, Δ)` covers a band of ranks: `g` is the gap from the
//! previous tuple's minimum rank, and `Δ` the extra rank uncertainty. The
//! invariant `g + Δ ≤ ⌊2εn⌋` is maintained by periodic compression.

/// One GK summary tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// A Greenwald–Khanna quantile summary with error bound `epsilon`.
#[derive(Debug, Clone, PartialEq)]
pub struct GkSummary {
    epsilon: f64,
    tuples: Vec<Tuple>,
    n: u64,
    since_compress: u64,
}

impl GkSummary {
    /// Creates a summary with rank error `ε ∈ (0, 0.5)`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 0.5`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "GkSummary requires 0 < epsilon < 0.5, got {epsilon}"
        );
        Self {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
        }
    }

    /// The configured rank-error bound.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations consumed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of summary tuples currently held (the space cost).
    #[must_use]
    pub fn tuples_len(&self) -> usize {
        self.tuples.len()
    }

    /// Inserts one observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn insert(&mut self, v: f64) {
        assert!(!v.is_nan(), "GkSummary cannot ingest NaN");
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        // Find insertion position (first tuple with value >= v).
        let pos = self.tuples.partition_point(|t| t.v < v);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: exact rank.
            0
        } else {
            cap.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        // Compress every ~1/(2ε) insertions (standard schedule).
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined band still satisfies the
    /// invariant `g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋`.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let cap = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        for &t in &self.tuples[1..] {
            let len = out.len();
            let last = out.last_mut().expect("non-empty");
            // Keep the first tuple intact (exact minimum). Merging folds
            // the predecessor INTO the successor, so the maximum value is
            // always preserved as the last tuple's value.
            if len > 1 && last.g + t.g + t.delta <= cap {
                let merged = Tuple {
                    v: t.v,
                    g: last.g + t.g,
                    delta: t.delta,
                };
                *last = merged;
            } else {
                out.push(t);
            }
        }
        self.tuples = out;
    }

    /// Queries the value at quantile `q ∈ [0, 1]` (rank error ≤ `ε·n`).
    /// Returns `None` before any observation.
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    #[must_use]
    pub fn query(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} not in [0,1]");
        if self.tuples.is_empty() {
            return None;
        }
        let target = (q * self.n as f64).ceil() as u64;
        let bound = (self.epsilon * self.n as f64) as u64;
        let mut rank_min = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            rank_min += t.g;
            let rank_max = rank_min + t.delta;
            if (target <= rank_max + bound || i == self.tuples.len() - 1)
                && rank_max >= target.saturating_sub(bound)
            {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{percentile, Interpolation};
    use crate::rand_ext::{seeded_rng, standard_normal};
    use rand::Rng;

    #[test]
    fn empty_summary_returns_none() {
        let s = GkSummary::new(0.01);
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "0 < epsilon < 0.5")]
    fn bad_epsilon_rejected() {
        let _ = GkSummary::new(0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = GkSummary::new(0.01);
        s.insert(f64::NAN);
    }

    #[test]
    fn rank_error_within_epsilon_uniform() {
        let eps = 0.01;
        let n = 50_000usize;
        let mut rng = seeded_rng(1);
        let mut s = GkSummary::new(eps);
        let mut all = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen();
            s.insert(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = s.query(q).unwrap();
            // True rank of the estimate must be within 2*eps*n of target.
            let rank = all.partition_point(|&v| v < est) as f64 / n as f64;
            assert!(
                (rank - q).abs() <= 2.0 * eps + 1e-9,
                "q={q}: rank {rank} too far"
            );
        }
    }

    #[test]
    fn rank_error_within_epsilon_gaussian() {
        let eps = 0.005;
        let n = 100_000usize;
        let mut rng = seeded_rng(2);
        let mut s = GkSummary::new(eps);
        let mut all = Vec::with_capacity(n);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            s.insert(x);
            all.push(x);
        }
        // GK guarantees rank error, not value error; in the thin Gaussian
        // tail a compliant estimate can sit far from the exact value, so
        // assert the actual guarantee.
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let est = s.query(0.99).unwrap();
        let rank = all.partition_point(|&v| v < est) as f64 / n as f64;
        assert!(
            (rank - 0.99).abs() <= 2.0 * eps + 1e-9,
            "rank {rank} of estimate {est} too far from 0.99"
        );
    }

    #[test]
    fn space_is_sublinear() {
        let eps = 0.01;
        let mut rng = seeded_rng(3);
        let mut s = GkSummary::new(eps);
        for _ in 0..100_000 {
            s.insert(rng.gen::<f64>());
        }
        // O((1/eps) log(eps n)) ~ 100 * log(1000) ~ 700; assert well below
        // the raw stream size.
        assert!(
            s.tuples_len() < 4_000,
            "summary too large: {} tuples",
            s.tuples_len()
        );
    }

    #[test]
    fn min_and_max_are_exact() {
        let mut s = GkSummary::new(0.05);
        let values = [5.0, -2.0, 9.0, 0.5, 7.5, -1.0, 3.3];
        for &v in &values {
            s.insert(v);
        }
        assert_eq!(s.query(0.0), Some(-2.0));
        assert_eq!(s.query(1.0), Some(9.0));
    }

    #[test]
    fn sorted_and_reversed_streams_agree() {
        let eps = 0.02;
        let n = 20_000;
        let mut asc = GkSummary::new(eps);
        let mut desc = GkSummary::new(eps);
        for i in 0..n {
            asc.insert(f64::from(i));
            desc.insert(f64::from(n - 1 - i));
        }
        for &q in &[0.1, 0.5, 0.9] {
            let a = asc.query(q).unwrap();
            let d = desc.query(q).unwrap();
            let target = q * f64::from(n);
            assert!(
                (a - target).abs() <= 2.0 * eps * f64::from(n) + 1.0,
                "asc q={q}: {a}"
            );
            assert!(
                (d - target).abs() <= 2.0 * eps * f64::from(n) + 1.0,
                "desc q={q}: {d}"
            );
        }
    }

    #[test]
    fn supports_on_demand_threshold_changes() {
        // The collection-game use case: one summary, many different
        // percentile queries as the strategy moves its threshold.
        let mut rng = seeded_rng(4);
        let mut s = GkSummary::new(0.01);
        let mut all = Vec::new();
        for _ in 0..30_000 {
            let x = rng.gen::<f64>() * 100.0;
            s.insert(x);
            all.push(x);
        }
        for &t in &[0.87, 0.873, 0.89, 0.90, 0.91, 0.95] {
            let est = s.query(t).unwrap();
            let exact = percentile(&all, t, Interpolation::Linear);
            assert!((est - exact).abs() < 2.5, "t={t}: {est} vs {exact}");
        }
    }
}
