//! Exact percentile computation.
//!
//! The paper standardizes all positions — trimming thresholds `T_th` and
//! poison injection points `A(i)` — "in terms of data percentiles"
//! (Section VI-A). This module provides the percentile forward map
//! (probability → value) and the inverse map (value → probability) under
//! the common interpolation conventions. The default, [`Interpolation::Linear`],
//! matches NumPy's `linear` method; [`Interpolation::Matlab`] matches MATLAB's
//! `prctile` (the paper's experiments ran in MATLAB R2021b).

/// Interpolation convention for the percentile forward map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interpolation {
    /// NumPy `linear`: position `h = (n−1)·p`, linear interpolation.
    #[default]
    Linear,
    /// MATLAB `prctile`: sample `i` sits at probability `(i−0.5)/n`;
    /// linear interpolation in between, clamped at the extremes.
    Matlab,
    /// Lower: the largest sample at or below the position (no interpolation).
    Lower,
    /// Nearest rank (Excel-style `PERCENTILE.INC` rounding).
    Nearest,
}

/// Percentile of *unsorted* data at probability `p ∈ [0, 1]`.
///
/// Sorts a copy internally; prefer [`percentile_sorted`] in hot loops.
///
/// # Panics
/// Panics if `data` is empty or `p` is not in `[0, 1]`.
#[must_use]
pub fn percentile(data: &[f64], p: f64, interp: Interpolation) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in data"));
    percentile_sorted(&sorted, p, interp)
}

/// Percentile of data already sorted ascending.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is not in `[0, 1]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64, interp: Interpolation) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile probability {p} not in [0,1]"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    // Exact extremes under every interpolation mode: no index arithmetic
    // (and hence no floating-point rounding) may ever pull `p = 0`/`p = 1`
    // off the sample minimum/maximum.
    if p == 0.0 {
        return sorted[0];
    }
    if p == 1.0 {
        return sorted[n - 1];
    }
    let (lo, frac) = rank_position(n, p, interp);
    if frac == 0.0 {
        sorted[lo]
    } else {
        sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
    }
}

/// The anchor rank and interpolation weight of probability `p` over `n`
/// samples under `interp` — the single source of rank arithmetic shared
/// by [`percentile_sorted`], [`percentile_select`] and
/// [`percentile_partition`], whose bit-identical contract depends on the
/// three paths never diverging. Callers handle `p == 0` / `p == 1` /
/// `n == 1` before calling. Lower/Nearest need a single exact order
/// statistic (`frac == 0`), Linear/Matlab two adjacent ones.
fn rank_position(n: usize, p: f64, interp: Interpolation) -> (usize, f64) {
    match interp {
        Interpolation::Linear => {
            let h = (n - 1) as f64 * p;
            (h.floor() as usize, h - h.floor())
        }
        Interpolation::Matlab => {
            // Sample i (1-based) sits at probability (i - 0.5) / n.
            let h = p * n as f64 - 0.5;
            if h <= 0.0 {
                (0, 0.0)
            } else if h >= (n - 1) as f64 {
                (n - 1, 0.0)
            } else {
                (h.floor() as usize, h - h.floor())
            }
        }
        Interpolation::Lower => {
            let h = (n - 1) as f64 * p;
            (h.floor() as usize, 0.0)
        }
        Interpolation::Nearest => {
            let h = (n - 1) as f64 * p;
            (h.round() as usize, 0.0)
        }
    }
}

/// Percentile by in-place selection instead of a full sort.
///
/// Computes exactly the same value as [`percentile_sorted`] on the sorted
/// copy of `buf`, but in `O(n)` expected time via `select_nth_unstable`:
/// the interpolation anchors `sorted[⌊h⌋]` and `sorted[⌈h⌉]` are found by
/// one selection plus a minimum scan of the upper partition. `buf` is
/// reordered arbitrarily — callers own a scratch copy (see
/// `trimgame-stream`'s `TrimScratch`), which is what makes the trim hot
/// path allocation-free.
///
/// # Panics
/// Panics if `buf` is empty, `p` is not in `[0, 1]`, or the data contains
/// a NaN (every element participates in the first partition pass, so NaN
/// cannot slip through unnoticed).
#[must_use]
pub fn percentile_select(buf: &mut [f64], p: f64, interp: Interpolation) -> f64 {
    assert!(!buf.is_empty(), "percentile of empty data");
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile probability {p} not in [0,1]"
    );
    let n = buf.len();
    if n == 1 {
        let only = buf[0];
        assert!(!only.is_nan(), "percentile: NaN in data");
        return only;
    }
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("percentile: NaN in data");
    if p == 0.0 {
        return *buf
            .iter()
            .min_by(|a, b| cmp(a, b))
            .expect("non-empty checked above");
    }
    if p == 1.0 {
        return *buf
            .iter()
            .max_by(|a, b| cmp(a, b))
            .expect("non-empty checked above");
    }
    let (lo, frac) = rank_position(n, p, interp);
    let (_, lo_v, upper) = buf.select_nth_unstable_by(lo, cmp);
    let lo_v = *lo_v;
    if frac == 0.0 {
        return lo_v;
    }
    // sorted[lo + 1] is the minimum of the partition above the pivot.
    let hi_v = *upper
        .iter()
        .min_by(|a, b| cmp(a, b))
        .expect("frac > 0 implies lo < n - 1");
    lo_v + frac * (hi_v - lo_v)
}

/// Batches below this size resolve percentiles by plain copy +
/// [`percentile_select`]: the sampling machinery only pays for itself
/// once the partition pass is large enough to amortize it.
const PARTITION_MIN: usize = 4096;

/// Ceiling on the pivot pre-pass sample (deterministic stride sampling;
/// the sort of the sample is the only super-linear work). Mid-size
/// batches sample `n / 16` so the pre-pass never rivals the partition
/// pass itself.
const PARTITION_SAMPLE: usize = 1024;

/// Percentile by sampled two-pivot partitioning (Floyd–Rivest style):
/// the same value as [`percentile_sorted`] on a sorted copy, **without
/// reordering or copying the batch**. A deterministic stride sample is
/// sorted to bracket the target rank between two pivots, one fused
/// SIMD pass ([`crate::simd::partition_band`]) counts the mass outside
/// the bracket and compacts the in-bracket candidates into `scratch`
/// (~10–20% of the batch), and the exact order statistics are selected
/// inside the bracket. If the bracket misses the rank — possible only on
/// adversarial stride-aligned data — the code falls back to a full
/// [`percentile_select`] on a scratch copy, so the result is *always*
/// exact and bit-identical to the sorted reference.
///
/// `scratch` is the candidate/fallback buffer, reused across calls: a
/// warm caller performs no allocation.
///
/// # Panics
/// Panics if `data` is empty, `p` is not in `[0, 1]`, or the data
/// contains a NaN (a NaN escapes all three partition classes, which the
/// pass detects by count).
#[must_use]
pub fn percentile_partition(
    data: &[f64],
    p: f64,
    interp: Interpolation,
    scratch: &mut Vec<f64>,
) -> f64 {
    assert!(!data.is_empty(), "percentile of empty data");
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile probability {p} not in [0,1]"
    );
    let n = data.len();
    let fallback = |scratch: &mut Vec<f64>| {
        scratch.clear();
        scratch.extend_from_slice(data);
        percentile_select(scratch, p, interp)
    };
    if n < PARTITION_MIN || p == 0.0 || p == 1.0 {
        return fallback(scratch);
    }
    let (k, frac) = rank_position(n, p, interp);

    // Deterministic stride sample on the stack, sorted to place the
    // pivot bracket (the sample never exceeds ~4/3·PARTITION_SAMPLE for
    // any n above the cutoff, so the fixed buffer always fits).
    let stride = (n / PARTITION_SAMPLE).max(16);
    let mut sample = [0.0_f64; 2 * PARTITION_SAMPLE];
    let mut s = 0usize;
    let mut i = 0usize;
    while i < n {
        sample[s] = data[i];
        s += 1;
        i += stride;
    }
    let sample = &mut sample[..s];
    sample.sort_unstable_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in data"));
    // Rank bracket: the sample rank of the target ± a Floyd–Rivest-style
    // margin (2·√s keeps the expected in-bracket mass near 4/√s of the
    // batch while making a miss vanishingly unlikely on non-adversarial
    // strides).
    let margin = 2 * (s as f64).sqrt().ceil() as usize;
    let t_idx = ((k as f64 / n as f64) * s as f64).round() as usize;
    let lo_pivot = if t_idx <= margin {
        f64::NEG_INFINITY
    } else {
        sample[t_idx - margin]
    };
    let hi_pivot = if t_idx + margin >= s {
        f64::INFINITY
    } else {
        sample[t_idx + margin]
    };

    // One fused pass: count below / compact the bracket / count above.
    // The scratch keeps its length across calls (stale tail contents are
    // never read), so a warm caller pays no clear-and-refill pass.
    if scratch.len() < n {
        scratch.resize(n, 0.0);
    }
    let (below, band_len, above) =
        crate::simd::partition_band(data, lo_pivot, hi_pivot, &mut scratch[..n]);
    assert!(below + band_len + above == n, "percentile: NaN in data");
    let need = if frac > 0.0 { k + 1 } else { k };
    if k < below || need - below >= band_len {
        // The bracket missed the target rank (stride-aliased data):
        // resolve exactly on a full scratch copy.
        return fallback(scratch);
    }
    let r = k - below;
    let band = &mut scratch[..band_len];
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("percentile: NaN in data");
    let (_, lo_v, upper) = band.select_nth_unstable_by(r, cmp);
    let lo_v = *lo_v;
    if frac == 0.0 {
        return lo_v;
    }
    let hi_v = *upper
        .iter()
        .min_by(|a, b| cmp(a, b))
        .expect("k + 1 in bracket implies a non-empty upper partition");
    lo_v + frac * (hi_v - lo_v)
}

/// Inverse percentile: the fraction of `data` strictly below `x` plus half
/// the fraction equal to `x` (mid-distribution convention), i.e. the
/// empirical probability position of `x`.
///
/// Returns a value in `[0, 1]`. Returns `0.0` for empty data.
#[must_use]
pub fn percentile_of(data: &[f64], x: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut below = 0usize;
    let mut equal = 0usize;
    for &v in data {
        if v < x {
            below += 1;
        } else if v == x {
            equal += 1;
        }
    }
    (below as f64 + equal as f64 / 2.0) / data.len() as f64
}

/// Fraction of `data` at or below `x` (the empirical CDF).
#[must_use]
pub fn ecdf(data: &[f64], x: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|&&v| v <= x).count() as f64 / data.len() as f64
}

/// Computes several percentiles in one sorting pass.
///
/// # Panics
/// Panics if `data` is empty or any probability is outside `[0, 1]`.
#[must_use]
pub fn percentiles(data: &[f64], ps: &[f64], interp: Interpolation) -> Vec<f64> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentiles: NaN in data"));
    ps.iter()
        .map(|&p| percentile_sorted(&sorted, p, interp))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 5] = [15.0, 20.0, 35.0, 40.0, 50.0];

    #[test]
    fn linear_matches_numpy() {
        // numpy.percentile([15,20,35,40,50], 40) == 29.0
        assert!((percentile(&DATA, 0.40, Interpolation::Linear) - 29.0).abs() < 1e-12);
        assert_eq!(percentile(&DATA, 0.0, Interpolation::Linear), 15.0);
        assert_eq!(percentile(&DATA, 1.0, Interpolation::Linear), 50.0);
        assert_eq!(percentile(&DATA, 0.5, Interpolation::Linear), 35.0);
    }

    #[test]
    fn matlab_matches_prctile() {
        // MATLAB: prctile([15 20 35 40 50], 40) == 27.5
        // (sample i sits at probability (i-0.5)/5; 0.4 is midway between
        // 0.3 -> 20 and 0.5 -> 35).
        assert!((percentile(&DATA, 0.40, Interpolation::Matlab) - 27.5).abs() < 1e-12);
        // prctile clamps at the extremes.
        assert_eq!(percentile(&DATA, 0.0, Interpolation::Matlab), 15.0);
        assert_eq!(percentile(&DATA, 1.0, Interpolation::Matlab), 50.0);
        // prctile(..., 50) == 35 (median).
        assert_eq!(percentile(&DATA, 0.5, Interpolation::Matlab), 35.0);
    }

    #[test]
    fn lower_takes_floor() {
        assert_eq!(percentile(&DATA, 0.40, Interpolation::Lower), 20.0);
        assert_eq!(percentile(&DATA, 0.9, Interpolation::Lower), 40.0);
    }

    #[test]
    fn nearest_rounds() {
        assert_eq!(percentile(&DATA, 0.40, Interpolation::Nearest), 35.0);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let shuffled = [40.0, 15.0, 50.0, 20.0, 35.0];
        assert_eq!(
            percentile(&shuffled, 0.40, Interpolation::Linear),
            percentile(&DATA, 0.40, Interpolation::Linear)
        );
    }

    #[test]
    fn single_element() {
        for interp in [
            Interpolation::Linear,
            Interpolation::Matlab,
            Interpolation::Lower,
            Interpolation::Nearest,
        ] {
            assert_eq!(percentile(&[7.0], 0.3, interp), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = percentile(&[], 0.5, Interpolation::Linear);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn out_of_range_probability_panics() {
        let _ = percentile(&DATA, 1.5, Interpolation::Linear);
    }

    #[test]
    fn percentile_of_midrank() {
        let data = [1.0, 2.0, 2.0, 3.0];
        // 1 below, 2 equal -> (1 + 1) / 4 = 0.5
        assert!((percentile_of(&data, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(percentile_of(&data, 0.0), 0.0);
        assert_eq!(percentile_of(&data, 10.0), 1.0);
        assert_eq!(percentile_of(&[], 1.0), 0.0);
    }

    #[test]
    fn ecdf_basics() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf(&data, 2.5), 0.5);
        assert_eq!(ecdf(&data, 4.0), 1.0);
        assert_eq!(ecdf(&data, 0.5), 0.0);
    }

    #[test]
    fn round_trip_percentile_and_inverse() {
        // For a large sample with distinct values, percentile_of(percentile(p))
        // should be close to p.
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        for &p in &[0.1, 0.25, 0.5, 0.9, 0.99] {
            let x = percentile(&data, p, Interpolation::Linear);
            assert!((percentile_of(&data, x) - p).abs() < 2e-3, "p={p}");
        }
    }

    #[test]
    fn extremes_are_exact_under_every_interpolation() {
        // p = 0 / p = 1 must hit the sample min/max exactly — no
        // interpolation arithmetic allowed — in all four modes, including
        // awkward lengths where (n-1)*p rounding could bite.
        for n in [2usize, 3, 7, 100, 1001] {
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.1 - 3.0).collect();
            for interp in [
                Interpolation::Linear,
                Interpolation::Matlab,
                Interpolation::Lower,
                Interpolation::Nearest,
            ] {
                assert_eq!(percentile(&data, 0.0, interp), data[0], "min n={n}");
                assert_eq!(percentile(&data, 1.0, interp), data[n - 1], "max n={n}");
                let mut buf = data.clone();
                assert_eq!(percentile_select(&mut buf, 0.0, interp), data[0]);
                let mut buf = data.clone();
                assert_eq!(percentile_select(&mut buf, 1.0, interp), data[n - 1]);
            }
        }
    }

    #[test]
    fn select_matches_sorted_everywhere() {
        let data: Vec<f64> = (0..257)
            .map(|i| ((i * 97) % 131) as f64 * 0.7 - 5.0)
            .collect();
        for interp in [
            Interpolation::Linear,
            Interpolation::Matlab,
            Interpolation::Lower,
            Interpolation::Nearest,
        ] {
            for i in 0..=50 {
                let p = i as f64 / 50.0;
                let mut buf = data.clone();
                let via_select = percentile_select(&mut buf, p, interp);
                let via_sort = percentile(&data, p, interp);
                assert_eq!(via_select, via_sort, "p={p} interp={interp:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN in data")]
    fn select_rejects_nan_input() {
        let mut buf = vec![1.0, f64::NAN, 3.0, 4.0];
        let _ = percentile_select(&mut buf, 0.5, Interpolation::Linear);
    }

    #[test]
    fn partition_matches_sorted_on_large_batches() {
        // Past the fallback cutoff, so the sampled bracket path runs:
        // uniform, periodic (stride-aliased), constant-heavy and
        // two-point distributions, across every interpolation mode.
        let shapes: Vec<Vec<f64>> = vec![
            (0..10_000)
                .map(|i| ((i * 2_654_435_761_u64 % 10_007) as f64) * 0.1)
                .collect(),
            (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect(),
            vec![7.25; 10_000],
            (0..10_000)
                .map(|i| if i % 3 == 0 { 1.0 } else { 2.0 })
                .collect(),
        ];
        let mut scratch = Vec::new();
        for data in &shapes {
            for interp in [
                Interpolation::Linear,
                Interpolation::Matlab,
                Interpolation::Lower,
                Interpolation::Nearest,
            ] {
                for i in 0..=40 {
                    let p = f64::from(i) / 40.0;
                    let expect = percentile(data, p, interp);
                    let got = percentile_partition(data, p, interp, &mut scratch);
                    assert_eq!(got.to_bits(), expect.to_bits(), "p={p} interp={interp:?}");
                }
            }
        }
    }

    #[test]
    fn partition_small_batches_use_exact_fallback() {
        let data: Vec<f64> = (0..257)
            .map(|i| ((i * 97) % 131) as f64 * 0.7 - 5.0)
            .collect();
        let mut scratch = Vec::new();
        for i in 0..=20 {
            let p = f64::from(i) / 20.0;
            assert_eq!(
                percentile_partition(&data, p, Interpolation::Linear, &mut scratch),
                percentile(&data, p, Interpolation::Linear),
            );
        }
    }

    #[test]
    fn partition_scratch_is_reused_without_growth() {
        let data: Vec<f64> = (0..50_000).map(|i| (i % 997) as f64).collect();
        let mut scratch = Vec::new();
        let _ = percentile_partition(&data, 0.9, Interpolation::Linear, &mut scratch);
        let cap = scratch.capacity();
        for i in 0..16 {
            let p = 0.5 + f64::from(i) * 0.03;
            let _ = percentile_partition(&data, p, Interpolation::Linear, &mut scratch);
        }
        assert_eq!(scratch.capacity(), cap, "warm scratch must not regrow");
    }

    #[test]
    #[should_panic(expected = "NaN in data")]
    fn partition_rejects_nan_input() {
        let mut data: Vec<f64> = (0..8_192).map(f64::from).collect();
        data[5_000] = f64::NAN;
        let _ = percentile_partition(&data, 0.5, Interpolation::Linear, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "NaN in data")]
    fn select_rejects_single_nan() {
        let mut buf = vec![f64::NAN];
        let _ = percentile_select(&mut buf, 0.5, Interpolation::Linear);
    }

    #[test]
    #[should_panic(expected = "NaN in data")]
    fn sort_path_rejects_nan_input() {
        let _ = percentile(&[1.0, f64::NAN, 3.0], 0.5, Interpolation::Linear);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn select_rejects_nan_probability() {
        let mut buf = vec![1.0, 2.0];
        let _ = percentile_select(&mut buf, f64::NAN, Interpolation::Linear);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn select_rejects_empty() {
        let _ = percentile_select(&mut [], 0.5, Interpolation::Linear);
    }

    #[test]
    fn percentiles_batch_matches_individual() {
        let ps = [0.1, 0.5, 0.9];
        let batch = percentiles(&DATA, &ps, Interpolation::Linear);
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(batch[i], percentile(&DATA, p, Interpolation::Linear));
        }
    }
}
