//! P² (piecewise-parabolic) streaming quantile estimation.
//!
//! The infinite collection game of Fig. 3 is a streaming process: the
//! collector must know "the `T_th` percentile of the data seen so far"
//! without buffering every round. The P² algorithm (Jain & Chlamtac, 1985)
//! maintains a single quantile with five markers in O(1) memory and O(1)
//! time per observation, which is the classic database-systems answer to
//! this problem. The [`crate::quantile`] module provides the exact
//! (buffered) alternative; the `ablate-sketch` experiment quantifies the
//! threshold error the sketch introduces.

/// Streaming estimator of a single quantile via the P² algorithm.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated values).
    q: [f64; 5],
    /// Marker positions (1-based ranks), kept as f64 per the original paper.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    /// Number of observations seen.
    count: usize,
    /// Initial buffer until five observations have been seen.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P2Quantile requires 0 < p < 1, got {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The target quantile probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Number of observations consumed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn insert(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.init.push(x);
            if self.count == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("P2Quantile: NaN observation"));
                for i in 0..5 {
                    self.q[i] = self.init[i];
                }
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers if they drifted off their
        // desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right_gap = self.n[i + 1] - self.n[i];
            let left_gap = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the quantile. Returns `None` before any
    /// observation; with fewer than five observations, falls back to the
    /// exact small-sample quantile.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut buf = self.init.clone();
            buf.sort_by(|a, b| a.partial_cmp(b).expect("P2Quantile: NaN observation"));
            return Some(crate::quantile::percentile_sorted(
                &buf,
                self.p,
                crate::quantile::Interpolation::Linear,
            ));
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{percentile, Interpolation};
    use crate::rand_ext::seeded_rng;
    use rand::Rng;

    #[test]
    fn empty_has_no_estimate() {
        let sketch = P2Quantile::new(0.5);
        assert_eq!(sketch.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn rejects_degenerate_probability() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut sketch = P2Quantile::new(0.5);
        sketch.insert(3.0);
        sketch.insert(1.0);
        sketch.insert(2.0);
        assert!((sketch.estimate().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = seeded_rng(42);
        let mut sketch = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let x: f64 = rng.gen();
            sketch.insert(x);
            all.push(x);
        }
        let exact = percentile(&all, 0.5, Interpolation::Linear);
        let est = sketch.estimate().unwrap();
        assert!(
            (est - exact).abs() < 0.01,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn tail_quantile_of_gaussian_stream() {
        let mut rng = seeded_rng(7);
        let mut sketch = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = crate::rand_ext::standard_normal(&mut rng);
            sketch.insert(x);
            all.push(x);
        }
        let exact = percentile(&all, 0.99, Interpolation::Linear);
        let est = sketch.estimate().unwrap();
        // The 99th percentile of N(0,1) is ~2.326; allow a generous
        // absolute error for the five-marker sketch.
        assert!(
            (est - exact).abs() < 0.12,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn markers_stay_ordered() {
        let mut rng = seeded_rng(123);
        let mut sketch = P2Quantile::new(0.9);
        for _ in 0..5_000 {
            sketch.insert(rng.gen::<f64>() * 100.0);
            if sketch.count() >= 5 {
                for i in 0..4 {
                    assert!(
                        sketch.q[i] <= sketch.q[i + 1] + 1e-9,
                        "markers out of order at n={}",
                        sketch.count()
                    );
                }
            }
        }
    }

    #[test]
    fn estimate_within_observed_range() {
        let mut rng = seeded_rng(5);
        let mut sketch = P2Quantile::new(0.25);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..1_000 {
            let x = rng.gen::<f64>() * 10.0 - 5.0;
            lo = lo.min(x);
            hi = hi.max(x);
            sketch.insert(x);
        }
        let est = sketch.estimate().unwrap();
        assert!(est >= lo && est <= hi);
    }
}
