//! Fixed-step RK4 integration of second-order systems.
//!
//! The Euler–Lagrange equation (Lemma 2) is a set of second-order ODEs in
//! the round index `r`. This integrator evolves `(q, q̇)` given the
//! accelerations, producing the trajectories against which we verify the
//! analytical results (constant velocity at equilibrium, Theorem 1;
//! periodic oscillation off equilibrium, Theorem 4).

use crate::lagrangian::{CoupledOscillatorLagrangian, FreeLagrangian};

/// A second-order system `q̈ = f(r, q, q̇)`.
pub trait SecondOrderSystem {
    /// Number of coordinates.
    fn dof(&self) -> usize;

    /// Writes the accelerations at `(r, q, q̇)` into `out`.
    fn accel(&self, r: f64, q: &[f64], qdot: &[f64], out: &mut [f64]);
}

impl SecondOrderSystem for CoupledOscillatorLagrangian {
    fn dof(&self) -> usize {
        2
    }

    fn accel(&self, _r: f64, q: &[f64], _qdot: &[f64], out: &mut [f64]) {
        let (aa, ac) = self.accelerations(q);
        out[0] = aa;
        out[1] = ac;
    }
}

impl SecondOrderSystem for FreeLagrangian {
    fn dof(&self) -> usize {
        self.masses().len()
    }

    fn accel(&self, _r: f64, _q: &[f64], _qdot: &[f64], out: &mut [f64]) {
        out.fill(0.0);
    }
}

/// A sampled trajectory of a second-order system.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Sample times (round indices).
    pub r: Vec<f64>,
    /// Positions at each sample, one `Vec` per sample.
    pub q: Vec<Vec<f64>>,
    /// Velocities at each sample.
    pub qdot: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True if the trajectory has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Step size between consecutive samples (assumes uniform sampling).
    ///
    /// # Panics
    /// Panics on trajectories with fewer than two samples.
    #[must_use]
    pub fn step(&self) -> f64 {
        assert!(self.r.len() >= 2, "step() needs at least two samples");
        self.r[1] - self.r[0]
    }

    /// Extracts the time series of coordinate `i`.
    #[must_use]
    pub fn coordinate(&self, i: usize) -> Vec<f64> {
        self.q.iter().map(|q| q[i]).collect()
    }
}

/// One RK4 step of size `h` for a second-order system, updating `(q, q̇)`
/// in place.
pub fn rk4_step<S: SecondOrderSystem>(sys: &S, r: f64, q: &mut [f64], qdot: &mut [f64], h: f64) {
    let n = sys.dof();
    debug_assert_eq!(q.len(), n);
    debug_assert_eq!(qdot.len(), n);

    let mut a1 = vec![0.0; n];
    let mut a2 = vec![0.0; n];
    let mut a3 = vec![0.0; n];
    let mut a4 = vec![0.0; n];
    let mut qt = vec![0.0; n];
    let mut vt = vec![0.0; n];

    // k1
    sys.accel(r, q, qdot, &mut a1);
    // k2 at r + h/2
    for i in 0..n {
        qt[i] = q[i] + 0.5 * h * qdot[i];
        vt[i] = qdot[i] + 0.5 * h * a1[i];
    }
    sys.accel(r + 0.5 * h, &qt, &vt, &mut a2);
    // k3 at r + h/2: position argument advances along the k2 velocity stage.
    for i in 0..n {
        qt[i] = q[i] + 0.5 * h * (qdot[i] + 0.5 * h * a1[i]);
        vt[i] = qdot[i] + 0.5 * h * a2[i];
    }
    sys.accel(r + 0.5 * h, &qt, &vt, &mut a3);
    // k4 at r + h: position argument advances along the k3 velocity stage.
    for i in 0..n {
        qt[i] = q[i] + h * (qdot[i] + 0.5 * h * a2[i]);
        vt[i] = qdot[i] + h * a3[i];
    }
    sys.accel(r + h, &qt, &vt, &mut a4);

    // Combine. Position uses velocity stages; velocity uses acceleration
    // stages (standard RK4 on the first-order system y = (q, qdot)).
    for i in 0..n {
        let k1q = qdot[i];
        let k2q = qdot[i] + 0.5 * h * a1[i];
        let k3q = qdot[i] + 0.5 * h * a2[i];
        let k4q = qdot[i] + h * a3[i];
        q[i] += h / 6.0 * (k1q + 2.0 * k2q + 2.0 * k3q + k4q);
        qdot[i] += h / 6.0 * (a1[i] + 2.0 * a2[i] + 2.0 * a3[i] + a4[i]);
    }
}

/// Integrates from `r0` with initial state `(q0, v0)` for `steps` steps of
/// size `h`, recording every sample (including the initial one).
///
/// # Panics
/// Panics if the state dimensions do not match `sys.dof()` or `h <= 0`.
#[must_use]
pub fn rk4_integrate<S: SecondOrderSystem>(
    sys: &S,
    r0: f64,
    q0: &[f64],
    v0: &[f64],
    h: f64,
    steps: usize,
) -> Trajectory {
    assert_eq!(q0.len(), sys.dof(), "q0 dimension mismatch");
    assert_eq!(v0.len(), sys.dof(), "v0 dimension mismatch");
    assert!(h > 0.0, "step size must be positive");

    let mut q = q0.to_vec();
    let mut v = v0.to_vec();
    let mut traj = Trajectory {
        r: Vec::with_capacity(steps + 1),
        q: Vec::with_capacity(steps + 1),
        qdot: Vec::with_capacity(steps + 1),
    };
    traj.r.push(r0);
    traj.q.push(q.clone());
    traj.qdot.push(v.clone());
    let mut r = r0;
    for _ in 0..steps {
        rk4_step(sys, r, &mut q, &mut v, h);
        r += h;
        traj.r.push(r);
        traj.q.push(q.clone());
        traj.qdot.push(v.clone());
    }
    traj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrangian::{CoupledOscillatorLagrangian, FreeLagrangian};

    #[test]
    fn free_system_has_constant_velocity() {
        let sys = FreeLagrangian::new(vec![1.0, 2.0]);
        let traj = rk4_integrate(&sys, 0.0, &[0.0, 1.0], &[0.5, -0.25], 0.1, 100);
        for sample in &traj.qdot {
            assert!((sample[0] - 0.5).abs() < 1e-12);
            assert!((sample[1] + 0.25).abs() < 1e-12);
        }
        // Positions grow linearly: q(10) = q0 + v * 10.
        let last = traj.q.last().unwrap();
        assert!((last[0] - 5.0).abs() < 1e-9);
        assert!((last[1] - (1.0 - 2.5)).abs() < 1e-9);
    }

    #[test]
    fn oscillator_energy_is_conserved() {
        let sys = CoupledOscillatorLagrangian::new(1.0, 2.0, 3.0);
        let traj = rk4_integrate(&sys, 0.0, &[1.0, 0.0], &[0.0, 0.0], 0.01, 5_000);
        let e0 = sys.energy(&traj.q[0], &traj.qdot[0]);
        for (q, v) in traj.q.iter().zip(&traj.qdot) {
            let e = sys.energy(q, v);
            assert!(
                (e - e0).abs() < 1e-6 * e0.max(1.0),
                "energy drift: {e} vs {e0}"
            );
        }
    }

    #[test]
    fn oscillator_matches_single_dof_closed_form() {
        // Equal masses, symmetric start: w = ua - uc obeys w'' = -(2k/m) w.
        let (m, k) = (1.0, 4.0);
        let sys = CoupledOscillatorLagrangian::new(m, m, k);
        let w0 = 2.0;
        let traj = rk4_integrate(
            &sys,
            0.0,
            &[w0 / 2.0, -w0 / 2.0],
            &[0.0, 0.0],
            0.001,
            10_000,
        );
        let omega = (2.0 * k / m).sqrt();
        for (idx, q) in traj.q.iter().enumerate() {
            let r = traj.r[idx];
            let w = q[0] - q[1];
            let expected = w0 * (omega * r).cos();
            assert!(
                (w - expected).abs() < 1e-5,
                "at r={r}: w={w}, expected {expected}"
            );
        }
    }

    #[test]
    fn trajectory_helpers() {
        let sys = FreeLagrangian::new(vec![1.0]);
        let traj = rk4_integrate(&sys, 0.0, &[0.0], &[1.0], 0.5, 4);
        assert_eq!(traj.len(), 5);
        assert!(!traj.is_empty());
        assert!((traj.step() - 0.5).abs() < 1e-12);
        let c = traj.coordinate(0);
        assert!((c[4] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let sys = FreeLagrangian::new(vec![1.0, 1.0]);
        let _ = rk4_integrate(&sys, 0.0, &[0.0], &[0.0], 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_step_panics() {
        let sys = FreeLagrangian::new(vec![1.0]);
        let _ = rk4_integrate(&sys, 0.0, &[0.0], &[0.0], 0.0, 1);
    }
}
