//! Explicit-SIMD mask-compact filter kernels for the trim hot path.
//!
//! One round of trimming is a *filter*: materialize the keep-mask of a
//! batch against a threshold band, then compact the kept values in input
//! order. `trimgame-stream`'s `TrimOp::apply_in_place` runs it every
//! round on every engine, so it is the innermost loop of every sweep and
//! every equilibrium estimate; [`crate::quantile::percentile_partition`]
//! drives its pivot pass through the same machinery.
//!
//! This module provides three implementations behind one contract and
//! picks the widest one the CPU supports at runtime:
//!
//! * **AVX-512** (`x86_64`, runtime-detected `avx512f`): 8 `f64` / 16
//!   `f32` lanes per iteration — one vector compare producing a bitmask,
//!   one table-driven 8-byte mask write, and one `compress` that
//!   left-packs the kept lanes in a single instruction.
//! * **AVX2** (`x86_64`, runtime-detected `avx2`): 4 `f64` / 8 `f32`
//!   lanes — vector compare + `movemask`, the same table-driven mask
//!   write, and a `permutevar8x32` left-pack driven by a per-mask shuffle
//!   table.
//! * **NEON** (`aarch64`, baseline feature): 2 `f64` / 4 `f32` lanes —
//!   vector compare with per-lane mask extraction and a branch-free
//!   cursor-bump compaction.
//!
//! Everything else falls back to the portable chunked mask-then-compact
//! kernel introduced in an earlier revision (a pure comparison loop the
//! autovectorizer handles, then an unconditional-write compaction).
//!
//! **Contract** (property-tested in `tests/proptests.rs`): for NaN-free
//! input, every implementation produces bit-identical masks, bit-identical
//! kept values in input order, and identical counts — including ties
//! exactly at the threshold, all-kept and all-trimmed batches. The
//! comparisons are IEEE ordered (`_CMP_LE_OQ` / `vcle`), which agree with
//! Rust's scalar `<=` on every non-NaN input.

// The workspace denies `unsafe_code`; vendor-intrinsic kernels are the
// one sanctioned exception. Every unsafe block is confined to this module
// behind safe, length-checked wrappers, and each kernel carries its
// bounds argument next to the code.
#![allow(unsafe_code)]

/// Chunk width of the portable branch-light filter pass: small enough
/// that a chunk's values and mask bytes stay in L1 between the two
/// sub-passes, large enough to amortize the loop bookkeeping.
const FILTER_CHUNK: usize = 1024;

/// The `u64` whose little-endian bytes are the eight `bool` mask bytes of
/// bitmask `m` (bit `j` → byte `j`). Lets a vector compare result become
/// one unaligned 8-byte store instead of eight byte stores.
static MASK_BYTES: [u64; 256] = mask_bytes();

const fn mask_bytes() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut m = 0;
    while m < 256 {
        let mut v = 0u64;
        let mut j = 0;
        while j < 8 {
            if (m >> j) & 1 == 1 {
                v |= 1 << (8 * j);
            }
            j += 1;
        }
        table[m] = v;
        m += 1;
    }
    table
}

/// The portable fallback: per fixed-size chunk, first materialize the
/// keep-mask (a pure comparison loop the compiler can vectorize — no
/// data-dependent branches), then compact the kept values with an
/// unconditional write and a mask-driven cursor bump
/// (`k += mask as usize`), so a mispredicted tail value never stalls the
/// pipeline.
fn filter_portable<T: Copy>(
    values: &[T],
    mask: &mut [bool],
    kept: &mut [T],
    keep: impl Fn(T) -> bool,
) -> usize {
    let mut k = 0usize;
    for (chunk, mask_chunk) in values
        .chunks(FILTER_CHUNK)
        .zip(mask.chunks_mut(FILTER_CHUNK))
    {
        for (m, &v) in mask_chunk.iter_mut().zip(chunk) {
            *m = keep(v);
        }
        for (&v, &m) in chunk.iter().zip(mask_chunk.iter()) {
            kept[k] = v;
            k += usize::from(m);
        }
    }
    k
}

/// Filters `values` into `kept` (input order) against the keep-band
/// `[lo, hi]` (`lo = None` means upper cut only), writing the keep-mask
/// alongside. Returns the kept count.
///
/// # Panics
/// Panics unless `mask` and `kept` are exactly `values.len()` long (the
/// caller sizes them; the kernels rely on it for their block stores).
pub fn filter_f64(
    values: &[f64],
    mask: &mut [bool],
    kept: &mut [f64],
    lo: Option<f64>,
    hi: f64,
) -> usize {
    assert_eq!(mask.len(), values.len(), "mask must match the batch");
    assert_eq!(kept.len(), values.len(), "kept must match the batch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f verified at runtime; buffer lengths checked.
            return unsafe { avx512::filter_f64(values, mask, kept, lo, hi) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 verified at runtime; buffer lengths checked.
            return unsafe { avx2::filter_f64(values, mask, kept, lo, hi) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline feature of AArch64.
        return neon::filter_f64(values, mask, kept, lo, hi);
    }
    #[allow(unreachable_code)]
    match lo {
        None => filter_portable(values, mask, kept, |v| v <= hi),
        Some(lo) => filter_portable(values, mask, kept, |v| (v >= lo) & (v <= hi)),
    }
}

/// The `f32` twin of [`filter_f64`]: same contract, single-precision
/// lanes (twice the SIMD width per iteration).
///
/// # Panics
/// Panics unless `mask` and `kept` are exactly `values.len()` long.
pub fn filter_f32(
    values: &[f32],
    mask: &mut [bool],
    kept: &mut [f32],
    lo: Option<f32>,
    hi: f32,
) -> usize {
    assert_eq!(mask.len(), values.len(), "mask must match the batch");
    assert_eq!(kept.len(), values.len(), "kept must match the batch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f verified at runtime; buffer lengths checked.
            return unsafe { avx512::filter_f32(values, mask, kept, lo, hi) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 verified at runtime; buffer lengths checked.
            return unsafe { avx2::filter_f32(values, mask, kept, lo, hi) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::filter_f32(values, mask, kept, lo, hi);
    }
    #[allow(unreachable_code)]
    match lo {
        None => filter_portable(values, mask, kept, |v| v <= hi),
        Some(lo) => filter_portable(values, mask, kept, |v| (v >= lo) & (v <= hi)),
    }
}

/// Fused three-way partition pass for the sampled percentile select:
/// counts the values strictly below `lo` and strictly above `hi`, and
/// compacts the in-band values (`lo <= v <= hi`) into `band` in input
/// order. Returns `(below, band_len, above)`.
///
/// A NaN falls in none of the three classes, so
/// `below + band_len + above < n` detects it — the caller asserts the
/// sum (this keeps the pass itself branchless).
///
/// # Panics
/// Panics unless `band` is exactly `values.len()` long.
pub fn partition_band(values: &[f64], lo: f64, hi: f64, band: &mut [f64]) -> (usize, usize, usize) {
    assert_eq!(band.len(), values.len(), "band must match the batch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f verified at runtime; buffer length checked.
            return unsafe { avx512::partition_band(values, lo, hi, band) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 verified at runtime; buffer length checked.
            return unsafe { avx2::partition_band(values, lo, hi, band) };
        }
    }
    partition_band_portable(values, lo, hi, band)
}

/// Portable fallback of [`partition_band`]: branch-light three-way
/// classification with an unconditional band write and counter bumps.
fn partition_band_portable(
    values: &[f64],
    lo: f64,
    hi: f64,
    band: &mut [f64],
) -> (usize, usize, usize) {
    let mut below = 0usize;
    let mut above = 0usize;
    let mut k = 0usize;
    for &v in values {
        let in_band = (v >= lo) & (v <= hi);
        below += usize::from(v < lo);
        above += usize::from(v > hi);
        band[k] = v;
        k += usize::from(in_band);
    }
    (below, k, above)
}

/// Builds all eight per-digit byte histograms of an LSD radix sort in one
/// read pass: `hist[d][b]` counts the keys whose `d`-th little-endian byte
/// is `b`. This is the counting pass of `trimgame_numerics::gk`'s staged
/// radix sort, dispatched like the filter kernels: an AVX2 variant on
/// `x86_64` when the CPU has it, the portable loop everywhere else. Every
/// variant produces identical counts (histogramming is order-free integer
/// arithmetic), property-tested against the scalar loop.
///
/// Counts are **added** into `hist`; zero it first for absolute counts.
pub fn radix_digit_histograms(keys: &[u64], hist: &mut [[u32; 256]; 8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: avx2 verified at runtime; the kernel only indexes
            // `keys` through its iterator and `hist` with u8-derived
            // indices.
            unsafe { avx2::radix_digit_histograms(keys, hist) };
            return;
        }
    }
    radix_digit_histograms_portable(keys, hist);
}

/// Portable counting pass: one scalar shift/mask/increment per digit per
/// key (the autovectorizer cannot scatter, so this is the baseline shape).
fn radix_digit_histograms_portable(keys: &[u64], hist: &mut [[u32; 256]; 8]) {
    for &k in keys {
        for (d, h) in hist.iter_mut().enumerate() {
            h[((k >> (8 * d)) & 0xFF) as usize] += 1;
        }
    }
}

/// Which kernel [`filter_f64`]/[`filter_f32`] resolve to on this machine —
/// surfaced so benches and reports can label their numbers.
#[must_use]
pub fn active_kernel() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return "neon";
    }
    #[allow(unreachable_code)]
    "portable"
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::MASK_BYTES;
    use std::arch::x86_64::{
        __m512, __m512d, _mm512_cmp_pd_mask, _mm512_cmp_ps_mask, _mm512_loadu_pd, _mm512_loadu_ps,
        _mm512_maskz_compress_pd, _mm512_maskz_compress_ps, _mm512_set1_pd, _mm512_set1_ps,
        _mm512_storeu_pd, _mm512_storeu_ps, _CMP_GE_OQ, _CMP_LE_OQ,
    };

    /// 8-lane `f64` filter. Each full block: one (or two, for a band)
    /// vector compare into an 8-bit mask, one table-driven 8-byte mask
    /// store, one `compress` left-pack stored at the kept cursor. The
    /// full-width store at `kept[k..k + 8]` is in bounds because
    /// `k <= i <= n − 8` at every block head; lanes beyond the kept count
    /// are overwritten by later blocks or discarded by the caller's
    /// truncate.
    ///
    /// # Safety
    /// `avx512f` must be available; `mask` and `kept` must be exactly
    /// `values.len()` long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn filter_f64(
        values: &[f64],
        mask: &mut [bool],
        kept: &mut [f64],
        lo: Option<f64>,
        hi: f64,
    ) -> usize {
        let n = values.len();
        let vp = values.as_ptr();
        let mp = mask.as_mut_ptr();
        let kp = kept.as_mut_ptr();
        let hi_v = _mm512_set1_pd(hi);
        let lo_v = _mm512_set1_pd(lo.unwrap_or(f64::NEG_INFINITY));
        let band = lo.is_some();
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v: __m512d = _mm512_loadu_pd(vp.add(i));
            let mut m = _mm512_cmp_pd_mask::<_CMP_LE_OQ>(v, hi_v);
            if band {
                m &= _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, lo_v);
            }
            (mp.add(i).cast::<u64>()).write_unaligned(MASK_BYTES[m as usize]);
            _mm512_storeu_pd(kp.add(k), _mm512_maskz_compress_pd(m, v));
            k += usize::from(m.count_ones() as u8);
            i += 8;
        }
        while i < n {
            let v = *vp.add(i);
            let keep = (v <= hi) & (!band || v >= lo.unwrap_or(f64::NEG_INFINITY));
            *mp.add(i) = keep;
            *kp.add(k) = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }

    /// 8-lane fused three-way partition: two compare masks classify each
    /// block, `compress` compacts the band at its cursor, popcounts
    /// accumulate the outside classes. NaN matches no class, so the
    /// caller's count-sum check catches it.
    ///
    /// # Safety
    /// `avx512f` must be available; `band` must be exactly
    /// `values.len()` long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn partition_band(
        values: &[f64],
        lo: f64,
        hi: f64,
        band: &mut [f64],
    ) -> (usize, usize, usize) {
        use std::arch::x86_64::{_CMP_GT_OQ, _CMP_LT_OQ};
        let n = values.len();
        let vp = values.as_ptr();
        let bp = band.as_mut_ptr();
        let lo_v = _mm512_set1_pd(lo);
        let hi_v = _mm512_set1_pd(hi);
        let mut below = 0usize;
        let mut above = 0usize;
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm512_loadu_pd(vp.add(i));
            let m_lt = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, lo_v);
            let m_gt = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(v, hi_v);
            let m_band = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, lo_v)
                & _mm512_cmp_pd_mask::<_CMP_LE_OQ>(v, hi_v);
            _mm512_storeu_pd(bp.add(k), _mm512_maskz_compress_pd(m_band, v));
            below += usize::from(m_lt.count_ones() as u8);
            above += usize::from(m_gt.count_ones() as u8);
            k += usize::from(m_band.count_ones() as u8);
            i += 8;
        }
        while i < n {
            let v = *vp.add(i);
            below += usize::from(v < lo);
            above += usize::from(v > hi);
            *bp.add(k) = v;
            k += usize::from((v >= lo) & (v <= hi));
            i += 1;
        }
        (below, k, above)
    }

    /// 16-lane `f32` filter; same structure as the `f64` kernel with a
    /// 16-bit compare mask split into two table-driven 8-byte mask
    /// stores.
    ///
    /// # Safety
    /// `avx512f` must be available; `mask` and `kept` must be exactly
    /// `values.len()` long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn filter_f32(
        values: &[f32],
        mask: &mut [bool],
        kept: &mut [f32],
        lo: Option<f32>,
        hi: f32,
    ) -> usize {
        let n = values.len();
        let vp = values.as_ptr();
        let mp = mask.as_mut_ptr();
        let kp = kept.as_mut_ptr();
        let hi_v = _mm512_set1_ps(hi);
        let lo_v = _mm512_set1_ps(lo.unwrap_or(f32::NEG_INFINITY));
        let band = lo.is_some();
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 16 <= n {
            let v: __m512 = _mm512_loadu_ps(vp.add(i));
            let mut m = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(v, hi_v);
            if band {
                m &= _mm512_cmp_ps_mask::<_CMP_GE_OQ>(v, lo_v);
            }
            (mp.add(i).cast::<u64>()).write_unaligned(MASK_BYTES[(m & 0xff) as usize]);
            (mp.add(i + 8).cast::<u64>()).write_unaligned(MASK_BYTES[(m >> 8) as usize]);
            _mm512_storeu_ps(kp.add(k), _mm512_maskz_compress_ps(m, v));
            k += m.count_ones() as usize;
            i += 16;
        }
        while i < n {
            let v = *vp.add(i);
            let keep = (v <= hi) & (!band || v >= lo.unwrap_or(f32::NEG_INFINITY));
            *mp.add(i) = keep;
            *kp.add(k) = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::MASK_BYTES;
    use std::arch::x86_64::{
        __m256i, _mm256_castpd_ps, _mm256_castps_pd, _mm256_cmp_pd, _mm256_cmp_ps, _mm256_loadu_pd,
        _mm256_loadu_ps, _mm256_loadu_si256, _mm256_movemask_pd, _mm256_movemask_ps,
        _mm256_permutevar8x32_ps, _mm256_set1_pd, _mm256_set1_ps, _mm256_storeu_pd,
        _mm256_storeu_ps, _CMP_GE_OQ, _CMP_LE_OQ,
    };

    /// Left-pack shuffle table for the 4-lane `f64` kernel: for each
    /// 4-bit keep-mask, the 8 `i32` lane indices that move the kept
    /// `f64` lanes (as `f32` pairs) to the front, in input order.
    static PACK_PD: [[i32; 8]; 16] = pack_pd();

    const fn pack_pd() -> [[i32; 8]; 16] {
        let mut table = [[0i32; 8]; 16];
        let mut m = 0;
        while m < 16 {
            let mut out = 0;
            let mut j = 0;
            while j < 4 {
                if (m >> j) & 1 == 1 {
                    table[m][2 * out] = 2 * j;
                    table[m][2 * out + 1] = 2 * j + 1;
                    out += 1;
                }
                j += 1;
            }
            m += 1;
        }
        table
    }

    /// Left-pack shuffle table for the 8-lane `f32` kernel: for each
    /// 8-bit keep-mask, the lane order that compacts kept lanes to the
    /// front.
    static PACK_PS: [[i32; 8]; 256] = pack_ps();

    const fn pack_ps() -> [[i32; 8]; 256] {
        let mut table = [[0i32; 8]; 256];
        let mut m = 0;
        while m < 256 {
            let mut out = 0;
            let mut j = 0;
            while j < 8 {
                if (m >> j) & 1 == 1 {
                    table[m][out] = j;
                    out += 1;
                }
                j += 1;
            }
            m += 1;
        }
        table
    }

    /// The AVX2 radix-histogram counting pass. Histogram increments are
    /// scatters, which no SIMD ISA below AVX-512 CD can vectorize
    /// directly; what *does* stall the scalar loop is the
    /// store-to-load-forwarding chain on skewed keys — a staged GK bucket
    /// shares its high bytes, so digits 4..7 hammer one counter every
    /// iteration. Two private count tables fed by alternating keys cut
    /// every such chain in half, and the fold back into `hist` at the end
    /// is pure vertical `u32` adds — eight lanes per `_mm256_add_epi32`,
    /// 2 KiB of counts folded in 256 vector ops.
    ///
    /// # Safety
    /// `avx2` must be available. All table indexing is through u8-derived
    /// indices; no pointer arithmetic leaves the given slices.
    #[inline(never)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix_digit_histograms(keys: &[u64], hist: &mut [[u32; 256]; 8]) {
        use std::arch::x86_64::{_mm256_add_epi32, _mm256_loadu_si256, _mm256_storeu_si256};
        let mut alt = [[0u32; 256]; 8];
        let mut pairs = keys.chunks_exact(2);
        for pair in &mut pairs {
            let (a, b) = (pair[0], pair[1]);
            for d in 0..8 {
                hist[d][((a >> (8 * d)) & 0xFF) as usize] += 1;
                alt[d][((b >> (8 * d)) & 0xFF) as usize] += 1;
            }
        }
        for &k in pairs.remainder() {
            for (d, h) in hist.iter_mut().enumerate() {
                h[((k >> (8 * d)) & 0xFF) as usize] += 1;
            }
        }
        for (h, a) in hist.iter_mut().zip(alt.iter()) {
            let hp = h.as_mut_ptr();
            let ap = a.as_ptr();
            let mut i = 0usize;
            while i < 256 {
                let sum = _mm256_add_epi32(
                    _mm256_loadu_si256(hp.add(i).cast()),
                    _mm256_loadu_si256(ap.add(i).cast()),
                );
                _mm256_storeu_si256(hp.add(i).cast(), sum);
                i += 8;
            }
        }
    }

    /// 4-lane `f64` filter: compare + `movemask`, table-driven 4-byte
    /// mask store, and a `permutevar8x32` left-pack (the `f64` lanes
    /// shuffled as `f32` pairs). Full-width stores at the kept cursor are
    /// in bounds for the same `k <= i` reason as the AVX-512 kernel.
    ///
    /// # Safety
    /// `avx2` must be available; `mask` and `kept` must be exactly
    /// `values.len()` long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn filter_f64(
        values: &[f64],
        mask: &mut [bool],
        kept: &mut [f64],
        lo: Option<f64>,
        hi: f64,
    ) -> usize {
        let n = values.len();
        let vp = values.as_ptr();
        let mp = mask.as_mut_ptr();
        let kp = kept.as_mut_ptr();
        let hi_v = _mm256_set1_pd(hi);
        let lo_v = _mm256_set1_pd(lo.unwrap_or(f64::NEG_INFINITY));
        let band = lo.is_some();
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(vp.add(i));
            let le = _mm256_cmp_pd::<_CMP_LE_OQ>(v, hi_v);
            let keep = if band {
                let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(v, lo_v);
                std::arch::x86_64::_mm256_and_pd(le, ge)
            } else {
                le
            };
            let m = _mm256_movemask_pd(keep) as usize;
            (mp.add(i).cast::<u32>()).write_unaligned(MASK_BYTES[m] as u32);
            let idx = _mm256_loadu_si256(PACK_PD[m].as_ptr().cast::<__m256i>());
            let packed = _mm256_permutevar8x32_ps(_mm256_castpd_ps(v), idx);
            _mm256_storeu_pd(kp.add(k), _mm256_castps_pd(packed));
            k += m.count_ones() as usize;
            i += 4;
        }
        while i < n {
            let v = *vp.add(i);
            let keep = (v <= hi) & (!band || v >= lo.unwrap_or(f64::NEG_INFINITY));
            *mp.add(i) = keep;
            *kp.add(k) = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }

    /// 4-lane fused three-way partition: compares + `movemask` classify
    /// each block, the `permutevar8x32` left-pack compacts the band at
    /// its cursor, popcounts accumulate the outside classes.
    ///
    /// # Safety
    /// `avx2` must be available; `band` must be exactly `values.len()`
    /// long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn partition_band(
        values: &[f64],
        lo: f64,
        hi: f64,
        band: &mut [f64],
    ) -> (usize, usize, usize) {
        use std::arch::x86_64::{_mm256_and_pd, _CMP_GT_OQ, _CMP_LT_OQ};
        let n = values.len();
        let vp = values.as_ptr();
        let bp = band.as_mut_ptr();
        let lo_v = _mm256_set1_pd(lo);
        let hi_v = _mm256_set1_pd(hi);
        let mut below = 0usize;
        let mut above = 0usize;
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(vp.add(i));
            let m_lt = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(v, lo_v)) as u32;
            let m_gt = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(v, hi_v)) as u32;
            let in_band = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(v, lo_v),
                _mm256_cmp_pd::<_CMP_LE_OQ>(v, hi_v),
            );
            let m = _mm256_movemask_pd(in_band) as usize;
            let idx = _mm256_loadu_si256(PACK_PD[m].as_ptr().cast::<__m256i>());
            let packed = _mm256_permutevar8x32_ps(_mm256_castpd_ps(v), idx);
            _mm256_storeu_pd(bp.add(k), _mm256_castps_pd(packed));
            below += m_lt.count_ones() as usize;
            above += m_gt.count_ones() as usize;
            k += m.count_ones() as usize;
            i += 4;
        }
        while i < n {
            let v = *vp.add(i);
            below += usize::from(v < lo);
            above += usize::from(v > hi);
            *bp.add(k) = v;
            k += usize::from((v >= lo) & (v <= hi));
            i += 1;
        }
        (below, k, above)
    }

    /// 8-lane `f32` filter: compare + `movemask`, table-driven 8-byte
    /// mask store, `permutevar8x32` left-pack.
    ///
    /// # Safety
    /// `avx2` must be available; `mask` and `kept` must be exactly
    /// `values.len()` long (checked by the public wrapper).
    #[inline(never)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn filter_f32(
        values: &[f32],
        mask: &mut [bool],
        kept: &mut [f32],
        lo: Option<f32>,
        hi: f32,
    ) -> usize {
        let n = values.len();
        let vp = values.as_ptr();
        let mp = mask.as_mut_ptr();
        let kp = kept.as_mut_ptr();
        let hi_v = _mm256_set1_ps(hi);
        let lo_v = _mm256_set1_ps(lo.unwrap_or(f32::NEG_INFINITY));
        let band = lo.is_some();
        let mut k = 0usize;
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(vp.add(i));
            let le = _mm256_cmp_ps::<_CMP_LE_OQ>(v, hi_v);
            let keep = if band {
                let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(v, lo_v);
                std::arch::x86_64::_mm256_and_ps(le, ge)
            } else {
                le
            };
            let m = _mm256_movemask_ps(keep) as usize;
            (mp.add(i).cast::<u64>()).write_unaligned(MASK_BYTES[m]);
            let idx = _mm256_loadu_si256(PACK_PS[m].as_ptr().cast::<__m256i>());
            _mm256_storeu_ps(kp.add(k), _mm256_permutevar8x32_ps(v, idx));
            k += m.count_ones() as usize;
            i += 8;
        }
        while i < n {
            let v = *vp.add(i);
            let keep = (v <= hi) & (!band || v >= lo.unwrap_or(f32::NEG_INFINITY));
            *mp.add(i) = keep;
            *kp.add(k) = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        vcgeq_f32, vcgeq_f64, vcleq_f32, vcleq_f64, vdupq_n_f32, vdupq_n_f64, vgetq_lane_f32,
        vgetq_lane_f64, vgetq_lane_u32, vgetq_lane_u64, vld1q_f32, vld1q_f64,
    };

    /// 2-lane `f64` filter: NEON compare with per-lane mask extraction
    /// and a branch-free cursor-bump compaction (NEON has no compress).
    pub(super) fn filter_f64(
        values: &[f64],
        mask: &mut [bool],
        kept: &mut [f64],
        lo: Option<f64>,
        hi: f64,
    ) -> usize {
        let n = values.len();
        let band = lo.is_some();
        let lo_s = lo.unwrap_or(f64::NEG_INFINITY);
        let mut k = 0usize;
        let mut i = 0usize;
        // SAFETY: NEON is a baseline AArch64 feature; all accesses are
        // bounds-checked by the loop conditions (lengths verified by the
        // public wrapper).
        unsafe {
            let hi_v = vdupq_n_f64(hi);
            let lo_v = vdupq_n_f64(lo_s);
            while i + 2 <= n {
                let v = vld1q_f64(values.as_ptr().add(i));
                let mut le0 = vgetq_lane_u64::<0>(vcleq_f64(v, hi_v)) != 0;
                let mut le1 = vgetq_lane_u64::<1>(vcleq_f64(v, hi_v)) != 0;
                if band {
                    le0 &= vgetq_lane_u64::<0>(vcgeq_f64(v, lo_v)) != 0;
                    le1 &= vgetq_lane_u64::<1>(vcgeq_f64(v, lo_v)) != 0;
                }
                mask[i] = le0;
                mask[i + 1] = le1;
                kept[k] = vgetq_lane_f64::<0>(v);
                k += usize::from(le0);
                kept[k] = vgetq_lane_f64::<1>(v);
                k += usize::from(le1);
                i += 2;
            }
        }
        while i < n {
            let v = values[i];
            let keep = (v <= hi) & (!band || v >= lo_s);
            mask[i] = keep;
            kept[k] = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }

    /// 4-lane `f32` filter; same structure as the `f64` kernel.
    pub(super) fn filter_f32(
        values: &[f32],
        mask: &mut [bool],
        kept: &mut [f32],
        lo: Option<f32>,
        hi: f32,
    ) -> usize {
        let n = values.len();
        let band = lo.is_some();
        let lo_s = lo.unwrap_or(f32::NEG_INFINITY);
        let mut k = 0usize;
        let mut i = 0usize;
        // SAFETY: NEON is a baseline AArch64 feature; all accesses are
        // bounds-checked by the loop conditions.
        unsafe {
            let hi_v = vdupq_n_f32(hi);
            let lo_v = vdupq_n_f32(lo_s);
            while i + 4 <= n {
                let v = vld1q_f32(values.as_ptr().add(i));
                let le = vcleq_f32(v, hi_v);
                let ge = vcgeq_f32(v, lo_v);
                let keeps = [
                    vgetq_lane_u32::<0>(le) != 0 && (!band || vgetq_lane_u32::<0>(ge) != 0),
                    vgetq_lane_u32::<1>(le) != 0 && (!band || vgetq_lane_u32::<1>(ge) != 0),
                    vgetq_lane_u32::<2>(le) != 0 && (!band || vgetq_lane_u32::<2>(ge) != 0),
                    vgetq_lane_u32::<3>(le) != 0 && (!band || vgetq_lane_u32::<3>(ge) != 0),
                ];
                let lanes = [
                    vgetq_lane_f32::<0>(v),
                    vgetq_lane_f32::<1>(v),
                    vgetq_lane_f32::<2>(v),
                    vgetq_lane_f32::<3>(v),
                ];
                for j in 0..4 {
                    mask[i + j] = keeps[j];
                    kept[k] = lanes[j];
                    k += usize::from(keeps[j]);
                }
                i += 4;
            }
        }
        while i < n {
            let v = values[i];
            let keep = (v <= hi) & (!band || v >= lo_s);
            mask[i] = keep;
            kept[k] = v;
            k += usize::from(keep);
            i += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference shared by the unit checks (the proptests compare
    /// against an independent implementation in `tests/proptests.rs`).
    fn reference_f64(values: &[f64], lo: Option<f64>, hi: f64) -> (Vec<bool>, Vec<f64>) {
        let keep = |v: f64| v <= hi && lo.is_none_or(|lo| v >= lo);
        (
            values.iter().map(|&v| keep(v)).collect(),
            values.iter().copied().filter(|&v| keep(v)).collect(),
        )
    }

    fn check_f64(values: &[f64], lo: Option<f64>, hi: f64) {
        let mut mask = vec![false; values.len()];
        let mut kept = vec![0.0; values.len()];
        let k = filter_f64(values, &mut mask, &mut kept, lo, hi);
        let (ref_mask, ref_kept) = reference_f64(values, lo, hi);
        assert_eq!(mask, ref_mask, "mask mismatch ({lo:?}, {hi})");
        assert_eq!(
            &kept[..k],
            ref_kept.as_slice(),
            "kept mismatch ({lo:?}, {hi})"
        );
    }

    #[test]
    fn simd_filter_matches_reference_on_edge_shapes() {
        let ramp: Vec<f64> = (0..1003).map(f64::from).collect();
        check_f64(&ramp, None, 500.5);
        check_f64(&ramp, None, 500.0); // tie exactly at the threshold
        check_f64(&ramp, None, -1.0); // all trimmed
        check_f64(&ramp, None, 2000.0); // none trimmed
        check_f64(&ramp, Some(100.0), 900.0); // band with exact ties
        check_f64(&ramp, Some(2000.0), 3000.0); // empty band
        check_f64(&[], None, 0.0);
        check_f64(&[1.0], None, 1.0);
        check_f64(&[1.0, 2.0, 3.0], Some(2.0), 2.0); // sub-vector tail only
    }

    #[test]
    fn f32_filter_matches_its_reference() {
        let values: Vec<f32> = (0..517).map(|i| (i % 97) as f32 * 0.25).collect();
        for (lo, hi) in [(None, 12.0f32), (Some(3.0), 18.0), (None, 0.0)] {
            let keep = |v: f32| v <= hi && lo.is_none_or(|lo| v >= lo);
            let mut mask = vec![false; values.len()];
            let mut kept = vec![0.0f32; values.len()];
            let k = filter_f32(&values, &mut mask, &mut kept, lo, hi);
            let ref_mask: Vec<bool> = values.iter().map(|&v| keep(v)).collect();
            let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| keep(v)).collect();
            assert_eq!(mask, ref_mask);
            assert_eq!(&kept[..k], ref_kept.as_slice());
        }
    }

    #[test]
    fn active_kernel_names_a_real_kernel() {
        assert!(["avx512", "avx2", "neon", "portable"].contains(&active_kernel()));
    }

    /// Shapes that stress every kernel edge: vector-width remainders,
    /// ties at the pivots, all-kept, all-dropped, empty.
    fn kernel_shapes() -> Vec<(Vec<f64>, Option<f64>, f64)> {
        let ramp: Vec<f64> = (0..1003).map(f64::from).collect();
        vec![
            (ramp.clone(), None, 500.0),
            (ramp.clone(), None, -1.0),
            (ramp.clone(), None, 2000.0),
            (ramp.clone(), Some(100.0), 900.0),
            (ramp, Some(2000.0), 3000.0),
            (vec![], None, 0.0),
            (vec![1.0, 2.0, 3.0, 4.0, 5.0], Some(2.0), 4.0),
        ]
    }

    type FilterFn<T> = Box<dyn Fn(&[T], &mut [bool], &mut [T], Option<T>, T) -> usize>;
    type PartitionFn = Box<dyn Fn(&[f64], f64, f64, &mut [f64]) -> (usize, usize, usize)>;

    /// The public dispatch only ever reaches the widest kernel the CPU
    /// has, so each backend module is also driven *directly* against the
    /// scalar reference here — the AVX2 left-pack must stay correct even
    /// when CI happens to run on AVX-512 hardware (and vice versa the
    /// portable kernel everywhere).
    #[test]
    fn every_compiled_kernel_matches_the_reference_directly() {
        for (values, lo, hi) in kernel_shapes() {
            let n = values.len();
            let (ref_mask, ref_kept) = reference_f64(&values, lo, hi);
            let ref_below = values.iter().filter(|&&v| v < lo.unwrap_or(hi)).count();
            let band_lo = lo.unwrap_or(f64::NEG_INFINITY);
            let ref_band: Vec<f64> = values
                .iter()
                .copied()
                .filter(|&v| v >= band_lo && v <= hi)
                .collect();
            let ref_above = values.iter().filter(|&&v| v > hi).count();

            let mut runners: Vec<(&str, FilterFn<f64>, PartitionFn)> = vec![(
                "portable",
                Box::new(|v, m, k, lo, hi| match lo {
                    None => filter_portable(v, m, k, |x| x <= hi),
                    Some(lo) => filter_portable(v, m, k, |x| (x >= lo) & (x <= hi)),
                }),
                Box::new(partition_band_portable),
            )];
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    runners.push((
                        "avx2",
                        // SAFETY: avx2 verified just above; lengths match.
                        Box::new(|v, m, k, lo, hi| unsafe { avx2::filter_f64(v, m, k, lo, hi) }),
                        Box::new(|v, lo, hi, b| unsafe { avx2::partition_band(v, lo, hi, b) }),
                    ));
                }
                if std::arch::is_x86_feature_detected!("avx512f") {
                    runners.push((
                        "avx512",
                        // SAFETY: avx512f verified just above; lengths match.
                        Box::new(|v, m, k, lo, hi| unsafe { avx512::filter_f64(v, m, k, lo, hi) }),
                        Box::new(|v, lo, hi, b| unsafe { avx512::partition_band(v, lo, hi, b) }),
                    ));
                }
            }
            for (name, filter, partition) in &runners {
                let mut mask = vec![false; n];
                let mut kept = vec![0.0; n];
                let k = filter(&values, &mut mask, &mut kept, lo, hi);
                assert_eq!(mask, ref_mask, "{name} mask ({lo:?}, {hi})");
                assert_eq!(
                    &kept[..k],
                    ref_kept.as_slice(),
                    "{name} kept ({lo:?}, {hi})"
                );
                let mut band = vec![0.0; n];
                let (below, blen, above) = partition(&values, band_lo, hi, &mut band);
                assert_eq!(&band[..blen], ref_band.as_slice(), "{name} band");
                assert_eq!(above, ref_above, "{name} above");
                if lo.is_some() {
                    assert_eq!(below, ref_below, "{name} below");
                } else {
                    assert_eq!(below + blen, n - above, "{name} partition sum");
                }
            }
        }
    }

    /// Direct drive of every compiled histogram kernel against an
    /// independent scalar count, on shapes that stress the kernel edges:
    /// the odd-length remainder, heavily skewed keys (every key sharing
    /// its high bytes — the staged GK bucket case the dual accumulators
    /// exist for), and the additive contract (counts are *added* into a
    /// pre-populated table, not overwritten).
    #[test]
    fn every_compiled_histogram_kernel_matches_the_reference_directly() {
        let shapes: Vec<Vec<u64>> = vec![
            vec![],
            vec![0x0102_0304_0506_0708],
            (0..1003u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
            // Skewed: high 7 bytes identical across the whole slice.
            (0..517u64)
                .map(|i| 0xABCD_EF01_2345_6700 | (i % 256))
                .collect(),
        ];
        for keys in &shapes {
            let mut reference = [[0u32; 256]; 8];
            for &k in keys {
                for (d, h) in reference.iter_mut().enumerate() {
                    h[((k >> (8 * d)) & 0xFF) as usize] += 1;
                }
            }

            type HistFn = Box<dyn Fn(&[u64], &mut [[u32; 256]; 8])>;
            let mut runners: Vec<(&str, HistFn)> = vec![
                ("portable", Box::new(radix_digit_histograms_portable)),
                ("dispatch", Box::new(radix_digit_histograms)),
            ];
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    runners.push((
                        "avx2",
                        // SAFETY: avx2 verified just above.
                        Box::new(|k, h| unsafe { avx2::radix_digit_histograms(k, h) }),
                    ));
                }
            }
            for (name, run) in &runners {
                let mut hist = [[0u32; 256]; 8];
                run(keys, &mut hist);
                assert_eq!(hist, reference, "{name} counts ({} keys)", keys.len());
                // Additive contract: a second pass doubles every count.
                run(keys, &mut hist);
                let doubled: Vec<u32> = reference.iter().flatten().map(|&c| c * 2).collect();
                let got: Vec<u32> = hist.iter().flatten().copied().collect();
                assert_eq!(got, doubled, "{name} is not additive");
            }
        }
    }

    /// Same direct drive for the `f32` kernels.
    #[test]
    fn every_compiled_f32_kernel_matches_the_reference_directly() {
        let values: Vec<f32> = (0..1003).map(|i| (i % 61) as f32 * 0.5).collect();
        for (lo, hi) in [
            (None, 15.0f32),
            (Some(5.0), 25.0),
            (None, -1.0),
            (None, 99.0),
        ] {
            let keep = |v: f32| v <= hi && lo.is_none_or(|l| v >= l);
            let ref_mask: Vec<bool> = values.iter().map(|&v| keep(v)).collect();
            let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| keep(v)).collect();
            let mut runners: Vec<(&str, FilterFn<f32>)> = vec![(
                "portable",
                Box::new(|v, m, k, lo, hi| match lo {
                    None => filter_portable(v, m, k, |x| x <= hi),
                    Some(lo) => filter_portable(v, m, k, |x| (x >= lo) & (x <= hi)),
                }),
            )];
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    runners.push((
                        "avx2",
                        // SAFETY: avx2 verified just above; lengths match.
                        Box::new(|v, m, k, lo, hi| unsafe { avx2::filter_f32(v, m, k, lo, hi) }),
                    ));
                }
                if std::arch::is_x86_feature_detected!("avx512f") {
                    runners.push((
                        "avx512",
                        // SAFETY: avx512f verified just above; lengths match.
                        Box::new(|v, m, k, lo, hi| unsafe { avx512::filter_f32(v, m, k, lo, hi) }),
                    ));
                }
            }
            for (name, filter) in &runners {
                let mut mask = vec![false; values.len()];
                let mut kept = vec![0.0f32; values.len()];
                let k = filter(&values, &mut mask, &mut kept, lo, hi);
                assert_eq!(mask, ref_mask, "{name} ({lo:?}, {hi})");
                assert_eq!(&kept[..k], ref_kept.as_slice(), "{name} ({lo:?}, {hi})");
            }
        }
    }
}
