//! Closed-form solution of the coupled two-mass oscillator (Theorem 4).
//!
//! The Elastic strategy's interaction term `U = k (u_a − u_c)²/2` turns the
//! infinite collection game into "a double harmonic oscillator system,
//! where two masses m_a and m_c are connected by a spring with spring
//! constant k" (proof of Theorem 4). Decomposing into normal modes:
//!
//! * the *centre of utility* `X = (m_a u_a + m_c u_c) / (m_a + m_c)` moves
//!   uniformly (no external force), and
//! * the *relative utility* `w = u_a − u_c` obeys `μ ẅ = −k w` with reduced
//!   mass `μ = m_a m_c / (m_a + m_c)`, i.e. `w(r) = A cos(ω r + φ)` with
//!   `ω = √(k/μ)` — the paper's Eq. 15.
//!
//! This module evaluates that closed form, used to validate the RK4
//! integrator and to predict oscillation amplitude/period in the `ablate-k`
//! experiment.

/// Closed-form coupled oscillator with initial conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledOscillator {
    ma: f64,
    mc: f64,
    k: f64,
    /// Centre-of-utility position and velocity at `r = 0`.
    x0: f64,
    v0: f64,
    /// Relative-utility position and velocity at `r = 0`.
    w0: f64,
    wdot0: f64,
}

impl CoupledOscillator {
    /// Creates the oscillator from masses, spring constant and the initial
    /// utilities/velocities `(u_a, u_c, u̇_a, u̇_c)` at `r = 0`.
    ///
    /// # Panics
    /// Panics unless `ma > 0`, `mc > 0`, `k >= 0`.
    #[must_use]
    pub fn new(ma: f64, mc: f64, k: f64, ua0: f64, uc0: f64, va0: f64, vc0: f64) -> Self {
        assert!(ma > 0.0 && mc > 0.0, "masses must be positive");
        assert!(k >= 0.0, "spring constant must be non-negative");
        let total = ma + mc;
        Self {
            ma,
            mc,
            k,
            x0: (ma * ua0 + mc * uc0) / total,
            v0: (ma * va0 + mc * vc0) / total,
            w0: ua0 - uc0,
            wdot0: va0 - vc0,
        }
    }

    /// Reduced mass `μ = m_a m_c / (m_a + m_c)`.
    #[must_use]
    pub fn reduced_mass(&self) -> f64 {
        self.ma * self.mc / (self.ma + self.mc)
    }

    /// Angular frequency `ω = √(k/μ)` of the relative utility. Zero when
    /// `k = 0` (free motion).
    #[must_use]
    pub fn omega(&self) -> f64 {
        (self.k / self.reduced_mass()).sqrt()
    }

    /// Oscillation period `2π/ω`. Infinite when `k = 0`.
    #[must_use]
    pub fn period(&self) -> f64 {
        let w = self.omega();
        if w == 0.0 {
            f64::INFINITY
        } else {
            std::f64::consts::TAU / w
        }
    }

    /// Amplitude `A` of the relative utility oscillation (Eq. 15).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        let w = self.omega();
        if w == 0.0 {
            self.w0.abs()
        } else {
            (self.w0 * self.w0 + (self.wdot0 / w) * (self.wdot0 / w)).sqrt()
        }
    }

    /// Relative utility `w(r) = u_a(r) − u_c(r)`.
    #[must_use]
    pub fn relative(&self, r: f64) -> f64 {
        let omega = self.omega();
        if omega == 0.0 {
            self.w0 + self.wdot0 * r
        } else {
            self.w0 * (omega * r).cos() + self.wdot0 / omega * (omega * r).sin()
        }
    }

    /// Relative velocity `ẇ(r)`.
    #[must_use]
    pub fn relative_velocity(&self, r: f64) -> f64 {
        let omega = self.omega();
        if omega == 0.0 {
            self.wdot0
        } else {
            -self.w0 * omega * (omega * r).sin() + self.wdot0 * (omega * r).cos()
        }
    }

    /// Positions `(u_a, u_c)` at round `r`.
    #[must_use]
    pub fn position(&self, r: f64) -> (f64, f64) {
        let x = self.x0 + self.v0 * r;
        let w = self.relative(r);
        let total = self.ma + self.mc;
        (x + self.mc / total * w, x - self.ma / total * w)
    }

    /// Velocities `(u̇_a, u̇_c)` at round `r`.
    #[must_use]
    pub fn velocity(&self, r: f64) -> (f64, f64) {
        let wd = self.relative_velocity(r);
        let total = self.ma + self.mc;
        (
            self.v0 + self.mc / total * wd,
            self.v0 - self.ma / total * wd,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrangian::CoupledOscillatorLagrangian;
    use crate::ode::rk4_integrate;

    #[test]
    fn initial_conditions_recovered() {
        let osc = CoupledOscillator::new(1.0, 2.0, 3.0, 0.7, -0.2, 0.1, 0.4);
        let (ua, uc) = osc.position(0.0);
        assert!((ua - 0.7).abs() < 1e-12);
        assert!((uc + 0.2).abs() < 1e-12);
        let (va, vc) = osc.velocity(0.0);
        assert!((va - 0.1).abs() < 1e-12);
        assert!((vc - 0.4).abs() < 1e-12);
    }

    #[test]
    fn matches_rk4_trajectory() {
        let (ma, mc, k) = (1.3, 2.1, 0.8);
        let lag = CoupledOscillatorLagrangian::new(ma, mc, k);
        let (ua0, uc0, va0, vc0) = (1.0, -0.5, 0.2, -0.1);
        let osc = CoupledOscillator::new(ma, mc, k, ua0, uc0, va0, vc0);
        let traj = rk4_integrate(&lag, 0.0, &[ua0, uc0], &[va0, vc0], 0.001, 20_000);
        for idx in (0..traj.len()).step_by(1000) {
            let r = traj.r[idx];
            let (ua, uc) = osc.position(r);
            assert!(
                (ua - traj.q[idx][0]).abs() < 1e-6,
                "u_a mismatch at r={r}: closed {ua} vs rk4 {}",
                traj.q[idx][0]
            );
            assert!((uc - traj.q[idx][1]).abs() < 1e-6, "u_c mismatch at r={r}");
        }
    }

    #[test]
    fn relative_utility_is_periodic() {
        let osc = CoupledOscillator::new(1.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0);
        let t = osc.period();
        for r in [0.0, 0.37, 1.4, 3.3] {
            assert!(
                (osc.relative(r) - osc.relative(r + t)).abs() < 1e-9,
                "not periodic at r={r}"
            );
        }
    }

    #[test]
    fn amplitude_bounds_relative_utility() {
        let osc = CoupledOscillator::new(1.5, 0.7, 1.1, 0.6, -0.1, 0.3, -0.2);
        let amp = osc.amplitude();
        for i in 0..500 {
            let r = i as f64 * 0.05;
            assert!(osc.relative(r).abs() <= amp + 1e-9);
        }
        // The bound is attained (within sampling resolution).
        let max_seen = (0..5_000)
            .map(|i| osc.relative(i as f64 * 0.005).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_seen > 0.99 * amp);
    }

    #[test]
    fn zero_spring_gives_free_motion() {
        let osc = CoupledOscillator::new(1.0, 1.0, 0.0, 1.0, 0.0, 0.5, -0.5);
        assert_eq!(osc.period(), f64::INFINITY);
        // w grows linearly: w(r) = 1 + r.
        assert!((osc.relative(2.0) - 3.0).abs() < 1e-12);
        let (ua, uc) = osc.position(2.0);
        assert!((ua - 2.0).abs() < 1e-12);
        assert!((uc + 1.0).abs() < 1e-12);
    }

    #[test]
    fn stiffer_spring_oscillates_faster() {
        let soft = CoupledOscillator::new(1.0, 1.0, 0.1, 1.0, 0.0, 0.0, 0.0);
        let stiff = CoupledOscillator::new(1.0, 1.0, 0.5, 1.0, 0.0, 0.0, 0.0);
        assert!(stiff.omega() > soft.omega());
        assert!(stiff.period() < soft.period());
    }

    #[test]
    fn centre_of_utility_moves_uniformly() {
        let (ma, mc) = (2.0, 3.0);
        let osc = CoupledOscillator::new(ma, mc, 5.0, 1.0, -1.0, 0.4, 0.9);
        let x = |r: f64| {
            let (ua, uc) = osc.position(r);
            (ma * ua + mc * uc) / (ma + mc)
        };
        let x0 = x(0.0);
        let v = (ma * 0.4 + mc * 0.9) / (ma + mc);
        for r in [0.5, 1.0, 2.5, 7.0] {
            assert!((x(r) - (x0 + v * r)).abs() < 1e-9, "at r={r}");
        }
    }
}
