//! Lagrangians of the infinite collection game.
//!
//! Section IV replaces classical coordinates with the cumulative utilities
//! `(u_a, u_c)` of the adversary and collector, and the round index `r`
//! plays the role of time. Two concrete Lagrangians arise:
//!
//! * **Equilibrium (free) state** — Theorem 2: `L = m_a u̇_a²/2 + m_c u̇_c²/2`.
//!   No interaction; both utilities grow at constant rates (Theorem 1).
//! * **Non-equilibrium (Elastic) state** — Definition 2 adds the interaction
//!   `U(u_a, u_c) = k (u_a − u_c)² / 2`, giving a coupled harmonic
//!   oscillator whose relative utility `|u_a − u_c|` oscillates periodically
//!   (Theorem 4).
//!
//! We use the standard mechanics sign convention `L = T − U`; the paper's
//! Eq. 9 writes `+U`, but its own Eq. 14 (the equations of motion) matches
//! the `T − U` convention used here, and Theorem 4's oscillation conclusion
//! requires it.

/// A Lagrangian `L(q, q̇, r)` over `dof` generalized coordinates.
pub trait Lagrangian {
    /// Number of degrees of freedom `s`.
    fn dof(&self) -> usize;

    /// Evaluates `L(q, q̇, r)`.
    fn eval(&self, q: &[f64], qdot: &[f64], r: f64) -> f64;

    /// `∂L/∂q_i` by central finite differences (override for analytic forms).
    fn dl_dq(&self, q: &[f64], qdot: &[f64], r: f64, i: usize) -> f64 {
        let h = fd_step(q[i]);
        let mut qp = q.to_vec();
        let mut qm = q.to_vec();
        qp[i] += h;
        qm[i] -= h;
        (self.eval(&qp, qdot, r) - self.eval(&qm, qdot, r)) / (2.0 * h)
    }

    /// `∂L/∂q̇_i` by central finite differences (override for analytic forms).
    fn dl_dqdot(&self, q: &[f64], qdot: &[f64], r: f64, i: usize) -> f64 {
        let h = fd_step(qdot[i]);
        let mut vp = qdot.to_vec();
        let mut vm = qdot.to_vec();
        vp[i] += h;
        vm[i] -= h;
        (self.eval(q, &vp, r) - self.eval(q, &vm, r)) / (2.0 * h)
    }
}

/// Finite-difference step scaled to the magnitude of the point.
fn fd_step(x: f64) -> f64 {
    let scale = x.abs().max(1.0);
    scale * 1e-6
}

/// Theorem 2's equilibrium Lagrangian: `L = Σ m_i q̇_i² / 2`.
///
/// The Euler–Lagrange equations give `q̈ = 0`: at a Stackelberg equilibrium
/// both parties' utilities accumulate at constant per-round rates,
/// independent of each other (Lemma 3's additivity).
#[derive(Debug, Clone, PartialEq)]
pub struct FreeLagrangian {
    masses: Vec<f64>,
}

impl FreeLagrangian {
    /// Creates a free Lagrangian with the given inertial factors
    /// (`m_a`, `m_c`, … — the paper's "intrinsic properties of the system").
    ///
    /// # Panics
    /// Panics if any mass is non-positive.
    #[must_use]
    pub fn new(masses: Vec<f64>) -> Self {
        assert!(
            masses.iter().all(|&m| m > 0.0),
            "all masses must be positive"
        );
        Self { masses }
    }

    /// The inertial factors.
    #[must_use]
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }
}

impl Lagrangian for FreeLagrangian {
    fn dof(&self) -> usize {
        self.masses.len()
    }

    fn eval(&self, _q: &[f64], qdot: &[f64], _r: f64) -> f64 {
        0.5 * self
            .masses
            .iter()
            .zip(qdot)
            .map(|(m, v)| m * v * v)
            .sum::<f64>()
    }

    fn dl_dq(&self, _q: &[f64], _qdot: &[f64], _r: f64, _i: usize) -> f64 {
        0.0
    }

    fn dl_dqdot(&self, _q: &[f64], qdot: &[f64], _r: f64, i: usize) -> f64 {
        self.masses[i] * qdot[i]
    }
}

/// Definition 2's non-equilibrium Lagrangian:
/// `L = m_a u̇_a²/2 + m_c u̇_c²/2 − k (u_a − u_c)²/2`.
///
/// Coordinates are ordered `[u_a, u_c]`. The Euler–Lagrange equations are
/// the paper's Eq. 14, a coupled two-mass oscillator (Theorem 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledOscillatorLagrangian {
    /// Adversary inertial factor `m_a`.
    pub ma: f64,
    /// Collector inertial factor `m_c`.
    pub mc: f64,
    /// Interaction strength `k` (Algorithm 2's response intensity).
    pub k: f64,
}

impl CoupledOscillatorLagrangian {
    /// Creates the coupled Lagrangian.
    ///
    /// # Panics
    /// Panics unless `ma > 0`, `mc > 0` and `k >= 0`.
    #[must_use]
    pub fn new(ma: f64, mc: f64, k: f64) -> Self {
        assert!(ma > 0.0 && mc > 0.0, "masses must be positive");
        assert!(k >= 0.0, "interaction strength must be non-negative");
        Self { ma, mc, k }
    }

    /// Analytic accelerations `(ü_a, ü_c)` from the Euler–Lagrange
    /// equations (Eq. 14).
    #[must_use]
    pub fn accelerations(&self, q: &[f64]) -> (f64, f64) {
        let w = q[0] - q[1];
        (-self.k * w / self.ma, self.k * w / self.mc)
    }

    /// Total energy `T + U`, conserved along true trajectories.
    #[must_use]
    pub fn energy(&self, q: &[f64], qdot: &[f64]) -> f64 {
        let w = q[0] - q[1];
        0.5 * self.ma * qdot[0] * qdot[0] + 0.5 * self.mc * qdot[1] * qdot[1] + 0.5 * self.k * w * w
    }
}

impl Lagrangian for CoupledOscillatorLagrangian {
    fn dof(&self) -> usize {
        2
    }

    fn eval(&self, q: &[f64], qdot: &[f64], _r: f64) -> f64 {
        let w = q[0] - q[1];
        0.5 * self.ma * qdot[0] * qdot[0] + 0.5 * self.mc * qdot[1] * qdot[1] - 0.5 * self.k * w * w
    }

    fn dl_dq(&self, q: &[f64], _qdot: &[f64], _r: f64, i: usize) -> f64 {
        let w = q[0] - q[1];
        match i {
            0 => -self.k * w,
            1 => self.k * w,
            _ => panic!("coordinate index {i} out of range for 2-dof system"),
        }
    }

    fn dl_dqdot(&self, _q: &[f64], qdot: &[f64], _r: f64, i: usize) -> f64 {
        match i {
            0 => self.ma * qdot[i],
            1 => self.mc * qdot[i],
            _ => panic!("coordinate index {i} out of range for 2-dof system"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_lagrangian_is_kinetic_energy() {
        let l = FreeLagrangian::new(vec![2.0, 3.0]);
        let val = l.eval(&[10.0, -4.0], &[1.0, 2.0], 0.0);
        assert!((val - (0.5 * 2.0 + 0.5 * 3.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn free_lagrangian_position_independent() {
        let l = FreeLagrangian::new(vec![1.0, 1.0]);
        let a = l.eval(&[0.0, 0.0], &[1.0, 1.0], 0.0);
        let b = l.eval(&[100.0, -50.0], &[1.0, 1.0], 5.0);
        assert_eq!(a, b);
        assert_eq!(l.dl_dq(&[3.0, 4.0], &[1.0, 1.0], 0.0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn free_lagrangian_rejects_zero_mass() {
        let _ = FreeLagrangian::new(vec![1.0, 0.0]);
    }

    #[test]
    fn coupled_analytic_partials_match_numeric() {
        let l = CoupledOscillatorLagrangian::new(1.5, 2.5, 0.7);
        let q = [0.8, -0.3];
        let qdot = [0.2, -1.1];
        for i in 0..2 {
            // Compare analytic overrides against the default finite-difference
            // implementations via a generic wrapper.
            struct Numeric<'a>(&'a CoupledOscillatorLagrangian);
            impl Lagrangian for Numeric<'_> {
                fn dof(&self) -> usize {
                    2
                }
                fn eval(&self, q: &[f64], qdot: &[f64], r: f64) -> f64 {
                    self.0.eval(q, qdot, r)
                }
            }
            let numeric = Numeric(&l);
            assert!(
                (l.dl_dq(&q, &qdot, 0.0, i) - numeric.dl_dq(&q, &qdot, 0.0, i)).abs() < 1e-5,
                "dL/dq_{i}"
            );
            assert!(
                (l.dl_dqdot(&q, &qdot, 0.0, i) - numeric.dl_dqdot(&q, &qdot, 0.0, i)).abs() < 1e-5,
                "dL/dqdot_{i}"
            );
        }
    }

    #[test]
    fn accelerations_oppose_separation() {
        let l = CoupledOscillatorLagrangian::new(1.0, 1.0, 2.0);
        // u_a above u_c: adversary pulled down, collector pulled up.
        let (aa, ac) = l.accelerations(&[1.0, 0.0]);
        assert!(aa < 0.0);
        assert!(ac > 0.0);
        // Equal utilities: no force.
        let (aa, ac) = l.accelerations(&[0.5, 0.5]);
        assert_eq!(aa, 0.0);
        assert_eq!(ac, 0.0);
    }

    #[test]
    fn momentum_conservation_in_accelerations() {
        // m_a ü_a + m_c ü_c = 0 (internal force only).
        let l = CoupledOscillatorLagrangian::new(1.3, 4.2, 0.9);
        let (aa, ac) = l.accelerations(&[2.0, -1.0]);
        assert!((l.ma * aa + l.mc * ac).abs() < 1e-12);
    }

    #[test]
    fn zero_k_reduces_to_free() {
        let coupled = CoupledOscillatorLagrangian::new(2.0, 3.0, 0.0);
        let free = FreeLagrangian::new(vec![2.0, 3.0]);
        let q = [4.0, -2.0];
        let qdot = [0.5, 0.25];
        assert!((coupled.eval(&q, &qdot, 0.0) - free.eval(&q, &qdot, 0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_k_rejected() {
        let _ = CoupledOscillatorLagrangian::new(1.0, 1.0, -0.1);
    }

    #[test]
    fn energy_positive_definite() {
        let l = CoupledOscillatorLagrangian::new(1.0, 1.0, 1.0);
        assert!(l.energy(&[1.0, -1.0], &[0.5, -0.5]) > 0.0);
        assert_eq!(l.energy(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }
}
