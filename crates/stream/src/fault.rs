//! Deterministic, seeded fault injection for the streaming stack.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, so the collector's fault tolerance is driven by a *plan*,
//! not by chance: a [`FaultPlan`] is a pure function of `(seed, lane,
//! site, sequence#)`, which makes every fault schedule exactly
//! replayable — CI can re-run the same stalls, disconnects, torn spill
//! writes and bit-flips byte for byte. The environment knob is
//! `TRIMGAME_FAULTS=<seed:rate>` (see [`FaultSpec::from_env`]).
//!
//! * A **site** ([`FaultSite`]) is one kind of injected failure.
//! * A **lane** ([`FaultLane`]) is one independent fault stream —
//!   typically one per producer or per board shard — with its own
//!   per-site sequence counters, so decisions inside a lane are
//!   deterministic no matter how OS threads interleave *between* lanes.
//! * [`FaultStats`] counts every injected fault plan-wide, so a report
//!   can prove the faults actually fired (and were survived).
//!
//! The module also hosts the bounded retry-with-backoff wrapper
//! ([`with_retry`]) that the spill I/O paths route through; the sleeper
//! is injected, so tests drive it with a recording clock instead of
//! wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Injection points of the streaming stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A producer pauses briefly before a round's records.
    ProducerStall = 0,
    /// A producer dies mid-stream, dropping its channel sender.
    Disconnect = 1,
    /// A spill write fails outright before any byte reaches disk.
    SpillWriteError = 2,
    /// A spill write tears: half the frame lands, then an error.
    SpillShortWrite = 3,
    /// One bit of a spill file flips on the way back in.
    ReadCorruption = 4,
}

/// Number of [`FaultSite`] variants.
const NUM_SITES: usize = 5;

/// Per-site multipliers on the configured base rate. A disconnect is
/// terminal for its stream (every later round is lost), so it fires at
/// an eighth of the rate the transient faults use.
const SITE_SCALE: [f64; NUM_SITES] = [1.0, 0.125, 1.0, 1.0, 1.0];

/// Plan-wide injected-fault counters, shared by every lane.
#[derive(Debug, Default)]
pub struct FaultStats {
    injected: [AtomicU64; NUM_SITES],
}

impl FaultStats {
    fn count(&self, site: FaultSite) {
        self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters out.
    #[must_use]
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        let at = |s: FaultSite| self.injected[s as usize].load(Ordering::Relaxed);
        FaultStatsSnapshot {
            stalls: at(FaultSite::ProducerStall),
            disconnects: at(FaultSite::Disconnect),
            spill_write_errors: at(FaultSite::SpillWriteError),
            spill_short_writes: at(FaultSite::SpillShortWrite),
            read_corruptions: at(FaultSite::ReadCorruption),
        }
    }
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Producer pauses injected.
    pub stalls: u64,
    /// Producers killed mid-stream.
    pub disconnects: u64,
    /// Spill writes failed before writing.
    pub spill_write_errors: u64,
    /// Spill writes torn half-way.
    pub spill_short_writes: u64,
    /// Spill reads handed back a flipped bit.
    pub read_corruptions: u64,
}

impl FaultStatsSnapshot {
    /// Faults injected across all sites.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stalls
            + self.disconnects
            + self.spill_write_errors
            + self.spill_short_writes
            + self.read_corruptions
    }
}

/// The whole knob: a seed and a base per-decision fault probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Base probability in `[0, 1]` that a decision point fires
    /// (scaled down for terminal sites, see [`FaultSite`]).
    pub rate: f64,
}

impl FaultSpec {
    /// Reads `TRIMGAME_FAULTS=<seed:rate>` (e.g. `7:0.02`). Unset or
    /// malformed values yield `None` — faults are strictly opt-in.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("TRIMGAME_FAULTS").ok()?)
    }

    /// Parses a `<seed:rate>` string.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let (seed, rate) = raw.split_once(':')?;
        let seed = seed.trim().parse().ok()?;
        let rate: f64 = rate.trim().parse().ok()?;
        (rate.is_finite() && (0.0..=1.0).contains(&rate)).then_some(Self { seed, rate })
    }
}

/// A deterministic fault schedule: hands out [`FaultLane`]s and owns
/// the shared [`FaultStats`].
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    thresholds: [u64; NUM_SITES],
    stats: Arc<FaultStats>,
}

impl FaultPlan {
    /// Builds the plan for `spec`.
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        let mut thresholds = [0u64; NUM_SITES];
        for (t, scale) in thresholds.iter_mut().zip(SITE_SCALE) {
            let p = (spec.rate * scale).clamp(0.0, 1.0);
            // Map probability to a u64 comparison threshold; `p == 1`
            // must fire always, so it saturates.
            *t = if p >= 1.0 {
                u64::MAX
            } else {
                (p * (u64::MAX as f64)) as u64
            };
        }
        Self {
            spec,
            thresholds,
            stats: Arc::new(FaultStats::default()),
        }
    }

    /// The spec this plan was built from.
    #[must_use]
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// The plan-wide injected-fault counters.
    #[must_use]
    pub fn stats(&self) -> Arc<FaultStats> {
        self.stats.clone()
    }

    /// An independent fault lane. Two lanes with the same id replay the
    /// same decisions; distinct ids are statistically independent.
    #[must_use]
    pub fn lane(&self, lane: u64) -> FaultLane {
        FaultLane {
            seed: self.spec.seed,
            lane,
            thresholds: self.thresholds,
            stats: self.stats.clone(),
            seq: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// SplitMix64 finalizer — the same mixer `derive_seed` uses for stream
/// seeds, reused here so fault decisions are uniform in every argument.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One independent fault stream: per-site sequence counters over the
/// plan's seed. Shareable (`&self` everywhere) and deterministic as
/// long as each lane's decision points run in a fixed order — which
/// they do, because a lane belongs to exactly one producer or shard.
#[derive(Debug)]
pub struct FaultLane {
    seed: u64,
    lane: u64,
    thresholds: [u64; NUM_SITES],
    stats: Arc<FaultStats>,
    seq: [AtomicU64; NUM_SITES],
}

impl FaultLane {
    /// Draws the next decision for `site`; `Some(payload)` when it
    /// fires, with a mixed payload word for fault parameters (which bit
    /// to flip, etc.).
    fn roll(&self, site: FaultSite) -> Option<u64> {
        let i = site as usize;
        let threshold = self.thresholds[i];
        if threshold == 0 {
            return None;
        }
        let seq = self.seq[i].fetch_add(1, Ordering::Relaxed);
        let h = mix(mix(mix(
            self.seed ^ (self.lane.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ) ^ (i as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            ^ seq.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5));
        if h < threshold {
            self.stats.count(site);
            Some(mix(h ^ 0x2545_F491_4F6C_DD1D))
        } else {
            None
        }
    }

    /// Whether the next decision at `site` fires (counted when it does).
    pub fn fire(&self, site: FaultSite) -> bool {
        self.roll(site).is_some()
    }

    /// Rolls [`FaultSite::ReadCorruption`]; when it fires, flips one
    /// deterministic bit of `bytes` and returns `true`.
    pub fn corrupt_read(&self, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() {
            return false;
        }
        match self.roll(FaultSite::ReadCorruption) {
            Some(payload) => {
                let bit = (payload as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                true
            }
            None => false,
        }
    }
}

/// Bounded retry-with-backoff knobs.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(20),
        }
    }
}

/// Runs `op` up to `policy.attempts` times, sleeping with doubling
/// backoff between failures via the injected `sleep` (pass
/// `std::thread::sleep` in production, a recording closure in tests).
/// Returns the final result plus the number of retries performed.
pub fn with_retry<T, E>(
    policy: &RetryPolicy,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut() -> Result<T, E>,
) -> (Result<T, E>, u32) {
    let attempts = policy.attempts.max(1);
    let mut delay = policy.base_delay;
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) => {
                if retries + 1 >= attempts {
                    return (Err(e), retries);
                }
                sleep(delay);
                delay = (delay * 2).min(policy.max_delay);
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_seed_rate_and_rejects_garbage() {
        assert_eq!(
            FaultSpec::parse("7:0.25"),
            Some(FaultSpec {
                seed: 7,
                rate: 0.25
            })
        );
        assert_eq!(
            FaultSpec::parse(" 42 : 1.0 "),
            Some(FaultSpec {
                seed: 42,
                rate: 1.0
            })
        );
        for bad in ["", "7", "7:", ":0.1", "x:0.1", "7:nan", "7:1.5", "7:-0.1"] {
            assert_eq!(FaultSpec::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        let never = FaultPlan::new(FaultSpec { seed: 1, rate: 0.0 }).lane(0);
        let always = FaultPlan::new(FaultSpec { seed: 1, rate: 1.0 }).lane(0);
        for _ in 0..200 {
            assert!(!never.fire(FaultSite::SpillWriteError));
            assert!(always.fire(FaultSite::SpillWriteError));
        }
    }

    #[test]
    fn schedules_replay_exactly_per_lane() {
        let draw = |lane_id: u64| {
            let plan = FaultPlan::new(FaultSpec { seed: 9, rate: 0.3 });
            let lane = plan.lane(lane_id);
            (0..400)
                .map(|_| lane.fire(FaultSite::ProducerStall))
                .collect::<Vec<bool>>()
        };
        let a = draw(3);
        assert_eq!(a, draw(3), "same lane must replay the same schedule");
        assert_ne!(a, draw(4), "distinct lanes must diverge");
        let fired = a.iter().filter(|f| **f).count();
        assert!(
            (40..=200).contains(&fired),
            "rate 0.3 fired {fired}/400 times"
        );
    }

    #[test]
    fn disconnects_fire_rarer_than_transient_faults() {
        let plan = FaultPlan::new(FaultSpec { seed: 5, rate: 0.4 });
        let lane = plan.lane(0);
        for _ in 0..4000 {
            lane.fire(FaultSite::ProducerStall);
            lane.fire(FaultSite::Disconnect);
        }
        let s = plan.stats().snapshot();
        assert!(
            s.disconnects * 3 < s.stalls,
            "disconnects {} not scaled below stalls {}",
            s.disconnects,
            s.stalls
        );
        assert_eq!(s.total(), s.stalls + s.disconnects);
    }

    #[test]
    fn corrupt_read_flips_exactly_one_bit_when_it_fires() {
        let plan = FaultPlan::new(FaultSpec { seed: 2, rate: 1.0 });
        let lane = plan.lane(7);
        let clean = vec![0xABu8; 64];
        let mut bytes = clean.clone();
        assert!(lane.corrupt_read(&mut bytes));
        let flipped: u32 = clean
            .iter()
            .zip(&bytes)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        let mut empty: Vec<u8> = Vec::new();
        assert!(!lane.corrupt_read(&mut empty));
    }

    #[test]
    fn with_retry_backs_off_and_bounds_attempts() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(3),
        };
        // Succeeds on the third try: two recorded sleeps, doubling.
        let mut slept = Vec::new();
        let mut calls = 0;
        let (result, retries) = with_retry(
            &policy,
            |d| slept.push(d),
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(result, Ok(3));
        assert_eq!(retries, 2);
        assert_eq!(
            slept,
            vec![Duration::from_millis(1), Duration::from_millis(2)]
        );

        // Never succeeds: exactly `attempts` calls, delay capped.
        let mut slept = Vec::new();
        let mut calls = 0;
        let (result, retries): (Result<(), _>, _) = with_retry(
            &policy,
            |d| slept.push(d),
            || {
                calls += 1;
                Err(calls)
            },
        );
        assert_eq!(result, Err(4));
        assert_eq!(retries, 3);
        assert_eq!(calls, 4);
        assert_eq!(slept.last(), Some(&Duration::from_millis(3)));
    }
}
