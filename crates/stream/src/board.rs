//! The public board of Fig. 3.
//!
//! "A public board, accessible to the adversary, enables the collector to
//! record the untrimmed data (step ①, ⑥)." The board is the white-box
//! channel of the threat model: the adversary "has full knowledge of the
//! strategy employed by the data collector in the previous round, for
//! example, the data collector's trimming positions". It is append-only
//! and thread-safe so concurrent adversary/collector tasks can share it.

use parking_lot::RwLock;
use std::sync::Arc;
use trimgame_numerics::stats::OnlineStats;

/// One round's public record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// The trimming percentile the collector applied this round.
    pub threshold_percentile: f64,
    /// The absolute threshold value that percentile resolved to.
    pub threshold_value: Option<f64>,
    /// Values received this round (benign + poison).
    pub received: usize,
    /// Values trimmed this round.
    pub trimmed: usize,
    /// Summary statistics of the retained (untrimmed) data.
    pub retained: OnlineStats,
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
}

/// Append-only, thread-safe board of [`RoundRecord`]s. Cloning shares the
/// underlying storage (both the collector and the adversary hold the same
/// board).
#[derive(Debug, Clone, Default)]
pub struct PublicBoard {
    inner: Arc<RwLock<Vec<RoundRecord>>>,
}

impl PublicBoard {
    /// Creates an empty board.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round record.
    pub fn post(&self, record: RoundRecord) {
        self.inner.write().push(record);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// The most recent record, if any (what the adversary reads in step ⑥
    /// to verify last round's trimming threshold).
    #[must_use]
    pub fn latest(&self) -> Option<RoundRecord> {
        self.inner.read().last().cloned()
    }

    /// Record of a specific round (1-based), if recorded.
    #[must_use]
    pub fn round(&self, round: usize) -> Option<RoundRecord> {
        self.inner.read().iter().find(|r| r.round == round).cloned()
    }

    /// Snapshot of the full history.
    #[must_use]
    pub fn history(&self) -> Vec<RoundRecord> {
        self.inner.read().clone()
    }

    /// Records appended at or after insertion index `from` (0-based) —
    /// the incremental read an adaptive observer uses so a `T`-round
    /// watch costs `O(T)` copies total instead of `O(T²)` full-history
    /// snapshots.
    #[must_use]
    pub fn history_since(&self, from: usize) -> Vec<RoundRecord> {
        self.inner
            .read()
            .get(from..)
            .map_or_else(Vec::new, <[RoundRecord]>::to_vec)
    }

    /// Cumulative fraction of received values that were trimmed.
    #[must_use]
    pub fn cumulative_trim_fraction(&self) -> f64 {
        let guard = self.inner.read();
        let received: usize = guard.iter().map(|r| r.received).sum();
        let trimmed: usize = guard.iter().map(|r| r.trimmed).sum();
        if received == 0 {
            0.0
        } else {
            trimmed as f64 / received as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, trimmed: usize) -> RoundRecord {
        let mut retained = OnlineStats::new();
        retained.extend(&[1.0, 2.0, 3.0]);
        RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(10.0),
            received: 100,
            trimmed,
            retained,
            quality: 0.95,
        }
    }

    #[test]
    fn post_and_read_back() {
        let board = PublicBoard::new();
        assert!(board.is_empty());
        board.post(record(1, 5));
        board.post(record(2, 7));
        assert_eq!(board.len(), 2);
        assert_eq!(board.latest().unwrap().round, 2);
        assert_eq!(board.round(1).unwrap().trimmed, 5);
        assert!(board.round(9).is_none());
    }

    #[test]
    fn clones_share_state() {
        let board = PublicBoard::new();
        let adversary_view = board.clone();
        board.post(record(1, 3));
        assert_eq!(adversary_view.len(), 1);
        assert_eq!(adversary_view.latest().unwrap().trimmed, 3);
    }

    #[test]
    fn cumulative_trim_fraction_aggregates() {
        let board = PublicBoard::new();
        board.post(record(1, 10));
        board.post(record(2, 30));
        assert!((board.cumulative_trim_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_board_fraction_zero() {
        assert_eq!(PublicBoard::new().cumulative_trim_fraction(), 0.0);
    }

    #[test]
    fn concurrent_posting_is_safe() {
        let board = PublicBoard::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = board.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        b.post(record(t * 50 + i + 1, 1));
                    }
                });
            }
        });
        assert_eq!(board.len(), 200);
    }

    #[test]
    fn history_snapshot_is_detached() {
        let board = PublicBoard::new();
        board.post(record(1, 1));
        let snapshot = board.history();
        board.post(record(2, 2));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(board.len(), 2);
    }

    #[test]
    fn history_since_reads_incrementally() {
        let board = PublicBoard::new();
        assert!(board.history_since(0).is_empty());
        board.post(record(1, 1));
        board.post(record(2, 2));
        board.post(record(3, 3));
        let tail = board.history_since(1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].round, 2);
        // Past-the-end and far-out-of-range reads are empty, not panics.
        assert!(board.history_since(3).is_empty());
        assert!(board.history_since(99).is_empty());
    }
}
