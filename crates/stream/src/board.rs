//! The public board of Fig. 3 — sharded and chunked for concurrent
//! collectors.
//!
//! "A public board, accessible to the adversary, enables the collector to
//! record the untrimmed data (step ①, ⑥)." The board is the white-box
//! channel of the threat model: the adversary "has full knowledge of the
//! strategy employed by the data collector in the previous round, for
//! example, the data collector's trimming positions". It is append-only
//! and thread-safe so concurrent adversary/collector tasks can share it.
//!
//! Storage is **chunked append-only**: a shard seals records into
//! immutable reference-counted chunks of `CHUNK_CAP` records as they
//! fill, and
//! keeps only the open tail mutable. Readers take a [`BoardSnapshot`] —
//! an `Arc` bump per sealed chunk plus a copy of the short tail — and
//! then walk the history without holding any lock and without cloning
//! the bulk of the records. Aggregates ([`PublicBoard::len`],
//! [`PublicBoard::cumulative_trim_fraction`]) are maintained as running
//! totals, and [`PublicBoard::round`] resolves by binary search on the
//! append-ordered round numbers instead of a linear scan.
//!
//! One [`PublicBoard`] is one collector's shard. Many concurrent engines
//! that should publish into a *common* venue — the sweep's shared-board
//! mode — use a [`ShardedBoard`]: per-collector shards (writers never
//! contend on each other's locks) plus a [`ShardedBoard::merged`] view
//! that k-way-merges the shards in round order for cross-collector
//! observers studying information leakage.
//!
//! A long-running stream adds a second shard dimension: a [`RangedBoard`]
//! splits one logical collector's history into fixed **round-range**
//! spans, each its own [`PublicBoard`], so a stream with years of history
//! stays O(chunk) hot — appends route to the live span in O(1) and
//! [`RangedBoard::for_each_since_round`] opens only the spans at or after
//! the requested round, never scanning cold ranges. [`RangedVenue`] is
//! the collector service's publication venue: one [`RangedBoard`] per
//! ingest worker (the PR 5 per-collector sharding) × round-range spans
//! within each, with [`RangedVenue::merged`] staying round-ordered across
//! both shard dimensions.

use crate::compact::TierStats;
use crate::fault::{with_retry, FaultLane, FaultSite, RetryPolicy};
use crate::frame::{crc32, Frame};
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use trimgame_numerics::stats::OnlineStats;

/// One round's public record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// The trimming percentile the collector applied this round.
    pub threshold_percentile: f64,
    /// The absolute threshold value that percentile resolved to.
    pub threshold_value: Option<f64>,
    /// Values received this round (benign + poison).
    pub received: usize,
    /// Values trimmed this round.
    pub trimmed: usize,
    /// Summary statistics of the retained (untrimmed) data.
    pub retained: OnlineStats,
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
}

/// Records per sealed chunk: big enough that a long game seals rarely,
/// small enough that a snapshot's tail copy stays trivial.
const CHUNK_CAP: usize = 64;

#[derive(Debug, Default)]
struct ShardInner {
    /// Sealed, immutable chunks of exactly [`CHUNK_CAP`] records each.
    sealed: Vec<Arc<[RoundRecord]>>,
    /// The open chunk (`< CHUNK_CAP` records).
    tail: Vec<RoundRecord>,
    /// Running totals for O(1) aggregates.
    received_total: usize,
    trimmed_total: usize,
}

impl ShardInner {
    fn len(&self) -> usize {
        self.sealed.len() * CHUNK_CAP + self.tail.len()
    }

    fn get(&self, idx: usize) -> &RoundRecord {
        let sealed_len = self.sealed.len() * CHUNK_CAP;
        if idx < sealed_len {
            &self.sealed[idx / CHUNK_CAP][idx % CHUNK_CAP]
        } else {
            &self.tail[idx - sealed_len]
        }
    }

    fn push(&mut self, record: RoundRecord) {
        self.received_total += record.received;
        self.trimmed_total += record.trimmed;
        self.tail.push(record);
        if self.tail.len() == CHUNK_CAP {
            self.sealed.push(self.tail.drain(..).collect());
        }
    }
}

/// Append-only, thread-safe board of [`RoundRecord`]s — one collector's
/// shard. Cloning shares the underlying storage (both the collector and
/// the adversary hold the same board).
///
/// Records are append-ordered by round (the engine posts round `1, 2, …`
/// monotonically; gaps are fine) — [`PublicBoard::round`] relies on that
/// order for its binary search.
#[derive(Debug, Clone, Default)]
pub struct PublicBoard {
    inner: Arc<RwLock<ShardInner>>,
}

impl PublicBoard {
    /// Creates an empty board.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round record.
    pub fn post(&self, record: RoundRecord) {
        self.inner.write().push(record);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().len() == 0
    }

    /// The most recent record, if any (what the adversary reads in step ⑥
    /// to verify last round's trimming threshold).
    #[must_use]
    pub fn latest(&self) -> Option<RoundRecord> {
        let guard = self.inner.read();
        guard
            .tail
            .last()
            .or_else(|| guard.sealed.last().map(|c| &c[CHUNK_CAP - 1]))
            .cloned()
    }

    /// The most recent recorded round number, if any — `O(1)` and
    /// snapshot-free (unlike [`PublicBoard::latest`] it clones no record,
    /// so a coalescer can poll it on the ingest hot path).
    #[must_use]
    pub fn last_round(&self) -> Option<usize> {
        let guard = self.inner.read();
        guard
            .tail
            .last()
            .or_else(|| guard.sealed.last().map(|c| &c[CHUNK_CAP - 1]))
            .map(|r| r.round)
    }

    /// Record of a specific round (1-based), if recorded — `O(log n)`
    /// binary search on the append-ordered round numbers (gaps between
    /// rounds are fine; out-of-order posting voids the search order).
    #[must_use]
    pub fn round(&self, round: usize) -> Option<RoundRecord> {
        let guard = self.inner.read();
        let n = guard.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if guard.get(mid).round < round {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && guard.get(lo).round == round).then(|| guard.get(lo).clone())
    }

    /// Snapshot of the full history as owned records. Prefer
    /// [`PublicBoard::snapshot`] for bulk reads — it shares the sealed
    /// chunks instead of cloning every record.
    #[must_use]
    pub fn history(&self) -> Vec<RoundRecord> {
        self.snapshot().iter().cloned().collect()
    }

    /// Records appended at or after insertion index `from` (0-based) —
    /// the incremental read an adaptive observer uses so a `T`-round
    /// watch costs `O(T)` copies total instead of `O(T²)` full-history
    /// snapshots.
    #[must_use]
    pub fn history_since(&self, from: usize) -> Vec<RoundRecord> {
        let guard = self.inner.read();
        (from..guard.len()).map(|i| guard.get(i).clone()).collect()
    }

    /// Visits records appended at or after insertion index `from` under
    /// the read lock — the allocation-free incremental read (board-driven
    /// attackers ingest new rounds this way).
    pub fn for_each_since(&self, from: usize, mut f: impl FnMut(&RoundRecord)) {
        let guard = self.inner.read();
        for i in from..guard.len() {
            f(guard.get(i));
        }
    }

    /// Visits records whose round number is `>= round` under the read
    /// lock, in append order — `O(log n)` to find the start (the same
    /// binary search as [`PublicBoard::round`], so it relies on
    /// append-ordered round numbers), then `O(visited)`. This is the
    /// range-shard read: a [`RangedBoard`] resolves the span holding
    /// `round` and starts here, never scanning colder records.
    pub fn for_each_from_round(&self, round: usize, mut f: impl FnMut(&RoundRecord)) {
        let guard = self.inner.read();
        let n = guard.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if guard.get(mid).round < round {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for i in lo..n {
            f(guard.get(i));
        }
    }

    /// A lock-free read view: `Arc` bumps for the sealed chunks plus a
    /// copy of the open tail (at most `CHUNK_CAP − 1` records). Taking
    /// a snapshot is `O(chunks)`, iterating it clones nothing.
    #[must_use]
    pub fn snapshot(&self) -> BoardSnapshot {
        let guard = self.inner.read();
        BoardSnapshot {
            len: guard.len(),
            chunks: guard.sealed.clone(),
            tail: guard.tail.clone(),
        }
    }

    /// Cumulative fraction of received values that were trimmed — `O(1)`
    /// from running totals.
    #[must_use]
    pub fn cumulative_trim_fraction(&self) -> f64 {
        let guard = self.inner.read();
        if guard.received_total == 0 {
            0.0
        } else {
            guard.trimmed_total as f64 / guard.received_total as f64
        }
    }
}

/// A detached, immutable view of a board's history at snapshot time:
/// shares the stored chunks, owns only the short tail.
///
/// Chunks may be **ragged**: a hot board snapshots into uniform
/// `CHUNK_CAP` chunks, while a compacted span inflates into a single
/// chunk holding the whole span — readers walk chunk by chunk and never
/// assume a fixed chunk size.
#[derive(Debug, Clone, Default)]
pub struct BoardSnapshot {
    len: usize,
    chunks: Vec<Arc<[RoundRecord]>>,
    tail: Vec<RoundRecord>,
}

impl BoardSnapshot {
    /// Wraps an inflated cold span as a single-chunk snapshot.
    pub(crate) fn from_records(records: Arc<[RoundRecord]>) -> Self {
        Self {
            len: records.len(),
            chunks: vec![records],
            tail: Vec::new(),
        }
    }

    /// Number of records in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the snapshot holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of contiguous parts (chunks plus the tail).
    fn parts(&self) -> usize {
        self.chunks.len() + 1
    }

    /// Part `i` as a contiguous slice; the tail is always the last part.
    fn part(&self, i: usize) -> &[RoundRecord] {
        if i < self.chunks.len() {
            &self.chunks[i]
        } else {
            &self.tail
        }
    }

    /// The record at insertion index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> &RoundRecord {
        let mut rest = idx;
        for i in 0..self.parts() {
            let part = self.part(i);
            if rest < part.len() {
                return &part[rest];
            }
            rest -= part.len();
        }
        panic!("snapshot index {idx} out of range {}", self.len)
    }

    /// Iterates the records in insertion order, without cloning.
    pub fn iter(&self) -> impl Iterator<Item = &RoundRecord> {
        self.chunks
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }
}

/// A shared publication venue for many concurrent collectors: one
/// [`PublicBoard`] shard per collector, so writers never contend on a
/// common lock, plus a merged read view for cross-collector observers.
///
/// This is the sweep's shared-board mode: every engine in a grid posts
/// into its own shard of one venue, and an adversary reading
/// [`ShardedBoard::merged`] sees the union of all collectors' public
/// records — the cross-collector information-leakage channel.
#[derive(Debug, Clone)]
pub struct ShardedBoard {
    shards: Arc<[PublicBoard]>,
}

impl ShardedBoard {
    /// Creates a venue with `collectors` empty shards.
    ///
    /// # Panics
    /// Panics if `collectors == 0`.
    #[must_use]
    pub fn new(collectors: usize) -> Self {
        assert!(collectors > 0, "need at least one collector");
        Self {
            shards: (0..collectors).map(|_| PublicBoard::new()).collect(),
        }
    }

    /// Number of collector shards.
    #[must_use]
    pub fn collectors(&self) -> usize {
        self.shards.len()
    }

    /// Collector `idx`'s shard — a [`PublicBoard`] handle sharing the
    /// shard's storage (hand it to that collector's engine).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn collector(&self, idx: usize) -> PublicBoard {
        self.shards[idx].clone()
    }

    /// Total records across all shards.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(PublicBoard::len).sum()
    }

    /// The highest round recorded on any shard, if any — `O(shards)`
    /// cheap reads, no snapshot materialized.
    #[must_use]
    pub fn last_round(&self) -> Option<usize> {
        self.shards.iter().filter_map(PublicBoard::last_round).max()
    }

    /// A merged view of all shards at snapshot time, ordered by
    /// `(round, collector)` — what a cross-collector observer reads.
    #[must_use]
    pub fn merged(&self) -> MergedHistory {
        MergedHistory {
            chains: self.shards.iter().map(|s| vec![s.snapshot()]).collect(),
            min_round: 0,
        }
    }
}

/// One logical collector's history, sharded by **round range**: span `s`
/// holds rounds `s·span + 1 ..= (s+1)·span`, each span its own
/// [`PublicBoard`]. Appends route to the live span in O(1) (spans grow
/// lazily), aggregate reads ([`RangedBoard::len`],
/// [`RangedBoard::last_round`]) are lock-free atomics, and ranged reads
/// open only the spans at or after the requested round — a stream with
/// years of history stays O(chunk) hot. Cloning shares the storage.
///
/// Like [`PublicBoard`], rounds must be posted in nondecreasing order for
/// the per-span binary searches to hold.
///
/// **Tiering.** Each span lives in one of three tiers: *hot* (the chunked
/// [`PublicBoard`] it was appended into), *framed* (compacted into an
/// immutable bit-packed [`Frame`] by a [`crate::compact::Compactor`]), or
/// *spilled* (the frame's bytes written to a disk file, nothing
/// resident). Every read path re-inflates cold spans transparently, so
/// tiering never changes what a reader observes — only where the bytes
/// live. Posts must land in a hot span; compaction only ever freezes
/// spans strictly below the live one, which the nondecreasing-round
/// contract keeps write-free.
#[derive(Debug, Clone)]
pub struct RangedBoard {
    span: usize,
    spans: Arc<RwLock<Vec<SpanSlot>>>,
    len: Arc<AtomicUsize>,
    /// Highest posted round; 0 encodes "none" (rounds are 1-based).
    last_round: Arc<AtomicUsize>,
    /// Tier activity counters (shared venue-wide when the board belongs
    /// to a [`RangedVenue`]).
    stats: Arc<TierStats>,
    /// LRU clock: bumped per cold-capable read, stamped onto the spans
    /// the read touches.
    clock: Arc<AtomicU64>,
    /// Injected-fault lane for this board's spill I/O (tests and chaos
    /// smokes only; unarmed boards take the fast path).
    faults: Arc<OnceLock<FaultLane>>,
}

/// One span's storage slot: its tier plus the LRU stamp of the last read
/// that touched it cold.
#[derive(Debug)]
struct SpanSlot {
    tier: SpanTier,
    touched: AtomicU64,
}

impl SpanSlot {
    fn hot() -> Self {
        Self {
            tier: SpanTier::Hot(PublicBoard::new()),
            touched: AtomicU64::new(0),
        }
    }
}

/// Where a span's records currently live.
#[derive(Debug)]
enum SpanTier {
    /// Mutable chunked storage — the append target.
    Hot(PublicBoard),
    /// Compacted into an immutable resident frame.
    Framed(Arc<Frame>),
    /// Frame bytes on disk; nothing resident.
    Spilled(SpilledSpan),
}

/// A span whose frame lives in a disk file.
#[derive(Debug, Clone)]
struct SpilledSpan {
    path: PathBuf,
    len: usize,
}

/// A clone of one span's tier, extracted under the read lock so decoding
/// and file IO happen outside it.
enum TierHandle {
    Hot(PublicBoard),
    Framed(Arc<Frame>),
    Spilled(SpilledSpan),
}

/// What a successful span freeze produced, for the spill manifest (byte
/// accounting goes straight into [`TierStats`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FreezeReceipt {
    /// Records in the span.
    pub len: usize,
    /// First round the span holds.
    pub base_round: usize,
    /// Last round the span holds.
    pub last_round: usize,
}

/// What a successful span spill produced — everything the durable
/// manifest needs to find and verify the file again after a crash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpillReceipt {
    /// Records in the span.
    pub len: usize,
    /// First round the span holds.
    pub base_round: usize,
    /// Last round the span holds.
    pub last_round: usize,
    /// CRC-32 of the complete spill file.
    pub file_crc: u32,
}

/// Kinds + accounting summary of one span, for the compaction policy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanSummary {
    /// Span index.
    pub idx: usize,
    /// Resident bytes this span holds (0 when spilled).
    pub resident_bytes: usize,
    /// LRU stamp of the last cold read (0 = never read cold).
    pub touched: u64,
    /// True while the span is in hot chunked storage.
    pub is_hot: bool,
    /// True while the span is a resident frame.
    pub is_framed: bool,
    /// Records in the span.
    pub len: usize,
}

impl RangedBoard {
    /// Creates an empty board with `span` rounds per range shard.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    #[must_use]
    pub fn new(span: usize) -> Self {
        Self::with_stats(span, Arc::new(TierStats::default()))
    }

    /// Creates an empty board wired to share `stats` with other boards —
    /// how a [`RangedVenue`] aggregates tier counters venue-wide.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    #[must_use]
    pub fn with_stats(span: usize, stats: Arc<TierStats>) -> Self {
        assert!(span > 0, "round span must be positive");
        Self {
            span,
            spans: Arc::new(RwLock::new(Vec::new())),
            len: Arc::new(AtomicUsize::new(0)),
            last_round: Arc::new(AtomicUsize::new(0)),
            stats,
            clock: Arc::new(AtomicU64::new(0)),
            faults: Arc::new(OnceLock::new()),
        }
    }

    /// Arms this board's spill I/O with an injected-fault lane (chaos
    /// smokes and tests). First arm wins; later calls are ignored.
    pub fn arm_faults(&self, lane: FaultLane) {
        let _ = self.faults.set(lane);
    }

    /// Rounds per range shard.
    #[must_use]
    pub fn span(&self) -> usize {
        self.span
    }

    /// The tier activity counters this board reports into.
    #[must_use]
    pub fn tier_stats(&self) -> Arc<TierStats> {
        self.stats.clone()
    }

    /// The span index holding `round` (1-based rounds).
    fn span_of(&self, round: usize) -> usize {
        (round.max(1) - 1) / self.span
    }

    /// The span index of the live (append-target) span.
    pub(crate) fn live_span(&self) -> usize {
        self.span_of(self.last_round.load(Ordering::Relaxed))
    }

    /// The hot span board for `idx`, growing empty spans up to it if
    /// needed.
    ///
    /// # Panics
    /// Panics if span `idx` has been compacted — posting into a frozen
    /// span means the nondecreasing-round posting contract was broken.
    fn span_board(&self, idx: usize) -> PublicBoard {
        {
            let guard = self.spans.read();
            if let Some(slot) = guard.get(idx) {
                match &slot.tier {
                    SpanTier::Hot(board) => return board.clone(),
                    _ => panic!("posting into compacted span {idx}"),
                }
            }
        }
        let mut guard = self.spans.write();
        while guard.len() <= idx {
            guard.push(SpanSlot::hot());
        }
        match &guard[idx].tier {
            SpanTier::Hot(board) => board.clone(),
            _ => panic!("posting into compacted span {idx}"),
        }
    }

    /// Clones the tier handles of spans `first..`, stamping the LRU clock
    /// onto every cold span the read is about to touch.
    fn tier_handles_from(&self, first: usize) -> Vec<TierHandle> {
        let guard = self.spans.read();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        guard
            .iter()
            .skip(first)
            .map(|slot| match &slot.tier {
                SpanTier::Hot(board) => TierHandle::Hot(board.clone()),
                SpanTier::Framed(frame) => {
                    slot.touched.store(tick, Ordering::Relaxed);
                    TierHandle::Framed(frame.clone())
                }
                SpanTier::Spilled(spill) => {
                    slot.touched.store(tick, Ordering::Relaxed);
                    TierHandle::Spilled(spill.clone())
                }
            })
            .collect()
    }

    /// Decodes a cold handle back into records, counting the inflation.
    ///
    /// A spilled frame's file is the span's only copy, so reads go
    /// through bounded retry-with-backoff (transient errors — including
    /// injected bit-flips, which the frame checksum catches — get fresh
    /// attempts). A read that stays unreadable is *quarantined*: counted
    /// in [`TierStats`] as a lost span read and returned as an empty
    /// span, never a panic — the venue degrades to the records it can
    /// still serve.
    fn inflate(&self, handle: &TierHandle) -> Arc<[RoundRecord]> {
        match handle {
            TierHandle::Hot(_) => unreachable!("hot spans are never inflated"),
            TierHandle::Framed(frame) => {
                self.stats.count_inflation();
                frame.decode().into()
            }
            TierHandle::Spilled(spill) => {
                self.stats.count_spill_load();
                self.stats.count_inflation();
                let (result, retries) =
                    with_retry(&RetryPolicy::default(), std::thread::sleep, || {
                        let mut bytes = std::fs::read(&spill.path).map_err(|e| e.to_string())?;
                        if let Some(lane) = self.faults.get() {
                            lane.corrupt_read(&mut bytes);
                        }
                        Frame::from_bytes(&bytes).map_err(|e| e.to_string())
                    });
                self.stats.add_io_retries(u64::from(retries));
                match result {
                    Ok(frame) => frame.decode().into(),
                    Err(_) => {
                        self.stats.count_lost_span_read();
                        Vec::new().into()
                    }
                }
            }
        }
    }

    /// Resident bytes held by the spans a compactor with `hot_tail_spans`
    /// would consider eligible — the quantity its resident budget bounds.
    /// Hot spans account at raw record size, framed spans at packed size,
    /// spilled spans at zero.
    #[must_use]
    pub fn resident_cold_bytes(&self, hot_tail_spans: usize) -> usize {
        let live = self.live_span();
        self.span_summaries()
            .iter()
            .filter(|s| s.idx + hot_tail_spans < live)
            .map(|s| s.resident_bytes)
            .sum()
    }

    /// Per-span tier/accounting summaries, for the compaction policy.
    /// Hot spans account at raw record size, framed spans at their packed
    /// size, spilled spans at zero.
    pub(crate) fn span_summaries(&self) -> Vec<SpanSummary> {
        let guard = self.spans.read();
        guard
            .iter()
            .enumerate()
            .map(|(idx, slot)| {
                let (resident_bytes, is_hot, is_framed, len) = match &slot.tier {
                    SpanTier::Hot(board) => {
                        let len = board.len();
                        (len * std::mem::size_of::<RoundRecord>(), true, false, len)
                    }
                    SpanTier::Framed(frame) => (frame.packed_bytes(), false, true, frame.len()),
                    SpanTier::Spilled(spill) => (0, false, false, spill.len),
                };
                SpanSummary {
                    idx,
                    resident_bytes,
                    touched: slot.touched.load(Ordering::Relaxed),
                    is_hot,
                    is_framed,
                    len,
                }
            })
            .collect()
    }

    /// Compacts hot span `idx` into a resident frame. Encoding runs
    /// outside the span lock; the swap re-checks that the span is still
    /// the hot board it encoded. Returns the freeze's accounting receipt
    /// on success, `None` if the span is missing, empty, or already
    /// cold.
    pub(crate) fn freeze_span(&self, idx: usize) -> Option<FreezeReceipt> {
        let board = {
            let guard = self.spans.read();
            match &guard.get(idx)?.tier {
                SpanTier::Hot(board) if !board.is_empty() => board.clone(),
                _ => return None,
            }
        };
        let records = board.history();
        let raw_bytes = records.len() * std::mem::size_of::<RoundRecord>();
        let frame = Arc::new(Frame::encode(&records));
        let framed_bytes = frame.packed_bytes();
        let receipt = FreezeReceipt {
            len: records.len(),
            base_round: records[0].round,
            last_round: records[records.len() - 1].round,
        };
        let mut guard = self.spans.write();
        let slot = guard.get_mut(idx)?;
        match &slot.tier {
            // A sealed span below the live one cannot grow, but re-check
            // anyway so a racing (contract-violating) post loses cleanly.
            SpanTier::Hot(board) if board.len() == records.len() => {
                slot.tier = SpanTier::Framed(frame);
                self.stats
                    .count_frame(records.len() as u64, raw_bytes as u64, framed_bytes as u64);
                Some(receipt)
            }
            _ => None,
        }
    }

    /// Evicts framed span `idx` to a disk file at `path`, leaving nothing
    /// resident. File IO runs outside the span lock. Returns the spill's
    /// manifest-grade receipt, or `Ok(None)` if the span is not currently
    /// a resident frame.
    ///
    /// # Errors
    /// Returns the IO error if the spill file cannot be written (an armed
    /// fault lane can inject outright failures and torn half-writes
    /// here); the span stays framed and resident.
    pub(crate) fn spill_span(
        &self,
        idx: usize,
        path: PathBuf,
    ) -> std::io::Result<Option<SpillReceipt>> {
        let frame = {
            let guard = self.spans.read();
            match guard.get(idx).map(|s| &s.tier) {
                Some(SpanTier::Framed(frame)) => frame.clone(),
                _ => return Ok(None),
            }
        };
        let bytes = frame.to_bytes();
        if let Some(lane) = self.faults.get() {
            if lane.fire(FaultSite::SpillWriteError) {
                return Err(std::io::Error::other("injected spill write error"));
            }
            if lane.fire(FaultSite::SpillShortWrite) {
                // A torn write: half the frame lands, then the error —
                // exactly what recovery's checksum must catch.
                std::fs::write(&path, &bytes[..bytes.len() / 2])?;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected short spill write",
                ));
            }
        }
        let file_crc = crc32(&bytes);
        std::fs::write(&path, bytes)?;
        let mut guard = self.spans.write();
        let Some(slot) = guard.get_mut(idx) else {
            return Ok(None);
        };
        match &slot.tier {
            SpanTier::Framed(f) if Arc::ptr_eq(f, &frame) => {
                let receipt = SpillReceipt {
                    len: frame.len(),
                    base_round: frame.base_round(),
                    last_round: frame.last_round(),
                    file_crc,
                };
                slot.tier = SpanTier::Spilled(SpilledSpan {
                    path,
                    len: frame.len(),
                });
                self.stats.count_spill_write();
                Ok(Some(receipt))
            }
            _ => Ok(None),
        }
    }

    /// Adopts a recovered spilled span back into this (empty) board —
    /// the rebuild path of `RangedVenue::recover_from_spill`. Spans must
    /// adopt in index order so reads walk them contiguously.
    ///
    /// # Panics
    /// Panics if `idx` is not the next span slot.
    pub(crate) fn adopt_spilled_span(
        &self,
        idx: usize,
        path: PathBuf,
        len: usize,
        last_round: usize,
    ) {
        let mut guard = self.spans.write();
        assert_eq!(guard.len(), idx, "recovered spans adopt in order");
        guard.push(SpanSlot {
            tier: SpanTier::Spilled(SpilledSpan { path, len }),
            touched: AtomicU64::new(0),
        });
        self.len.fetch_add(len, Ordering::Relaxed);
        self.last_round.fetch_max(last_round, Ordering::Relaxed);
    }

    /// Appends a round record — O(1) routing to the live span, no scan of
    /// cold ranges.
    ///
    /// # Panics
    /// Panics if `record.round == 0` (rounds are 1-based).
    pub fn post(&self, record: RoundRecord) {
        assert!(record.round > 0, "rounds are 1-based");
        let board = self.span_board(self.span_of(record.round));
        self.last_round.fetch_max(record.round, Ordering::Relaxed);
        self.len.fetch_add(1, Ordering::Relaxed);
        board.post(record);
    }

    /// Total records across all spans — O(1) from a lock-free counter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The highest posted round, if any — O(1) from a lock-free counter
    /// (the coalescer's hot-path monotonicity check).
    #[must_use]
    pub fn last_round(&self) -> Option<usize> {
        match self.last_round.load(Ordering::Relaxed) {
            0 => None,
            r => Some(r),
        }
    }

    /// Record of a specific round, if recorded — resolves the span in
    /// O(1), then the span's O(log chunk) binary search (a cold span
    /// inflates first).
    #[must_use]
    pub fn round(&self, round: usize) -> Option<RoundRecord> {
        if round == 0 {
            return None;
        }
        let idx = self.span_of(round);
        let handle = self.tier_handles_from(idx).into_iter().next()?;
        match handle {
            TierHandle::Hot(board) => board.round(round),
            ref cold => {
                let records = self.inflate(cold);
                let at = records.partition_point(|r| r.round < round);
                records.get(at).filter(|r| r.round == round).cloned()
            }
        }
    }

    /// Visits every record with round `>= round` in append order. Only
    /// the span holding `round` and the spans after it are opened; cold
    /// ranges are never touched — the incremental read an observer over a
    /// long-lived stream uses. Cold spans at or after the bound inflate
    /// transparently (and count as inflations in the tier stats).
    pub fn for_each_since_round(&self, round: usize, mut f: impl FnMut(&RoundRecord)) {
        let first = self.span_of(round);
        for (i, handle) in self.tier_handles_from(first).iter().enumerate() {
            match handle {
                TierHandle::Hot(board) => {
                    if i == 0 {
                        board.for_each_from_round(round, &mut f);
                    } else {
                        board.for_each_since(0, &mut f);
                    }
                }
                cold => {
                    let records = self.inflate(cold);
                    // Only the first span can hold rounds below the bound.
                    let start = if i == 0 {
                        records.partition_point(|r| r.round < round)
                    } else {
                        0
                    };
                    for r in &records[start..] {
                        f(r);
                    }
                }
            }
        }
    }

    /// Snapshots of all spans in range order. Concatenated they are
    /// round-nondecreasing (given monotone posting), which is what
    /// [`MergedHistory`] k-way-merges across collectors.
    #[must_use]
    pub fn snapshot_chain(&self) -> Vec<BoardSnapshot> {
        self.snapshot_chain_since(0)
    }

    /// Snapshots of only the spans that can hold rounds `>= round` — the
    /// bounded variant board-driven observers use so a long cold history
    /// is never materialized (or inflated) just to be skipped. The first
    /// returned span may still contain earlier rounds; a
    /// [`MergedHistory`] built over these chains applies the exact bound.
    #[must_use]
    pub fn snapshot_chain_since(&self, round: usize) -> Vec<BoardSnapshot> {
        let first = self.span_of(round);
        self.tier_handles_from(first)
            .iter()
            .map(|handle| match handle {
                TierHandle::Hot(board) => board.snapshot(),
                cold => BoardSnapshot::from_records(self.inflate(cold)),
            })
            .collect()
    }
}

/// The collector service's publication venue, sharded along **both**
/// dimensions: one [`RangedBoard`] per ingest worker (writers never
/// contend, as in [`ShardedBoard`]) and round-range spans within each
/// worker's stream (history stays O(chunk) hot). [`RangedVenue::merged`]
/// k-way-merges the whole venue in `(round, collector)` order across both
/// dimensions.
#[derive(Debug, Clone)]
pub struct RangedVenue {
    shards: Arc<[RangedBoard]>,
}

impl RangedVenue {
    /// Creates a venue with `collectors` empty worker shards of `span`
    /// rounds per range.
    ///
    /// # Panics
    /// Panics if `collectors == 0` or `span == 0`.
    #[must_use]
    pub fn new(collectors: usize, span: usize) -> Self {
        assert!(collectors > 0, "need at least one collector");
        let stats = Arc::new(TierStats::default());
        Self {
            shards: (0..collectors)
                .map(|_| RangedBoard::with_stats(span, stats.clone()))
                .collect(),
        }
    }

    /// The venue-wide tier activity counters (every shard reports into
    /// the same [`TierStats`]).
    #[must_use]
    pub fn tier_stats(&self) -> Arc<TierStats> {
        self.shards[0].tier_stats()
    }

    /// Total resident bytes held by spans across the venue — hot spans at
    /// raw record size, framed spans at packed size, spilled spans free.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.span_summaries())
            .map(|s| s.resident_bytes)
            .sum()
    }

    /// Resident bytes across shards in spans a compactor with
    /// `hot_tail_spans` would consider eligible — the quantity a
    /// per-shard resident budget bounds.
    #[must_use]
    pub fn resident_cold_bytes(&self, hot_tail_spans: usize) -> usize {
        self.shards
            .iter()
            .map(|s| s.resident_cold_bytes(hot_tail_spans))
            .sum()
    }

    /// Number of worker shards.
    #[must_use]
    pub fn collectors(&self) -> usize {
        self.shards.len()
    }

    /// Worker `idx`'s range-sharded stream — a handle sharing the storage
    /// (hand it to that ingest worker).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn collector(&self, idx: usize) -> RangedBoard {
        self.shards[idx].clone()
    }

    /// Total records across the venue — O(collectors) lock-free reads.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(RangedBoard::len).sum()
    }

    /// The highest round recorded by any worker, if any — O(collectors)
    /// lock-free reads.
    #[must_use]
    pub fn last_round(&self) -> Option<usize> {
        self.shards.iter().filter_map(RangedBoard::last_round).max()
    }

    /// A merged view of the whole venue at snapshot time, ordered by
    /// `(round, collector)` across both shard dimensions.
    #[must_use]
    pub fn merged(&self) -> MergedHistory {
        self.merged_since_round(0)
    }

    /// A merged view bounded below at `round`: only the spans that can
    /// hold rounds `>= round` are snapshotted (cold spans below the bound
    /// are never inflated), and the k-way merge skips the sub-bound
    /// records the first spans may still carry. This is the incremental
    /// read path of a venue-driven observer over a long history.
    #[must_use]
    pub fn merged_since_round(&self, round: usize) -> MergedHistory {
        MergedHistory {
            chains: self
                .shards
                .iter()
                .map(|s| s.snapshot_chain_since(round))
                .collect(),
            min_round: round,
        }
    }
}

/// The merged, round-ordered view of a sharded venue at snapshot time.
/// Each collector contributes a *chain* of snapshots whose concatenation
/// is round-nondecreasing — a single board for [`ShardedBoard`], the
/// range-span sequence for [`RangedVenue`] — and the view is a k-way
/// merge over the chains, so round order holds across both shard
/// dimensions.
#[derive(Debug, Clone)]
pub struct MergedHistory {
    chains: Vec<Vec<BoardSnapshot>>,
    /// Records with `round < min_round` are skipped by the merge — the
    /// `since_round` bound of [`RangedVenue::merged_since_round`]. 0 is
    /// the unbounded view.
    min_round: usize,
}

/// A per-collector merge cursor: snapshot, part within it, offset within
/// the part — an O(1) walk even over ragged (inflated-span) snapshots.
#[derive(Debug, Clone, Copy, Default)]
struct ChainCursor {
    snap: usize,
    part: usize,
    off: usize,
}

impl ChainCursor {
    /// Skips exhausted parts/snapshots and records below `min_round`;
    /// returns the current record, or `None` when the chain is exhausted.
    fn current<'a>(
        &mut self,
        chain: &'a [BoardSnapshot],
        min_round: usize,
    ) -> Option<&'a RoundRecord> {
        while let Some(snap) = chain.get(self.snap) {
            while self.part < snap.parts() {
                let part = snap.part(self.part);
                if let Some(rec) = part.get(self.off) {
                    if rec.round >= min_round {
                        return Some(rec);
                    }
                    // Sub-bound prefix of a bounded view: skip it.
                    self.off += 1;
                    continue;
                }
                self.part += 1;
                self.off = 0;
            }
            self.snap += 1;
            self.part = 0;
            self.off = 0;
        }
        None
    }
}

impl MergedHistory {
    /// Total records in the underlying snapshots. For a bounded view
    /// ([`RangedVenue::merged_since_round`]) this counts the snapshotted
    /// spans as-is — the first span of a chain may still carry sub-bound
    /// records the merge will skip, so the visit count can be lower.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.iter().flatten().map(BoardSnapshot::len).sum()
    }

    /// True if no shard holds any record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.iter().flatten().all(BoardSnapshot::is_empty)
    }

    /// Visits every record as `(collector, record)`, ordered by
    /// `(round, collector)`, cloning nothing. The cursor walk spans range
    /// boundaries within each collector's chain transparently, and skips
    /// records below the view's `since_round` bound.
    pub fn for_each(&self, mut f: impl FnMut(usize, &RoundRecord)) {
        let mut cursors = vec![ChainCursor::default(); self.chains.len()];
        loop {
            let mut best: Option<(usize, usize)> = None; // (round, shard)
            for (shard, chain) in self.chains.iter().enumerate() {
                if let Some(record) = cursors[shard].current(chain, self.min_round) {
                    if best.is_none_or(|(r, _)| record.round < r) {
                        best = Some((record.round, shard));
                    }
                }
            }
            let Some((_, shard)) = best else { break };
            let cursor = &mut cursors[shard];
            f(
                shard,
                cursor
                    .current(&self.chains[shard], self.min_round)
                    .expect("non-exhausted"),
            );
            cursor.off += 1;
        }
    }

    /// The merged records as owned `(collector, record)` pairs (the
    /// cloning convenience over [`MergedHistory::for_each`]).
    #[must_use]
    pub fn records(&self) -> Vec<(usize, RoundRecord)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|shard, record| out.push((shard, record.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, trimmed: usize) -> RoundRecord {
        let mut retained = OnlineStats::new();
        retained.extend(&[1.0, 2.0, 3.0]);
        RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(10.0),
            received: 100,
            trimmed,
            retained,
            quality: 0.95,
        }
    }

    #[test]
    fn post_and_read_back() {
        let board = PublicBoard::new();
        assert!(board.is_empty());
        board.post(record(1, 5));
        board.post(record(2, 7));
        assert_eq!(board.len(), 2);
        assert_eq!(board.latest().unwrap().round, 2);
        assert_eq!(board.round(1).unwrap().trimmed, 5);
        assert!(board.round(9).is_none());
    }

    #[test]
    fn clones_share_state() {
        let board = PublicBoard::new();
        let adversary_view = board.clone();
        board.post(record(1, 3));
        assert_eq!(adversary_view.len(), 1);
        assert_eq!(adversary_view.latest().unwrap().trimmed, 3);
    }

    #[test]
    fn cumulative_trim_fraction_aggregates() {
        let board = PublicBoard::new();
        board.post(record(1, 10));
        board.post(record(2, 30));
        assert!((board.cumulative_trim_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_board_fraction_zero() {
        assert_eq!(PublicBoard::new().cumulative_trim_fraction(), 0.0);
    }

    #[test]
    fn concurrent_posting_is_safe() {
        let board = PublicBoard::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = board.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        b.post(record(t * 50 + i + 1, 1));
                    }
                });
            }
        });
        assert_eq!(board.len(), 200);
    }

    #[test]
    fn history_snapshot_is_detached() {
        let board = PublicBoard::new();
        board.post(record(1, 1));
        let snapshot = board.history();
        board.post(record(2, 2));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(board.len(), 2);
    }

    #[test]
    fn history_since_reads_incrementally() {
        let board = PublicBoard::new();
        assert!(board.history_since(0).is_empty());
        board.post(record(1, 1));
        board.post(record(2, 2));
        board.post(record(3, 3));
        let tail = board.history_since(1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].round, 2);
        // Past-the-end and far-out-of-range reads are empty, not panics.
        assert!(board.history_since(3).is_empty());
        assert!(board.history_since(99).is_empty());
    }

    #[test]
    fn chunked_storage_spans_seal_boundaries() {
        // Well past several chunk seals: every access path must agree
        // across the sealed/tail boundary.
        let board = PublicBoard::new();
        let n = 5 * CHUNK_CAP + 17;
        for round in 1..=n {
            board.post(record(round, round % 7));
        }
        assert_eq!(board.len(), n);
        assert_eq!(board.latest().unwrap().round, n);
        for probe in [1, CHUNK_CAP, CHUNK_CAP + 1, 3 * CHUNK_CAP, n] {
            assert_eq!(board.round(probe).unwrap().round, probe, "round {probe}");
        }
        let history = board.history();
        assert_eq!(history.len(), n);
        assert!(history.iter().enumerate().all(|(i, r)| r.round == i + 1));
        let snap = board.snapshot();
        assert_eq!(snap.len(), n);
        assert_eq!(snap.iter().count(), n);
        assert_eq!(snap.get(n - 1).round, n);
        let since = board.history_since(CHUNK_CAP - 2);
        assert_eq!(since.len(), n - (CHUNK_CAP - 2));
        assert_eq!(since[0].round, CHUNK_CAP - 1);
    }

    #[test]
    fn round_lookup_handles_gaps_and_one_based_rounds() {
        // Append-ordered but gappy round numbers: binary search must find
        // exactly the recorded rounds and reject everything in between.
        let board = PublicBoard::new();
        for round in [1usize, 3, 7, 8, 100, 101, 250] {
            board.post(record(round, 1));
        }
        for round in [1usize, 3, 7, 8, 100, 101, 250] {
            assert_eq!(board.round(round).unwrap().round, round);
        }
        for missing in [0usize, 2, 4, 6, 9, 99, 102, 249, 251] {
            assert!(board.round(missing).is_none(), "round {missing}");
        }
    }

    #[test]
    fn for_each_since_visits_without_cloning() {
        let board = PublicBoard::new();
        for round in 1..=(CHUNK_CAP + 5) {
            board.post(record(round, 0));
        }
        let mut seen = Vec::new();
        board.for_each_since(CHUNK_CAP - 1, |r| seen.push(r.round));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], CHUNK_CAP);
    }

    #[test]
    fn snapshot_is_immutable_under_later_posts() {
        let board = PublicBoard::new();
        for round in 1..=(2 * CHUNK_CAP) {
            board.post(record(round, 0));
        }
        let snap = board.snapshot();
        board.post(record(2 * CHUNK_CAP + 1, 0));
        assert_eq!(snap.len(), 2 * CHUNK_CAP);
        assert_eq!(board.len(), 2 * CHUNK_CAP + 1);
    }

    #[test]
    fn sharded_board_isolates_writers_and_merges_by_round() {
        let venue = ShardedBoard::new(3);
        // Collector 1 runs longer; collector 2 starts later (gaps).
        for round in 1..=4 {
            venue.collector(0).post(record(round, 0));
        }
        for round in 1..=6 {
            venue.collector(1).post(record(round, 1));
        }
        for round in 3..=5 {
            venue.collector(2).post(record(round, 2));
        }
        assert_eq!(venue.collectors(), 3);
        assert_eq!(venue.total_len(), 13);
        assert_eq!(venue.collector(0).len(), 4);
        let merged = venue.merged();
        assert_eq!(merged.len(), 13);
        let records = merged.records();
        // Ordered by (round, collector).
        let order: Vec<(usize, usize)> = records.iter().map(|(c, r)| (r.round, *c)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order[0], (1, 0));
        assert_eq!(order.last(), Some(&(6, 1)));
        // Shard identity survives the merge.
        assert!(records.iter().all(|(c, r)| r.trimmed == *c));
    }

    #[test]
    fn last_round_is_cheap_across_storage_states() {
        // Empty, open-tail, exactly-sealed and resealed states must all
        // agree with latest() without materializing a snapshot.
        let board = PublicBoard::new();
        assert_eq!(board.last_round(), None);
        board.post(record(3, 0));
        assert_eq!(board.last_round(), Some(3));
        for round in 4..=CHUNK_CAP + 2 {
            board.post(record(round, 0));
        }
        // Tail just past a seal.
        assert_eq!(board.len(), CHUNK_CAP);
        assert_eq!(board.last_round(), Some(CHUNK_CAP + 2));
        // Exactly at a seal boundary: the tail is empty, the answer comes
        // from the last sealed chunk.
        for round in CHUNK_CAP + 3..=2 * CHUNK_CAP + 2 {
            board.post(record(round, 0));
        }
        assert_eq!(board.len(), 2 * CHUNK_CAP);
        assert_eq!(board.last_round(), Some(2 * CHUNK_CAP + 2));
        assert_eq!(board.last_round(), board.latest().map(|r| r.round));

        let venue = ShardedBoard::new(2);
        assert_eq!(venue.last_round(), None);
        venue.collector(1).post(record(7, 0));
        assert_eq!(venue.last_round(), Some(7));
        venue.collector(0).post(record(9, 0));
        assert_eq!(venue.last_round(), Some(9));
    }

    #[test]
    fn for_each_from_round_starts_at_the_bound() {
        let board = PublicBoard::new();
        for round in [2usize, 5, 5, 9, 12] {
            board.post(record(round, 0));
        }
        let collect_from = |r: usize| {
            let mut seen = Vec::new();
            board.for_each_from_round(r, |rec| seen.push(rec.round));
            seen
        };
        assert_eq!(collect_from(0), vec![2, 5, 5, 9, 12]);
        assert_eq!(collect_from(5), vec![5, 5, 9, 12]);
        assert_eq!(collect_from(6), vec![9, 12]);
        assert_eq!(collect_from(13), Vec::<usize>::new());
    }

    #[test]
    fn ranged_board_routes_appends_and_reads_by_span() {
        let board = RangedBoard::new(4);
        assert!(board.is_empty());
        assert_eq!(board.last_round(), None);
        assert_eq!(board.round(1), None);
        let n = 19; // spans 0..=4, the last one partial
        for round in 1..=n {
            board.post(record(round, round % 3));
        }
        assert_eq!(board.len(), n);
        assert_eq!(board.last_round(), Some(n));
        for probe in [1, 4, 5, 8, 9, n] {
            assert_eq!(board.round(probe).unwrap().round, probe, "round {probe}");
        }
        assert!(board.round(n + 1).is_none());
        // for_each_since_round never visits rounds below the bound and
        // crosses span boundaries seamlessly.
        for from in [0usize, 1, 4, 5, 7, 13, n, n + 3] {
            let mut seen = Vec::new();
            board.for_each_since_round(from, |r| seen.push(r.round));
            let expect: Vec<usize> = (from.max(1)..=n).collect();
            assert_eq!(seen, expect, "from {from}");
        }
        // The snapshot chain concatenation is the full history in order.
        let chain = board.snapshot_chain();
        assert_eq!(chain.len(), 5);
        let rounds: Vec<usize> = chain
            .iter()
            .flat_map(|s| s.iter().map(|r| r.round).collect::<Vec<_>>())
            .collect();
        assert_eq!(rounds, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn ranged_board_clones_share_state() {
        let board = RangedBoard::new(8);
        let observer = board.clone();
        board.post(record(1, 2));
        assert_eq!(observer.len(), 1);
        assert_eq!(observer.last_round(), Some(1));
        assert_eq!(observer.round(1).unwrap().trimmed, 2);
    }

    #[test]
    fn ranged_venue_merges_round_ordered_across_both_dimensions() {
        // Spans of 3 rounds, histories long enough that every collector
        // crosses several range boundaries; staggered starts and lengths.
        let venue = RangedVenue::new(3, 3);
        for round in 1..=10 {
            venue.collector(0).post(record(round, 0));
        }
        for round in 4..=8 {
            venue.collector(1).post(record(round, 1));
        }
        for round in 2..=11 {
            venue.collector(2).post(record(round, 2));
        }
        assert_eq!(venue.collectors(), 3);
        assert_eq!(venue.total_len(), 25);
        assert_eq!(venue.last_round(), Some(11));
        let merged = venue.merged();
        assert_eq!(merged.len(), 25);
        assert!(!merged.is_empty());
        let order: Vec<(usize, usize)> = merged
            .records()
            .iter()
            .map(|(c, r)| (r.round, *c))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order[0], (1, 0));
        assert_eq!(order.last(), Some(&(11, 2)));
        // Shard identity survives the two-dimensional merge.
        assert!(merged.records().iter().all(|(c, r)| r.trimmed == *c));
    }

    #[test]
    fn ranged_board_concurrent_shard_appends_are_safe() {
        // One writer per venue shard (the collector service's layout):
        // lock-free aggregates and the merged view agree at the end.
        let venue = RangedVenue::new(4, 5);
        std::thread::scope(|s| {
            for c in 0..4 {
                let shard = venue.collector(c);
                s.spawn(move || {
                    for round in 1..=73 {
                        shard.post(record(round, c));
                    }
                });
            }
        });
        assert_eq!(venue.total_len(), 4 * 73);
        assert_eq!(venue.last_round(), Some(73));
        let mut count = 0;
        let mut last = 0;
        venue.merged().for_each(|_, r| {
            assert!(r.round >= last);
            last = r.round;
            count += 1;
        });
        assert_eq!(count, 4 * 73);
    }

    #[test]
    fn sharded_board_concurrent_collectors_do_not_contend() {
        let venue = ShardedBoard::new(4);
        std::thread::scope(|s| {
            for c in 0..4 {
                let shard = venue.collector(c);
                s.spawn(move || {
                    for round in 1..=100 {
                        shard.post(record(round, c));
                    }
                });
            }
        });
        assert_eq!(venue.total_len(), 400);
        let mut count = 0;
        venue.merged().for_each(|_, _| count += 1);
        assert_eq!(count, 400);
    }
}
