//! The public board of Fig. 3 — sharded and chunked for concurrent
//! collectors.
//!
//! "A public board, accessible to the adversary, enables the collector to
//! record the untrimmed data (step ①, ⑥)." The board is the white-box
//! channel of the threat model: the adversary "has full knowledge of the
//! strategy employed by the data collector in the previous round, for
//! example, the data collector's trimming positions". It is append-only
//! and thread-safe so concurrent adversary/collector tasks can share it.
//!
//! Storage is **chunked append-only**: a shard seals records into
//! immutable reference-counted chunks of `CHUNK_CAP` records as they
//! fill, and
//! keeps only the open tail mutable. Readers take a [`BoardSnapshot`] —
//! an `Arc` bump per sealed chunk plus a copy of the short tail — and
//! then walk the history without holding any lock and without cloning
//! the bulk of the records. Aggregates ([`PublicBoard::len`],
//! [`PublicBoard::cumulative_trim_fraction`]) are maintained as running
//! totals, and [`PublicBoard::round`] resolves by binary search on the
//! append-ordered round numbers instead of a linear scan.
//!
//! One [`PublicBoard`] is one collector's shard. Many concurrent engines
//! that should publish into a *common* venue — the sweep's shared-board
//! mode — use a [`ShardedBoard`]: per-collector shards (writers never
//! contend on each other's locks) plus a [`ShardedBoard::merged`] view
//! that k-way-merges the shards in round order for cross-collector
//! observers studying information leakage.

use parking_lot::RwLock;
use std::sync::Arc;
use trimgame_numerics::stats::OnlineStats;

/// One round's public record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// The trimming percentile the collector applied this round.
    pub threshold_percentile: f64,
    /// The absolute threshold value that percentile resolved to.
    pub threshold_value: Option<f64>,
    /// Values received this round (benign + poison).
    pub received: usize,
    /// Values trimmed this round.
    pub trimmed: usize,
    /// Summary statistics of the retained (untrimmed) data.
    pub retained: OnlineStats,
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
}

/// Records per sealed chunk: big enough that a long game seals rarely,
/// small enough that a snapshot's tail copy stays trivial.
const CHUNK_CAP: usize = 64;

#[derive(Debug, Default)]
struct ShardInner {
    /// Sealed, immutable chunks of exactly [`CHUNK_CAP`] records each.
    sealed: Vec<Arc<[RoundRecord]>>,
    /// The open chunk (`< CHUNK_CAP` records).
    tail: Vec<RoundRecord>,
    /// Running totals for O(1) aggregates.
    received_total: usize,
    trimmed_total: usize,
}

impl ShardInner {
    fn len(&self) -> usize {
        self.sealed.len() * CHUNK_CAP + self.tail.len()
    }

    fn get(&self, idx: usize) -> &RoundRecord {
        let sealed_len = self.sealed.len() * CHUNK_CAP;
        if idx < sealed_len {
            &self.sealed[idx / CHUNK_CAP][idx % CHUNK_CAP]
        } else {
            &self.tail[idx - sealed_len]
        }
    }

    fn push(&mut self, record: RoundRecord) {
        self.received_total += record.received;
        self.trimmed_total += record.trimmed;
        self.tail.push(record);
        if self.tail.len() == CHUNK_CAP {
            self.sealed.push(self.tail.drain(..).collect());
        }
    }
}

/// Append-only, thread-safe board of [`RoundRecord`]s — one collector's
/// shard. Cloning shares the underlying storage (both the collector and
/// the adversary hold the same board).
///
/// Records are append-ordered by round (the engine posts round `1, 2, …`
/// monotonically; gaps are fine) — [`PublicBoard::round`] relies on that
/// order for its binary search.
#[derive(Debug, Clone, Default)]
pub struct PublicBoard {
    inner: Arc<RwLock<ShardInner>>,
}

impl PublicBoard {
    /// Creates an empty board.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round record.
    pub fn post(&self, record: RoundRecord) {
        self.inner.write().push(record);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no rounds have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().len() == 0
    }

    /// The most recent record, if any (what the adversary reads in step ⑥
    /// to verify last round's trimming threshold).
    #[must_use]
    pub fn latest(&self) -> Option<RoundRecord> {
        let guard = self.inner.read();
        guard
            .tail
            .last()
            .or_else(|| guard.sealed.last().map(|c| &c[CHUNK_CAP - 1]))
            .cloned()
    }

    /// Record of a specific round (1-based), if recorded — `O(log n)`
    /// binary search on the append-ordered round numbers (gaps between
    /// rounds are fine; out-of-order posting voids the search order).
    #[must_use]
    pub fn round(&self, round: usize) -> Option<RoundRecord> {
        let guard = self.inner.read();
        let n = guard.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if guard.get(mid).round < round {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && guard.get(lo).round == round).then(|| guard.get(lo).clone())
    }

    /// Snapshot of the full history as owned records. Prefer
    /// [`PublicBoard::snapshot`] for bulk reads — it shares the sealed
    /// chunks instead of cloning every record.
    #[must_use]
    pub fn history(&self) -> Vec<RoundRecord> {
        self.snapshot().iter().cloned().collect()
    }

    /// Records appended at or after insertion index `from` (0-based) —
    /// the incremental read an adaptive observer uses so a `T`-round
    /// watch costs `O(T)` copies total instead of `O(T²)` full-history
    /// snapshots.
    #[must_use]
    pub fn history_since(&self, from: usize) -> Vec<RoundRecord> {
        let guard = self.inner.read();
        (from..guard.len()).map(|i| guard.get(i).clone()).collect()
    }

    /// Visits records appended at or after insertion index `from` under
    /// the read lock — the allocation-free incremental read (board-driven
    /// attackers ingest new rounds this way).
    pub fn for_each_since(&self, from: usize, mut f: impl FnMut(&RoundRecord)) {
        let guard = self.inner.read();
        for i in from..guard.len() {
            f(guard.get(i));
        }
    }

    /// A lock-free read view: `Arc` bumps for the sealed chunks plus a
    /// copy of the open tail (at most `CHUNK_CAP − 1` records). Taking
    /// a snapshot is `O(chunks)`, iterating it clones nothing.
    #[must_use]
    pub fn snapshot(&self) -> BoardSnapshot {
        let guard = self.inner.read();
        BoardSnapshot {
            sealed: guard.sealed.clone(),
            tail: guard.tail.clone(),
        }
    }

    /// Cumulative fraction of received values that were trimmed — `O(1)`
    /// from running totals.
    #[must_use]
    pub fn cumulative_trim_fraction(&self) -> f64 {
        let guard = self.inner.read();
        if guard.received_total == 0 {
            0.0
        } else {
            guard.trimmed_total as f64 / guard.received_total as f64
        }
    }
}

/// A detached, immutable view of a board's history at snapshot time:
/// shares the sealed chunks, owns only the short tail.
#[derive(Debug, Clone, Default)]
pub struct BoardSnapshot {
    sealed: Vec<Arc<[RoundRecord]>>,
    tail: Vec<RoundRecord>,
}

impl BoardSnapshot {
    /// Number of records in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK_CAP + self.tail.len()
    }

    /// True if the snapshot holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record at insertion index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> &RoundRecord {
        let sealed_len = self.sealed.len() * CHUNK_CAP;
        if idx < sealed_len {
            &self.sealed[idx / CHUNK_CAP][idx % CHUNK_CAP]
        } else {
            &self.tail[idx - sealed_len]
        }
    }

    /// Iterates the records in insertion order, without cloning.
    pub fn iter(&self) -> impl Iterator<Item = &RoundRecord> {
        self.sealed
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }
}

/// A shared publication venue for many concurrent collectors: one
/// [`PublicBoard`] shard per collector, so writers never contend on a
/// common lock, plus a merged read view for cross-collector observers.
///
/// This is the sweep's shared-board mode: every engine in a grid posts
/// into its own shard of one venue, and an adversary reading
/// [`ShardedBoard::merged`] sees the union of all collectors' public
/// records — the cross-collector information-leakage channel.
#[derive(Debug, Clone)]
pub struct ShardedBoard {
    shards: Arc<[PublicBoard]>,
}

impl ShardedBoard {
    /// Creates a venue with `collectors` empty shards.
    ///
    /// # Panics
    /// Panics if `collectors == 0`.
    #[must_use]
    pub fn new(collectors: usize) -> Self {
        assert!(collectors > 0, "need at least one collector");
        Self {
            shards: (0..collectors).map(|_| PublicBoard::new()).collect(),
        }
    }

    /// Number of collector shards.
    #[must_use]
    pub fn collectors(&self) -> usize {
        self.shards.len()
    }

    /// Collector `idx`'s shard — a [`PublicBoard`] handle sharing the
    /// shard's storage (hand it to that collector's engine).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn collector(&self, idx: usize) -> PublicBoard {
        self.shards[idx].clone()
    }

    /// Total records across all shards.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(PublicBoard::len).sum()
    }

    /// A merged view of all shards at snapshot time, ordered by
    /// `(round, collector)` — what a cross-collector observer reads.
    #[must_use]
    pub fn merged(&self) -> MergedHistory {
        MergedHistory {
            snapshots: self.shards.iter().map(PublicBoard::snapshot).collect(),
        }
    }
}

/// The merged, round-ordered view of a [`ShardedBoard`] at snapshot
/// time. Each shard's records are round-nondecreasing (append order), so
/// the view is a k-way merge over the shard snapshots.
#[derive(Debug, Clone)]
pub struct MergedHistory {
    snapshots: Vec<BoardSnapshot>,
}

impl MergedHistory {
    /// Total records in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snapshots.iter().map(BoardSnapshot::len).sum()
    }

    /// True if no shard holds any record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshots.iter().all(BoardSnapshot::is_empty)
    }

    /// Visits every record as `(collector, record)`, ordered by
    /// `(round, collector)`, cloning nothing.
    pub fn for_each(&self, mut f: impl FnMut(usize, &RoundRecord)) {
        let mut cursors = vec![0usize; self.snapshots.len()];
        loop {
            let mut best: Option<(usize, usize)> = None; // (round, shard)
            for (shard, snap) in self.snapshots.iter().enumerate() {
                if cursors[shard] < snap.len() {
                    let round = snap.get(cursors[shard]).round;
                    if best.is_none_or(|(r, _)| round < r) {
                        best = Some((round, shard));
                    }
                }
            }
            let Some((_, shard)) = best else { break };
            f(shard, self.snapshots[shard].get(cursors[shard]));
            cursors[shard] += 1;
        }
    }

    /// The merged records as owned `(collector, record)` pairs (the
    /// cloning convenience over [`MergedHistory::for_each`]).
    #[must_use]
    pub fn records(&self) -> Vec<(usize, RoundRecord)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|shard, record| out.push((shard, record.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, trimmed: usize) -> RoundRecord {
        let mut retained = OnlineStats::new();
        retained.extend(&[1.0, 2.0, 3.0]);
        RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(10.0),
            received: 100,
            trimmed,
            retained,
            quality: 0.95,
        }
    }

    #[test]
    fn post_and_read_back() {
        let board = PublicBoard::new();
        assert!(board.is_empty());
        board.post(record(1, 5));
        board.post(record(2, 7));
        assert_eq!(board.len(), 2);
        assert_eq!(board.latest().unwrap().round, 2);
        assert_eq!(board.round(1).unwrap().trimmed, 5);
        assert!(board.round(9).is_none());
    }

    #[test]
    fn clones_share_state() {
        let board = PublicBoard::new();
        let adversary_view = board.clone();
        board.post(record(1, 3));
        assert_eq!(adversary_view.len(), 1);
        assert_eq!(adversary_view.latest().unwrap().trimmed, 3);
    }

    #[test]
    fn cumulative_trim_fraction_aggregates() {
        let board = PublicBoard::new();
        board.post(record(1, 10));
        board.post(record(2, 30));
        assert!((board.cumulative_trim_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_board_fraction_zero() {
        assert_eq!(PublicBoard::new().cumulative_trim_fraction(), 0.0);
    }

    #[test]
    fn concurrent_posting_is_safe() {
        let board = PublicBoard::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = board.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        b.post(record(t * 50 + i + 1, 1));
                    }
                });
            }
        });
        assert_eq!(board.len(), 200);
    }

    #[test]
    fn history_snapshot_is_detached() {
        let board = PublicBoard::new();
        board.post(record(1, 1));
        let snapshot = board.history();
        board.post(record(2, 2));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(board.len(), 2);
    }

    #[test]
    fn history_since_reads_incrementally() {
        let board = PublicBoard::new();
        assert!(board.history_since(0).is_empty());
        board.post(record(1, 1));
        board.post(record(2, 2));
        board.post(record(3, 3));
        let tail = board.history_since(1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].round, 2);
        // Past-the-end and far-out-of-range reads are empty, not panics.
        assert!(board.history_since(3).is_empty());
        assert!(board.history_since(99).is_empty());
    }

    #[test]
    fn chunked_storage_spans_seal_boundaries() {
        // Well past several chunk seals: every access path must agree
        // across the sealed/tail boundary.
        let board = PublicBoard::new();
        let n = 5 * CHUNK_CAP + 17;
        for round in 1..=n {
            board.post(record(round, round % 7));
        }
        assert_eq!(board.len(), n);
        assert_eq!(board.latest().unwrap().round, n);
        for probe in [1, CHUNK_CAP, CHUNK_CAP + 1, 3 * CHUNK_CAP, n] {
            assert_eq!(board.round(probe).unwrap().round, probe, "round {probe}");
        }
        let history = board.history();
        assert_eq!(history.len(), n);
        assert!(history.iter().enumerate().all(|(i, r)| r.round == i + 1));
        let snap = board.snapshot();
        assert_eq!(snap.len(), n);
        assert_eq!(snap.iter().count(), n);
        assert_eq!(snap.get(n - 1).round, n);
        let since = board.history_since(CHUNK_CAP - 2);
        assert_eq!(since.len(), n - (CHUNK_CAP - 2));
        assert_eq!(since[0].round, CHUNK_CAP - 1);
    }

    #[test]
    fn round_lookup_handles_gaps_and_one_based_rounds() {
        // Append-ordered but gappy round numbers: binary search must find
        // exactly the recorded rounds and reject everything in between.
        let board = PublicBoard::new();
        for round in [1usize, 3, 7, 8, 100, 101, 250] {
            board.post(record(round, 1));
        }
        for round in [1usize, 3, 7, 8, 100, 101, 250] {
            assert_eq!(board.round(round).unwrap().round, round);
        }
        for missing in [0usize, 2, 4, 6, 9, 99, 102, 249, 251] {
            assert!(board.round(missing).is_none(), "round {missing}");
        }
    }

    #[test]
    fn for_each_since_visits_without_cloning() {
        let board = PublicBoard::new();
        for round in 1..=(CHUNK_CAP + 5) {
            board.post(record(round, 0));
        }
        let mut seen = Vec::new();
        board.for_each_since(CHUNK_CAP - 1, |r| seen.push(r.round));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], CHUNK_CAP);
    }

    #[test]
    fn snapshot_is_immutable_under_later_posts() {
        let board = PublicBoard::new();
        for round in 1..=(2 * CHUNK_CAP) {
            board.post(record(round, 0));
        }
        let snap = board.snapshot();
        board.post(record(2 * CHUNK_CAP + 1, 0));
        assert_eq!(snap.len(), 2 * CHUNK_CAP);
        assert_eq!(board.len(), 2 * CHUNK_CAP + 1);
    }

    #[test]
    fn sharded_board_isolates_writers_and_merges_by_round() {
        let venue = ShardedBoard::new(3);
        // Collector 1 runs longer; collector 2 starts later (gaps).
        for round in 1..=4 {
            venue.collector(0).post(record(round, 0));
        }
        for round in 1..=6 {
            venue.collector(1).post(record(round, 1));
        }
        for round in 3..=5 {
            venue.collector(2).post(record(round, 2));
        }
        assert_eq!(venue.collectors(), 3);
        assert_eq!(venue.total_len(), 13);
        assert_eq!(venue.collector(0).len(), 4);
        let merged = venue.merged();
        assert_eq!(merged.len(), 13);
        let records = merged.records();
        // Ordered by (round, collector).
        let order: Vec<(usize, usize)> = records.iter().map(|(c, r)| (r.round, *c)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order[0], (1, 0));
        assert_eq!(order.last(), Some(&(6, 1)));
        // Shard identity survives the merge.
        assert!(records.iter().all(|(c, r)| r.trimmed == *c));
    }

    #[test]
    fn sharded_board_concurrent_collectors_do_not_contend() {
        let venue = ShardedBoard::new(4);
        std::thread::scope(|s| {
            for c in 0..4 {
                let shard = venue.collector(c);
                s.spawn(move || {
                    for round in 1..=100 {
                        shard.post(record(round, c));
                    }
                });
            }
        });
        assert_eq!(venue.total_len(), 400);
        let mut count = 0;
        venue.merged().for_each(|_, _| count += 1);
        assert_eq!(count, 400);
    }
}
