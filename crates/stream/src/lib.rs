//! Online collection engine — the system of the paper's Fig. 3.
//!
//! The infinite collection game runs on a concrete streaming substrate:
//! a data collector gathers a fixed-size batch per round (step ③), trims it
//! at a threshold (step ④), records the retained data on a **public board**
//! readable by the adversary (steps ①/⑥), evaluates data quality with a
//! publicly recognized `Quality_Evaluation()` standard, and determines the
//! next round's trimming threshold (step ⑤). This crate implements that
//! machinery; the *policies* that choose thresholds (Tit-for-tat, Elastic,
//! baselines) live in `trim-core`.
//!
//! * [`mod@trim`] — trimming operators over scalar batches.
//! * [`quality`] — `Quality_Evaluation()` implementations.
//! * [`board`] — the thread-safe, append-only public board.
//! * [`collector`] — per-round collect → trim → record pipeline.
//! * [`round`] — the generic round loop gluing streams, injectors and
//!   threshold policies together.

pub mod board;
pub mod collector;
pub mod quality;
pub mod round;
pub mod trim;

pub use board::{PublicBoard, RoundRecord};
pub use collector::Collector;
pub use quality::{MeanShiftQuality, QualityEvaluation, TailMassQuality};
pub use round::{run_rounds, RoundOutcome};
pub use trim::{trim, SketchThreshold, TrimOp, TrimOutcome, TrimScratch, TrimStats};
