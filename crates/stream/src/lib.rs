//! Online collection engine — the system of the paper's Fig. 3.
//!
//! The infinite collection game runs on a concrete streaming substrate:
//! a data collector gathers a fixed-size batch per round (step ③), trims it
//! at a threshold (step ④), records the retained data on a **public board**
//! readable by the adversary (steps ①/⑥), evaluates data quality with a
//! publicly recognized `Quality_Evaluation()` standard, and determines the
//! next round's trimming threshold (step ⑤). This crate implements that
//! machinery; the *policies* that choose thresholds (Tit-for-tat, Elastic,
//! baselines) live in `trim-core`.
//!
//! * [`mod@trim`] — trimming operators over scalar batches.
//! * the explicit-SIMD mask-compact filter kernels behind them live in
//!   [`trimgame_numerics::simd`] (AVX-512 / AVX2 / NEON, portable
//!   fallback), shared with the percentile machinery.
//! * [`quality`] — `Quality_Evaluation()` implementations.
//! * [`board`] — the thread-safe, chunked append-only public board,
//!   shardable per collector for contention-free concurrent venues.
//! * [`frame`] — delta-encoded, bit-packed frames of sealed board
//!   history: the cold tier's columnar storage format.
//! * [`compact`] — the tiering policy over ranged boards: compacts
//!   sealed spans into frames, evicts under a resident-bytes budget,
//!   spills to disk.
//! * [`channel`] — bounded MPSC channels with counted backpressure,
//!   feeding the streaming collector's ingest workers.
//! * [`coalesce`] — reorder-window batch coalescing with a watermark
//!   rule for late/out-of-order arrivals.
//! * [`collector`] — per-round collect → trim → record pipeline.
//! * [`round`] — the generic round loop gluing streams, injectors and
//!   threshold policies together.
//! * [`fault`] — deterministic seeded fault injection (stalls,
//!   disconnects, torn spill writes, read bit-flips) plus the bounded
//!   retry-with-backoff wrapper the spill I/O paths use.
//! * [`recover`] — durable per-shard spill manifests and
//!   [`RangedVenue::recover_from_spill`], the crash-recovery path that
//!   rebuilds a venue's cold tiers from its spill directory.

pub mod board;
pub mod channel;
pub mod coalesce;
pub mod collector;
pub mod compact;
pub mod fault;
pub mod frame;
pub mod quality;
pub mod recover;
pub mod round;
pub mod trim;

pub use board::{
    BoardSnapshot, MergedHistory, PublicBoard, RangedBoard, RangedVenue, RoundRecord, ShardedBoard,
};
pub use channel::{bounded, Receiver, SendError, Sender};
pub use coalesce::{
    CoalesceStats, Coalescer, CoalescerConfig, IngestRecord, LatePolicy, RoundBatch,
};
pub use collector::Collector;
pub use compact::{Compactor, TierConfig, TierStats, TierStatsSnapshot};
pub use fault::{
    with_retry, FaultLane, FaultPlan, FaultSite, FaultSpec, FaultStats, FaultStatsSnapshot,
    RetryPolicy,
};
pub use frame::{Frame, FrameCursor, FrameError};
pub use quality::{MeanShiftQuality, QualityEvaluation, TailMassQuality};
pub use recover::{
    read_manifest, ManifestEntry, ManifestFile, ManifestWriter, RecoveryReport, ShardRecovery,
    SpanManifest,
};
pub use round::{run_rounds, RoundOutcome};
pub use trim::{
    trim, SketchThreshold, TrimOp, TrimOutcome, TrimScratch, TrimScratchF32, TrimStats,
};
