//! Durable spill manifests and crash recovery for tiered venues.
//!
//! The spill tier *is* the data once a span is evicted, but a spill
//! directory full of `<tag>-span<idx>.frame` files is mute about which
//! venue they belonged to, what geometry it had, or whether a file is
//! whole. This module adds the missing durability layer:
//!
//! * **Manifests** — one append-only `<tag>.manifest` file per shard.
//!   The first entry records the venue geometry (shard index, collector
//!   count, round span); every later entry records a span transition
//!   (frozen into a frame, or spilled to a named file with the file's
//!   CRC-32). Each entry is length-guarded and checksummed and written
//!   with a single `write_all`, so a crash can tear at most the tail
//!   entry — which [`read_manifest`] truncates away cleanly.
//! * **Recovery** — [`RangedVenue::recover_from_spill`] rebuilds a
//!   venue's cold tiers from the manifests plus the frame files they
//!   name, verifying every file's checksum. Spans are adopted strictly
//!   in order; the first unreadable or missing span *quarantines* the
//!   rest of that shard (adopting past a hole would duplicate rounds on
//!   resume), and the [`RecoveryReport`] accounts for every span and
//!   round either recovered or lost.
//!
//! A resumed run replays its deterministic producers from round 1,
//! suppresses re-posting of rounds at or below each shard's recovered
//! watermark, and converges to the bit-identical board state of an
//! uninterrupted run — the `trimgame_bench` collector wires this up and
//! test-enforces the equivalence.

use crate::board::RangedVenue;
use crate::frame::{crc32, Frame};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Manifest entry kind tags.
const KIND_INIT: u8 = 0;
const KIND_FROZEN: u8 = 1;
const KIND_SPILLED: u8 = 2;

/// Largest legal entry payload — far above any real entry, low enough
/// that a corrupt length field cannot ask for an absurd allocation.
const MAX_ENTRY_BYTES: usize = 4096;

/// The manifest file path for shard `tag` under `dir`.
#[must_use]
pub fn manifest_path(dir: &Path, tag: &str) -> PathBuf {
    dir.join(format!("{tag}.manifest"))
}

/// One spilled span's durable identity: enough to find its frame file,
/// verify it byte-for-byte, and account for its rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanManifest {
    /// Span index within its shard.
    pub span_idx: u64,
    /// First round the span holds.
    pub base_round: u64,
    /// Last round the span holds.
    pub last_round: u64,
    /// Records in the span.
    pub len: u64,
    /// CRC-32 of the complete frame file.
    pub frame_crc: u32,
    /// Frame file name (relative to the spill directory; never a path).
    pub file_name: String,
}

/// One decoded manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestEntry {
    /// Written once at shard start: the venue geometry.
    Init {
        /// This shard's index.
        shard: u64,
        /// Venue shard count.
        collectors: u64,
        /// Rounds per range span.
        span: u64,
    },
    /// A hot span was compacted into a resident frame.
    Frozen {
        /// Span index within its shard.
        span_idx: u64,
        /// First round the span holds.
        base_round: u64,
        /// Last round the span holds.
        last_round: u64,
        /// Records in the span.
        len: u64,
    },
    /// A framed span was evicted to a named, checksummed disk file.
    Spilled(SpanManifest),
}

/// A manifest read back from disk: the clean prefix of entries, plus
/// whether a torn/corrupt tail was truncated away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFile {
    /// Entries up to the first torn or corrupt one.
    pub entries: Vec<ManifestEntry>,
    /// True if trailing bytes were discarded.
    pub torn: bool,
}

/// Appends length-guarded, CRC-checksummed entries to one shard's
/// manifest. Created eagerly at service start for every shard — the
/// geometry is durable even for shards that never spill.
#[derive(Debug)]
pub struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    /// Creates (truncating) the manifest for shard `tag` under `dir`
    /// and writes its `Init` geometry entry.
    ///
    /// # Errors
    /// Returns the I/O error if the directory or file cannot be
    /// created or the entry cannot be written.
    pub fn create(
        dir: &Path,
        tag: &str,
        shard: u64,
        collectors: u64,
        span: u64,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(manifest_path(dir, tag))?;
        let mut writer = Self { file };
        let mut payload = vec![KIND_INIT];
        for v in [shard, collectors, span] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        writer.append(&payload)?;
        Ok(writer)
    }

    /// Logs a span frozen into a resident frame.
    ///
    /// # Errors
    /// Returns the I/O error if the entry cannot be written.
    pub fn log_frozen(
        &mut self,
        span_idx: u64,
        base_round: u64,
        last_round: u64,
        len: u64,
    ) -> io::Result<()> {
        let mut payload = vec![KIND_FROZEN];
        for v in [span_idx, base_round, last_round, len] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.append(&payload)
    }

    /// Logs a span evicted to its named, checksummed spill file.
    ///
    /// # Errors
    /// Returns the I/O error if the entry cannot be written.
    pub fn log_spilled(&mut self, span: &SpanManifest) -> io::Result<()> {
        let mut payload = vec![KIND_SPILLED];
        for v in [span.span_idx, span.base_round, span.last_round, span.len] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&u64::from(span.frame_crc).to_le_bytes());
        payload.extend_from_slice(&(span.file_name.len() as u64).to_le_bytes());
        payload.extend_from_slice(span.file_name.as_bytes());
        self.append(&payload)
    }

    /// One entry: `[len u32][crc32 u32][payload]`, written with a
    /// single `write_all` so a crash tears at most this entry's tail.
    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() <= MAX_ENTRY_BYTES);
        let mut buf = Vec::with_capacity(8 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.flush()
    }
}

/// Reads a manifest, truncating at the first torn or corrupt entry.
///
/// # Errors
/// Returns the I/O error if the file cannot be read at all. Torn or
/// corrupt *content* is not an error — the clean prefix comes back with
/// `torn` set.
pub fn read_manifest(path: &Path) -> io::Result<ManifestFile> {
    let bytes = std::fs::read(path)?;
    let mut entries = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_ENTRY_BYTES || len > bytes.len() - pos - 8 {
            torn = true;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        match parse_entry(payload) {
            Some(entry) => entries.push(entry),
            None => {
                torn = true;
                break;
            }
        }
        pos += 8 + len;
    }
    if !torn && pos < bytes.len() {
        // A header shorter than its 8 fixed bytes.
        torn = true;
    }
    Ok(ManifestFile { entries, torn })
}

/// Decodes one entry payload; `None` on any structural violation.
fn parse_entry(payload: &[u8]) -> Option<ManifestEntry> {
    let (&kind, rest) = payload.split_first()?;
    let mut fields = rest
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")));
    let mut next = || fields.next();
    match kind {
        KIND_INIT => {
            let entry = ManifestEntry::Init {
                shard: next()?,
                collectors: next()?,
                span: next()?,
            };
            (rest.len() == 24).then_some(entry)
        }
        KIND_FROZEN => {
            let entry = ManifestEntry::Frozen {
                span_idx: next()?,
                base_round: next()?,
                last_round: next()?,
                len: next()?,
            };
            (rest.len() == 32).then_some(entry)
        }
        KIND_SPILLED => {
            let span_idx = next()?;
            let base_round = next()?;
            let last_round = next()?;
            let len = next()?;
            let frame_crc = u32::try_from(next()?).ok()?;
            let name_len = usize::try_from(next()?).ok()?;
            let name_bytes = rest.get(48..48 + name_len)?;
            if rest.len() != 48 + name_len {
                return None;
            }
            let file_name = String::from_utf8(name_bytes.to_vec()).ok()?;
            // A file *name*, never a path — a corrupt manifest must not
            // read outside the spill directory.
            if file_name.is_empty() || file_name.contains(['/', '\\']) {
                return None;
            }
            Some(ManifestEntry::Spilled(SpanManifest {
                span_idx,
                base_round,
                last_round,
                len,
                frame_crc,
                file_name,
            }))
        }
        _ => None,
    }
}

/// What recovery salvaged (and lost) for one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardRecovery {
    /// Shard index.
    pub shard: usize,
    /// Spilled spans adopted back into the venue.
    pub spans_recovered: usize,
    /// Manifest-listed spans dropped: unreadable, checksum-mismatched,
    /// or stranded behind a hole (adopting past one would duplicate
    /// rounds on resume).
    pub spans_quarantined: usize,
    /// Rounds the adopted spans hold.
    pub rounds_recovered: usize,
    /// Rounds the manifest had seen beyond the recovered watermark.
    pub rounds_lost: usize,
    /// Highest durable round: a resumed run replays from here.
    pub watermark_round: usize,
    /// True if the manifest had a torn tail truncated away.
    pub torn_tail: bool,
    /// The adopted spans, in order — a resumed run re-logs these into
    /// its fresh manifest so a second crash still recovers them.
    pub adopted: Vec<SpanManifest>,
}

/// The full outcome of [`RangedVenue::recover_from_spill`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardRecovery>,
}

impl RecoveryReport {
    /// Spans adopted across all shards.
    #[must_use]
    pub fn spans_recovered(&self) -> usize {
        self.shards.iter().map(|s| s.spans_recovered).sum()
    }

    /// Spans dropped across all shards.
    #[must_use]
    pub fn spans_quarantined(&self) -> usize {
        self.shards.iter().map(|s| s.spans_quarantined).sum()
    }

    /// Rounds recovered across all shards.
    #[must_use]
    pub fn rounds_recovered(&self) -> usize {
        self.shards.iter().map(|s| s.rounds_recovered).sum()
    }

    /// Rounds lost across all shards (relative to the manifests'
    /// high-watermarks; rounds that never reached a manifest are
    /// invisible here and re-derived by replay).
    #[must_use]
    pub fn rounds_lost(&self) -> usize {
        self.shards.iter().map(|s| s.rounds_lost).sum()
    }

    /// Per-shard resume watermarks, padded/truncated to `collectors`.
    #[must_use]
    pub fn watermarks(&self, collectors: usize) -> Vec<usize> {
        (0..collectors)
            .map(|s| {
                self.shards
                    .iter()
                    .find(|r| r.shard == s)
                    .map_or(0, |r| r.watermark_round)
            })
            .collect()
    }
}

impl RangedVenue {
    /// Rebuilds a venue's cold tiers from the spill directory's
    /// manifests and frame files. Every adopted frame is read and
    /// checksum-verified; unreadable spans (and everything behind them
    /// in their shard) are quarantined, not adopted. Returns the venue
    /// plus a full [`RecoveryReport`].
    ///
    /// # Errors
    /// Returns an error if `dir` holds no readable manifests, or the
    /// manifests disagree about the venue geometry.
    pub fn recover_from_spill(dir: &Path) -> io::Result<(Self, RecoveryReport)> {
        let mut manifests: Vec<(usize, ManifestFile)> = Vec::new();
        let mut geometry: Option<(usize, usize)> = None;
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "manifest"))
            .collect();
        paths.sort();
        for path in paths {
            let mf = read_manifest(&path)?;
            let Some(&ManifestEntry::Init {
                shard,
                collectors,
                span,
            }) = mf.entries.first()
            else {
                // Headerless manifest: its shard is unknown, so its
                // spans cannot be placed. Skip the file.
                continue;
            };
            let (collectors, span) = (collectors as usize, span as usize);
            if collectors == 0 || span == 0 || shard as usize >= collectors {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("manifest {} has corrupt geometry", path.display()),
                ));
            }
            match geometry {
                None => geometry = Some((collectors, span)),
                Some(g) if g == (collectors, span) => {}
                Some(g) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "manifests disagree on venue geometry: {g:?} vs {:?}",
                            (collectors, span)
                        ),
                    ));
                }
            }
            if manifests.iter().any(|(s, _)| *s == shard as usize) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("two manifests claim shard {shard}"),
                ));
            }
            manifests.push((shard as usize, mf));
        }
        let Some((collectors, span)) = geometry else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no spill manifests under {}", dir.display()),
            ));
        };

        let venue = RangedVenue::new(collectors, span);
        let mut shards: Vec<ShardRecovery> = (0..collectors)
            .map(|shard| ShardRecovery {
                shard,
                ..ShardRecovery::default()
            })
            .collect();
        for (shard, mf) in manifests {
            shards[shard] = recover_shard(dir, &venue, shard, &mf);
        }
        Ok((venue, RecoveryReport { shards }))
    }
}

/// Adopts one shard's intact span prefix; quarantines the rest.
fn recover_shard(
    dir: &Path,
    venue: &RangedVenue,
    shard: usize,
    mf: &ManifestFile,
) -> ShardRecovery {
    let board = venue.collector(shard);
    // Last entry wins per span index (a resumed run re-logs adopted
    // spans into its fresh manifest, so duplicates are normal).
    let mut spilled: BTreeMap<u64, &SpanManifest> = BTreeMap::new();
    let mut max_seen_round = 0u64;
    for entry in &mf.entries {
        match entry {
            ManifestEntry::Init { .. } => {}
            ManifestEntry::Frozen { last_round, .. } => {
                max_seen_round = max_seen_round.max(*last_round);
            }
            ManifestEntry::Spilled(m) => {
                max_seen_round = max_seen_round.max(m.last_round);
                spilled.insert(m.span_idx, m);
            }
        }
    }

    let mut out = ShardRecovery {
        shard,
        torn_tail: mf.torn,
        ..ShardRecovery::default()
    };
    let mut next_idx = 0u64;
    let mut broken = false;
    for (&idx, m) in &spilled {
        if broken || idx != next_idx || verify_frame(dir, m).is_err() {
            broken = true;
            out.spans_quarantined += 1;
            continue;
        }
        board.adopt_spilled_span(
            idx as usize,
            dir.join(&m.file_name),
            m.len as usize,
            m.last_round as usize,
        );
        out.spans_recovered += 1;
        out.rounds_recovered += m.len as usize;
        out.watermark_round = m.last_round as usize;
        out.adopted.push((*m).clone());
        next_idx += 1;
    }
    out.rounds_lost = (max_seen_round as usize).saturating_sub(out.watermark_round);
    out
}

/// Reads and fully verifies one spilled frame against its manifest.
fn verify_frame(dir: &Path, m: &SpanManifest) -> Result<(), String> {
    let path = dir.join(&m.file_name);
    let bytes = std::fs::read(&path).map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
    if crc32(&bytes) != m.frame_crc {
        return Err(format!("{}: file checksum mismatch", path.display()));
    }
    let frame =
        Frame::from_bytes(&bytes).map_err(|e| format!("{}: corrupt frame: {e}", path.display()))?;
    if frame.len() as u64 != m.len
        || frame.base_round() as u64 != m.base_round
        || frame.last_round() as u64 != m.last_round
    {
        return Err(format!("{}: frame disagrees with manifest", path.display()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "trimgame-recover-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_span(idx: u64) -> SpanManifest {
        SpanManifest {
            span_idx: idx,
            base_round: idx * 8 + 1,
            last_round: (idx + 1) * 8,
            len: 8,
            frame_crc: 0xDEAD_BEEF ^ idx as u32,
            file_name: format!("s0-span{idx}.frame"),
        }
    }

    #[test]
    fn manifest_round_trips_every_entry_kind() {
        let dir = temp_dir("roundtrip");
        let mut w = ManifestWriter::create(&dir, "s0", 0, 4, 8).unwrap();
        w.log_frozen(0, 1, 8, 8).unwrap();
        w.log_spilled(&sample_span(0)).unwrap();
        w.log_spilled(&sample_span(1)).unwrap();
        let mf = read_manifest(&manifest_path(&dir, "s0")).unwrap();
        assert!(!mf.torn);
        assert_eq!(
            mf.entries,
            vec![
                ManifestEntry::Init {
                    shard: 0,
                    collectors: 4,
                    span: 8
                },
                ManifestEntry::Frozen {
                    span_idx: 0,
                    base_round: 1,
                    last_round: 8,
                    len: 8
                },
                ManifestEntry::Spilled(sample_span(0)),
                ManifestEntry::Spilled(sample_span(1)),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tails_truncate_to_the_clean_prefix() {
        let dir = temp_dir("torn");
        let mut w = ManifestWriter::create(&dir, "s0", 0, 2, 8).unwrap();
        w.log_spilled(&sample_span(0)).unwrap();
        w.log_spilled(&sample_span(1)).unwrap();
        drop(w);
        let path = manifest_path(&dir, "s0");
        let clean = std::fs::read(&path).unwrap();

        // Truncating at every byte offset yields a prefix of the
        // entries, flagged torn unless the cut lands on a boundary.
        let mut seen_lens = Vec::new();
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let mf = read_manifest(&path).unwrap();
            assert!(mf.entries.len() <= 3, "cut {cut}");
            seen_lens.push(mf.entries.len());
        }
        assert_eq!(seen_lens[0], 0);
        assert!(seen_lens.windows(2).all(|w| w[0] <= w[1]));

        // A flipped byte inside an entry truncates from that entry on.
        let mut corrupt = clean.clone();
        let mid = clean.len() / 2;
        corrupt[mid] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        let mf = read_manifest(&path).unwrap();
        assert!(mf.torn);
        assert!(mf.entries.len() < 3);

        // Appended garbage is discarded the same way.
        let mut garbage = clean.clone();
        garbage.extend_from_slice(&[0xFF; 5]);
        std::fs::write(&path, &garbage).unwrap();
        let mf = read_manifest(&path).unwrap();
        assert!(mf.torn);
        assert_eq!(mf.entries.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_empty_and_inconsistent_directories() {
        let dir = temp_dir("empty");
        let err = RangedVenue::recover_from_spill(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);

        ManifestWriter::create(&dir, "s0", 0, 2, 8).unwrap();
        ManifestWriter::create(&dir, "s1", 1, 2, 16).unwrap();
        let err = RangedVenue::recover_from_spill(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_entries_with_path_separators_are_rejected() {
        let dir = temp_dir("sep");
        let mut w = ManifestWriter::create(&dir, "s0", 0, 1, 8).unwrap();
        let mut bad = sample_span(0);
        bad.file_name = "../escape.frame".to_string();
        w.log_spilled(&bad).unwrap();
        let mf = read_manifest(&manifest_path(&dir, "s0")).unwrap();
        // The writer will happily serialize it; the *reader* refuses.
        assert!(mf.torn);
        assert_eq!(mf.entries.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
