//! Delta-encoded, bit-packed frames of sealed board history — the cold
//! tier's storage format.
//!
//! A sealed range-span of [`RoundRecord`]s is immutable forever, which
//! makes it a columnar compression target: round numbers become small
//! deltas from the span base, and every `f64` field maps through the
//! order-preserving [`trimgame_numerics::gk::sort_key`] bijection into a
//! `u64` domain where a span's values cluster tightly (consecutive rounds
//! of one collector share exponents and high mantissa bits). Each column
//! is then stored in whichever of two fixed-width layouts is smaller for
//! *that* span:
//!
//! * **Packed** — per-column `min` subtracted, residuals bit-packed at
//!   the width of the largest residual. The right mode for smoothly
//!   varying fields (retained means, m2 accumulators, round deltas).
//! * **Dict** — the column's distinct values in a sorted dictionary,
//!   rows stored as dictionary indices. The right mode for
//!   low-cardinality fields whose values are far apart as integers
//!   (threshold percentiles drawn from a small policy set, quality
//!   scores on an ECDF lattice, constant batch sizes).
//!
//! The `sort_key` mapping is a bijection on *all* 2⁶⁴ bit patterns, so a
//! decode reproduces every field bit-for-bit — including infinity
//! sentinels in empty [`OnlineStats`] and any NaN payloads — which is
//! what lets the tiered board swap a frame in for raw chunks without any
//! reader observing the difference. [`Frame::to_bytes`] /
//! [`Frame::from_bytes`] give the same frame a portable byte layout for
//! the disk spill tier.
//!
//! **Wire format versions.** `TGF2` (written by [`Frame::to_bytes`]) is
//! the `TGF1` layout plus a trailing [`crc32`] over every preceding byte,
//! so a torn write or bit flip on the spill tier is detected before any
//! structure is trusted ([`FrameError::ChecksumMismatch`]). `TGF1` files
//! written by earlier builds still deserialize. [`Frame::from_bytes`]
//! never panics on arbitrary input: every length, width, dictionary and
//! round-delta invariant is validated with checked arithmetic before a
//! single allocation is sized from untrusted bytes.

use crate::board::RoundRecord;
use std::fmt;
use trimgame_numerics::gk::{key_value, sort_key};
use trimgame_numerics::stats::OnlineStats;

/// Number of packed columns: round delta, threshold percentile, threshold
/// presence + value, received, trimmed, the five raw [`OnlineStats`]
/// accumulator fields, and quality.
const NUM_COLS: usize = 12;

/// Format cap on rows per frame. Real spans hold at most a few thousand
/// records; the cap exists so a corrupt length field can never size a
/// multi-gigabyte decode allocation.
const MAX_FRAME_ROWS: usize = 1 << 24;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time —
/// the workspace vendors no checksum crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding the `TGF2` frame
/// trailer and every spill-manifest entry (see [`crate::recover`]).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Bits needed to represent `residual` (0 for a zero residual — constant
/// columns cost no row bits at all).
fn width_for(residual: u64) -> u32 {
    64 - residual.leading_zeros()
}

/// Reads `width` bits starting at absolute bit offset `bit`.
fn read_bits(words: &[u64], bit: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let word = bit / 64;
    let off = bit % 64;
    let have = 64 - off;
    let lo = words[word] >> off;
    // A row never spans more than two words (width ≤ 64).
    let val = if (width as usize) > have {
        lo | (words[word + 1] << have)
    } else {
        lo
    };
    if width == 64 {
        val
    } else {
        val & ((1u64 << width) - 1)
    }
}

/// How one column stores its row values.
#[derive(Debug, Clone, PartialEq)]
enum ColumnMode {
    /// Rows are `min + residual`, residuals bit-packed at `width`.
    Packed { min: u64 },
    /// Rows are indices (bit-packed at `width`) into a sorted dictionary
    /// of the column's distinct values.
    Dict { dict: Vec<u64> },
}

/// One bit-packed column of a frame.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    width: u32,
    mode: ColumnMode,
    words: Vec<u64>,
}

impl Column {
    /// Encodes `values` in whichever mode costs fewer bits.
    fn encode(values: &[u64]) -> Self {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let direct_width = width_for(max - min);
        let direct_cost = direct_width as usize * values.len();

        let mut dict: Vec<u64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let dict_width = width_for(dict.len() as u64 - 1);
        let dict_cost = 64 * dict.len() + dict_width as usize * values.len();

        let (width, mode): (u32, ColumnMode) = if dict_cost < direct_cost {
            (dict_width, ColumnMode::Dict { dict })
        } else {
            (direct_width, ColumnMode::Packed { min })
        };

        let mut words = vec![0u64; (width as usize * values.len()).div_ceil(64)];
        let mut bit = 0usize;
        for &v in values {
            let raw = match &mode {
                ColumnMode::Packed { min } => v - min,
                ColumnMode::Dict { dict } => {
                    dict.binary_search(&v).expect("value is in its dict") as u64
                }
            };
            if width > 0 {
                let word = bit / 64;
                let off = bit % 64;
                words[word] |= raw << off;
                if off + width as usize > 64 {
                    words[word + 1] = raw >> (64 - off);
                }
                bit += width as usize;
            }
        }
        Self { width, mode, words }
    }

    /// The row value at absolute bit offset `bit` (i.e. `idx * width`).
    /// The packed reconstruction wraps: for a frame built by
    /// [`Column::encode`] the sum never overflows (`raw = v - min`), and
    /// wrapping keeps a deserialized-then-corrupt column from panicking
    /// in debug builds instead of decoding to a wrong-but-typed value.
    fn value_at_bit(&self, bit: usize) -> u64 {
        let raw = read_bits(&self.words, bit, self.width);
        match &self.mode {
            ColumnMode::Packed { min } => min.wrapping_add(raw),
            ColumnMode::Dict { dict } => dict[raw as usize],
        }
    }

    fn get(&self, idx: usize) -> u64 {
        self.value_at_bit(idx * self.width as usize)
    }

    /// Heap bytes this column holds resident.
    fn heap_bytes(&self) -> usize {
        let dict_bytes = match &self.mode {
            ColumnMode::Packed { .. } => 0,
            ColumnMode::Dict { dict } => dict.len() * 8,
        };
        self.words.len() * 8 + dict_bytes
    }
}

/// An immutable, delta-encoded, column-packed frame of one sealed span's
/// records. Decodes bit-identically to the records it was built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    len: usize,
    base_round: usize,
    last_round: usize,
    columns: Vec<Column>,
}

impl Frame {
    /// Compacts a sealed run of records into a frame.
    ///
    /// # Panics
    /// Panics if `records` is empty or its round numbers are not
    /// nondecreasing (the board's posting contract).
    #[must_use]
    pub fn encode(records: &[RoundRecord]) -> Self {
        assert!(!records.is_empty(), "cannot frame an empty span");
        let base_round = records[0].round;
        let last_round = records[records.len() - 1].round;
        assert!(
            records.windows(2).all(|w| w[0].round <= w[1].round),
            "frame spans must be round-nondecreasing"
        );

        // Absent threshold values take the first present value (or 0) as
        // their fill so they never widen the packed range.
        let fill = records
            .iter()
            .find_map(|r| r.threshold_value)
            .map_or(0, sort_key);

        let mut cols: Vec<Vec<u64>> = (0..NUM_COLS)
            .map(|_| Vec::with_capacity(records.len()))
            .collect();
        for r in records {
            let (n, mean, m2, min, max) = r.retained.raw_parts();
            cols[0].push((r.round - base_round) as u64);
            cols[1].push(sort_key(r.threshold_percentile));
            cols[2].push(u64::from(r.threshold_value.is_some()));
            cols[3].push(r.threshold_value.map_or(fill, sort_key));
            cols[4].push(r.received as u64);
            cols[5].push(r.trimmed as u64);
            cols[6].push(n);
            cols[7].push(sort_key(mean));
            cols[8].push(sort_key(m2));
            cols[9].push(sort_key(min));
            cols[10].push(sort_key(max));
            cols[11].push(sort_key(r.quality));
        }

        Self {
            len: records.len(),
            base_round,
            last_round,
            columns: cols.iter().map(|c| Column::encode(c)).collect(),
        }
    }

    /// Number of records in the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the frame holds no records (never — frames are non-empty
    /// by construction — but the conventional pair of [`Frame::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Round number of the first record.
    #[must_use]
    pub fn base_round(&self) -> usize {
        self.base_round
    }

    /// Round number of the last record.
    #[must_use]
    pub fn last_round(&self) -> usize {
        self.last_round
    }

    /// Decodes the record at row `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    #[must_use]
    pub fn get(&self, idx: usize) -> RoundRecord {
        assert!(idx < self.len, "frame row {idx} out of range {}", self.len);
        let v = |c: usize| self.columns[c].get(idx);
        record_from_raw([
            v(0),
            v(1),
            v(2),
            v(3),
            v(4),
            v(5),
            v(6),
            v(7),
            v(8),
            v(9),
            v(10),
            v(11),
        ])
        .with_base(self.base_round)
    }

    /// A sequential columnar cursor over the rows — the bulk decode path
    /// (each column keeps a running bit offset instead of re-deriving
    /// positions per row).
    #[must_use]
    pub fn cursor(&self) -> FrameCursor<'_> {
        FrameCursor {
            frame: self,
            idx: 0,
            bits: [0; NUM_COLS],
        }
    }

    /// Decodes the whole frame — the inflation path when a cold span is
    /// read back.
    #[must_use]
    pub fn decode(&self) -> Vec<RoundRecord> {
        self.cursor().collect()
    }

    /// Resident heap bytes of the packed representation (the number the
    /// tier budget accounts against).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.columns.len() * std::mem::size_of::<Column>()
            + self.columns.iter().map(Column::heap_bytes).sum::<usize>()
    }

    /// Serializes the frame to the spill tier's portable byte layout
    /// (little-endian, magic-tagged, CRC-trailed `TGF2`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes() + 64);
        out.extend_from_slice(MAGIC);
        for v in [
            self.len as u64,
            self.base_round as u64,
            self.last_round as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for col in &self.columns {
            match &col.mode {
                ColumnMode::Packed { min } => {
                    out.push(0);
                    out.push(col.width as u8);
                    out.extend_from_slice(&min.to_le_bytes());
                }
                ColumnMode::Dict { dict } => {
                    out.push(1);
                    out.push(col.width as u8);
                    out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
                    for &d in dict {
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                }
            }
            out.extend_from_slice(&(col.words.len() as u64).to_le_bytes());
            for &w in &col.words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a frame written by [`Frame::to_bytes`] — either the
    /// current CRC-trailed `TGF2` layout or the legacy `TGF1` one.
    ///
    /// # Errors
    /// Returns a [`FrameError`] if the bytes are truncated, carry the
    /// wrong magic, fail the `TGF2` checksum, or violate the format's
    /// internal invariants. Never panics, whatever the input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FrameError> {
        let body = if bytes.starts_with(MAGIC) {
            // TGF2: a trailing CRC-32 over everything before it. Verify
            // before trusting any structure.
            if bytes.len() < MAGIC.len() + 4 {
                return Err(FrameError::Truncated);
            }
            let (payload, trailer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
            if crc32(payload) != stored {
                return Err(FrameError::ChecksumMismatch);
            }
            &payload[MAGIC.len()..]
        } else if bytes.starts_with(MAGIC_V1) {
            &bytes[MAGIC_V1.len()..]
        } else if bytes.len() < MAGIC.len() {
            return Err(FrameError::Truncated);
        } else {
            return Err(FrameError::BadMagic);
        };
        Self::parse_body(body)
    }

    /// Parses the version-independent frame body (everything between the
    /// magic and the optional checksum trailer).
    fn parse_body(body: &[u8]) -> Result<Self, FrameError> {
        let mut r = ByteReader {
            bytes: body,
            pos: 0,
        };
        let len = usize::try_from(r.u64()?).map_err(|_| FrameError::Corrupt("row count"))?;
        let base_round =
            usize::try_from(r.u64()?).map_err(|_| FrameError::Corrupt("base round"))?;
        let last_round =
            usize::try_from(r.u64()?).map_err(|_| FrameError::Corrupt("last round"))?;
        if len == 0 {
            return Err(FrameError::Corrupt("empty frame"));
        }
        if len > MAX_FRAME_ROWS {
            return Err(FrameError::Corrupt("row count past format cap"));
        }
        if last_round < base_round {
            return Err(FrameError::Corrupt("round range inverted"));
        }
        let mut columns = Vec::with_capacity(NUM_COLS);
        for _ in 0..NUM_COLS {
            let tag = r.u8()?;
            let width = u32::from(r.u8()?);
            if width > 64 {
                return Err(FrameError::Corrupt("column width > 64"));
            }
            let mode = match tag {
                0 => ColumnMode::Packed { min: r.u64()? },
                1 => {
                    let d = r.u64()? as usize;
                    if d == 0 || d > len {
                        return Err(FrameError::Corrupt("dictionary size out of range"));
                    }
                    // Bound the allocation by the bytes actually present
                    // before sizing a Vec from an untrusted count.
                    if d > r.remaining() / 8 {
                        return Err(FrameError::Truncated);
                    }
                    let mut dict = Vec::with_capacity(d);
                    for _ in 0..d {
                        dict.push(r.u64()?);
                    }
                    if !dict.windows(2).all(|w| w[0] < w[1]) {
                        return Err(FrameError::Corrupt("dictionary not sorted"));
                    }
                    if width_for(d as u64 - 1) > width {
                        return Err(FrameError::Corrupt("dictionary wider than its indices"));
                    }
                    ColumnMode::Dict { dict }
                }
                _ => return Err(FrameError::Corrupt("unknown column mode")),
            };
            let word_count = r.u64()? as usize;
            let expect_words = (width as usize)
                .checked_mul(len)
                .map(|bits| bits.div_ceil(64))
                .ok_or(FrameError::Corrupt("column bit count overflow"))?;
            if word_count != expect_words {
                return Err(FrameError::Corrupt("word count mismatch"));
            }
            if word_count > r.remaining() / 8 {
                return Err(FrameError::Truncated);
            }
            let mut words = Vec::with_capacity(word_count);
            for _ in 0..word_count {
                words.push(r.u64()?);
            }
            columns.push(Column { width, mode, words });
        }
        // Dict indices must stay in range for every row; validate once
        // here so `get` can index unchecked-by-construction.
        for col in &columns {
            if let ColumnMode::Dict { dict } = &col.mode {
                for idx in 0..len {
                    let raw = read_bits(&col.words, idx * col.width as usize, col.width);
                    if raw as usize >= dict.len() {
                        return Err(FrameError::Corrupt("dictionary index out of range"));
                    }
                }
            }
        }
        // Round deltas must stay inside the declared round range, so
        // `with_base` can never overflow past `last_round`.
        let span = (last_round - base_round) as u64;
        for idx in 0..len {
            if columns[0].get(idx) > span {
                return Err(FrameError::Corrupt("round delta out of range"));
            }
        }
        Ok(Self {
            len,
            base_round,
            last_round,
            columns,
        })
    }
}

/// Spill-file magic: "TGF" + format version (CRC-trailed).
const MAGIC: &[u8] = b"TGF2";

/// Legacy spill-file magic: the same body layout with no checksum
/// trailer. Still readable; never written.
const MAGIC_V1: &[u8] = b"TGF1";

/// Rebuilds a record from the twelve raw column values.
fn record_from_raw(v: [u64; NUM_COLS]) -> RawRecord {
    RawRecord(v)
}

/// Intermediate holding raw column values until the base round is known.
struct RawRecord([u64; NUM_COLS]);

impl RawRecord {
    fn with_base(self, base_round: usize) -> RoundRecord {
        let v = self.0;
        RoundRecord {
            round: base_round + v[0] as usize,
            threshold_percentile: key_value(v[1]),
            threshold_value: (v[2] == 1).then(|| key_value(v[3])),
            received: v[4] as usize,
            trimmed: v[5] as usize,
            retained: OnlineStats::from_raw_parts(
                v[6],
                key_value(v[7]),
                key_value(v[8]),
                key_value(v[9]),
                key_value(v[10]),
            ),
            quality: key_value(v[11]),
        }
    }
}

/// Sequential row iterator over a [`Frame`], one running bit cursor per
/// column.
#[derive(Debug)]
pub struct FrameCursor<'a> {
    frame: &'a Frame,
    idx: usize,
    bits: [usize; NUM_COLS],
}

impl Iterator for FrameCursor<'_> {
    type Item = RoundRecord;

    fn next(&mut self) -> Option<RoundRecord> {
        if self.idx >= self.frame.len {
            return None;
        }
        let mut raw = [0u64; NUM_COLS];
        for (c, (out, bit)) in raw.iter_mut().zip(self.bits.iter_mut()).enumerate() {
            let col = &self.frame.columns[c];
            *out = col.value_at_bit(*bit);
            *bit += col.width as usize;
        }
        self.idx += 1;
        Some(record_from_raw(raw).with_base(self.frame.base_round))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.frame.len - self.idx;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for FrameCursor<'_> {}

/// Little-endian pull parser over a spill-file byte slice.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.bytes.len() {
            return Err(FrameError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Why a spilled frame failed to deserialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The byte slice ended before the format did.
    Truncated,
    /// The leading magic/version tag is not this format's.
    BadMagic,
    /// The `TGF2` CRC-32 trailer disagrees with the payload.
    ChecksumMismatch,
    /// A structural invariant of the format is violated.
    Corrupt(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame bytes truncated"),
            Self::BadMagic => write!(f, "not a TGF frame"),
            Self::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            Self::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<RoundRecord> {
        (0..n)
            .map(|i| {
                let mut retained = OnlineStats::new();
                for j in 0..=(i % 5) {
                    retained.push(10.0 + i as f64 * 0.25 + j as f64);
                }
                RoundRecord {
                    round: 100 + i,
                    threshold_percentile: if i % 2 == 0 { 0.7 } else { 0.9 },
                    threshold_value: (i % 3 != 0).then_some(50.0 + (i % 4) as f64),
                    received: 1000,
                    trimmed: i % 17,
                    retained,
                    quality: (i % 64) as f64 / 64.0,
                }
            })
            .collect()
    }

    fn assert_bit_identical(a: &RoundRecord, b: &RoundRecord) {
        assert_eq!(a.round, b.round);
        assert_eq!(
            a.threshold_percentile.to_bits(),
            b.threshold_percentile.to_bits()
        );
        assert_eq!(
            a.threshold_value.map(f64::to_bits),
            b.threshold_value.map(f64::to_bits)
        );
        assert_eq!(a.received, b.received);
        assert_eq!(a.trimmed, b.trimmed);
        let (an, amean, am2, amin, amax) = a.retained.raw_parts();
        let (bn, bmean, bm2, bmin, bmax) = b.retained.raw_parts();
        assert_eq!(an, bn);
        assert_eq!(amean.to_bits(), bmean.to_bits());
        assert_eq!(am2.to_bits(), bm2.to_bits());
        assert_eq!(amin.to_bits(), bmin.to_bits());
        assert_eq!(amax.to_bits(), bmax.to_bits());
        assert_eq!(a.quality.to_bits(), b.quality.to_bits());
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        for n in [1usize, 2, 63, 64, 65, 200] {
            let records = sample_records(n);
            let frame = Frame::encode(&records);
            assert_eq!(frame.len(), n);
            assert_eq!(frame.base_round(), 100);
            assert_eq!(frame.last_round(), 99 + n);
            let decoded = frame.decode();
            assert_eq!(decoded.len(), n);
            for (a, b) in records.iter().zip(&decoded) {
                assert_bit_identical(a, b);
            }
            // Random access agrees with the cursor.
            for idx in [0, n / 2, n - 1] {
                assert_bit_identical(&records[idx], &frame.get(idx));
            }
        }
    }

    #[test]
    fn empty_stats_sentinels_and_absent_thresholds_survive() {
        // Empty OnlineStats carries ±∞ min/max sentinels; records may have
        // no threshold value at all. Both must round-trip exactly.
        let records: Vec<RoundRecord> = (0..10)
            .map(|i| RoundRecord {
                round: 1 + i,
                threshold_percentile: 1.0,
                threshold_value: None,
                received: 0,
                trimmed: 0,
                retained: OnlineStats::new(),
                quality: f64::NEG_INFINITY,
            })
            .collect();
        let frame = Frame::encode(&records);
        for (a, b) in records.iter().zip(frame.decode().iter()) {
            assert_bit_identical(a, b);
        }
    }

    #[test]
    fn compresses_well_below_raw() {
        // Synthetic records whose every field varies record-to-record —
        // harsher than real collector output (the representative ≥4×
        // check runs on actual collector history in the bench crate).
        let records = sample_records(256);
        let frame = Frame::encode(&records);
        let raw = records.len() * std::mem::size_of::<RoundRecord>();
        assert!(
            frame.packed_bytes() * 3 <= raw,
            "frame {} bytes vs raw {} bytes",
            frame.packed_bytes(),
            raw
        );
    }

    #[test]
    fn constant_and_dict_columns_cost_almost_nothing() {
        // All-identical records: every column is width 0 (packed) — the
        // whole frame is headers.
        let records = vec![sample_records(1)[0].clone(); 500];
        let frame = Frame::encode(&records);
        assert!(frame.packed_bytes() < 1024, "{}", frame.packed_bytes());
        for (a, b) in records.iter().zip(frame.decode().iter()) {
            assert_bit_identical(a, b);
        }
    }

    #[test]
    fn serialization_round_trips() {
        let records = sample_records(100);
        let frame = Frame::encode(&records);
        let bytes = frame.to_bytes();
        let back = Frame::from_bytes(&bytes).expect("round trip");
        assert_eq!(frame, back);
        for (a, b) in records.iter().zip(back.decode().iter()) {
            assert_bit_identical(a, b);
        }
    }

    #[test]
    fn deserialization_rejects_corruption() {
        let bytes = Frame::encode(&sample_records(20)).to_bytes();
        assert_eq!(Frame::from_bytes(&[]), Err(FrameError::Truncated));
        // Dropping the last byte breaks the CRC trailer before any
        // structural check runs.
        assert_eq!(
            Frame::from_bytes(&bytes[..bytes.len() - 1]),
            Err(FrameError::ChecksumMismatch)
        );
        // Truncating into the body (trailer gone entirely) is length-caught.
        assert_eq!(
            Frame::from_bytes(&bytes[..MAGIC.len() + 2]),
            Err(FrameError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(Frame::from_bytes(&bad_magic), Err(FrameError::BadMagic));
        // Any single-byte flip in the payload is caught by the checksum.
        let mut flipped = bytes.clone();
        flipped[MAGIC.len() + 24] ^= 0x55;
        assert_eq!(
            Frame::from_bytes(&flipped),
            Err(FrameError::ChecksumMismatch)
        );
        // A flip in the trailer itself likewise fails verification.
        let mut bad_crc = bytes.clone();
        *bad_crc.last_mut().unwrap() ^= 0xFF;
        assert_eq!(
            Frame::from_bytes(&bad_crc),
            Err(FrameError::ChecksumMismatch)
        );
        let shown = format!("{}", FrameError::Corrupt("word count mismatch"));
        assert!(shown.contains("word count"));
        assert!(format!("{}", FrameError::ChecksumMismatch).contains("checksum"));
    }

    #[test]
    fn legacy_tgf1_frames_still_deserialize() {
        let records = sample_records(50);
        let frame = Frame::encode(&records);
        // Rebuild the v1 wire image: same body, v1 magic, no trailer.
        let mut v1 = frame.to_bytes();
        v1.truncate(v1.len() - 4);
        v1[..MAGIC_V1.len()].copy_from_slice(MAGIC_V1);
        let back = Frame::from_bytes(&v1).expect("TGF1 stays readable");
        assert_eq!(frame, back);
        // The v1 path has no checksum: corruption inside a column lands on
        // a structural error (or decodes — never a panic), while body
        // truncation is still length-caught.
        assert_eq!(
            Frame::from_bytes(&v1[..v1.len() - 1]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn encoding_an_empty_span_panics() {
        let _ = Frame::encode(&[]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn encoding_unsorted_rounds_panics() {
        let mut records = sample_records(3);
        records.reverse();
        let _ = Frame::encode(&records);
    }
}
