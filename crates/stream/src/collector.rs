//! The data collector's per-round pipeline.
//!
//! In each round the collector (Fig. 3, steps ③–⑥): receives a batch,
//! evaluates its quality against the public standard, trims at the
//! percentile its strategy chose, and posts the round record to the public
//! board. The threshold *choice* is a policy concern and arrives as a
//! plain percentile — the engine stays strategy-agnostic.

use crate::board::{PublicBoard, RoundRecord};
use crate::quality::QualityEvaluation;
use crate::trim::{trim, SketchThreshold, TrimOp, TrimOutcome};
use trimgame_numerics::stats::OnlineStats;

/// Collect → evaluate → trim → record pipeline around a [`PublicBoard`].
pub struct Collector<Q: QualityEvaluation> {
    board: PublicBoard,
    quality: Q,
    rounds_processed: usize,
    sketch: Option<SketchThreshold>,
}

impl<Q: QualityEvaluation> std::fmt::Debug for Collector<Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("board", &self.board)
            .field("rounds_processed", &self.rounds_processed)
            .finish_non_exhaustive()
    }
}

impl<Q: QualityEvaluation> Collector<Q> {
    /// Creates a collector posting to `board` and scoring with `quality`.
    /// Thresholds are resolved exactly on each round's batch.
    #[must_use]
    pub fn new(board: PublicBoard, quality: Q) -> Self {
        Self {
            board,
            quality,
            rounds_processed: 0,
            sketch: None,
        }
    }

    /// Creates a collector whose percentile thresholds are resolved from a
    /// streaming [`SketchThreshold`] (GK summary with rank error `ε`) over
    /// *everything received so far* instead of sorting the current batch.
    ///
    /// This is both cheaper (no per-round sort, sublinear threshold state)
    /// and closer to the paper's public quality standard: the cut is
    /// resolved from the stream history *before* the current batch is
    /// ingested, so a colluding point mass in one batch cannot drag the
    /// percentile onto itself within its own round. The very first round
    /// has no history and falls back to the exact batch percentile.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 0.5`.
    #[must_use]
    pub fn with_sketch(board: PublicBoard, quality: Q, epsilon: f64) -> Self {
        Self {
            board,
            quality,
            rounds_processed: 0,
            sketch: Some(SketchThreshold::new(epsilon)),
        }
    }

    /// The streaming threshold source, if this collector uses one.
    #[must_use]
    pub fn sketch(&self) -> Option<&SketchThreshold> {
        self.sketch.as_ref()
    }

    /// The shared public board.
    #[must_use]
    pub fn board(&self) -> &PublicBoard {
        &self.board
    }

    /// The quality standard in use.
    #[must_use]
    pub fn quality(&self) -> &Q {
        &self.quality
    }

    /// Number of rounds processed by this collector.
    #[must_use]
    pub fn rounds_processed(&self) -> usize {
        self.rounds_processed
    }

    /// Warm-starts the streaming threshold source from a drained run of
    /// coalesced rounds — e.g. replaying a recorded game or adopting a
    /// backlog the coalescer sealed while this collector was offline. All
    /// batches are ingested through one GK merge sweep
    /// ([`SketchThreshold::observe_batches`]), so a long backlog costs
    /// one tuple-list rebuild instead of one per round. Nothing is
    /// trimmed or posted; a collector without a sketch ignores the call
    /// (exact-percentile thresholds carry no cross-round state).
    ///
    /// # Panics
    /// Panics on NaN in any batch.
    pub fn backfill(&mut self, rounds: &[crate::coalesce::RoundBatch]) {
        if let Some(source) = &mut self.sketch {
            let batches: Vec<&[f64]> = rounds.iter().map(|r| r.values.as_slice()).collect();
            source.observe_batches(&batches);
        }
    }

    /// Processes one round: trims `batch` at `threshold_percentile`,
    /// evaluates quality on the *received* batch (the standard judges what
    /// the adversary sent, not what survived), posts the record, and
    /// returns the trim outcome together with the quality score.
    pub fn process_round(
        &mut self,
        batch: &[f64],
        threshold_percentile: f64,
    ) -> (TrimOutcome, f64) {
        self.rounds_processed += 1;
        let quality = self.quality.evaluate(batch);
        let op = match &mut self.sketch {
            Some(source) => {
                // Resolve the cut from the history only, then ingest the
                // batch: the current round's data must not move the
                // current round's threshold. Before any history exists,
                // fall back to the exact batch percentile.
                let op = source.op(threshold_percentile);
                source.observe(batch);
                op.unwrap_or(TrimOp::UpperPercentile(threshold_percentile))
            }
            None => TrimOp::UpperPercentile(threshold_percentile),
        };
        let outcome = trim(batch, op);
        let mut retained = OnlineStats::new();
        retained.extend(&outcome.kept);
        self.board.post(RoundRecord {
            round: self.rounds_processed,
            threshold_percentile,
            threshold_value: outcome.threshold_value,
            received: batch.len(),
            trimmed: outcome.trimmed,
            retained,
            quality,
        });
        (outcome, quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::TailMassQuality;

    fn collector() -> Collector<TailMassQuality> {
        Collector::new(PublicBoard::new(), TailMassQuality::new(95.0, 0.05))
    }

    fn benign() -> Vec<f64> {
        (0..1000).map(|i| i as f64 / 10.0).collect()
    }

    #[test]
    fn round_is_recorded_on_board() {
        let mut c = collector();
        let batch = benign();
        let (outcome, quality) = c.process_round(&batch, 0.9);
        assert_eq!(c.rounds_processed(), 1);
        let record = c.board().latest().unwrap();
        assert_eq!(record.round, 1);
        assert_eq!(record.received, 1000);
        assert_eq!(record.trimmed, outcome.trimmed);
        assert_eq!(record.threshold_percentile, 0.9);
        assert!((record.quality - quality).abs() < 1e-12);
        assert!(quality > 0.99);
    }

    #[test]
    fn quality_judged_before_trimming() {
        let mut c = collector();
        let mut poisoned = benign();
        poisoned.extend(std::iter::repeat_n(99.9, 300));
        // Trimming at 0.7 removes the poison, but quality is still low
        // because it is evaluated on the received batch.
        let (outcome, quality) = c.process_round(&poisoned, 0.7);
        assert!(quality < 0.85, "quality {quality}");
        let kept_poison = outcome.kept.iter().filter(|&&v| v == 99.9).count();
        assert_eq!(kept_poison, 0);
    }

    #[test]
    fn successive_rounds_accumulate() {
        let mut c = collector();
        let batch = benign();
        for expected in 1..=5 {
            c.process_round(&batch, 0.9);
            assert_eq!(c.board().len(), expected);
        }
        assert_eq!(c.board().history().last().unwrap().round, 5);
    }

    #[test]
    fn sketch_collector_trims_near_exact_cut() {
        let mut exact = collector();
        let mut sketched =
            Collector::with_sketch(PublicBoard::new(), TailMassQuality::new(95.0, 0.05), 0.005);
        let batch = benign();
        // Round 1: no history yet, the sketch mode falls back to the exact
        // batch percentile — identical outcomes.
        let (a, _) = exact.process_round(&batch, 0.9);
        let (b, _) = sketched.process_round(&batch, 0.9);
        assert_eq!(a.trimmed, b.trimmed);
        assert_eq!(sketched.sketch().unwrap().count(), batch.len() as u64);
        assert!(exact.sketch().is_none());
        // Round 2: the cut now comes from the history sketch, within the
        // rank-error band of the exact batch cut (same distribution).
        let (a, _) = exact.process_round(&batch, 0.9);
        let (b, _) = sketched.process_round(&batch, 0.9);
        let diff = (a.trimmed as f64 - b.trimmed as f64).abs() / batch.len() as f64;
        assert!(diff <= 0.02, "trim fractions diverge by {diff}");
        assert_eq!(sketched.sketch().unwrap().count(), 2 * batch.len() as u64);
    }

    #[test]
    fn sketch_cut_resists_point_mass_in_current_batch() {
        // A colluding Sybil mass in round 2 must not drag round 2's
        // percentile cut onto itself: the cut is resolved from the clean
        // history before the batch is ingested.
        let mut sketched =
            Collector::with_sketch(PublicBoard::new(), TailMassQuality::new(95.0, 0.05), 0.005);
        let clean = benign(); // 0.0..=99.9
        let _ = sketched.process_round(&clean, 0.9);
        let mut poisoned = clean.clone();
        poisoned.extend(std::iter::repeat_n(500.0, clean.len() / 2)); // 33% Sybil mass
        let (outcome, _) = sketched.process_round(&poisoned, 0.9);
        let kept_poison = outcome.kept.iter().filter(|&&v| v == 500.0).count();
        assert_eq!(kept_poison, 0, "point mass must not ride the cut");
        // An exact batch-percentile collector is dragged: p90 of the
        // poisoned batch sits at the poison value, which then survives.
        let mut exact = collector();
        let (outcome, _) = exact.process_round(&poisoned, 0.9);
        assert!(
            outcome.kept.contains(&500.0),
            "batch-percentile cut is expected to be draggable"
        );
    }

    #[test]
    fn backfill_is_one_sweep_and_matches_concatenated_observation() {
        use crate::coalesce::RoundBatch;
        let rounds: Vec<RoundBatch> = (1..=3)
            .map(|round| RoundBatch {
                round,
                values: (0..500).map(|i| (i * round) as f64 / 7.0).collect(),
                folded: 0,
            })
            .collect();
        let concat: Vec<f64> = rounds.iter().flat_map(|r| r.values.clone()).collect();

        let mut warmed =
            Collector::with_sketch(PublicBoard::new(), TailMassQuality::new(95.0, 0.05), 0.01);
        warmed.backfill(&rounds);
        // The multi-batch sweep is bit-identical to observing the
        // concatenation in one batch.
        let mut reference = SketchThreshold::new(0.01);
        reference.observe(&concat);
        assert_eq!(warmed.sketch().unwrap(), &reference);
        assert_eq!(warmed.sketch().unwrap().count(), concat.len() as u64);
        // Backfill primes history only: nothing trimmed, nothing posted.
        assert_eq!(warmed.rounds_processed(), 0);
        assert!(warmed.board().is_empty());

        // An exact-threshold collector ignores the call.
        let mut exact = collector();
        exact.backfill(&rounds);
        assert!(exact.board().is_empty());
    }

    #[test]
    fn retained_summary_matches_kept_values() {
        let mut c = collector();
        let batch = benign();
        let (outcome, _) = c.process_round(&batch, 0.5);
        let record = c.board().latest().unwrap();
        assert_eq!(record.retained.count(), outcome.kept.len() as u64);
        let m = trimgame_numerics::stats::mean(&outcome.kept);
        assert!((record.retained.mean() - m).abs() < 1e-9);
    }
}
