//! The generic round loop of the infinite collection game.
//!
//! Wires together a benign [`RoundStream`], an adversary injection policy
//! and a collector threshold policy, producing per-round outcomes with
//! full provenance (which poison survived, which benign values were
//! falsely trimmed). The game-theoretic *strategies* of the paper are
//! closures from the `trim-core` crate; this module is the referee that
//! executes them.

use crate::board::PublicBoard;
use crate::coalesce::IngestRecord;
use crate::collector::Collector;
use crate::quality::QualityEvaluation;
use rand::Rng;
use trimgame_datasets::poison::PoisonBatch;
use trimgame_datasets::stream::RoundStream;

/// Everything that happened in one round, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// 1-based round number.
    pub round: usize,
    /// Percentile the collector trimmed at.
    pub threshold_percentile: f64,
    /// Values received (benign + poison).
    pub received: usize,
    /// Poison values received.
    pub poison_received: usize,
    /// Poison values that survived trimming.
    pub poison_survived: usize,
    /// Benign values that were (falsely) trimmed — the trimming overhead.
    pub benign_trimmed: usize,
    /// Retained values (benign + surviving poison), input order.
    pub kept: Vec<f64>,
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
}

impl RoundOutcome {
    /// Fraction of retained values that are poison — Table III's headline
    /// number ("the proportion of untrimmed poison values in the remaining
    /// data").
    #[must_use]
    pub fn surviving_poison_fraction(&self) -> f64 {
        if self.kept.is_empty() {
            0.0
        } else {
            self.poison_survived as f64 / self.kept.len() as f64
        }
    }

    /// Fraction of benign values lost to trimming.
    #[must_use]
    pub fn benign_trim_fraction(&self) -> f64 {
        let benign = self.received - self.poison_received;
        if benign == 0 {
            0.0
        } else {
            self.benign_trimmed as f64 / benign as f64
        }
    }

    /// Re-emits this round's retained values as [`IngestRecord`]s — the
    /// bridge from this pull-based referee loop to the push-based
    /// coalescing pipeline ([`crate::channel`] + [`crate::coalesce`]),
    /// e.g. to replay a recorded game through a collector service.
    pub fn ingest_records(&self) -> impl Iterator<Item = IngestRecord> + '_ {
        let round = self.round;
        self.kept
            .iter()
            .map(move |&value| IngestRecord { round, value })
    }
}

/// Runs `rounds` rounds of the collection game.
///
/// * `threshold_policy(round, board)` returns the trimming percentile for
///   the round — this is the defender's strategy, with white-box access to
///   the public board.
/// * `injector(round, benign, board, rng)` returns the combined
///   benign+poison batch — the adversary's strategy, with the same
///   white-box access (complete information game).
pub fn run_rounds<Q, R, FT, FI>(
    stream: &mut RoundStream,
    collector: &mut Collector<Q>,
    rounds: usize,
    rng: &mut R,
    mut threshold_policy: FT,
    mut injector: FI,
) -> Vec<RoundOutcome>
where
    Q: QualityEvaluation,
    R: Rng + ?Sized,
    FT: FnMut(usize, &PublicBoard) -> f64,
    FI: FnMut(usize, &[f64], &PublicBoard, &mut R) -> PoisonBatch,
{
    let mut outcomes = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        let benign = stream.next_round(rng);
        let board = collector.board().clone();
        let batch = injector(round, &benign, &board, rng);
        let threshold = threshold_policy(round, &board).clamp(0.0, 1.0);
        let (trim_outcome, quality) = collector.process_round(&batch.values, threshold);

        let mut poison_received = 0;
        let mut poison_survived = 0;
        let mut benign_trimmed = 0;
        for (i, &is_poison) in batch.is_poison.iter().enumerate() {
            let kept = trim_outcome.kept_mask[i];
            if is_poison {
                poison_received += 1;
                if kept {
                    poison_survived += 1;
                }
            } else if !kept {
                benign_trimmed += 1;
            }
        }

        outcomes.push(RoundOutcome {
            round,
            threshold_percentile: threshold,
            received: batch.values.len(),
            poison_received,
            poison_survived,
            benign_trimmed,
            kept: trim_outcome.kept,
            quality,
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::TailMassQuality;
    use trimgame_datasets::poison::{InjectionPosition, PoisonSpec};
    use trimgame_numerics::rand_ext::seeded_rng;

    fn setup() -> (RoundStream, Collector<TailMassQuality>) {
        let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect();
        let stream = RoundStream::new(pool, 1000);
        let collector = Collector::new(PublicBoard::new(), TailMassQuality::new(95.0, 0.05));
        (stream, collector)
    }

    #[test]
    fn static_threshold_vs_static_adversary() {
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(1);
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.99));
        // Trim at p80 of the combined batch: decisively below the poison
        // point mass at the benign p99 value.
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            10,
            &mut rng,
            |_, _| 0.8,
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            assert_eq!(o.round, outcomes[o.round - 1].round);
            assert_eq!(o.poison_received, 100);
            assert_eq!(o.poison_survived, 0, "round {}", o.round);
            assert!(o.benign_trimmed > 0, "some benign tail is the overhead");
        }
        assert_eq!(collector.board().len(), 10);
    }

    #[test]
    fn poison_just_below_threshold_survives() {
        // The paper's "Baseline static" ideal attack: the adversary knows
        // the collector trims at Tth and injects at percentile Tth − 1%.
        // Poison strictly below the cut survives in full while still being
        // the most damaging admissible position.
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(11);
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.86));
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            3,
            &mut rng,
            |_, _| 0.9,
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        for o in &outcomes {
            assert!(
                o.poison_survived as f64 / o.poison_received as f64 > 0.9,
                "below-threshold poison should survive: {}/{}",
                o.poison_survived,
                o.poison_received
            );
        }
    }

    #[test]
    fn ostrich_threshold_keeps_poison() {
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(2);
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.99));
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            5,
            &mut rng,
            |_, _| 1.0, // never trim
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        for o in &outcomes {
            assert_eq!(o.poison_survived, o.poison_received);
            assert_eq!(o.benign_trimmed, 0);
            assert!(o.surviving_poison_fraction() > 0.08);
        }
    }

    #[test]
    fn policies_can_react_to_board() {
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(3);
        let spec = PoisonSpec::new(0.3, InjectionPosition::Percentile(0.99));
        // Policy: start soft (0.99), harden to 0.7 once quality drops
        // (0.7 is below the rank band the 30% poison point mass occupies).
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            6,
            &mut rng,
            |_, board| match board.latest() {
                Some(r) if r.quality < 0.9 => 0.7,
                _ => 0.99,
            },
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        // First round is soft; later rounds hardened.
        assert!((outcomes[0].threshold_percentile - 0.99).abs() < 1e-12);
        assert!(outcomes
            .iter()
            .skip(1)
            .all(|o| (o.threshold_percentile - 0.7).abs() < 1e-12));
        // Hardened rounds remove more poison than the soft round.
        assert!(outcomes[5].poison_survived < outcomes[0].poison_survived);
    }

    #[test]
    fn adversary_can_react_to_board() {
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(4);
        // Adversary injects just below the last threshold percentile.
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            4,
            &mut rng,
            |_, _| 0.9,
            |_, benign, board, rng| {
                let pos = board
                    .latest()
                    .map_or(0.99, |r| (r.threshold_percentile - 0.02).max(0.0));
                PoisonSpec::new(0.1, InjectionPosition::Percentile(pos)).inject(benign, rng)
            },
        );
        // After round 1 the adversary dodges under the threshold and most
        // poison survives.
        let late = &outcomes[3];
        assert!(
            late.poison_survived as f64 / late.poison_received as f64 > 0.5,
            "evasive poison should mostly survive: {}/{}",
            late.poison_survived,
            late.poison_received
        );
    }

    #[test]
    fn outcomes_replay_through_the_coalescing_pipeline() {
        use crate::coalesce::{Coalescer, CoalescerConfig, LatePolicy};
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(6);
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.95));
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            5,
            &mut rng,
            |_, _| 0.9,
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        // Replaying the recorded game record-by-record through the
        // push-based coalescer reconstructs the per-round batches.
        let mut coalescer = Coalescer::new(CoalescerConfig {
            batch: usize::MAX,
            reorder_window: 1,
            late_policy: LatePolicy::Drop,
        });
        let mut sealed = Vec::new();
        for outcome in &outcomes {
            for rec in outcome.ingest_records() {
                coalescer.push(rec, &mut sealed);
            }
        }
        coalescer.flush(&mut sealed);
        assert_eq!(sealed.len(), outcomes.len());
        for (batch, outcome) in sealed.iter().zip(&outcomes) {
            assert_eq!(batch.round, outcome.round);
            assert_eq!(batch.values, outcome.kept);
        }
        assert_eq!(coalescer.stats().late, 0);
    }

    #[test]
    fn fractions_are_consistent() {
        let (mut stream, mut collector) = setup();
        let mut rng = seeded_rng(5);
        let spec = PoisonSpec::new(0.2, InjectionPosition::Percentile(0.95));
        let outcomes = run_rounds(
            &mut stream,
            &mut collector,
            3,
            &mut rng,
            |_, _| 0.85,
            move |_, benign, _, rng| spec.inject(benign, rng),
        );
        for o in outcomes {
            assert!(o.surviving_poison_fraction() >= 0.0);
            assert!(o.benign_trim_fraction() >= 0.0 && o.benign_trim_fraction() <= 1.0);
            assert_eq!(
                o.kept.len(),
                o.received - o.benign_trimmed - (o.poison_received - o.poison_survived)
            );
        }
    }
}
