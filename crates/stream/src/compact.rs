//! The tiering policy over ranged boards: compaction, eviction, spill.
//!
//! A [`crate::board::RangedBoard`] accumulates one hot
//! [`crate::board::PublicBoard`] per round-range span forever; this
//! module is the maintenance side of the storage tiers. A [`Compactor`]
//! runs **between rounds** in a collector worker's loop (it never holds
//! the span lock across an encode or a file write, so appends and reads
//! are never blocked on compression):
//!
//! 1. **Compact** — sealed spans behind the hot tail are frozen into
//!    immutable bit-packed [`crate::frame::Frame`]s (typically 4–10×
//!    smaller than the raw chunks).
//! 2. **Evict** — while the cold spans' resident bytes exceed the
//!    configured budget, the least-recently-read framed span is written
//!    to a disk file under the spill directory and dropped from RAM.
//!    Without a spill directory frames cannot be dropped (they *are* the
//!    data), so an over-budget state is counted honestly as a budget
//!    overrun instead of silently losing history.
//!
//! Every read of a cold span re-inflates it transparently (see the board
//! module); [`TierStats`] counts frames built, bytes before/after,
//! inflations, spill writes/loads and budget overruns, and the collector
//! report surfaces them next to the coalesce/backpressure counters.
//!
//! **Fault tolerance.** Spill writes go through bounded
//! retry-with-backoff ([`crate::fault::with_retry`]); a write that stays
//! broken is counted as a terminal spill-write failure and flips the
//! compactor into *degraded freeze-only mode* — spans still compact to
//! resident frames, nothing is evicted, budget overruns are counted
//! honestly, and the worker is never poisoned by a dying disk. When a
//! [`crate::recover::ManifestWriter`] is attached, every freeze and
//! spill is journaled so a crashed run's cold tiers can be rebuilt by
//! [`crate::board::RangedVenue::recover_from_spill`].

use crate::board::RangedBoard;
use crate::fault::{with_retry, RetryPolicy};
use crate::recover::{ManifestWriter, SpanManifest};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the storage tiers.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Sealed spans kept hot behind the live span (the live span itself
    /// is always exempt). 0 compacts everything behind the live span.
    pub hot_tail_spans: usize,
    /// Resident-bytes budget for the *eligible* (compactable) spans of
    /// one board. `None` disables eviction — spans compact but never
    /// spill.
    pub resident_budget: Option<usize>,
    /// Directory for spill files. `None` disables the disk tier; an
    /// over-budget board then counts overruns instead of evicting.
    pub spill_dir: Option<PathBuf>,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            hot_tail_spans: 1,
            resident_budget: None,
            spill_dir: None,
        }
    }
}

/// Venue-wide tier activity counters. Shared by every shard of a
/// [`crate::board::RangedVenue`]; all counters are monotone.
#[derive(Debug, Default)]
pub struct TierStats {
    frames_built: AtomicU64,
    compacted_records: AtomicU64,
    bytes_raw: AtomicU64,
    bytes_framed: AtomicU64,
    inflations: AtomicU64,
    spill_writes: AtomicU64,
    spill_loads: AtomicU64,
    budget_overruns: AtomicU64,
    io_retries: AtomicU64,
    spill_write_failures: AtomicU64,
    lost_span_reads: AtomicU64,
}

/// A point-in-time copy of [`TierStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStatsSnapshot {
    /// Spans compacted into frames.
    pub frames_built: u64,
    /// Records those frames hold.
    pub compacted_records: u64,
    /// Raw chunk bytes the compacted spans occupied before framing.
    pub bytes_raw: u64,
    /// Packed bytes the frames occupy (before any spill).
    pub bytes_framed: u64,
    /// Cold-span decodes back into records (frame or spill reads).
    pub inflations: u64,
    /// Frames written to the disk tier.
    pub spill_writes: u64,
    /// Spill files read back for an inflation.
    pub spill_loads: u64,
    /// Maintenance passes that ended over budget with no way to evict.
    pub budget_overruns: u64,
    /// Spill I/O attempts that failed transiently and were retried.
    pub io_retries: u64,
    /// Spill writes that stayed broken through the whole retry budget
    /// (each one degrades its compactor to freeze-only mode).
    pub spill_write_failures: u64,
    /// Spilled spans whose file stayed unreadable through the retry
    /// budget and were served as empty (quarantined) spans.
    pub lost_span_reads: u64,
}

impl TierStats {
    pub(crate) fn count_frame(&self, records: u64, raw: u64, framed: u64) {
        self.frames_built.fetch_add(1, Ordering::Relaxed);
        self.compacted_records.fetch_add(records, Ordering::Relaxed);
        self.bytes_raw.fetch_add(raw, Ordering::Relaxed);
        self.bytes_framed.fetch_add(framed, Ordering::Relaxed);
    }

    pub(crate) fn count_inflation(&self) {
        self.inflations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_spill_write(&self) {
        self.spill_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_spill_load(&self) {
        self.spill_loads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_budget_overrun(&self) {
        self.budget_overruns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_io_retries(&self, retries: u64) {
        self.io_retries.fetch_add(retries, Ordering::Relaxed);
    }

    pub(crate) fn count_spill_write_failure(&self) {
        self.spill_write_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_lost_span_read(&self) {
        self.lost_span_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters out.
    #[must_use]
    pub fn snapshot(&self) -> TierStatsSnapshot {
        TierStatsSnapshot {
            frames_built: self.frames_built.load(Ordering::Relaxed),
            compacted_records: self.compacted_records.load(Ordering::Relaxed),
            bytes_raw: self.bytes_raw.load(Ordering::Relaxed),
            bytes_framed: self.bytes_framed.load(Ordering::Relaxed),
            inflations: self.inflations.load(Ordering::Relaxed),
            spill_writes: self.spill_writes.load(Ordering::Relaxed),
            spill_loads: self.spill_loads.load(Ordering::Relaxed),
            budget_overruns: self.budget_overruns.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            spill_write_failures: self.spill_write_failures.load(Ordering::Relaxed),
            lost_span_reads: self.lost_span_reads.load(Ordering::Relaxed),
        }
    }
}

/// Spans frozen per maintenance pass: bounds the work a single
/// between-rounds call does, so a worker's ingest cadence stays smooth
/// even when a long backlog of sealed spans is waiting.
const MAX_FREEZES_PER_RUN: usize = 4;

/// The between-rounds maintenance driver for one board's tiers. One
/// compactor per ingest worker, each owning its worker's shard; `tag`
/// keeps the shards' spill files apart in a shared directory.
#[derive(Debug, Clone)]
pub struct Compactor {
    config: TierConfig,
    tag: String,
    /// Durable journal of freezes and spills; `None` runs unjournaled
    /// (crash recovery then has nothing to rebuild from).
    manifest: Option<Arc<Mutex<ManifestWriter>>>,
    /// Latches true on a terminal spill-write failure; clones share it.
    degraded: Arc<AtomicBool>,
    retry: RetryPolicy,
}

impl Compactor {
    /// Creates a compactor applying `config`, naming spill files with
    /// `tag`.
    #[must_use]
    pub fn new(config: TierConfig, tag: impl Into<String>) -> Self {
        Self {
            config,
            tag: tag.into(),
            manifest: None,
            degraded: Arc::new(AtomicBool::new(false)),
            retry: RetryPolicy::default(),
        }
    }

    /// Attaches the shard's durable spill manifest: every freeze and
    /// spill this compactor performs is journaled through it.
    #[must_use]
    pub fn with_manifest(mut self, manifest: Arc<Mutex<ManifestWriter>>) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// The configuration this compactor applies.
    #[must_use]
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// True once a terminal spill-write failure has demoted this
    /// compactor (and its clones) to freeze-only mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// One maintenance pass over `board`: freeze up to
    /// `MAX_FREEZES_PER_RUN` eligible hot spans, then evict
    /// least-recently-read frames to the spill tier until the eligible
    /// spans fit the resident budget. Cheap when there is nothing to do
    /// (one read lock to scan the span table).
    pub fn run(&self, board: &RangedBoard) {
        if board.last_round().is_none() {
            return;
        }
        let live = board.live_span();
        let eligible = |idx: usize| idx + self.config.hot_tail_spans < live;
        let stats = board.tier_stats();

        let mut frozen = 0usize;
        for span in board.span_summaries() {
            if frozen == MAX_FREEZES_PER_RUN {
                break;
            }
            if span.is_hot && span.len > 0 && eligible(span.idx) {
                // `freeze_span` counts the frame into the stats itself;
                // a lost race (slot no longer hot) is simply skipped.
                if let Some(receipt) = board.freeze_span(span.idx) {
                    self.log_frozen(
                        &stats,
                        span.idx,
                        receipt.base_round,
                        receipt.last_round,
                        receipt.len,
                    );
                    frozen += 1;
                }
            }
        }

        let Some(budget) = self.config.resident_budget else {
            return;
        };
        if self.is_degraded() {
            // Freeze-only mode: the spill tier already proved broken, so
            // eviction is off the table. Stay honest about the overage.
            let over = board
                .span_summaries()
                .iter()
                .filter(|s| eligible(s.idx))
                .map(|s| s.resident_bytes)
                .sum::<usize>()
                > budget;
            if over {
                stats.count_budget_overrun();
            }
            return;
        }
        loop {
            let spans = board.span_summaries();
            let resident: usize = spans
                .iter()
                .filter(|s| eligible(s.idx))
                .map(|s| s.resident_bytes)
                .sum();
            if resident <= budget {
                return;
            }
            // Evict the least-recently-read resident frame.
            let victim = spans
                .iter()
                .filter(|s| s.is_framed && eligible(s.idx))
                .min_by_key(|s| s.touched)
                .map(|s| s.idx);
            if victim.is_none() {
                // The overage is un-compacted hot backlog: the per-pass
                // freeze cap yields to the budget — freeze another span
                // now so it becomes spillable, rather than idling over
                // budget until a later pass catches up.
                let backlog = spans
                    .iter()
                    .find(|s| s.is_hot && s.len > 0 && eligible(s.idx))
                    .map(|s| s.idx);
                if let Some(idx) = backlog {
                    if let Some(receipt) = board.freeze_span(idx) {
                        self.log_frozen(
                            &stats,
                            idx,
                            receipt.base_round,
                            receipt.last_round,
                            receipt.len,
                        );
                        continue;
                    }
                }
            }
            let (Some(idx), Some(dir)) = (victim, self.config.spill_dir.as_ref()) else {
                // Nothing evictable (no spill tier, nothing left to
                // freeze): report, don't lose data.
                stats.count_budget_overrun();
                return;
            };
            if std::fs::create_dir_all(dir).is_err() {
                stats.count_budget_overrun();
                return;
            }
            let name = format!("{}-span{idx}.frame", self.tag);
            let path = dir.join(&name);
            // Transient write failures (a flaky disk, an injected fault)
            // get a bounded retry budget; a write that stays broken
            // demotes the compactor to freeze-only instead of poisoning
            // the worker.
            let (result, retries) = with_retry(&self.retry, std::thread::sleep, || {
                board.spill_span(idx, path.clone())
            });
            stats.add_io_retries(u64::from(retries));
            match result {
                Ok(Some(receipt)) => {
                    if let Some(manifest) = &self.manifest {
                        let entry = SpanManifest {
                            span_idx: idx as u64,
                            base_round: receipt.base_round as u64,
                            last_round: receipt.last_round as u64,
                            len: receipt.len as u64,
                            frame_crc: receipt.file_crc,
                            file_name: name,
                        };
                        if manifest.lock().log_spilled(&entry).is_err() {
                            stats.count_spill_write_failure();
                        }
                    }
                }
                Ok(None) => {
                    // Racing state change: count and stop rather than
                    // spin.
                    stats.count_budget_overrun();
                    return;
                }
                Err(_) => {
                    stats.count_spill_write_failure();
                    self.degraded.store(true, Ordering::Relaxed);
                    stats.count_budget_overrun();
                    return;
                }
            }
        }
    }

    /// Journals a freeze when a manifest is attached; journal failures
    /// count as spill-write failures (the journal shares the tier's
    /// disk).
    fn log_frozen(
        &self,
        stats: &TierStats,
        idx: usize,
        base_round: usize,
        last_round: usize,
        len: usize,
    ) {
        if let Some(manifest) = &self.manifest {
            let ok = manifest
                .lock()
                .log_frozen(idx as u64, base_round as u64, last_round as u64, len as u64)
                .is_ok();
            if !ok {
                stats.count_spill_write_failure();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::{RangedVenue, RoundRecord};
    use trimgame_numerics::stats::OnlineStats;

    fn record(round: usize) -> RoundRecord {
        let mut retained = OnlineStats::new();
        retained.extend(&[round as f64, round as f64 + 1.0]);
        RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(42.0 + (round % 3) as f64),
            received: 100,
            trimmed: round % 5,
            retained,
            quality: (round % 10) as f64 / 10.0,
        }
    }

    fn filled_board(span: usize, rounds: usize) -> RangedBoard {
        let board = RangedBoard::new(span);
        for round in 1..=rounds {
            board.post(record(round));
        }
        board
    }

    #[test]
    fn compaction_preserves_every_read_bit_for_bit() {
        // Chunk-sized spans (the realistic floor — tinier spans pay more
        // in frame headers than the rows cost).
        let board = filled_board(64, 800);
        let reference: Vec<RoundRecord> = {
            let mut out = Vec::new();
            board.for_each_since_round(0, |r| out.push(r.clone()));
            out
        };
        Compactor::new(TierConfig::default(), "t").run(&board);
        let stats = board.tier_stats().snapshot();
        assert!(stats.frames_built > 0, "spans should have been frozen");
        assert!(stats.bytes_framed < stats.bytes_raw);

        let mut after = Vec::new();
        board.for_each_since_round(0, |r| after.push(r.clone()));
        assert_eq!(after, reference);
        assert!(board.tier_stats().snapshot().inflations > 0);
        // Point lookups cross tiers too.
        for probe in [1usize, 64, 65, 150, 800] {
            assert_eq!(board.round(probe).unwrap(), reference[probe - 1]);
        }
        assert_eq!(board.len(), 800);
        assert_eq!(board.last_round(), Some(800));
    }

    #[test]
    fn hot_tail_exemption_keeps_trailing_spans_uncompacted() {
        let board = filled_board(10, 95); // live span = 9
        let cfg = TierConfig {
            hot_tail_spans: 3,
            ..TierConfig::default()
        };
        let compactor = Compactor::new(cfg, "t");
        // Several passes: the per-pass freeze cap must not change the
        // fixpoint, only how fast it is reached.
        for _ in 0..4 {
            compactor.run(&board);
        }
        let spans = board.span_summaries();
        for s in &spans {
            let expect_hot = s.idx + 3 >= 9;
            assert_eq!(s.is_hot, expect_hot, "span {}", s.idx);
        }
        assert_eq!(board.tier_stats().snapshot().frames_built, 6);
    }

    #[test]
    fn budget_without_spill_dir_counts_overruns_and_loses_nothing() {
        let board = filled_board(8, 100);
        let compactor = Compactor::new(
            TierConfig {
                hot_tail_spans: 0,
                resident_budget: Some(64), // absurdly tight
                spill_dir: None,
            },
            "t",
        );
        compactor.run(&board);
        let stats = board.tier_stats().snapshot();
        assert!(stats.budget_overruns >= 1);
        assert_eq!(stats.spill_writes, 0);
        let mut count = 0;
        board.for_each_since_round(0, |_| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn eviction_spills_to_disk_until_under_budget_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("trimgame-tier-{}", std::process::id()));
        let board = filled_board(8, 200);
        let reference: Vec<RoundRecord> = (1..=200).map(record).collect();
        let compactor = Compactor::new(
            TierConfig {
                hot_tail_spans: 0,
                resident_budget: Some(1500),
                spill_dir: Some(dir.clone()),
            },
            "shard0",
        );
        // Enough passes to clear the whole freeze backlog, then evict.
        for _ in 0..10 {
            compactor.run(&board);
        }
        let stats = board.tier_stats().snapshot();
        assert!(stats.spill_writes > 0, "tight budget must force spills");
        assert_eq!(stats.budget_overruns, 0, "spill tier absorbs the overage");
        let resident: usize = board
            .span_summaries()
            .iter()
            .filter(|s| s.idx < board.live_span())
            .map(|s| s.resident_bytes)
            .sum();
        assert!(resident <= 1500, "resident {resident} over budget");

        // Reads hit the disk tier transparently and bit-identically.
        let mut after = Vec::new();
        board.for_each_since_round(0, |r| after.push(r.clone()));
        assert_eq!(after, reference);
        assert!(board.tier_stats().snapshot().spill_loads > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_prefers_unread_spans() {
        let dir = std::env::temp_dir().join(format!("trimgame-lru-{}", std::process::id()));
        let board = filled_board(8, 100);
        let compactor = Compactor::new(TierConfig::default(), "t");
        for _ in 0..4 {
            compactor.run(&board);
        }
        // Touch the oldest cold spans (rounds 1..16 → spans 0 and 1).
        board.for_each_since_round(1, |_| {});
        let _ = board.round(3);
        // Now demand eviction of exactly one span: the victim must be a
        // span that was *not* just re-read... every span was touched by
        // for_each_since_round(1), so re-touch only span 0 and 1 again
        // via a bounded read, making span 2 the LRU minimum among 2..
        let _ = board.round(1); // touches span 0 only
        let evictor = Compactor::new(
            TierConfig {
                hot_tail_spans: 1,
                // Everything framed must go except what fits one frame.
                resident_budget: Some(
                    board
                        .span_summaries()
                        .iter()
                        .filter(|s| s.is_framed)
                        .map(|s| s.resident_bytes)
                        .max()
                        .unwrap(),
                ),
                spill_dir: Some(dir.clone()),
            },
            "t",
        );
        evictor.run(&board);
        let spans = board.span_summaries();
        // The one span still framed (not spilled) must be the
        // most-recently-touched one.
        let survivor_max_tick = spans
            .iter()
            .filter(|s| s.is_framed)
            .map(|s| s.touched)
            .max();
        let spilled_max_tick = spans
            .iter()
            .filter(|s| !s.is_framed && !s.is_hot)
            .map(|s| s.touched)
            .max()
            .unwrap();
        assert!(
            survivor_max_tick.is_none_or(|t| t >= spilled_max_tick),
            "LRU must evict the coldest frame first"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn venue_shards_share_one_stats_instance() {
        let venue = RangedVenue::new(3, 4);
        for c in 0..3 {
            for round in 1..=20 {
                venue.collector(c).post(record(round));
            }
        }
        let compactor = Compactor::new(TierConfig::default(), "t");
        for c in 0..3 {
            compactor.run(&venue.collector(c));
        }
        let stats = venue.tier_stats().snapshot();
        // 20 rounds, span 4 → live span 4; hot tail 1 → spans 0..=2
        // eligible per shard.
        assert_eq!(stats.frames_built, 9);
        assert_eq!(stats.compacted_records, 3 * 12);
        assert!(venue.resident_bytes() > 0);
    }

    #[test]
    fn merged_reads_are_identical_before_and_after_tiering() {
        let venue = RangedVenue::new(2, 8);
        for round in 1..=120 {
            venue.collector(0).post(record(round));
            if round % 2 == 0 {
                venue.collector(1).post(record(round));
            }
        }
        let before = venue.merged().records();
        let compactor = Compactor::new(
            TierConfig {
                hot_tail_spans: 0,
                ..TierConfig::default()
            },
            "t",
        );
        for c in 0..2 {
            for _ in 0..8 {
                compactor.run(&venue.collector(c));
            }
        }
        assert_eq!(venue.merged().records(), before);
        // The bounded view skips cold history without inflating it.
        let inflations_before = venue.tier_stats().snapshot().inflations;
        let bounded = venue.merged_since_round(115).records();
        let expect: Vec<(usize, RoundRecord)> = before
            .iter()
            .filter(|(_, r)| r.round >= 115)
            .cloned()
            .collect();
        assert_eq!(bounded, expect);
        // Rounds 113.. live in the last spans (113..=120 with span 8 is
        // span 14, the live span) — no cold span needed inflating.
        assert_eq!(venue.tier_stats().snapshot().inflations, inflations_before);
    }
}
