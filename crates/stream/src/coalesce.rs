//! Batch coalescing with a bounded reorder window and watermark rule.
//!
//! The collector service receives individually-stamped records
//! (`(round, value)` pairs) that may arrive late or out of order within
//! a bounded horizon. The [`Coalescer`] groups them back into per-round
//! batches and emits those batches in strict round order, sealing a
//! round when either trigger fires:
//!
//! * **count** — the round has accumulated `batch` records (the paper's
//!   fixed per-round batch size `n`), or
//! * **age** — a record for round `r + reorder_window` has been seen,
//!   so by the bounded-disorder assumption no more data for `r` can
//!   arrive; `r` seals with whatever it has.
//!
//! The **watermark** is the highest round already sealed. A record at
//! or below the watermark is *late beyond the window*: it is counted
//! and routed by [`LatePolicy`] — dropped, or folded into the next
//! round to seal (the fold keeps the value in the game without
//! reopening history, mirroring how a production pipeline re-buckets
//! stragglers).
//!
//! Determinism contract: for a fixed input sequence the sealed batches,
//! their order, and every statistic are a pure function of the
//! configuration — there is no wall-clock involvement. Time-triggered
//! flushes are the caller's job ([`Coalescer::flush`] on its cadence or
//! at shutdown), which keeps the seal boundaries reproducible in tests.

use std::collections::BTreeMap;

/// One stamped observation on the wire: which round it belongs to and
/// the submitted value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestRecord {
    /// 1-based logical round the producer stamped.
    pub round: usize,
    /// The submitted (possibly manipulated) data value.
    pub value: f64,
}

/// A sealed per-round batch, emitted in strict round order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundBatch {
    /// The logical round this batch plays.
    pub round: usize,
    /// Values for the round, in arrival order; folded stragglers (if
    /// any) come first.
    pub values: Vec<f64>,
    /// How many leading `values` were folded in from late records.
    pub folded: usize,
}

/// What to do with a record that arrives at or below the watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Count and discard the record.
    #[default]
    Drop,
    /// Count it and prepend its value to the next round that seals.
    FoldIntoNext,
}

/// Static knobs for a [`Coalescer`].
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// Count trigger: seal a round once it holds this many records.
    pub batch: usize,
    /// Age trigger: seeing round `r + reorder_window` seals round `r`.
    pub reorder_window: usize,
    /// Routing for late-beyond-watermark records.
    pub late_policy: LatePolicy,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            batch: 64,
            reorder_window: 4,
            late_policy: LatePolicy::Drop,
        }
    }
}

/// Counters the bench harness reports alongside throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Records pushed in total.
    pub records: u64,
    /// Records that arrived at or below the watermark.
    pub late: u64,
    /// Late records discarded under [`LatePolicy::Drop`].
    pub dropped: u64,
    /// Late records folded under [`LatePolicy::FoldIntoNext`].
    pub folded: u64,
    /// Rounds sealed by the count trigger.
    pub sealed_full: u64,
    /// Rounds sealed by the age (reorder-window) trigger.
    pub sealed_by_age: u64,
    /// Rounds sealed by an explicit flush.
    pub sealed_by_flush: u64,
}

/// Reassembles out-of-order stamped records into ordered round batches.
#[derive(Debug)]
pub struct Coalescer {
    cfg: CoalescerConfig,
    /// Open rounds above the watermark, keyed by round.
    pending: BTreeMap<usize, Vec<f64>>,
    /// Highest round stamp observed so far (drives the age trigger).
    max_seen: usize,
    /// Highest round already sealed; records at/below it are late.
    watermark: usize,
    /// Values awaiting the next seal under [`LatePolicy::FoldIntoNext`].
    fold_buf: Vec<f64>,
    stats: CoalesceStats,
}

impl Coalescer {
    pub fn new(cfg: CoalescerConfig) -> Self {
        assert!(cfg.batch > 0, "batch size must be positive");
        Coalescer {
            cfg,
            pending: BTreeMap::new(),
            max_seen: 0,
            watermark: 0,
            fold_buf: Vec::new(),
            stats: CoalesceStats::default(),
        }
    }

    pub fn config(&self) -> &CoalescerConfig {
        &self.cfg
    }

    pub fn stats(&self) -> CoalesceStats {
        self.stats
    }

    /// Highest round already sealed. Records stamped at or below this
    /// are late beyond the reorder window.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Rounds currently open in the reorder window.
    pub fn open_rounds(&self) -> usize {
        self.pending.len()
    }

    /// Ingest one stamped record, appending any rounds it seals to
    /// `out` in strict round order.
    pub fn push(&mut self, rec: IngestRecord, out: &mut Vec<RoundBatch>) {
        debug_assert!(rec.round > 0, "rounds are 1-based");
        self.stats.records += 1;
        if rec.round <= self.watermark {
            self.stats.late += 1;
            match self.cfg.late_policy {
                LatePolicy::Drop => self.stats.dropped += 1,
                LatePolicy::FoldIntoNext => {
                    self.stats.folded += 1;
                    self.fold_buf.push(rec.value);
                }
            }
            return;
        }
        self.max_seen = self.max_seen.max(rec.round);
        let bucket = self.pending.entry(rec.round).or_default();
        bucket.push(rec.value);
        self.drain_sealed(out);
    }

    /// Seal every open round regardless of triggers (the caller's time
    /// trigger, and the shutdown path). Emission stays round-ordered.
    pub fn flush(&mut self, out: &mut Vec<RoundBatch>) {
        while let Some((&round, _)) = self.pending.iter().next() {
            self.stats.sealed_by_flush += 1;
            self.seal(round, out);
        }
    }

    /// Seal rounds from the bottom of the window while a trigger holds.
    /// Rounds seal lowest-first, so emission is strictly ordered and
    /// the watermark only advances.
    fn drain_sealed(&mut self, out: &mut Vec<RoundBatch>) {
        while let Some((&round, bucket)) = self.pending.iter().next() {
            if bucket.len() >= self.cfg.batch {
                self.stats.sealed_full += 1;
            } else if self.max_seen >= round + self.cfg.reorder_window {
                self.stats.sealed_by_age += 1;
            } else {
                break;
            }
            self.seal(round, out);
        }
    }

    fn seal(&mut self, round: usize, out: &mut Vec<RoundBatch>) {
        let bucket = self.pending.remove(&round).expect("sealing open round");
        let folded = self.fold_buf.len();
        let mut values = std::mem::take(&mut self.fold_buf);
        values.extend_from_slice(&bucket);
        self.watermark = round;
        out.push(RoundBatch {
            round,
            values,
            folded,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize, value: f64) -> IngestRecord {
        IngestRecord { round, value }
    }

    fn cfg(batch: usize, window: usize, late_policy: LatePolicy) -> CoalescerConfig {
        CoalescerConfig {
            batch,
            reorder_window: window,
            late_policy,
        }
    }

    /// Pins the exact coalescing boundaries the determinism contract
    /// depends on: which trigger seals which round, in which order.
    #[test]
    fn sealing_boundaries_are_pinned() {
        let mut co = Coalescer::new(cfg(3, 2, LatePolicy::Drop));
        let mut out = Vec::new();

        // Round 1 fills: count trigger at exactly batch=3.
        co.push(rec(1, 10.0), &mut out);
        co.push(rec(1, 11.0), &mut out);
        assert!(out.is_empty());
        co.push(rec(1, 12.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].round, 1);
        assert_eq!(out[0].values, vec![10.0, 11.0, 12.0]);
        assert_eq!(co.watermark(), 1);

        // Rounds 2 and 3 trickle out of order; nothing seals while the
        // window (2) still covers them.
        co.push(rec(3, 30.0), &mut out);
        co.push(rec(2, 20.0), &mut out);
        assert_eq!(out.len(), 1);

        // Seeing round 4 = 2 + window ages round 2 out — it seals
        // short, and round 3 stays open (4 < 3 + 2).
        co.push(rec(4, 40.0), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].round, 2);
        assert_eq!(out[1].values, vec![20.0]);
        assert_eq!(co.watermark(), 2);
        assert_eq!(co.open_rounds(), 2);

        // Seeing round 5 ages round 3 out; round 4 stays.
        co.push(rec(5, 50.0), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].round, 3);
        assert_eq!(out[2].values, vec![30.0]);

        // Flush seals the stragglers in order.
        co.flush(&mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3].round, 4);
        assert_eq!(out[4].round, 5);
        assert!(co.open_rounds() == 0);

        let stats = co.stats();
        assert_eq!(stats.records, 7);
        assert_eq!(stats.sealed_full, 1);
        assert_eq!(stats.sealed_by_age, 2);
        assert_eq!(stats.sealed_by_flush, 2);
        assert_eq!(stats.late, 0);
    }

    #[test]
    fn late_records_drop_under_drop_policy() {
        let mut co = Coalescer::new(cfg(2, 1, LatePolicy::Drop));
        let mut out = Vec::new();
        co.push(rec(1, 1.0), &mut out);
        co.push(rec(1, 2.0), &mut out);
        assert_eq!(co.watermark(), 1);
        // Round 1 is sealed: this record is beyond the watermark.
        co.push(rec(1, 3.0), &mut out);
        let stats = co.stats();
        assert_eq!(stats.late, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.folded, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, vec![1.0, 2.0]);
    }

    #[test]
    fn late_records_fold_into_next_sealed_round() {
        let mut co = Coalescer::new(cfg(2, 3, LatePolicy::FoldIntoNext));
        let mut out = Vec::new();
        co.push(rec(1, 1.0), &mut out);
        co.push(rec(1, 2.0), &mut out);
        assert_eq!(out.len(), 1);
        // Straggler for the sealed round 1: folds into the next seal.
        co.push(rec(1, 99.0), &mut out);
        assert_eq!(out.len(), 1);
        co.push(rec(2, 3.0), &mut out);
        co.push(rec(2, 4.0), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].round, 2);
        assert_eq!(out[1].values, vec![99.0, 3.0, 4.0]);
        assert_eq!(out[1].folded, 1);
        let stats = co.stats();
        assert_eq!(stats.late, 1);
        assert_eq!(stats.folded, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn out_of_order_within_window_reassembles_exactly() {
        // Arrivals scrambled within a window of 3 must reconstruct the
        // per-round batches exactly, in round order.
        let mut co = Coalescer::new(cfg(2, 3, LatePolicy::Drop));
        let mut out = Vec::new();
        for (round, value) in [
            (2, 20.0),
            (1, 10.0),
            (3, 30.0),
            (1, 11.0),
            (2, 21.0),
            (4, 40.0),
            (3, 31.0),
            (4, 41.0),
        ] {
            co.push(rec(round, value), &mut out);
        }
        co.flush(&mut out);
        let rounds: Vec<usize> = out.iter().map(|b| b.round).collect();
        assert_eq!(rounds, vec![1, 2, 3, 4]);
        assert_eq!(out[0].values, vec![10.0, 11.0]);
        assert_eq!(out[1].values, vec![20.0, 21.0]);
        assert_eq!(out[2].values, vec![30.0, 31.0]);
        assert_eq!(out[3].values, vec![40.0, 41.0]);
        assert_eq!(co.stats().late, 0);
    }

    #[test]
    fn flush_is_ordered_and_idempotent() {
        let mut co = Coalescer::new(cfg(10, 100, LatePolicy::Drop));
        let mut out = Vec::new();
        co.push(rec(5, 5.0), &mut out);
        co.push(rec(2, 2.0), &mut out);
        co.push(rec(9, 9.0), &mut out);
        assert!(out.is_empty());
        co.flush(&mut out);
        assert_eq!(
            out.iter().map(|b| b.round).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        co.flush(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(co.watermark(), 9);
    }
}
