//! Bounded MPSC channels with explicit backpressure accounting.
//!
//! The collector service feeds each ingest worker through one of these
//! channels: producers block when the buffer is full (the backpressure
//! event is *counted*, so the bench harness can report how often the
//! pipeline ran hot), and the consumer drains in batches to amortize
//! lock traffic. The implementation is a deliberately small
//! Mutex+Condvar ring — no external channel crates — sized so the
//! per-record cost is one short critical section in the common case.
//!
//! Semantics:
//!
//! * [`Sender::send`] blocks while the buffer holds `capacity` items and
//!   fails with [`SendError`] once the receiver is gone.
//! * [`Receiver::recv`] blocks until an item arrives and returns `None`
//!   once every sender has dropped *and* the buffer is drained.
//! * [`Receiver::try_recv_batch`] moves up to `max` items without
//!   blocking — the collector's hot path.
//! * [`Sender::backpressure_events`] counts the times a send had to
//!   wait for space (shared across clones of the channel).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The workspace's vendored `parking_lot` stand-in has no `Condvar`,
/// so this module uses the std primitives directly with `parking_lot`'s
/// non-poisoning semantics (a poisoned lock is recovered, not
/// propagated — a panicking producer must not wedge the pipeline).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The receiver disconnected; the payload is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

struct ChannelInner<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled when the queue gains an item or the channel closes.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver drops.
    not_full: Condvar,
    capacity: usize,
    senders: AtomicUsize,
    receiver_alive: AtomicUsize,
    backpressure: AtomicU64,
}

/// Producer half of a bounded channel; cloneable (MPSC).
pub struct Sender<T> {
    inner: Arc<ChannelInner<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.inner.capacity)
            .finish_non_exhaustive()
    }
}

/// Consumer half of a bounded channel; single owner.
pub struct Receiver<T> {
    inner: Arc<ChannelInner<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.inner.capacity)
            .finish_non_exhaustive()
    }
}

/// Create a bounded channel with room for `capacity` in-flight items.
///
/// Panics if `capacity == 0` — a zero-capacity rendezvous channel is
/// never what the coalescing pipeline wants.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(ChannelInner {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicUsize::new(1),
        backpressure: AtomicU64::new(0),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the channel is at capacity.
    ///
    /// Each blocking episode increments the shared backpressure counter
    /// once. Returns the value if the receiver has disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let inner = &*self.inner;
        let mut queue = lock(&inner.queue);
        if queue.len() >= inner.capacity {
            inner.backpressure.fetch_add(1, Ordering::Relaxed);
            while queue.len() >= inner.capacity {
                if inner.receiver_alive.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                queue = inner
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if inner.receiver_alive.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        queue.push_back(value);
        drop(queue);
        inner.not_empty.notify_one();
        Ok(())
    }

    /// Times a `send` found the channel full and had to wait.
    pub fn backpressure_events(&self) -> u64 {
        self.inner.backpressure.load(Ordering::Relaxed)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake a receiver blocked in recv() so it can
            // observe the disconnect.
            let _guard = lock(&self.inner.queue);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue one item, blocking until one arrives. Returns `None`
    /// once all senders have dropped and the buffer is empty.
    pub fn recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let mut queue = lock(&inner.queue);
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                inner.not_full.notify_one();
                return Some(value);
            }
            if inner.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            queue = inner
                .not_empty
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Move up to `max` items into `out` without blocking; returns the
    /// number moved. The collector's batch-drain hot path.
    pub fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let inner = &*self.inner;
        let mut queue = lock(&inner.queue);
        let take = queue.len().min(max);
        out.extend(queue.drain(..take));
        drop(queue);
        if take > 0 {
            inner.not_full.notify_all();
        }
        take
    }

    /// True once every sender has dropped (items may still be queued).
    pub fn is_disconnected(&self) -> bool {
        self.inner.senders.load(Ordering::Acquire) == 0
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Times a `send` found the channel full and had to wait.
    pub fn backpressure_events(&self) -> u64 {
        self.inner.backpressure.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receiver_alive.store(0, Ordering::Release);
        let _guard = lock(&self.inner.queue);
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn delivers_in_order_and_signals_disconnect() {
        let (tx, rx) = bounded::<usize>(4);
        thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_counts_backpressure() {
        let (tx, rx) = bounded::<usize>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        thread::scope(|s| {
            let blocked = tx.clone();
            s.spawn(move || {
                // The channel is full: this send must block and count a
                // backpressure event before the drain below frees space.
                blocked.send(2).unwrap();
            });
            while tx.backpressure_events() == 0 {
                thread::yield_now();
            }
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx.recv().unwrap());
            }
            assert_eq!(got, vec![0, 1, 2]);
        });
        assert!(tx.backpressure_events() >= 1);
        assert!(rx.is_empty());
    }

    #[test]
    fn batch_drain_moves_up_to_max() {
        let (tx, rx) = bounded::<usize>(16);
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(rx.try_recv_batch(&mut out, 100), 0);
        assert!(rx.is_empty());
        drop(tx);
        assert!(rx.is_disconnected());
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded::<usize>(1);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn mpsc_clones_share_the_channel() {
        let (tx, rx) = bounded::<usize>(8);
        let tx2 = tx.clone();
        thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..20 {
                    tx.send(1).unwrap();
                }
            });
            s.spawn(move || {
                for _ in 0..20 {
                    tx2.send(2).unwrap();
                }
            });
            let mut total = 0;
            let mut count = 0;
            while let Some(v) = rx.recv() {
                total += v;
                count += 1;
            }
            assert_eq!(count, 40);
            assert_eq!(total, 60);
        });
    }
}
