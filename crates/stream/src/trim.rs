//! Trimming operators.
//!
//! "A classic method is distance-based sanitization, also known as
//! trimming, where the defender calculates the distance `d_i` for each data
//! point `i` and removes any point with `d_i > θ_d`" (Section I). On a
//! scalar batch the operators here implement exactly that: an upper
//! percentile cut (the game's main move), a two-sided cut, and an absolute
//! threshold cut.

use trimgame_numerics::quantile::{percentile, Interpolation};

/// A trimming operator over a scalar batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrimOp {
    /// Remove every value strictly above the batch's `p`-percentile
    /// (`p ∈ [0, 1]`). This is the collector's move in the trimming game:
    /// the threshold *percentile* is the strategy, the threshold *value* is
    /// computed per round.
    UpperPercentile(f64),
    /// Keep values between the `lo` and `hi` percentiles inclusive.
    TwoSided {
        /// Lower percentile.
        lo: f64,
        /// Upper percentile.
        hi: f64,
    },
    /// Remove every value strictly above an absolute threshold.
    Absolute(f64),
    /// Keep everything (the Ostrich non-defense).
    None,
}

/// Result of trimming a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimOutcome {
    /// Values retained, in input order.
    pub kept: Vec<f64>,
    /// Parallel to the input: `true` = retained.
    pub kept_mask: Vec<bool>,
    /// The absolute threshold value applied (upper cut), if any.
    pub threshold_value: Option<f64>,
    /// Number of values removed.
    pub trimmed: usize,
}

impl TrimOutcome {
    /// Fraction of the batch removed.
    #[must_use]
    pub fn trimmed_fraction(&self) -> f64 {
        let total = self.kept.len() + self.trimmed;
        if total == 0 {
            0.0
        } else {
            self.trimmed as f64 / total as f64
        }
    }
}

/// Applies a trimming operator to a batch.
///
/// # Panics
/// Panics if a percentile parameter is outside `[0, 1]` or `lo > hi`, or if
/// a percentile cut is requested on an empty batch.
#[must_use]
pub fn trim(values: &[f64], op: TrimOp) -> TrimOutcome {
    match op {
        TrimOp::None => TrimOutcome {
            kept: values.to_vec(),
            kept_mask: vec![true; values.len()],
            threshold_value: None,
            trimmed: 0,
        },
        TrimOp::Absolute(threshold) => cut_above(values, threshold),
        TrimOp::UpperPercentile(p) => {
            assert!((0.0..=1.0).contains(&p), "percentile {p} not in [0,1]");
            let threshold = percentile(values, p, Interpolation::Linear);
            cut_above(values, threshold)
        }
        TrimOp::TwoSided { lo, hi } => {
            assert!((0.0..=1.0).contains(&lo), "lo {lo} not in [0,1]");
            assert!((0.0..=1.0).contains(&hi), "hi {hi} not in [0,1]");
            assert!(lo <= hi, "inverted percentile band [{lo}, {hi}]");
            let lo_v = percentile(values, lo, Interpolation::Linear);
            let hi_v = percentile(values, hi, Interpolation::Linear);
            let mut kept = Vec::with_capacity(values.len());
            let mut kept_mask = Vec::with_capacity(values.len());
            let mut trimmed = 0;
            for &v in values {
                if v >= lo_v && v <= hi_v {
                    kept.push(v);
                    kept_mask.push(true);
                } else {
                    kept_mask.push(false);
                    trimmed += 1;
                }
            }
            TrimOutcome {
                kept,
                kept_mask,
                threshold_value: Some(hi_v),
                trimmed,
            }
        }
    }
}

fn cut_above(values: &[f64], threshold: f64) -> TrimOutcome {
    let mut kept = Vec::with_capacity(values.len());
    let mut kept_mask = Vec::with_capacity(values.len());
    let mut trimmed = 0;
    for &v in values {
        if v <= threshold {
            kept.push(v);
            kept_mask.push(true);
        } else {
            kept_mask.push(false);
            trimmed += 1;
        }
    }
    TrimOutcome {
        kept,
        kept_mask,
        threshold_value: Some(threshold),
        trimmed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Vec<f64> {
        (0..100).map(f64::from).collect()
    }

    #[test]
    fn none_keeps_everything() {
        let out = trim(&batch(), TrimOp::None);
        assert_eq!(out.trimmed, 0);
        assert_eq!(out.kept.len(), 100);
        assert_eq!(out.threshold_value, None);
        assert_eq!(out.trimmed_fraction(), 0.0);
    }

    #[test]
    fn upper_percentile_removes_tail() {
        let out = trim(&batch(), TrimOp::UpperPercentile(0.9));
        // Threshold = 89.1 (linear interpolation on 0..=99); keeps 0..=89.
        assert_eq!(out.trimmed, 10);
        assert!(out.kept.iter().all(|&v| v <= 89.1));
        assert!((out.trimmed_fraction() - 0.1).abs() < 1e-12);
        assert!(out.threshold_value.unwrap() > 89.0);
    }

    #[test]
    fn absolute_threshold() {
        let out = trim(&batch(), TrimOp::Absolute(49.5));
        assert_eq!(out.kept.len(), 50);
        assert_eq!(out.trimmed, 50);
    }

    #[test]
    fn two_sided_keeps_band() {
        let out = trim(&batch(), TrimOp::TwoSided { lo: 0.1, hi: 0.9 });
        assert!(out.kept.iter().all(|&v| (9.9..=89.1).contains(&v)));
        assert_eq!(out.trimmed, 20);
    }

    #[test]
    fn kept_mask_aligns_with_input() {
        let values = vec![5.0, 50.0, 95.0];
        let out = trim(&values, TrimOp::Absolute(60.0));
        assert_eq!(out.kept_mask, vec![true, true, false]);
        assert_eq!(out.kept, vec![5.0, 50.0]);
    }

    #[test]
    fn full_percentile_keeps_everything() {
        let out = trim(&batch(), TrimOp::UpperPercentile(1.0));
        assert_eq!(out.trimmed, 0);
    }

    #[test]
    fn zero_percentile_keeps_minimum_only() {
        let out = trim(&batch(), TrimOp::UpperPercentile(0.0));
        assert_eq!(out.kept, vec![0.0]);
        assert_eq!(out.trimmed, 99);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_percentile_rejected() {
        let _ = trim(&batch(), TrimOp::UpperPercentile(1.2));
    }

    #[test]
    #[should_panic(expected = "inverted percentile band")]
    fn inverted_band_rejected() {
        let _ = trim(&batch(), TrimOp::TwoSided { lo: 0.9, hi: 0.1 });
    }

    #[test]
    fn trimming_removes_injected_tail_poison() {
        let mut values = batch();
        values.extend(std::iter::repeat(99.0).take(20)); // poison at p99
        let out = trim(&values, TrimOp::UpperPercentile(0.8));
        let poison_kept = out.kept.iter().filter(|&&v| v == 99.0).count();
        assert_eq!(poison_kept, 0, "tail poison should be trimmed");
    }
}
