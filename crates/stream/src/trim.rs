//! Trimming operators.
//!
//! "A classic method is distance-based sanitization, also known as
//! trimming, where the defender calculates the distance `d_i` for each data
//! point `i` and removes any point with `d_i > θ_d`" (Section I). On a
//! scalar batch the operators here implement exactly that: an upper
//! percentile cut (the game's main move), a two-sided cut, and an absolute
//! threshold cut.
//!
//! Two execution paths share one semantics:
//!
//! * [`trim`] — the convenient allocating form, returning an owned
//!   [`TrimOutcome`];
//! * [`TrimOp::apply_in_place`] — the engine hot path: all buffers live in
//!   a reusable [`TrimScratch`], percentile thresholds are found by
//!   sampled two-pivot partitioning ([`percentile_partition`] — no sort,
//!   no batch copy), the filter runs on the explicit-SIMD mask-compact
//!   kernels of
//!   [`trimgame_numerics::simd`], and after warm-up a round performs **zero** heap
//!   allocations.
//!
//! Both produce bit-identical kept values, masks and threshold values.
//! For cuts that must not materialize the batch at all, [`SketchThreshold`]
//! resolves percentiles from a Greenwald–Khanna summary of the stream.

use trimgame_numerics::gk::{GkScratch, GkSummary};
use trimgame_numerics::quantile::{percentile_partition, percentile_select, Interpolation};

/// A trimming operator over a scalar batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrimOp {
    /// Remove every value strictly above the batch's `p`-percentile
    /// (`p ∈ [0, 1]`). This is the collector's move in the trimming game:
    /// the threshold *percentile* is the strategy, the threshold *value* is
    /// computed per round.
    UpperPercentile(f64),
    /// Keep values between the `lo` and `hi` percentiles inclusive.
    TwoSided {
        /// Lower percentile.
        lo: f64,
        /// Upper percentile.
        hi: f64,
    },
    /// Remove every value strictly above an absolute threshold.
    Absolute(f64),
    /// Keep everything (the Ostrich non-defense).
    None,
}

/// Result of trimming a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrimOutcome {
    /// Values retained, in input order.
    pub kept: Vec<f64>,
    /// Parallel to the input: `true` = retained.
    pub kept_mask: Vec<bool>,
    /// The absolute threshold value applied (upper cut), if any.
    pub threshold_value: Option<f64>,
    /// Number of values removed.
    pub trimmed: usize,
}

impl TrimOutcome {
    /// Fraction of the batch removed.
    #[must_use]
    pub fn trimmed_fraction(&self) -> f64 {
        let total = self.kept.len() + self.trimmed;
        if total == 0 {
            0.0
        } else {
            self.trimmed as f64 / total as f64
        }
    }
}

/// Scalar bookkeeping of one in-place trim; the values and mask live in
/// the [`TrimScratch`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrimStats {
    /// Number of values removed.
    pub trimmed: usize,
    /// Number of values retained.
    pub kept: usize,
    /// The absolute upper threshold applied, if any.
    pub threshold_value: Option<f64>,
    /// The absolute lower bound applied (`TwoSided` only).
    pub lower_value: Option<f64>,
}

impl TrimStats {
    /// Fraction of the batch removed.
    #[must_use]
    pub fn trimmed_fraction(&self) -> f64 {
        let total = self.kept + self.trimmed;
        if total == 0 {
            0.0
        } else {
            self.trimmed as f64 / total as f64
        }
    }
}

/// Reusable buffers for [`TrimOp::apply_in_place`].
///
/// Holds the partition-select candidate scratch (a fraction of the batch
/// — the batch itself is never copied for threshold resolution), the kept mask
/// and the kept values. Buffers are cleared — not shrunk — between
/// rounds, so a long-running engine performs no heap allocation once
/// every buffer has reached the round's working size.
#[derive(Debug, Clone, Default)]
pub struct TrimScratch {
    select: Vec<f64>,
    mask: Vec<bool>,
    kept: Vec<f64>,
}

impl TrimScratch {
    /// Creates empty scratch buffers (they grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates scratch buffers pre-sized for batches of `n` values. The
    /// partition candidate buffer is left empty — only percentile
    /// operators use it, and `Absolute`/`None` cuts never pay for it.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            select: Vec::new(),
            mask: Vec::with_capacity(n),
            kept: Vec::with_capacity(n),
        }
    }

    /// The kept values of the most recent apply, in input order.
    #[must_use]
    pub fn kept(&self) -> &[f64] {
        &self.kept
    }

    /// The kept mask of the most recent apply, parallel to the input.
    #[must_use]
    pub fn kept_mask(&self) -> &[bool] {
        &self.mask
    }

    /// Moves the kept values out, leaving an empty (capacity-preserving
    /// for the other buffers) scratch. Used by the allocating [`trim`]
    /// façade.
    fn take_outcome(&mut self, stats: TrimStats) -> TrimOutcome {
        TrimOutcome {
            kept: std::mem::take(&mut self.kept),
            kept_mask: std::mem::take(&mut self.mask),
            threshold_value: stats.threshold_value,
            trimmed: stats.trimmed,
        }
    }
}

/// The filter kernel shared by the one-sided and two-sided cuts: the
/// explicit-SIMD mask-compact pass of [`trimgame_numerics::simd`] (AVX-512 / AVX2 /
/// NEON when the CPU has them, the portable chunked mask-then-compact
/// kernel otherwise). Output order, mask and counts are bit-identical to
/// the naive branching loop on every backend.
fn filter_band(values: &[f64], scratch: &mut TrimScratch, lo: Option<f64>, hi: f64) -> usize {
    let n = values.len();
    scratch.mask.resize(n, false);
    scratch.kept.resize(n, 0.0);
    let k = trimgame_numerics::simd::filter_f64(
        values,
        &mut scratch.mask[..n],
        &mut scratch.kept[..n],
        lo,
        hi,
    );
    scratch.kept.truncate(k);
    n - k
}

impl TrimOp {
    /// Applies the operator using `scratch`'s reusable buffers and returns
    /// the round's [`TrimStats`]; read the retained values and the mask
    /// from [`TrimScratch::kept`] / [`TrimScratch::kept_mask`].
    ///
    /// Percentile thresholds are resolved with [`percentile_partition`]
    /// (one sampled SIMD partition pass, no sort, no batch copy), so once the
    /// buffers are warm no allocation happens per round; the filter
    /// itself runs on the explicit-SIMD mask-compact kernels of
    /// [`trimgame_numerics::simd`]. Kept values, mask and threshold are bit-identical
    /// to the allocating [`trim`].
    ///
    /// # Panics
    /// Panics if a percentile parameter is outside `[0, 1]` or `lo > hi`,
    /// or if a percentile cut is requested on an empty batch.
    pub fn apply_in_place(&self, values: &[f64], scratch: &mut TrimScratch) -> TrimStats {
        scratch.mask.clear();
        scratch.kept.clear();
        let (lower, upper) = match *self {
            TrimOp::None => (None, None),
            TrimOp::Absolute(threshold) => (None, Some(threshold)),
            TrimOp::UpperPercentile(p) => {
                assert!((0.0..=1.0).contains(&p), "percentile {p} not in [0,1]");
                (
                    None,
                    Some(percentile_partition(
                        values,
                        p,
                        Interpolation::Linear,
                        &mut scratch.select,
                    )),
                )
            }
            TrimOp::TwoSided { lo, hi } => {
                assert!((0.0..=1.0).contains(&lo), "lo {lo} not in [0,1]");
                assert!((0.0..=1.0).contains(&hi), "hi {hi} not in [0,1]");
                assert!(lo <= hi, "inverted percentile band [{lo}, {hi}]");
                let lo_v =
                    percentile_partition(values, lo, Interpolation::Linear, &mut scratch.select);
                let hi_v =
                    percentile_partition(values, hi, Interpolation::Linear, &mut scratch.select);
                (Some(lo_v), Some(hi_v))
            }
        };
        let trimmed = match (lower, upper) {
            (None, None) => {
                scratch.mask.resize(values.len(), true);
                scratch.kept.extend_from_slice(values);
                0
            }
            (None, Some(hi_v)) => filter_band(values, scratch, None, hi_v),
            (Some(lo_v), Some(hi_v)) => filter_band(values, scratch, Some(lo_v), hi_v),
            (Some(_), None) => unreachable!("no lower-only operator exists"),
        };
        TrimStats {
            trimmed,
            kept: values.len() - trimmed,
            threshold_value: upper,
            lower_value: lower,
        }
    }
}

/// Reusable buffers for [`TrimOp::apply_in_place_f32`] — the
/// single-precision twin of [`TrimScratch`].
///
/// Percentile thresholds are still resolved in `f64` (the values are
/// upcast into the selection buffer, so the selection arithmetic is
/// shared with the `f64` path); the filter itself runs on the `f32`
/// lanes at twice the SIMD width.
#[derive(Debug, Clone, Default)]
pub struct TrimScratchF32 {
    select: Vec<f64>,
    mask: Vec<bool>,
    kept: Vec<f32>,
}

impl TrimScratchF32 {
    /// Creates empty scratch buffers (they grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates scratch buffers pre-sized for batches of `n` values.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            select: Vec::new(),
            mask: Vec::with_capacity(n),
            kept: Vec::with_capacity(n),
        }
    }

    /// The kept values of the most recent apply, in input order.
    #[must_use]
    pub fn kept(&self) -> &[f32] {
        &self.kept
    }

    /// The kept mask of the most recent apply, parallel to the input.
    #[must_use]
    pub fn kept_mask(&self) -> &[bool] {
        &self.mask
    }
}

impl TrimOp {
    /// The `f32` variant of [`TrimOp::apply_in_place`], for
    /// single-precision streams (feature scores, sensor batches) that
    /// should not pay an upcast copy per round.
    ///
    /// Thresholds are resolved exactly as in the `f64` path (percentiles
    /// select on the upcast batch); the cut itself is applied in `f32`
    /// against the *downcast* threshold, and the reported
    /// [`TrimStats::threshold_value`] / [`TrimStats::lower_value`] are
    /// the `f32` cut values actually compared against, widened back to
    /// `f64`.
    ///
    /// # Panics
    /// Panics if a percentile parameter is outside `[0, 1]` or `lo > hi`,
    /// or if a percentile cut is requested on an empty batch.
    pub fn apply_in_place_f32(&self, values: &[f32], scratch: &mut TrimScratchF32) -> TrimStats {
        scratch.mask.clear();
        scratch.kept.clear();
        let select_threshold = |scratch: &mut TrimScratchF32, p: f64| -> f64 {
            scratch.select.clear();
            scratch.select.extend(values.iter().map(|&v| f64::from(v)));
            percentile_select(&mut scratch.select, p, Interpolation::Linear)
        };
        let (lower, upper): (Option<f32>, Option<f32>) = match *self {
            TrimOp::None => (None, None),
            TrimOp::Absolute(threshold) => (None, Some(threshold as f32)),
            TrimOp::UpperPercentile(p) => {
                assert!((0.0..=1.0).contains(&p), "percentile {p} not in [0,1]");
                (None, Some(select_threshold(scratch, p) as f32))
            }
            TrimOp::TwoSided { lo, hi } => {
                assert!((0.0..=1.0).contains(&lo), "lo {lo} not in [0,1]");
                assert!((0.0..=1.0).contains(&hi), "hi {hi} not in [0,1]");
                assert!(lo <= hi, "inverted percentile band [{lo}, {hi}]");
                let lo_v = select_threshold(scratch, lo) as f32;
                let hi_v = select_threshold(scratch, hi) as f32;
                (Some(lo_v), Some(hi_v))
            }
        };
        let n = values.len();
        let trimmed = match (lower, upper) {
            (None, None) => {
                scratch.mask.resize(n, true);
                scratch.kept.extend_from_slice(values);
                0
            }
            (lo, Some(hi_v)) => {
                scratch.mask.resize(n, false);
                scratch.kept.resize(n, 0.0);
                let k = trimgame_numerics::simd::filter_f32(
                    values,
                    &mut scratch.mask[..n],
                    &mut scratch.kept[..n],
                    lo,
                    hi_v,
                );
                scratch.kept.truncate(k);
                n - k
            }
            (Some(_), None) => unreachable!("no lower-only operator exists"),
        };
        TrimStats {
            trimmed,
            kept: n - trimmed,
            threshold_value: upper.map(f64::from),
            lower_value: lower.map(f64::from),
        }
    }
}

/// Applies a trimming operator to a batch, returning owned buffers.
///
/// Delegates to [`TrimOp::apply_in_place`] on a fresh scratch, so both
/// paths share one implementation (and the selection-based percentile).
///
/// # Panics
/// Panics if a percentile parameter is outside `[0, 1]` or `lo > hi`, or if
/// a percentile cut is requested on an empty batch.
#[must_use]
pub fn trim(values: &[f64], op: TrimOp) -> TrimOutcome {
    let mut scratch = TrimScratch::with_capacity(values.len());
    let stats = op.apply_in_place(values, &mut scratch);
    scratch.take_outcome(stats)
}

/// A streaming percentile-threshold source backed by the Greenwald–Khanna
/// sketch from `trimgame-numerics`.
///
/// A collector under heavy traffic cannot afford to materialize and sort
/// every round's batch just to resolve its threshold percentile. This
/// wrapper feeds the report stream into a [`GkSummary`] (sublinear space,
/// rank error ≤ `ε·n`) and answers *any* percentile on demand — exactly
/// what the moving thresholds of Tit-for-tat and Elastic need. Resolve the
/// cut with [`SketchThreshold::cut`], then trim with
/// [`TrimOp::Absolute`]; no sort, no batch copy.
///
/// Batches go through [`SketchThreshold::observe`], which feeds the GK
/// summary through its batched merge-sweep ingest
/// ([`GkSummary::insert_batch`]) over a scratch owned here — one
/// allocation-free rebuild per round instead of a memmove per value.
#[derive(Debug, Clone)]
pub struct SketchThreshold {
    sketch: GkSummary,
    scratch: GkScratch,
}

impl PartialEq for SketchThreshold {
    fn eq(&self, other: &Self) -> bool {
        // The scratch is reusable workspace, not state.
        self.sketch == other.sketch
    }
}

impl SketchThreshold {
    /// Creates a source with GK rank-error bound `ε`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 0.5`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self {
            sketch: GkSummary::new(epsilon),
            scratch: GkScratch::new(),
        }
    }

    /// Ingests one value.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn insert(&mut self, v: f64) {
        self.sketch.insert(v);
    }

    /// Ingests a whole batch through the GK merge-sweep ingest: the batch
    /// is sorted once into the reusable scratch and spliced into the
    /// summary in a single compression-fused pass.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn observe(&mut self, values: &[f64]) {
        self.sketch.insert_batch(values, &mut self.scratch);
    }

    /// Ingests several pre-staged batches in one merge sweep
    /// ([`GkSummary::insert_batches`]) — the path for draining a run of
    /// coalesced rounds at once: one tuple-list walk for the lot,
    /// bit-identical to observing their concatenation.
    ///
    /// # Panics
    /// Panics on NaN in any batch.
    pub fn observe_batches(&mut self, batches: &[&[f64]]) {
        self.sketch.insert_batches(batches, &mut self.scratch);
    }

    /// Number of observations consumed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.sketch.count()
    }

    /// The absolute cut value at percentile `p`, or `None` before any
    /// observation.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn cut(&self, p: f64) -> Option<f64> {
        self.sketch.query(p)
    }

    /// The [`TrimOp::Absolute`] operator at percentile `p`, or `None`
    /// before any observation.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn op(&self, p: f64) -> Option<TrimOp> {
        self.cut(p).map(TrimOp::Absolute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Vec<f64> {
        (0..100).map(f64::from).collect()
    }

    #[test]
    fn none_keeps_everything() {
        let out = trim(&batch(), TrimOp::None);
        assert_eq!(out.trimmed, 0);
        assert_eq!(out.kept.len(), 100);
        assert_eq!(out.threshold_value, None);
        assert_eq!(out.trimmed_fraction(), 0.0);
    }

    #[test]
    fn upper_percentile_removes_tail() {
        let out = trim(&batch(), TrimOp::UpperPercentile(0.9));
        // Threshold = 89.1 (linear interpolation on 0..=99); keeps 0..=89.
        assert_eq!(out.trimmed, 10);
        assert!(out.kept.iter().all(|&v| v <= 89.1));
        assert!((out.trimmed_fraction() - 0.1).abs() < 1e-12);
        assert!(out.threshold_value.unwrap() > 89.0);
    }

    #[test]
    fn absolute_threshold() {
        let out = trim(&batch(), TrimOp::Absolute(49.5));
        assert_eq!(out.kept.len(), 50);
        assert_eq!(out.trimmed, 50);
    }

    #[test]
    fn two_sided_keeps_band() {
        let out = trim(&batch(), TrimOp::TwoSided { lo: 0.1, hi: 0.9 });
        assert!(out.kept.iter().all(|&v| (9.9..=89.1).contains(&v)));
        assert_eq!(out.trimmed, 20);
    }

    #[test]
    fn kept_mask_aligns_with_input() {
        let values = vec![5.0, 50.0, 95.0];
        let out = trim(&values, TrimOp::Absolute(60.0));
        assert_eq!(out.kept_mask, vec![true, true, false]);
        assert_eq!(out.kept, vec![5.0, 50.0]);
    }

    #[test]
    fn full_percentile_keeps_everything() {
        let out = trim(&batch(), TrimOp::UpperPercentile(1.0));
        assert_eq!(out.trimmed, 0);
    }

    #[test]
    fn zero_percentile_keeps_minimum_only() {
        let out = trim(&batch(), TrimOp::UpperPercentile(0.0));
        assert_eq!(out.kept, vec![0.0]);
        assert_eq!(out.trimmed, 99);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_percentile_rejected() {
        let _ = trim(&batch(), TrimOp::UpperPercentile(1.2));
    }

    #[test]
    #[should_panic(expected = "inverted percentile band")]
    fn inverted_band_rejected() {
        let _ = trim(&batch(), TrimOp::TwoSided { lo: 0.9, hi: 0.1 });
    }

    #[test]
    fn trimming_removes_injected_tail_poison() {
        let mut values = batch();
        values.extend(std::iter::repeat_n(99.0, 20)); // poison at p99
        let out = trim(&values, TrimOp::UpperPercentile(0.8));
        let poison_kept = out.kept.iter().filter(|&&v| v == 99.0).count();
        assert_eq!(poison_kept, 0, "tail poison should be trimmed");
    }

    #[test]
    fn in_place_agrees_with_allocating_trim() {
        let values = batch();
        let mut scratch = TrimScratch::new();
        for op in [
            TrimOp::None,
            TrimOp::Absolute(42.5),
            TrimOp::UpperPercentile(0.9),
            TrimOp::UpperPercentile(0.0),
            TrimOp::UpperPercentile(1.0),
            TrimOp::TwoSided { lo: 0.1, hi: 0.8 },
        ] {
            let outcome = trim(&values, op);
            let stats = op.apply_in_place(&values, &mut scratch);
            assert_eq!(scratch.kept(), outcome.kept.as_slice(), "{op:?}");
            assert_eq!(scratch.kept_mask(), outcome.kept_mask.as_slice());
            assert_eq!(stats.trimmed, outcome.trimmed);
            assert_eq!(stats.kept, outcome.kept.len());
            assert_eq!(stats.threshold_value, outcome.threshold_value);
        }
    }

    #[test]
    fn scratch_buffers_are_reused_without_reallocation() {
        let values = batch();
        let mut scratch = TrimScratch::with_capacity(values.len());
        let op = TrimOp::UpperPercentile(0.9);
        let _ = op.apply_in_place(&values, &mut scratch);
        let caps = (
            scratch.select.capacity(),
            scratch.mask.capacity(),
            scratch.kept.capacity(),
        );
        for _ in 0..32 {
            let stats = op.apply_in_place(&values, &mut scratch);
            assert_eq!(stats.trimmed, 10);
        }
        assert_eq!(
            caps,
            (
                scratch.select.capacity(),
                scratch.mask.capacity(),
                scratch.kept.capacity()
            ),
            "warm scratch must not reallocate"
        );
    }

    #[test]
    fn two_sided_reports_lower_bound() {
        let mut scratch = TrimScratch::new();
        let stats = TrimOp::TwoSided { lo: 0.1, hi: 0.9 }.apply_in_place(&batch(), &mut scratch);
        assert!((stats.lower_value.unwrap() - 9.9).abs() < 1e-9);
        assert!((stats.threshold_value.unwrap() - 89.1).abs() < 1e-9);
        assert_eq!(stats.trimmed_fraction(), 0.2);
    }

    #[test]
    fn sketch_threshold_tracks_stream_percentiles() {
        let mut source = SketchThreshold::new(0.01);
        assert_eq!(source.cut(0.9), None);
        let values: Vec<f64> = (0..10_000).map(f64::from).collect();
        source.observe(&values);
        assert_eq!(source.count(), 10_000);
        let cut = source.cut(0.9).unwrap();
        assert!((cut - 9_000.0).abs() < 250.0, "cut {cut}");
        let stats = source
            .op(0.9)
            .unwrap()
            .apply_in_place(&values, &mut TrimScratch::new());
        let frac = stats.trimmed as f64 / values.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "trimmed fraction {frac}");
    }

    #[test]
    fn batched_and_sequential_sketch_cuts_agree_within_rank_band() {
        // Contract: feeding the same stream through the batched observe
        // path and through per-value inserts may build different tuple
        // layouts, but every resolved cut must stay within each summary's
        // ε rank band of the true percentile — so the two cuts can differ
        // by at most the combined band (2 × 2ε in rank space).
        let eps = 0.01;
        let n = 40_000usize;
        let mut rng = trimgame_numerics::rand_ext::seeded_rng(17);
        let values: Vec<f64> = (0..n)
            .map(|_| rand::Rng::gen::<f64>(&mut rng) * 500.0)
            .collect();
        let mut batched = SketchThreshold::new(eps);
        for chunk in values.chunks(1_000) {
            batched.observe(chunk);
        }
        let mut sequential = SketchThreshold::new(eps);
        for &v in &values {
            sequential.insert(v);
        }
        assert_eq!(batched.count(), sequential.count());
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let b = batched.cut(p).unwrap();
            let s = sequential.cut(p).unwrap();
            let rank = |v: f64| sorted.partition_point(|&x| x < v) as f64 / n as f64;
            assert!(
                (rank(b) - p).abs() <= 2.0 * eps + 1e-9,
                "batched p={p}: rank {}",
                rank(b)
            );
            assert!(
                (rank(s) - p).abs() <= 2.0 * eps + 1e-9,
                "sequential p={p}: rank {}",
                rank(s)
            );
            assert!(
                (rank(b) - rank(s)).abs() <= 4.0 * eps + 1e-9,
                "p={p}: cuts {b} vs {s} diverge past the combined band"
            );
        }
    }
}
