//! `Quality_Evaluation()` — the publicly recognized data quality standard.
//!
//! Section III-B: "Assuming a publicly recognized data quality standard
//! denoted by Quality_Evaluation(), we establish payoff functions for both
//! parties... Equipped with this standard, the collector can assess the
//! intensity of poison values based on the data provided by the adversary
//! and further determine the subsequent strategy. The existence of this
//! metric is necessary for building up a game-theoretic model."
//!
//! Two standards are provided. Both return *higher = better quality* so
//! Algorithm 1's trigger condition `Quality_Evaluation(X_i) <
//! Quality_Evaluation(X_0) + Red` reads naturally.

use trimgame_numerics::quantile::ecdf;
use trimgame_numerics::stats::{mean, std_dev};

/// A data-quality standard over a received batch.
pub trait QualityEvaluation {
    /// Scores a batch; higher is better. The score scale is implementation
    /// specific but must be consistent across rounds.
    fn evaluate(&self, batch: &[f64]) -> f64;

    /// Normalizing constant: the best achievable score, used by Algorithm 2
    /// (`QE_i = Quality_Evaluation(X_i) / max(Quality_Evaluation(·))`).
    fn max_score(&self) -> f64;

    /// Algorithm 2's normalized *badness*: `1 − score/max` in `[0, 1]`,
    /// rising as data quality degrades.
    fn normalized_badness(&self, batch: &[f64]) -> f64 {
        let s = (self.evaluate(batch) / self.max_score()).clamp(0.0, 1.0);
        1.0 - s
    }
}

/// Quality = `1 −` (excess mass above a reference tail value).
///
/// The collector knows (from the public board's history of clean rounds)
/// the value `v_ref` that the benign distribution exceeds with probability
/// `tail`. A poisoned batch carries extra mass above `v_ref`; the score
/// drops by that excess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailMassQuality {
    /// Reference value: benign data exceeds this with probability `tail`.
    pub reference_value: f64,
    /// Benign exceedance probability at `reference_value`.
    pub tail: f64,
}

impl TailMassQuality {
    /// Creates the standard.
    ///
    /// # Panics
    /// Panics if `tail ∉ [0, 1]`.
    #[must_use]
    pub fn new(reference_value: f64, tail: f64) -> Self {
        assert!((0.0..=1.0).contains(&tail), "tail {tail} not in [0,1]");
        Self {
            reference_value,
            tail,
        }
    }
}

impl QualityEvaluation for TailMassQuality {
    fn evaluate(&self, batch: &[f64]) -> f64 {
        if batch.is_empty() {
            return 1.0;
        }
        let above = 1.0 - ecdf(batch, self.reference_value);
        let excess = (above - self.tail).max(0.0);
        1.0 - excess
    }

    fn max_score(&self) -> f64 {
        1.0
    }
}

/// Quality = `1 − |batch mean − reference mean| / (scale · reference sd)`,
/// clamped at zero. Detects location shifts caused by poison mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanShiftQuality {
    /// Benign mean.
    pub reference_mean: f64,
    /// Benign standard deviation.
    pub reference_sd: f64,
    /// Shift (in reference sds) at which quality reaches zero.
    pub scale: f64,
}

impl MeanShiftQuality {
    /// Creates the standard from benign statistics.
    ///
    /// # Panics
    /// Panics if `reference_sd <= 0` or `scale <= 0`.
    #[must_use]
    pub fn new(reference_mean: f64, reference_sd: f64, scale: f64) -> Self {
        assert!(reference_sd > 0.0, "reference sd must be positive");
        assert!(scale > 0.0, "scale must be positive");
        Self {
            reference_mean,
            reference_sd,
            scale,
        }
    }

    /// Fits the standard to a clean calibration batch with a default scale
    /// of 3 sds.
    ///
    /// # Panics
    /// Panics if the batch has fewer than two values.
    #[must_use]
    pub fn fit(clean: &[f64]) -> Self {
        assert!(clean.len() >= 2, "need at least two calibration values");
        Self::new(mean(clean), std_dev(clean).max(1e-12), 3.0)
    }
}

impl QualityEvaluation for MeanShiftQuality {
    fn evaluate(&self, batch: &[f64]) -> f64 {
        if batch.is_empty() {
            return 1.0;
        }
        let shift = (mean(batch) - self.reference_mean).abs();
        (1.0 - shift / (self.scale * self.reference_sd)).max(0.0)
    }

    fn max_score(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign() -> Vec<f64> {
        (0..1000).map(|i| i as f64 / 10.0).collect() // uniform 0..100
    }

    #[test]
    fn tail_mass_full_quality_on_clean_data() {
        let data = benign();
        // Reference: 5% of benign data above 95.0.
        let q = TailMassQuality::new(95.0, 0.05);
        let score = q.evaluate(&data);
        assert!(score > 0.99, "clean score {score}");
    }

    #[test]
    fn tail_mass_drops_with_poison() {
        let mut data = benign();
        let q = TailMassQuality::new(95.0, 0.05);
        let clean = q.evaluate(&data);
        data.extend(std::iter::repeat_n(99.0, 200));
        let dirty = q.evaluate(&data);
        assert!(dirty < clean - 0.1, "clean {clean} vs dirty {dirty}");
    }

    #[test]
    fn tail_mass_empty_batch_is_perfect() {
        let q = TailMassQuality::new(95.0, 0.05);
        assert_eq!(q.evaluate(&[]), 1.0);
    }

    #[test]
    fn mean_shift_full_quality_when_centered() {
        let data = benign();
        let q = MeanShiftQuality::fit(&data);
        assert!(q.evaluate(&data) > 0.99);
    }

    #[test]
    fn mean_shift_detects_location_poison() {
        let data = benign();
        let q = MeanShiftQuality::fit(&data);
        let mut poisoned = data.clone();
        poisoned.extend(std::iter::repeat_n(500.0, 300));
        assert!(q.evaluate(&poisoned) < q.evaluate(&data) - 0.3);
    }

    #[test]
    fn normalized_badness_in_unit_interval() {
        let data = benign();
        let q = MeanShiftQuality::fit(&data);
        let mut poisoned = data.clone();
        poisoned.extend(std::iter::repeat_n(1e6, 100));
        for b in [q.normalized_badness(&data), q.normalized_badness(&poisoned)] {
            assert!((0.0..=1.0).contains(&b));
        }
        assert!(q.normalized_badness(&poisoned) > q.normalized_badness(&data));
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_tail_rejected() {
        let _ = TailMassQuality::new(0.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_sd_rejected() {
        let _ = MeanShiftQuality::new(0.0, 0.0, 3.0);
    }
}
