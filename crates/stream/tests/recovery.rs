//! Kill-at-arbitrary-point crash recovery.
//!
//! A collector process can die at any byte: mid-manifest-entry, mid-frame,
//! between the spill write and the journal append. The property tested
//! here is the whole durability contract in one line — *whatever byte the
//! crash lands on, recovery yields a clean prefix of the uninterrupted
//! history, never garbage and never a panic.*
//!
//! Setup: one uninterrupted tiered run (two shards, everything spilled and
//! journaled) acts as the reference. Each proptest case then simulates a
//! crash by copying the spill directory and truncating one file — manifest
//! or frame — at an arbitrary offset, and recovers from the damaged copy.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use rand::Rng;
use trimgame_stream::board::{RangedVenue, RoundRecord};
use trimgame_stream::compact::{Compactor, TierConfig};
use trimgame_stream::recover::ManifestWriter;

const SHARDS: usize = 2;
const SPAN: usize = 8;
const ROUNDS: usize = 100;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "trimgame-killpoint-{}-{}-{}",
        label,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn record(round: usize) -> RoundRecord {
    let mut retained = trimgame_numerics::stats::OnlineStats::new();
    retained.extend(&[round as f64, round as f64 * 0.5 - 3.0]);
    RoundRecord {
        round,
        threshold_percentile: 0.9,
        threshold_value: Some(round as f64 * 0.25),
        received: 10 + round % 7,
        trimmed: round % 3,
        retained,
        quality: 1.0 - (round as f64) * 1e-3,
    }
}

/// Bit-exact view of one shard's readable history.
fn shard_rows(venue: &RangedVenue, shard: usize) -> Vec<(usize, usize, usize, u64, u64)> {
    let mut rows = Vec::new();
    venue.collector(shard).for_each_since_round(0, |r| {
        rows.push((
            r.round,
            r.received,
            r.trimmed,
            r.threshold_value.unwrap_or(0.0).to_bits(),
            r.quality.to_bits(),
        ));
    });
    rows
}

/// Runs the uninterrupted tiered collect: posts `ROUNDS` rounds per shard,
/// spills every sealed span (budget 0), journals through the manifests.
fn uninterrupted_collect(dir: &Path) -> RangedVenue {
    let venue = RangedVenue::new(SHARDS, SPAN);
    for shard in 0..SHARDS {
        let manifest = ManifestWriter::create(
            dir,
            &format!("s{shard}"),
            shard as u64,
            SHARDS as u64,
            SPAN as u64,
        )
        .expect("create manifest");
        let compactor = Compactor::new(
            TierConfig {
                hot_tail_spans: 0,
                resident_budget: Some(0),
                spill_dir: Some(dir.to_path_buf()),
            },
            format!("s{shard}"),
        )
        .with_manifest(Arc::new(Mutex::new(manifest)));
        let board = venue.collector(shard);
        for round in 1..=ROUNDS {
            board.post(record(round));
        }
        // Several passes so the per-pass freeze cap reaches the fixpoint.
        for _ in 0..8 {
            compactor.run(&board);
        }
    }
    venue
}

fn copy_dir(src: &Path, dst: &Path) {
    for entry in std::fs::read_dir(src).expect("read spill dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().expect("file name")))
                .expect("copy spill file");
        }
    }
}

#[test]
fn crash_at_every_byte_recovers_a_clean_prefix() {
    let src = fresh_dir("src");
    let _live = uninterrupted_collect(&src);

    // The reference: recovery of the *undamaged* directory.
    let (ref_venue, ref_report) = RangedVenue::recover_from_spill(&src).expect("clean recovery");
    let reference: Vec<_> = (0..SHARDS).map(|s| shard_rows(&ref_venue, s)).collect();
    assert!(ref_report.spans_recovered() > 0);
    assert_eq!(ref_report.spans_quarantined(), 0);
    assert_eq!(ref_report.rounds_lost(), 0);

    let mut files: Vec<PathBuf> = std::fs::read_dir(&src)
        .expect("read spill dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    files.sort();
    assert!(files.len() >= 4, "expected manifests and frames: {files:?}");

    let scratch = fresh_dir("case");
    let file_count = files.len();
    proptest::test_runner::run("crash_at_every_byte_recovers_a_clean_prefix", |rng| {
        let file_idx = rng.gen_range(0..file_count);
        let cut: f64 = rng.gen_range(0.0..1.0);
        {
            for entry in std::fs::read_dir(&scratch).expect("read scratch") {
                let _ = std::fs::remove_file(entry.expect("entry").path());
            }
            copy_dir(&src, &scratch);
            let victim = scratch.join(files[file_idx].file_name().expect("file name"));
            let full = std::fs::metadata(&victim).expect("victim metadata").len();
            let keep = (cut * full as f64) as u64;
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&victim)
                .expect("open victim");
            file.set_len(keep).expect("truncate victim");
            drop(file);

            // Recovery must not panic, and whatever it adopts must be a
            // bit-exact prefix of the uninterrupted reference.
            match RangedVenue::recover_from_spill(&scratch) {
                Ok((venue, report)) => {
                    for (shard, full) in reference.iter().enumerate() {
                        let rows = shard_rows(&venue, shard);
                        prop_assert!(
                            rows.len() <= full.len() && rows == full[..rows.len()],
                            "shard {shard} is not a prefix after truncating {} to {keep}B",
                            victim.display()
                        );
                    }
                    prop_assert!(
                        report.spans_recovered() <= ref_report.spans_recovered(),
                        "damaged directory recovered more spans than the clean one"
                    );
                }
                // Only a manifest torn down to (or into) its Init entry can
                // make a shard unplaceable; with one victim file that can at
                // worst leave the other shard — never an error — unless the
                // whole directory is unreadable, which one truncation cannot
                // cause. NotFound is impossible here, so any error is a bug.
                Err(err) => prop_assert!(false, "recovery errored: {err}"),
            }
        }
        Ok(())
    });

    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&scratch);
}
