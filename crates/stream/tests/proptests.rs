//! Property-based tests for the collection engine.

use proptest::prelude::*;
use trimgame_stream::board::{PublicBoard, RangedVenue, RoundRecord};
use trimgame_stream::compact::{Compactor, TierConfig};
use trimgame_stream::frame::Frame;
use trimgame_stream::quality::{MeanShiftQuality, QualityEvaluation, TailMassQuality};
use trimgame_stream::trim::{trim, TrimOp, TrimOutcome, TrimScratch, TrimScratchF32};

/// Straightforward sort-based reference implementation of the upper
/// percentile cut, independent of the selection-based production path.
fn reference_upper_cut(values: &[f64], p: f64) -> TrimOutcome {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite batch"));
    let threshold = trimgame_numerics::quantile::percentile_sorted(&sorted, p, Default::default());
    let kept_mask: Vec<bool> = values.iter().map(|&v| v <= threshold).collect();
    let kept: Vec<f64> = values.iter().copied().filter(|&v| v <= threshold).collect();
    TrimOutcome {
        trimmed: values.len() - kept.len(),
        kept,
        kept_mask,
        threshold_value: Some(threshold),
    }
}

fn records(n: usize) -> Vec<RoundRecord> {
    (1..=n)
        .map(|round| RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(1.0),
            received: 10,
            trimmed: round % 3,
            retained: trimgame_numerics::stats::OnlineStats::new(),
            quality: 1.0,
        })
        .collect()
}

proptest! {
    #[test]
    fn f32_absolute_cut_matches_scalar_reference(
        values in prop::collection::vec((-40i32..40).prop_map(|i| i as f32 * 0.25), 0..3_000),
        cut in -11.0_f64..11.0,
    ) {
        // The f32 in-place cut (SIMD kernel) must be bit-identical to the
        // obvious scalar loop against the downcast threshold — including
        // ties exactly at the threshold (the discrete value grid makes
        // them common) and across vector-width boundaries.
        let cut32 = cut as f32;
        let ref_mask: Vec<bool> = values.iter().map(|&v| v <= cut32).collect();
        let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| v <= cut32).collect();
        let mut scratch = TrimScratchF32::new();
        let stats = TrimOp::Absolute(cut).apply_in_place_f32(&values, &mut scratch);
        prop_assert_eq!(scratch.kept_mask(), ref_mask.as_slice());
        prop_assert_eq!(scratch.kept(), ref_kept.as_slice());
        prop_assert_eq!(stats.kept, ref_kept.len());
        prop_assert_eq!(stats.trimmed, values.len() - ref_kept.len());
        prop_assert_eq!(stats.threshold_value, Some(f64::from(cut32)));
    }

    #[test]
    fn f32_percentile_cut_matches_upcast_reference(
        values in prop::collection::vec((-40i32..40).prop_map(|i| i as f32 * 0.25), 1..2_000),
        p in 0.0_f64..=1.0,
    ) {
        // The f32 percentile path resolves its threshold on the upcast
        // batch (same arithmetic as the f64 path) and cuts in f32: the
        // result must match the reference built from the same recipe.
        let upcast: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        let threshold = trimgame_numerics::quantile::percentile(
            &upcast, p, Default::default()) as f32;
        let ref_mask: Vec<bool> = values.iter().map(|&v| v <= threshold).collect();
        let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| v <= threshold).collect();
        let mut scratch = TrimScratchF32::new();
        let stats = TrimOp::UpperPercentile(p).apply_in_place_f32(&values, &mut scratch);
        prop_assert_eq!(scratch.kept_mask(), ref_mask.as_slice());
        prop_assert_eq!(scratch.kept(), ref_kept.as_slice());
        prop_assert_eq!(stats.threshold_value, Some(f64::from(threshold)));
    }

    #[test]
    fn f32_two_sided_band_matches_scalar_reference(
        values in prop::collection::vec((-40i32..40).prop_map(|i| i as f32 * 0.25), 1..2_000),
        lo in 0.0_f64..0.5,
        width in 0.0_f64..0.5,
    ) {
        let upcast: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        let interp = trimgame_numerics::quantile::Interpolation::Linear;
        let lo_v = trimgame_numerics::quantile::percentile(&upcast, lo, interp) as f32;
        let hi_v = trimgame_numerics::quantile::percentile(&upcast, lo + width, interp) as f32;
        let keep = |v: f32| (v >= lo_v) & (v <= hi_v);
        let ref_kept: Vec<f32> = values.iter().copied().filter(|&v| keep(v)).collect();
        let mut scratch = TrimScratchF32::new();
        let stats = TrimOp::TwoSided { lo, hi: lo + width }.apply_in_place_f32(&values, &mut scratch);
        prop_assert_eq!(scratch.kept(), ref_kept.as_slice());
        prop_assert_eq!(stats.kept, ref_kept.len());
        prop_assert_eq!(stats.lower_value, Some(f64::from(lo_v)));
    }
}

proptest! {
    #[test]
    fn chunked_absolute_cut_matches_branching_reference(
        values in prop::collection::vec(-1e3_f64..1e3, 0..3_000),
        cut in -1.1e3_f64..1.1e3,
    ) {
        // The branch-light chunked pass (mask per fixed-size chunk, single
        // compaction) must be bit-identical to the obvious branching loop —
        // including across chunk boundaries (sizes beyond 1024 exercise
        // multi-chunk inputs).
        let ref_mask: Vec<bool> = values.iter().map(|&v| v <= cut).collect();
        let ref_kept: Vec<f64> = values.iter().copied().filter(|&v| v <= cut).collect();
        let mut scratch = TrimScratch::new();
        let stats = TrimOp::Absolute(cut).apply_in_place(&values, &mut scratch);
        prop_assert_eq!(scratch.kept_mask(), ref_mask.as_slice());
        prop_assert_eq!(scratch.kept(), ref_kept.as_slice());
        prop_assert_eq!(stats.kept, ref_kept.len());
        prop_assert_eq!(stats.trimmed, values.len() - ref_kept.len());
        prop_assert_eq!(stats.threshold_value, Some(cut));
    }

    #[test]
    fn chunked_two_sided_cut_matches_branching_reference(
        values in prop::collection::vec(-1e3_f64..1e3, 1..2_500),
        lo in 0.0_f64..0.5,
        width in 0.0_f64..0.5,
    ) {
        // Given the resolved percentile bounds, the chunked mask/compaction
        // must reproduce the obvious per-element branching loop exactly.
        let op = TrimOp::TwoSided { lo, hi: lo + width };
        let mut scratch = TrimScratch::new();
        let stats = op.apply_in_place(&values, &mut scratch);
        let lo_v = stats.lower_value.expect("two-sided reports a lower bound");
        let hi_v = stats.threshold_value.expect("two-sided reports an upper bound");
        let ref_mask: Vec<bool> = values.iter().map(|&v| v >= lo_v && v <= hi_v).collect();
        let ref_kept: Vec<f64> = values
            .iter()
            .copied()
            .filter(|&v| v >= lo_v && v <= hi_v)
            .collect();
        prop_assert_eq!(scratch.kept_mask(), ref_mask.as_slice());
        prop_assert_eq!(scratch.kept(), ref_kept.as_slice());
        prop_assert_eq!(stats.kept, ref_kept.len());
        prop_assert_eq!(stats.trimmed, values.len() - ref_kept.len());
    }

    #[test]
    fn trim_partitions_the_batch(
        values in prop::collection::vec(-1e3_f64..1e3, 1..200),
        p in 0.0_f64..1.0,
    ) {
        let out = trim(&values, TrimOp::UpperPercentile(p));
        prop_assert_eq!(out.kept.len() + out.trimmed, values.len());
        prop_assert_eq!(out.kept_mask.len(), values.len());
        let kept_from_mask: Vec<f64> = values
            .iter()
            .zip(&out.kept_mask)
            .filter(|(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        prop_assert_eq!(out.kept, kept_from_mask);
    }

    #[test]
    fn trim_never_keeps_values_above_threshold(
        values in prop::collection::vec(-1e3_f64..1e3, 1..200),
        cut in -1e3_f64..1e3,
    ) {
        let out = trim(&values, TrimOp::Absolute(cut));
        prop_assert!(out.kept.iter().all(|&v| v <= cut));
        prop_assert!(values
            .iter()
            .zip(&out.kept_mask)
            .all(|(&v, &m)| m == (v <= cut)));
    }

    #[test]
    fn higher_percentile_trims_no_more(
        values in prop::collection::vec(-1e3_f64..1e3, 2..200),
        p1 in 0.0_f64..1.0,
        p2 in 0.0_f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = trim(&values, TrimOp::UpperPercentile(lo));
        let b = trim(&values, TrimOp::UpperPercentile(hi));
        prop_assert!(b.trimmed <= a.trimmed);
    }

    #[test]
    fn upper_percentile_equals_two_sided_from_zero(
        values in prop::collection::vec(-1e6_f64..1e6, 1..300),
        p in 0.0_f64..=1.0,
    ) {
        // TwoSided's lower bound at percentile 0 is the batch minimum, so
        // the band [0, p] must keep exactly what the upper cut keeps.
        let upper = trim(&values, TrimOp::UpperPercentile(p));
        let band = trim(&values, TrimOp::TwoSided { lo: 0.0, hi: p });
        prop_assert_eq!(&upper.kept, &band.kept);
        prop_assert_eq!(&upper.kept_mask, &band.kept_mask);
        prop_assert_eq!(upper.trimmed, band.trimmed);
        prop_assert_eq!(upper.threshold_value, band.threshold_value);
    }

    #[test]
    fn in_place_apply_agrees_with_reference_trim(
        values in prop::collection::vec(-1e6_f64..1e6, 1..300),
        p in 0.0_f64..=1.0,
    ) {
        // The selection-based in-place path against an independent
        // sort-based reference: kept values, mask and threshold must be
        // bit-identical on arbitrary finite batches.
        let reference = reference_upper_cut(&values, p);
        let mut scratch = TrimScratch::new();
        let stats = TrimOp::UpperPercentile(p).apply_in_place(&values, &mut scratch);
        prop_assert_eq!(scratch.kept(), reference.kept.as_slice());
        prop_assert_eq!(scratch.kept_mask(), reference.kept_mask.as_slice());
        prop_assert_eq!(stats.trimmed, reference.trimmed);
        prop_assert_eq!(stats.threshold_value, reference.threshold_value);
        // And the allocating façade agrees with both.
        let allocating = trim(&values, TrimOp::UpperPercentile(p));
        prop_assert_eq!(allocating.kept.as_slice(), scratch.kept());
        prop_assert_eq!(allocating.threshold_value, stats.threshold_value);
    }

    #[test]
    fn scratch_reuse_is_stable_across_batches(
        a in prop::collection::vec(-1e3_f64..1e3, 1..120),
        b in prop::collection::vec(-1e3_f64..1e3, 1..120),
        p in 0.0_f64..=1.0,
    ) {
        // A scratch dirtied by one batch must give the same answer on the
        // next as a fresh scratch (clears, no stale state).
        let mut reused = TrimScratch::new();
        let op = TrimOp::UpperPercentile(p);
        let _ = op.apply_in_place(&a, &mut reused);
        let stats = op.apply_in_place(&b, &mut reused);
        let fresh = trim(&b, op);
        prop_assert_eq!(reused.kept(), fresh.kept.as_slice());
        prop_assert_eq!(stats.trimmed, fresh.trimmed);
        prop_assert_eq!(stats.threshold_value, fresh.threshold_value);
    }

    #[test]
    fn tail_mass_quality_monotone_in_poison(
        base in prop::collection::vec(0.0_f64..100.0, 50..150),
        extra in 1_usize..50,
    ) {
        let q = TailMassQuality::new(90.0, 0.1);
        let clean_score = q.evaluate(&base);
        let mut poisoned = base.clone();
        poisoned.extend(std::iter::repeat_n(99.0, extra));
        prop_assert!(q.evaluate(&poisoned) <= clean_score + 1e-12);
    }

    #[test]
    fn quality_scores_bounded(
        values in prop::collection::vec(-1e3_f64..1e3, 2..100),
    ) {
        let tail = TailMassQuality::new(0.0, 0.5);
        let s = tail.evaluate(&values);
        prop_assert!((0.0..=1.0).contains(&s));
        let shift = MeanShiftQuality::new(0.0, 100.0, 3.0);
        let s = shift.evaluate(&values);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((0.0..=1.0).contains(&tail.normalized_badness(&values)));
    }

    #[test]
    fn board_preserves_order_and_counts(n in 1_usize..60) {
        let board = PublicBoard::new();
        for r in records(n) {
            board.post(r);
        }
        prop_assert_eq!(board.len(), n);
        let history = board.history();
        for (i, rec) in history.iter().enumerate() {
            prop_assert_eq!(rec.round, i + 1);
        }
        prop_assert_eq!(board.latest().unwrap().round, n);
    }

    #[test]
    fn merged_view_under_concurrent_sharded_append_matches_sequential_reference(
        // Per-shard round-gap sequences: lengths past several CHUNK_CAP=64
        // seals and gaps up to 4, so cumulative rounds cross many span
        // boundaries at span 7. One writer thread per shard, appending
        // concurrently — the venue's contract.
        gaps in prop::collection::vec(
            prop::collection::vec(1_usize..=4, 0..160),
            1..=4,
        ),
    ) {
        let span = 7;
        let venue = RangedVenue::new(gaps.len(), span);
        // The sequential reference: every (round, shard) pair, sorted.
        let mut reference: Vec<(usize, usize)> = Vec::new();
        for (shard, shard_gaps) in gaps.iter().enumerate() {
            let mut round = 0;
            for g in shard_gaps {
                round += g;
                reference.push((round, shard));
            }
        }
        reference.sort_unstable();
        std::thread::scope(|s| {
            for (shard, shard_gaps) in gaps.iter().enumerate() {
                let board = venue.collector(shard);
                s.spawn(move || {
                    let mut round = 0;
                    for g in shard_gaps {
                        round += g;
                        let mut rec = records(1).remove(0);
                        rec.round = round;
                        rec.trimmed = shard;
                        board.post(rec);
                    }
                });
            }
        });
        // Merged view ≡ sequential reference, ordered by (round, shard)
        // across both shard dimensions.
        let merged = venue.merged();
        prop_assert_eq!(merged.len(), reference.len());
        let order: Vec<(usize, usize)> = merged
            .records()
            .iter()
            .map(|(c, r)| (r.round, *c))
            .collect();
        prop_assert_eq!(&order, &reference);
        // Shard identity survives the merge.
        prop_assert!(merged.records().iter().all(|(c, r)| r.trimmed == *c));
        // Ranged incremental reads agree with the per-shard reference
        // suffix from bounds at, inside, and past range boundaries.
        for (shard, shard_gaps) in gaps.iter().enumerate() {
            let total: usize = shard_gaps.iter().sum();
            let board = venue.collector(shard);
            prop_assert_eq!(board.len(), shard_gaps.len());
            prop_assert_eq!(
                board.last_round(),
                (total > 0).then_some(total)
            );
            for from in [0, 1, span, span + 1, 2 * span, total / 2, total] {
                let mut seen = Vec::new();
                board.for_each_since_round(from, |r| seen.push(r.round));
                let expect: Vec<usize> = reference
                    .iter()
                    .filter(|&&(r, c)| c == shard && r >= from.max(1))
                    .map(|&(r, _)| r)
                    .collect();
                prop_assert_eq!(&seen, &expect, "shard {} from {}", shard, from);
            }
        }
    }

    #[test]
    fn for_each_since_agrees_with_history_across_chunk_seams(
        n in 1_usize..200,
        from_frac in 0.0_f64..=1.0,
    ) {
        let board = PublicBoard::new();
        for r in records(n) {
            board.post(r);
        }
        let from = ((n as f64) * from_frac) as usize;
        let mut seen = Vec::new();
        board.for_each_since(from, |r| seen.push(r.round));
        let reference: Vec<usize> = board
            .history()
            .iter()
            .skip(from)
            .map(|r| r.round)
            .collect();
        prop_assert_eq!(seen, reference);
    }
}

/// One generated round for the tiering properties: gap to the previous
/// round plus every payload field — absent thresholds, signed zeros,
/// infinities, and empty retained summaries all occur.
#[derive(Debug, Clone)]
struct RecordSpec {
    gap: usize,
    pct: f64,
    thr: Option<f64>,
    received: usize,
    trimmed: usize,
    vals: Vec<f64>,
    quality: f64,
}

fn arb_field() -> impl Strategy<Value = f64> {
    (0_usize..9, -1.0e6_f64..1.0e6).prop_map(|(sel, v)| match sel {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => 0.0,
        3 => -0.0,
        _ => v,
    })
}

fn arb_specs(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<RecordSpec>> {
    let spec = (
        (1_usize..=3, arb_field(), (0_usize..4, arb_field())),
        (
            0_usize..5_000,
            0_usize..5_000,
            prop::collection::vec(-1.0e3_f64..1.0e3, 0..4),
            arb_field(),
        ),
    )
        .prop_map(
            |((gap, pct, (thr_sel, thr_val)), (received, trimmed, vals, quality))| RecordSpec {
                gap,
                pct,
                // thr_sel == 0 models the "no threshold resolved" round.
                thr: (thr_sel > 0).then_some(thr_val),
                received,
                trimmed,
                vals,
                quality,
            },
        );
    prop::collection::vec(spec, len)
}

fn build_records(specs: &[RecordSpec]) -> Vec<RoundRecord> {
    let mut round = 0;
    specs
        .iter()
        .map(|spec| {
            round += spec.gap;
            let mut retained = trimgame_numerics::stats::OnlineStats::new();
            retained.extend(&spec.vals);
            RoundRecord {
                round,
                threshold_percentile: spec.pct,
                threshold_value: spec.thr,
                received: spec.received,
                trimmed: spec.trimmed,
                retained,
                quality: spec.quality,
            }
        })
        .collect()
}

/// Bit-level identity of a record: every f64 compared by its bit pattern,
/// so `-0.0` vs `0.0` and infinity sentinels cannot silently alias.
fn fingerprint(r: &RoundRecord) -> [u64; 11] {
    let (n, mean, m2, min, max) = r.retained.raw_parts();
    [
        r.round as u64,
        r.threshold_percentile.to_bits(),
        u64::from(r.threshold_value.is_some()),
        r.threshold_value.unwrap_or(0.0).to_bits(),
        r.received as u64,
        r.trimmed as u64,
        n,
        mean.to_bits(),
        m2.to_bits(),
        min.to_bits(),
        max.to_bits(),
    ]
}

proptest! {
    #[test]
    fn frame_round_trips_arbitrary_records_bit_for_bit(
        specs in arb_specs(1..120),
    ) {
        let recs = build_records(&specs);
        let frame = Frame::encode(&recs);
        let decoded = frame.decode();
        prop_assert_eq!(decoded.len(), recs.len());
        for (a, b) in recs.iter().zip(&decoded) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
        // The wire form round-trips too — spill and re-load is lossless.
        let wire = Frame::from_bytes(&frame.to_bytes()).expect("serialized frame");
        for (a, b) in recs.iter().zip(&wire.decode()) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
    }

    #[test]
    fn mutated_wire_frames_error_instead_of_panicking(
        specs in arb_specs(1..60),
        // Fractions >= 1.0 mean "no truncation".
        cut in 0.0_f64..1.5,
        flips in prop::collection::vec((0.0_f64..1.0, 1_u8..=255), 0..4),
    ) {
        // A spill file that loses its tail or rots on disk must surface
        // as `Err`, never as a panic or as silently wrong records. Any
        // mutated TGF2 buffer (magic intact, anything after it changed)
        // is caught by the checksum.
        let bytes = Frame::encode(&build_records(&specs)).to_bytes();
        let mut mutated = bytes.clone();
        let keep = ((cut * mutated.len() as f64) as usize).min(mutated.len());
        mutated.truncate(keep);
        for &(pos, xor) in &flips {
            if mutated.is_empty() {
                break;
            }
            let idx = (pos * mutated.len() as f64) as usize;
            let idx = idx.min(mutated.len() - 1);
            mutated[idx] ^= xor;
        }
        // Reaching this point at all proves `from_bytes` did not panic.
        let parsed = Frame::from_bytes(&mutated);
        if mutated != bytes && mutated.starts_with(b"TGF2") {
            prop_assert!(parsed.is_err(), "corrupted TGF2 buffer parsed as Ok");
        }
        // Mutations that destroy the magic may alias the legacy TGF1
        // header; that path has no checksum but must still never panic —
        // `parsed` being a value (Ok or Err) is the property.
        drop(parsed);
    }

    #[test]
    fn tiered_reads_match_uncompacted_reference_across_seams(
        // Spans from tiny (many span seams) past CHUNK_CAP=64 (frames
        // crossing chunk seams inside one span).
        specs in arb_specs(1..150),
        span in 3_usize..=80,
    ) {
        let venue = RangedVenue::new(1, span);
        let board = venue.collector(0);
        let recs = build_records(&specs);
        for r in &recs {
            board.post(r.clone());
        }
        let mut reference = Vec::new();
        board.for_each_since_round(0, |r| reference.push(fingerprint(r)));
        prop_assert_eq!(reference.len(), recs.len());

        // Compact-only pass: sealed cold spans become frames, reads are
        // bit-identical.
        Compactor::new(TierConfig::default(), "prop-compact").run(&board);
        let mut compacted = Vec::new();
        board.for_each_since_round(0, |r| compacted.push(fingerprint(r)));
        prop_assert_eq!(&compacted, &reference);

        // Compact → evict → inflate: a zero budget with a spill directory
        // forces every eligible span to disk, so cold reads must re-inflate.
        let spill =
            std::env::temp_dir().join(format!("trimgame-proptest-{}", std::process::id()));
        let tiny = TierConfig {
            hot_tail_spans: 0,
            resident_budget: Some(0),
            spill_dir: Some(spill.clone()),
        };
        Compactor::new(tiny, "prop-evict").run(&board);
        prop_assert_eq!(board.resident_cold_bytes(0), 0);
        let last = recs.last().unwrap().round;
        for from in [0, 1, span, span + 1, 2 * span + 1, last / 2, last, last + 1] {
            let mut seen = Vec::new();
            board.for_each_since_round(from, |r| seen.push(fingerprint(r)));
            let expect: Vec<[u64; 11]> = recs
                .iter()
                .filter(|r| r.round >= from.max(1))
                .map(fingerprint)
                .collect();
            prop_assert_eq!(&seen, &expect, "from {}", from);
        }
        // Point lookups inflate spilled spans transparently.
        for r in recs.iter().step_by(7) {
            let got = board.round(r.round).expect("present round");
            prop_assert_eq!(fingerprint(&got), fingerprint(r));
        }
        prop_assert_eq!(board.round(last + 1), None);
        // The merged venue view sits on the same tiers and must agree.
        let merged: Vec<[u64; 11]> = venue
            .merged()
            .records()
            .iter()
            .map(|(_, r)| fingerprint(r))
            .collect();
        prop_assert_eq!(&merged, &reference);
        let _ = std::fs::remove_dir_all(&spill);
    }
}
