//! Property-based tests for the LDP substrate.

use proptest::prelude::*;
use trimgame_ldp::attack::{Attack, GeneralManipulation, InputManipulation};
use trimgame_ldp::duchi::Duchi;
use trimgame_ldp::laplace::LaplaceMechanism;
use trimgame_ldp::mechanism::LdpMechanism;
use trimgame_ldp::piecewise::Piecewise;
use trimgame_numerics::rand_ext::seeded_rng;

proptest! {
    #[test]
    fn duchi_outputs_are_binary(eps in 0.1_f64..6.0, x in -2.0_f64..2.0, seed in any::<u64>()) {
        let m = Duchi::new(eps);
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            let r = m.privatize(x, &mut rng);
            prop_assert!(r == m.c() || r == -m.c());
        }
    }

    #[test]
    fn piecewise_outputs_in_range(eps in 0.1_f64..6.0, x in -2.0_f64..2.0, seed in any::<u64>()) {
        let m = Piecewise::new(eps);
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            let r = m.privatize(x, &mut rng);
            prop_assert!(r >= -m.c() - 1e-12 && r <= m.c() + 1e-12);
        }
    }

    #[test]
    fn piecewise_density_nonnegative_and_bounded(
        eps in 0.2_f64..5.0,
        x in -1.0_f64..1.0,
        t in -5.0_f64..5.0,
    ) {
        let m = Piecewise::new(eps);
        let d = m.density(x, t);
        prop_assert!(d >= 0.0);
        // High density p = e^{eps/2} q with q < 1/(C+1) < 1/2.
        prop_assert!(d <= (eps / 2.0).exp() / 2.0 + 1e-9, "density {d} above analytic bound");
    }

    #[test]
    fn piecewise_center_probability_increases_with_eps(e1 in 0.2_f64..3.0, delta in 0.1_f64..3.0) {
        let lo = Piecewise::new(e1);
        let hi = Piecewise::new(e1 + delta);
        prop_assert!(hi.center_probability() > lo.center_probability());
    }

    #[test]
    fn general_manipulation_is_within_output_range(
        eps in 0.2_f64..5.0,
        pos in -1.0_f64..1.0,
        seed in any::<u64>(),
    ) {
        let m = Piecewise::new(eps);
        let atk = GeneralManipulation::new(pos);
        let mut rng = seeded_rng(seed);
        let (lo, hi) = m.output_range();
        let r = atk.report(&m, &mut rng);
        prop_assert!(r >= lo - 1e-12 && r <= hi + 1e-12);
    }

    #[test]
    fn input_manipulation_reports_look_honest_for_duchi(
        eps in 0.2_f64..5.0,
        input in -2.0_f64..2.0,
        seed in any::<u64>(),
    ) {
        // Deniability: every attack report is a legal protocol output.
        let m = Duchi::new(eps);
        let atk = InputManipulation::new(input);
        let mut rng = seeded_rng(seed);
        for r in atk.reports(&m, 32, &mut rng) {
            prop_assert!(r == m.c() || r == -m.c());
        }
    }

    #[test]
    fn laplace_reports_are_finite(eps in 0.05_f64..6.0, x in -3.0_f64..3.0, seed in any::<u64>()) {
        let m = LaplaceMechanism::new(eps);
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            prop_assert!(m.privatize(x, &mut rng).is_finite());
        }
    }

    #[test]
    fn estimate_mean_is_within_output_hull(eps in 0.3_f64..4.0, seed in any::<u64>()) {
        let m = Piecewise::new(eps);
        let mut rng = seeded_rng(seed);
        let reports: Vec<f64> = (0..200).map(|i| {
            let x = (i as f64 / 100.0) - 1.0;
            m.privatize(x, &mut rng)
        }).collect();
        let est = m.estimate_mean(&reports);
        prop_assert!(est >= -m.c() && est <= m.c());
    }
}
