//! The Piecewise Mechanism (Wang et al., 2019) for 1-D mean estimation.
//!
//! For input `x ∈ [−1, 1]` and budget ε, let `C = (e^{ε/2} + 1)/(e^{ε/2} − 1)`.
//! The output domain is `[−C, C]`. A "centre" interval
//! `[l(x), r(x)]` of width `C − 1` around (a scaled image of) `x` receives
//! high density `p = e^{ε/2} · q`, and the rest of the domain low density
//! `q`; the report is unbiased with variance strictly smaller than Duchi's
//! for moderate ε. Its continuous output space is also what makes
//! histogram-based filters (EMF) meaningful, so Fig. 9 runs on this
//! mechanism.

use crate::mechanism::{clamp_input, LdpMechanism};
use rand::Rng;

/// The Piecewise Mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Piecewise {
    epsilon: f64,
    c: f64,
}

impl Piecewise {
    /// Creates the mechanism for budget `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        let e2 = (epsilon / 2.0).exp();
        Self {
            epsilon,
            c: (e2 + 1.0) / (e2 - 1.0),
        }
    }

    /// Output bound `C`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Left edge of the high-density interval for input `x`.
    #[must_use]
    pub fn l(&self, x: f64) -> f64 {
        let x = clamp_input(x);
        (self.c + 1.0) / 2.0 * x - (self.c - 1.0) / 2.0
    }

    /// Right edge of the high-density interval for input `x`.
    #[must_use]
    pub fn r(&self, x: f64) -> f64 {
        self.l(x) + self.c - 1.0
    }

    /// Probability that the report falls inside the high-density interval.
    #[must_use]
    pub fn center_probability(&self) -> f64 {
        let e2 = (self.epsilon / 2.0).exp();
        e2 / (e2 + 1.0)
    }

    /// Cumulative distribution of the output for input `x` at output `t`:
    /// `P(report(x) ≤ t)` under [`Piecewise::privatize`]'s sampling — the
    /// centre interval `[l(x), r(x)]` receives mass
    /// [`Piecewise::center_probability`] uniformly, the two side intervals
    /// share the rest uniformly over their combined width. The report
    /// distribution is piecewise uniform, so the CDF is the exact
    /// piecewise-linear integral — no sampling involved. This is what lets
    /// a collector (or the equilibrium estimator) compute the *survival
    /// probability* of an input-manipulation attacker under an absolute
    /// trimming cut in closed form.
    #[must_use]
    pub fn cdf(&self, x: f64, t: f64) -> f64 {
        if t <= -self.c {
            return 0.0;
        }
        if t >= self.c {
            return 1.0;
        }
        let x = clamp_input(x);
        let l = self.l(x);
        let r = self.r(x);
        let cp = self.center_probability();
        // Length of [a, min(t, b)] clipped to the segment [a, b].
        let seg = |a: f64, b: f64| (t.min(b) - a).clamp(0.0, b - a);
        // Side mass spreads uniformly over [−C, l] ∪ [r, C], whose widths
        // total (l + C) + (C − r) = C + 1 (since r − l = C − 1).
        let side_width = self.c + 1.0;
        cp * seg(l, r) / (self.c - 1.0)
            + (1.0 - cp) * (seg(-self.c, l) + seg(r, self.c)) / side_width
    }

    /// Density of the output distribution for input `x` at output `t`
    /// (used by the EM filter to build its mechanism matrix).
    #[must_use]
    pub fn density(&self, x: f64, t: f64) -> f64 {
        if t < -self.c || t > self.c {
            return 0.0;
        }
        let e2 = (self.epsilon / 2.0).exp();
        // q = low density; p = e^{eps/2} q. Normalization:
        // p (C-1) + q (2C - (C-1)) = 1  =>  q (e2 (C-1) + C + 1) = 1.
        let q = 1.0 / (e2 * (self.c - 1.0) + self.c + 1.0);
        let p = e2 * q;
        if t >= self.l(x) && t <= self.r(x) {
            p
        } else {
            q
        }
    }
}

impl LdpMechanism for Piecewise {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        let x = clamp_input(value);
        let l = self.l(x);
        let r = self.r(x);
        if rng.gen::<f64>() < self.center_probability() {
            // Uniform on the centre interval.
            l + (r - l) * rng.gen::<f64>()
        } else {
            // Uniform on the two side intervals [-C, l) and (r, C].
            let left_w = l + self.c;
            let right_w = self.c - r;
            let total = left_w + right_w;
            if total <= 0.0 {
                // Degenerate (x at a domain edge with zero side mass on one
                // side only happens at numerically extreme epsilon).
                return l + (r - l) * rng.gen::<f64>();
            }
            let u = rng.gen::<f64>() * total;
            if u < left_w {
                -self.c + u
            } else {
                r + (u - left_w)
            }
        }
    }

    fn output_range(&self) -> (f64, f64) {
        (-self.c, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::{mean, variance};

    #[test]
    fn outputs_within_range() {
        let m = Piecewise::new(1.0);
        let mut rng = seeded_rng(1);
        for _ in 0..10_000 {
            let r = m.privatize(0.2, &mut rng);
            assert!(r >= -m.c() - 1e-12 && r <= m.c() + 1e-12);
        }
    }

    #[test]
    fn unbiased_for_several_inputs() {
        let m = Piecewise::new(1.0);
        let mut rng = seeded_rng(2);
        for &x in &[-1.0, -0.3, 0.0, 0.6, 1.0] {
            let reports: Vec<f64> = (0..200_000).map(|_| m.privatize(x, &mut rng)).collect();
            assert!(
                (mean(&reports) - x).abs() < 0.03,
                "x={x}, estimate={}",
                mean(&reports)
            );
        }
    }

    #[test]
    fn lower_variance_than_duchi_at_moderate_epsilon() {
        let eps = 3.0;
        let pw = Piecewise::new(eps);
        let duchi = crate::duchi::Duchi::new(eps);
        let mut rng = seeded_rng(3);
        let x = 0.0;
        let pw_reports: Vec<f64> = (0..100_000).map(|_| pw.privatize(x, &mut rng)).collect();
        let du_reports: Vec<f64> = (0..100_000).map(|_| duchi.privatize(x, &mut rng)).collect();
        assert!(
            variance(&pw_reports) < variance(&du_reports),
            "pw {} vs duchi {}",
            variance(&pw_reports),
            variance(&du_reports)
        );
    }

    #[test]
    fn density_integrates_to_one() {
        let m = Piecewise::new(1.5);
        for &x in &[-0.8, 0.0, 0.5] {
            let n = 20_000;
            let h = 2.0 * m.c() / n as f64;
            let integral: f64 = (0..n)
                .map(|i| m.density(x, -m.c() + (i as f64 + 0.5) * h) * h)
                .sum();
            assert!((integral - 1.0).abs() < 1e-3, "x={x}, integral={integral}");
        }
    }

    #[test]
    fn density_ratio_respects_epsilon() {
        let eps = 1.0;
        let m = Piecewise::new(eps);
        // Worst-case ratio across inputs at any output point is e^{eps/2}
        // for the point densities; end-to-end the mechanism satisfies
        // eps-LDP.
        let t = 0.0;
        let d1 = m.density(-1.0, t);
        let d2 = m.density(1.0, t);
        let ratio = (d1 / d2).max(d2 / d1);
        assert!(ratio <= eps.exp() + 1e-9);
    }

    #[test]
    fn centre_interval_has_width_c_minus_1() {
        let m = Piecewise::new(2.0);
        for &x in &[-1.0, 0.0, 0.7] {
            assert!((m.r(x) - m.l(x) - (m.c() - 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn estimate_mean_tracks_population() {
        let m = Piecewise::new(2.0);
        let mut rng = seeded_rng(4);
        let population: Vec<f64> = (0..50_000)
            .map(|i| ((i % 200) as f64 / 100.0 - 1.0) * 0.5)
            .collect();
        let truth = mean(&population);
        let reports: Vec<f64> = population
            .iter()
            .map(|&x| m.privatize(x, &mut rng))
            .collect();
        assert!((m.estimate_mean(&reports) - truth).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_epsilon_rejected() {
        let _ = Piecewise::new(-1.0);
    }

    #[test]
    fn cdf_endpoints_and_monotonicity() {
        let m = Piecewise::new(2.0);
        for &x in &[-1.0, -0.3, 0.0, 0.6, 1.0] {
            assert_eq!(m.cdf(x, -m.c() - 1.0), 0.0);
            assert_eq!(m.cdf(x, m.c() + 1.0), 1.0);
            assert!((m.cdf(x, m.c()) - 1.0).abs() < 1e-12);
            let mut prev = 0.0;
            let mut t = -m.c();
            while t <= m.c() {
                let v = m.cdf(x, t);
                assert!(v >= prev - 1e-12, "cdf must be non-decreasing");
                assert!((0.0..=1.0 + 1e-12).contains(&v));
                prev = v;
                t += m.c() / 16.0;
            }
        }
    }

    #[test]
    fn cdf_matches_empirical_frequencies() {
        let m = Piecewise::new(3.0);
        let mut rng = seeded_rng(9);
        for &x in &[-0.8, 0.0, 0.9] {
            let reports: Vec<f64> = (0..40_000).map(|_| m.privatize(x, &mut rng)).collect();
            for &t in &[-1.5, -0.5, 0.0, 0.4, 0.9, 1.4] {
                let freq =
                    reports.iter().filter(|&&r| r <= t).count() as f64 / reports.len() as f64;
                let exact = m.cdf(x, t);
                assert!(
                    (freq - exact).abs() < 0.01,
                    "x={x} t={t}: empirical {freq} vs cdf {exact}"
                );
            }
        }
    }

    #[test]
    fn cdf_is_exact_at_segment_boundaries() {
        // At the centre-interval edges the CDF takes the closed-form side
        // masses of the sampler: left-side mass below l(x), everything but
        // the right-side mass below r(x).
        let m = Piecewise::new(1.5);
        for &x in &[-0.9, 0.1, 0.8] {
            let (l, r) = (m.l(x), m.r(x));
            let cp = m.center_probability();
            let side = 1.0 - cp;
            let left_mass = side * (l + m.c()) / (m.c() + 1.0);
            let right_mass = side * (m.c() - r) / (m.c() + 1.0);
            assert!((m.cdf(x, l) - left_mass).abs() < 1e-12, "x={x}");
            assert!((m.cdf(x, r) - (1.0 - right_mass)).abs() < 1e-12, "x={x}");
            // Median of the centre interval sits at half the centre mass.
            let mid = 0.5 * (l + r);
            assert!((m.cdf(x, mid) - (left_mass + cp / 2.0)).abs() < 1e-12);
        }
    }
}
