//! Manipulation attacks against LDP protocols (Cheu, Smith, Ullman, S&P'21).
//!
//! Two attacker models from the paper's Section VII:
//!
//! * **General manipulation** ([`GeneralManipulation`]): Byzantine users
//!   "freely choose to report any poison values in the domain without
//!   following a distribution imposed by the LDP perturbation". Maximally
//!   damaging, but the reports need not look like protocol outputs.
//! * **Input manipulation** ([`InputManipulation`]): adversaries
//!   "counterfeit some poison values *before* perturbation and strictly
//!   follow the LDP perturbation protocol". Fully deniable — each poison
//!   report is distributed exactly like some honest report — which is "a
//!   potent evasion strategy against detection mechanisms within
//!   LDP-driven data collection" and the attacker used in Fig. 9.

use crate::mechanism::LdpMechanism;
use rand::Rng;

/// An attack strategy producing one malicious report per call.
pub trait Attack<M: LdpMechanism> {
    /// Produces one malicious report against `mechanism`.
    fn report<R: Rng + ?Sized>(&self, mechanism: &M, rng: &mut R) -> f64;

    /// Produces `n` malicious reports.
    fn reports<R: Rng + ?Sized>(&self, mechanism: &M, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.report(mechanism, rng)).collect()
    }
}

/// General (output) manipulation: report a fixed fraction `position` of the
/// mechanism's maximum output. `position = 1.0` reports the largest output
/// the protocol could ever emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralManipulation {
    /// Fraction of the maximum output magnitude to report, in `[−1, 1]`.
    pub position: f64,
}

impl GeneralManipulation {
    /// Attack reporting `position · C` where `C` is the output bound.
    ///
    /// # Panics
    /// Panics if `position ∉ [−1, 1]`.
    #[must_use]
    pub fn new(position: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&position),
            "position {position} not in [-1, 1]"
        );
        Self { position }
    }
}

impl<M: LdpMechanism> Attack<M> for GeneralManipulation {
    fn report<R: Rng + ?Sized>(&self, mechanism: &M, _rng: &mut R) -> f64 {
        let (lo, hi) = mechanism.output_range();
        assert!(
            lo.is_finite() && hi.is_finite(),
            "general manipulation needs a bounded output range"
        );
        if self.position >= 0.0 {
            hi * self.position
        } else {
            lo * (-self.position)
        }
    }
}

/// Input manipulation: hold a counterfeit input value and follow the
/// protocol honestly. Indistinguishable from an honest user holding that
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputManipulation {
    /// The counterfeit input, clamped by the mechanism into `[−1, 1]`.
    pub input: f64,
}

impl InputManipulation {
    /// Attack privatizing the fixed counterfeit `input`.
    #[must_use]
    pub fn new(input: f64) -> Self {
        Self { input }
    }
}

impl<M: LdpMechanism> Attack<M> for InputManipulation {
    fn report<R: Rng + ?Sized>(&self, mechanism: &M, rng: &mut R) -> f64 {
        mechanism.privatize(self.input, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duchi::Duchi;
    use crate::piecewise::Piecewise;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    #[test]
    fn general_manipulation_reports_extreme_output() {
        let m = Piecewise::new(1.0);
        let atk = GeneralManipulation::new(1.0);
        let mut rng = seeded_rng(1);
        let r = atk.report(&m, &mut rng);
        assert_eq!(r, m.c());
    }

    #[test]
    fn general_manipulation_negative_position() {
        let m = Duchi::new(1.0);
        let atk = GeneralManipulation::new(-1.0);
        let mut rng = seeded_rng(2);
        assert_eq!(atk.report(&m, &mut rng), -m.c());
    }

    #[test]
    fn input_manipulation_is_protocol_compliant_for_duchi() {
        // Every report must be exactly +/-C, like honest reports.
        let m = Duchi::new(1.0);
        let atk = InputManipulation::new(1.0);
        let mut rng = seeded_rng(3);
        for r in atk.reports(&m, 1000, &mut rng) {
            assert!(r == m.c() || r == -m.c());
        }
    }

    #[test]
    fn input_manipulation_mean_equals_input() {
        let m = Piecewise::new(2.0);
        let atk = InputManipulation::new(0.9);
        let mut rng = seeded_rng(4);
        let reports = atk.reports(&m, 100_000, &mut rng);
        assert!((mean(&reports) - 0.9).abs() < 0.02);
    }

    #[test]
    fn general_beats_input_in_shift_magnitude() {
        // With the same attacker count, general manipulation shifts the
        // aggregate further than input manipulation (deniability costs
        // attack strength, as the paper notes).
        let m = Piecewise::new(1.0);
        let mut rng = seeded_rng(5);
        let general = GeneralManipulation::new(1.0).reports(&m, 20_000, &mut rng);
        let input = InputManipulation::new(1.0).reports(&m, 20_000, &mut rng);
        assert!(mean(&general) > mean(&input) + 0.5);
    }

    #[test]
    #[should_panic(expected = "bounded output range")]
    fn general_manipulation_rejects_unbounded_mechanisms() {
        let m = crate::laplace::LaplaceMechanism::new(1.0);
        let atk = GeneralManipulation::new(1.0);
        let mut rng = seeded_rng(6);
        let _ = atk.report(&m, &mut rng);
    }

    #[test]
    #[should_panic(expected = "not in [-1, 1]")]
    fn bad_position_rejected() {
        let _ = GeneralManipulation::new(1.5);
    }
}
