//! MSE evaluation harness for LDP collection under attack.
//!
//! Fig. 9 reports the mean squared error of the final mean estimate versus
//! the true (benign) mean, across privacy budgets and attack ratios. This
//! module wires population → mechanism → attack → arbitrary defense into a
//! repeated-measurement harness; the *defenses* themselves (trimming
//! strategies from `trim-core`, or [`crate::emf::EmFilter`]) are passed in
//! as closures so the harness stays policy-free.

use crate::attack::Attack;
use crate::mechanism::LdpMechanism;
use rand::Rng;
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng};
use trimgame_numerics::stats::mean;

/// One collected round: honest + attacker reports, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedReports {
    /// All reports (honest first, then attack).
    pub reports: Vec<f64>,
    /// Provenance: `true` = attack report.
    pub is_attack: Vec<bool>,
}

impl CollectedReports {
    /// Number of attack reports.
    #[must_use]
    pub fn attack_count(&self) -> usize {
        self.is_attack.iter().filter(|&&a| a).count()
    }
}

/// Collects one batch: every member of `population` privatizes their value
/// honestly, then `attack_ratio · population.len()` attack reports are
/// appended.
pub fn collect_batch<M, A, R>(
    mechanism: &M,
    attack: &A,
    population: &[f64],
    attack_ratio: f64,
    rng: &mut R,
) -> CollectedReports
where
    M: LdpMechanism,
    A: Attack<M>,
    R: Rng + ?Sized,
{
    let n_attack = (population.len() as f64 * attack_ratio).round() as usize;
    let mut reports = Vec::with_capacity(population.len() + n_attack);
    let mut is_attack = Vec::with_capacity(population.len() + n_attack);
    for &x in population {
        reports.push(mechanism.privatize(x, rng));
        is_attack.push(false);
    }
    for _ in 0..n_attack {
        reports.push(attack.report(mechanism, rng));
        is_attack.push(true);
    }
    CollectedReports { reports, is_attack }
}

/// Mean squared error of `estimator` over `reps` independent collections.
///
/// `estimator` receives the combined reports and returns a mean estimate;
/// the error is measured against the true mean of the benign population.
pub fn estimator_mse<M, A, F>(
    mechanism: &M,
    attack: &A,
    population: &[f64],
    attack_ratio: f64,
    reps: usize,
    master_seed: u64,
    mut estimator: F,
) -> f64
where
    M: LdpMechanism,
    A: Attack<M>,
    F: FnMut(&CollectedReports) -> f64,
{
    assert!(reps > 0, "need at least one repetition");
    let truth = mean(population);
    let mut total = 0.0;
    for rep in 0..reps {
        let mut rng = seeded_rng(derive_seed(master_seed, rep as u64));
        let batch = collect_batch(mechanism, attack, population, attack_ratio, &mut rng);
        let est = estimator(&batch);
        total += (est - truth) * (est - truth);
    }
    total / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{GeneralManipulation, InputManipulation};
    use crate::piecewise::Piecewise;

    fn population() -> Vec<f64> {
        (0..5_000)
            .map(|i| ((i % 100) as f64 / 50.0 - 1.0) * 0.6)
            .collect()
    }

    #[test]
    fn batch_counts_attackers() {
        let mech = Piecewise::new(1.0);
        let atk = GeneralManipulation::new(1.0);
        let mut rng = seeded_rng(1);
        let batch = collect_batch(&mech, &atk, &population(), 0.1, &mut rng);
        assert_eq!(batch.attack_count(), 500);
        assert_eq!(batch.reports.len(), 5_500);
    }

    #[test]
    fn mse_of_honest_collection_shrinks_with_population() {
        let mech = Piecewise::new(2.0);
        let atk = GeneralManipulation::new(0.0); // reports 0.0: mild
        let small: Vec<f64> = population()[..500].to_vec();
        let large = population();
        let mse_small = estimator_mse(&mech, &atk, &small, 0.0, 20, 7, |b| {
            mech.estimate_mean(&b.reports)
        });
        let mse_large = estimator_mse(&mech, &atk, &large, 0.0, 20, 7, |b| {
            mech.estimate_mean(&b.reports)
        });
        assert!(
            mse_large < mse_small,
            "large {mse_large} vs small {mse_small}"
        );
    }

    #[test]
    fn attack_increases_raw_mse() {
        let mech = Piecewise::new(1.0);
        let atk = InputManipulation::new(1.0);
        let pop = population();
        let clean = estimator_mse(&mech, &atk, &pop, 0.0, 10, 11, |b| {
            mech.estimate_mean(&b.reports)
        });
        let attacked = estimator_mse(&mech, &atk, &pop, 0.3, 10, 11, |b| {
            mech.estimate_mean(&b.reports)
        });
        assert!(
            attacked > 5.0 * clean,
            "attacked {attacked} vs clean {clean}"
        );
    }

    #[test]
    fn oracle_estimator_achieves_near_zero_mse() {
        // An estimator that drops attack reports using provenance should be
        // nearly unbiased.
        let mech = Piecewise::new(2.0);
        let atk = GeneralManipulation::new(1.0);
        let pop = population();
        let mse = estimator_mse(&mech, &atk, &pop, 0.3, 10, 13, |b| {
            let honest: Vec<f64> = b
                .reports
                .iter()
                .zip(&b.is_attack)
                .filter(|(_, &a)| !a)
                .map(|(&r, _)| r)
                .collect();
            mech.estimate_mean(&honest)
        });
        assert!(mse < 0.01, "oracle mse {mse}");
    }

    #[test]
    fn deterministic_under_master_seed() {
        let mech = Piecewise::new(1.0);
        let atk = InputManipulation::new(0.5);
        let pop = population();
        let a = estimator_mse(&mech, &atk, &pop, 0.1, 5, 42, |b| {
            mech.estimate_mean(&b.reports)
        });
        let b = estimator_mse(&mech, &atk, &pop, 0.1, 5, 42, |b| {
            mech.estimate_mean(&b.reports)
        });
        assert_eq!(a, b);
    }
}
