//! The Laplace mechanism for 1-D mean estimation on `[−1, 1]`.
//!
//! Report = `x + Lap(2/ε)` (sensitivity of the identity query on `[−1, 1]`
//! is 2). Unbiased but with *unbounded* output range, which is exactly why
//! the paper notes that under LDP "the injected poison values may locate
//! anywhere... and may even exceed the upper bound of the input domain" —
//! general manipulation against Laplace is unboundedly destructive, making
//! the bounded mechanisms preferable and trimming indispensable.

use crate::mechanism::{clamp_input, LdpMechanism};
use rand::Rng;
use trimgame_numerics::rand_ext::laplace;

/// The Laplace mechanism with sensitivity 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism for budget `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        Self { epsilon }
    }

    /// Noise scale `b = 2/ε`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        2.0 / self.epsilon
    }
}

impl LdpMechanism for LaplaceMechanism {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        laplace(rng, clamp_input(value), self.scale())
    }

    fn output_range(&self) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::{mean, variance};

    #[test]
    fn unbiased() {
        let m = LaplaceMechanism::new(1.0);
        let mut rng = seeded_rng(1);
        for &x in &[-0.9, 0.0, 0.9] {
            let reports: Vec<f64> = (0..100_000).map(|_| m.privatize(x, &mut rng)).collect();
            assert!((mean(&reports) - x).abs() < 0.05, "x={x}");
        }
    }

    #[test]
    fn variance_matches_2b2() {
        let m = LaplaceMechanism::new(2.0);
        let b = m.scale();
        let mut rng = seeded_rng(2);
        let reports: Vec<f64> = (0..200_000).map(|_| m.privatize(0.0, &mut rng)).collect();
        assert!((variance(&reports) - 2.0 * b * b).abs() < 0.1);
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        assert!(LaplaceMechanism::new(0.5).scale() > LaplaceMechanism::new(2.0).scale());
    }

    #[test]
    fn output_range_unbounded() {
        let (lo, hi) = LaplaceMechanism::new(1.0).output_range();
        assert!(lo.is_infinite() && lo < 0.0);
        assert!(hi.is_infinite() && hi > 0.0);
    }

    #[test]
    fn input_is_clamped() {
        let m = LaplaceMechanism::new(1000.0); // nearly noiseless
        let mut rng = seeded_rng(3);
        let r = m.privatize(50.0, &mut rng);
        assert!((r - 1.0).abs() < 0.1, "clamped report {r}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_epsilon_rejected() {
        let _ = LaplaceMechanism::new(0.0);
    }
}
