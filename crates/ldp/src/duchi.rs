//! Duchi et al.'s binary mechanism for 1-D mean estimation.
//!
//! For input `x ∈ [−1, 1]` and budget ε, the report is `+C` with
//! probability `(x(e^ε − 1) + e^ε + 1) / (2(e^ε + 1))` and `−C` otherwise,
//! where `C = (e^ε + 1)/(e^ε − 1)`. The report is unbiased:
//! `E[report] = x`. This is the minimax-optimal mechanism cited in the
//! paper as reference 10 (Duchi, Jordan, Wainwright).

use crate::mechanism::{clamp_input, LdpMechanism};
use rand::Rng;

/// The Duchi binary mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duchi {
    epsilon: f64,
    c: f64,
}

impl Duchi {
    /// Creates the mechanism for budget `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        let e = epsilon.exp();
        Self {
            epsilon,
            c: (e + 1.0) / (e - 1.0),
        }
    }

    /// The output magnitude `C`.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Probability of reporting `+C` for input `x`.
    #[must_use]
    pub fn positive_probability(&self, x: f64) -> f64 {
        let x = clamp_input(x);
        let e = self.epsilon.exp();
        (x * (e - 1.0) + e + 1.0) / (2.0 * (e + 1.0))
    }
}

impl LdpMechanism for Duchi {
    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.positive_probability(value) {
            self.c
        } else {
            -self.c
        }
    }

    fn output_range(&self) -> (f64, f64) {
        (-self.c, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    #[test]
    fn outputs_are_plus_minus_c() {
        let m = Duchi::new(1.0);
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let r = m.privatize(0.3, &mut rng);
            assert!(r == m.c() || r == -m.c());
        }
    }

    #[test]
    fn unbiased_for_several_inputs() {
        let m = Duchi::new(1.0);
        let mut rng = seeded_rng(2);
        for &x in &[-1.0, -0.5, 0.0, 0.4, 1.0] {
            let reports: Vec<f64> = (0..200_000).map(|_| m.privatize(x, &mut rng)).collect();
            assert!(
                (mean(&reports) - x).abs() < 0.02,
                "x={x}, estimate={}",
                mean(&reports)
            );
        }
    }

    #[test]
    fn probability_respects_epsilon_ratio() {
        // LDP constraint: P(+C | x) / P(+C | x') <= e^eps for any x, x'.
        let eps = 0.8;
        let m = Duchi::new(eps);
        let p_hi = m.positive_probability(1.0);
        let p_lo = m.positive_probability(-1.0);
        assert!(p_hi / p_lo <= eps.exp() + 1e-9);
        assert!((1.0 - p_lo) / (1.0 - p_hi) <= eps.exp() + 1e-9);
    }

    #[test]
    fn probability_bounds() {
        let m = Duchi::new(2.0);
        for &x in &[-1.0, 0.0, 1.0, 5.0, -5.0] {
            let p = m.positive_probability(x);
            assert!((0.0..=1.0).contains(&p));
        }
        // Extreme inputs clamp.
        assert_eq!(m.positive_probability(5.0), m.positive_probability(1.0));
    }

    #[test]
    fn c_grows_as_epsilon_shrinks() {
        assert!(Duchi::new(0.5).c() > Duchi::new(1.0).c());
        assert!(Duchi::new(1.0).c() > Duchi::new(3.0).c());
    }

    #[test]
    fn estimate_mean_tracks_population() {
        let m = Duchi::new(1.5);
        let mut rng = seeded_rng(3);
        let population: Vec<f64> = (0..50_000)
            .map(|i| ((i % 100) as f64 / 50.0 - 1.0) * 0.8)
            .collect();
        let truth = mean(&population);
        let reports: Vec<f64> = population
            .iter()
            .map(|&x| m.privatize(x, &mut rng))
            .collect();
        let est = m.estimate_mean(&reports);
        assert!(
            (est - truth).abs() < 0.03,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        let _ = Duchi::new(0.0);
    }

    #[test]
    fn output_range_is_symmetric() {
        let m = Duchi::new(1.0);
        let (lo, hi) = m.output_range();
        assert_eq!(lo, -hi);
        assert_eq!(hi, m.c());
    }
}
