//! The LDP mechanism abstraction for mean estimation on `[−1, 1]`.
//!
//! All three mechanisms in this crate are *unbiased*: `E[report] = value`,
//! so the aggregate mean of reports estimates the population mean. This is
//! the "non-deterministic utility" of Section V — even a fully honest
//! round produces a noisy quality evaluation, which is what forces the
//! redundancy margin in Tit-for-tat (Theorem 3) and motivates Elastic.

use rand::Rng;

/// A local randomizer for one numeric value in `[−1, 1]`.
pub trait LdpMechanism {
    /// The privacy budget ε this mechanism instance satisfies.
    fn epsilon(&self) -> f64;

    /// Privatizes one value.
    ///
    /// Implementations clamp the input into `[−1, 1]` first; honest users
    /// are assumed to hold in-domain values, but clamping keeps the
    /// ε-guarantee meaningful for adversarial inputs too.
    fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64;

    /// The output range `[lo, hi]` of the randomizer. A *general*
    /// manipulation attacker can report anything in this range; an honest
    /// report never leaves it. Unbounded mechanisms return infinite bounds.
    fn output_range(&self) -> (f64, f64);

    /// Unbiased estimate of the population mean from raw reports (for the
    /// mechanisms here, the sample mean — each report is already unbiased).
    fn estimate_mean(&self, reports: &[f64]) -> f64 {
        trimgame_numerics::stats::mean(reports)
    }
}

/// Clamps a value into the input domain `[−1, 1]`.
#[must_use]
pub fn clamp_input(value: f64) -> f64 {
    value.clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_input_bounds() {
        assert_eq!(clamp_input(2.0), 1.0);
        assert_eq!(clamp_input(-3.0), -1.0);
        assert_eq!(clamp_input(0.25), 0.25);
    }
}
