//! Local differential privacy (LDP) substrate.
//!
//! Section V of the paper presents its case study "in a privacy-preserving
//! data collection system under local differential privacy where a
//! non-deterministic utility function is adopted", and Fig. 9 compares the
//! game-theoretic trimming strategies against the Expectation-Maximization
//! Filter (EMF) of Du et al. (ICDE'23) on the Taxi dataset. This crate
//! provides the whole pipeline, from scratch:
//!
//! * [`mechanism`] — the [`LdpMechanism`] trait for mean estimation over
//!   the normalized input domain `[−1, 1]`.
//! * [`duchi`] — Duchi et al.'s binary mechanism (outputs `±C`).
//! * [`piecewise`] — Wang et al.'s Piecewise Mechanism (continuous outputs
//!   in `[−C, C]`), the default mechanism for Fig. 9 because its output
//!   space is rich enough for histogram-based filtering.
//! * [`laplace`] — the Laplace mechanism with sensitivity 2.
//! * [`attack`] — manipulation attacks of Cheu et al.: *general* (report
//!   any output value) and *input* manipulation (poison the input, then
//!   follow the protocol — fully deniable, the strong evasion of Fig. 9).
//! * [`emf`] — the EM filter baseline: a mixture model over discretized
//!   outputs separating honest mass from attack mass.
//! * [`eval`] — MSE evaluation harnesses.

pub mod attack;
pub mod duchi;
pub mod emf;
pub mod eval;
pub mod laplace;
pub mod mechanism;
pub mod piecewise;

pub use attack::{Attack, GeneralManipulation, InputManipulation};
pub use duchi::Duchi;
pub use emf::EmFilter;
pub use laplace::LaplaceMechanism;
pub use mechanism::LdpMechanism;
pub use piecewise::Piecewise;
