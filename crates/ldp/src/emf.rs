//! Expectation-Maximization Filter (EMF) — the Fig. 9 baseline.
//!
//! Re-implementation of the defense idea of Du et al., "Differential
//! Aggregation against General Colluding Attackers" (ICDE'23), as described
//! by the paper: "a maximum likelihood estimation can be utilized to
//! recover an attack distribution based on the collected data. However,
//! this approach ... cannot address situations where attackers
//! intentionally mimic the behavior of normal users."
//!
//! Model: each report is, with probability `1 − β`, an honest LDP output
//! (input drawn from an unknown input histogram `θ`, pushed through the
//! known mechanism kernel `M`), and with probability `β` a draw from an
//! unknown attack output histogram `φ`. EM alternates between
//! responsibilities (is this report honest or attack mass?) and the
//! maximization updates of `θ` and `φ`. The filtered mean is the mean of
//! the recovered *input* histogram `θ` — no debiasing needed because `θ`
//! lives in the input domain.
//!
//! Against **general manipulation** (attack mass concentrated where honest
//! outputs are rare) this works well; against **input manipulation** the
//! attack is a perfect mixture component of honest behaviour, the
//! likelihood is flat in the direction separating them, and the filter
//! cannot help — which is exactly why the trimming game outperforms it in
//! Fig. 9.

use crate::piecewise::Piecewise;

/// EM filter configuration and mechanism kernel.
#[derive(Debug, Clone)]
pub struct EmFilter {
    /// Input-bin centres in `[−1, 1]`.
    centers: Vec<f64>,
    /// Output-bin edges over `[−C, C]` (len = output_bins + 1).
    edges: Vec<f64>,
    /// Kernel: `kernel[o][j] = P(output bin o | input centre j)`.
    kernel: Vec<Vec<f64>>,
    /// Assumed attacker fraction β.
    beta: f64,
    max_iters: usize,
    tol: f64,
}

impl EmFilter {
    /// Builds the filter for the Piecewise mechanism with `input_bins`
    /// input bins, `output_bins` output bins and assumed attacker fraction
    /// `beta`.
    ///
    /// # Panics
    /// Panics if bin counts are `< 2` or `beta ∉ [0, 1)`.
    #[must_use]
    pub fn for_piecewise(
        mech: &Piecewise,
        input_bins: usize,
        output_bins: usize,
        beta: f64,
    ) -> Self {
        assert!(input_bins >= 2 && output_bins >= 2, "need at least 2 bins");
        assert!((0.0..1.0).contains(&beta), "beta {beta} not in [0, 1)");
        let c = mech.c();
        let centers: Vec<f64> = (0..input_bins)
            .map(|j| -1.0 + (j as f64 + 0.5) * 2.0 / input_bins as f64)
            .collect();
        let edges: Vec<f64> = (0..=output_bins)
            .map(|o| -c + o as f64 * 2.0 * c / output_bins as f64)
            .collect();
        // Integrate the mechanism density over each output bin (the
        // density is piecewise constant; 16-point midpoint quadrature per
        // bin is exact to well below the EM tolerance).
        let mut kernel = vec![vec![0.0; input_bins]; output_bins];
        for (j, &x) in centers.iter().enumerate() {
            for o in 0..output_bins {
                let (lo, hi) = (edges[o], edges[o + 1]);
                let steps = 16;
                let h = (hi - lo) / steps as f64;
                let mass: f64 = (0..steps)
                    .map(|s| mech.density(x, lo + (s as f64 + 0.5) * h) * h)
                    .sum();
                kernel[o][j] = mass;
            }
            // Normalize the column to exactly 1 to keep EM stochastic.
            let total: f64 = (0..output_bins).map(|o| kernel[o][j]).sum();
            for row in &mut kernel {
                row[j] /= total;
            }
        }
        Self {
            centers,
            edges,
            kernel,
            beta,
            max_iters: 300,
            tol: 1e-9,
        }
    }

    /// The assumed attacker fraction.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Histograms reports into the output bins (out-of-range values clamp
    /// to the edge bins, as extreme general-manipulation reports should
    /// land in the outermost bin).
    fn histogram(&self, reports: &[f64]) -> Vec<f64> {
        let bins = self.edges.len() - 1;
        let lo = self.edges[0];
        let hi = *self.edges.last().expect("non-empty edges");
        let width = (hi - lo) / bins as f64;
        let mut y = vec![0.0; bins];
        for &r in reports {
            let idx = (((r - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
            y[idx] += 1.0;
        }
        let n: f64 = y.iter().sum();
        if n > 0.0 {
            for v in &mut y {
                *v /= n;
            }
        }
        y
    }

    /// Runs EM and returns the recovered input histogram `θ` and attack
    /// output histogram `φ`.
    #[must_use]
    pub fn decompose(&self, reports: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let y = self.histogram(reports);
        let nin = self.centers.len();
        let nout = y.len();
        let mut theta = vec![1.0 / nin as f64; nin];
        let mut phi = vec![1.0 / nout as f64; nout];

        for _ in 0..self.max_iters {
            // Mixture prediction per output bin.
            let mut honest = vec![0.0; nout];
            for (o, slot) in honest.iter_mut().enumerate() {
                let acc: f64 = self.kernel[o].iter().zip(&theta).map(|(k, t)| k * t).sum();
                *slot = (1.0 - self.beta) * acc;
            }
            // E + M step for theta.
            let mut new_theta = vec![0.0; nin];
            for o in 0..nout {
                let mix = honest[o] + self.beta * phi[o];
                if mix <= 1e-300 || y[o] == 0.0 {
                    continue;
                }
                // Responsibility of each honest input bin for output o.
                let scale = y[o] * (1.0 - self.beta) / mix;
                for j in 0..nin {
                    new_theta[j] += scale * self.kernel[o][j] * theta[j];
                }
            }
            let t_total: f64 = new_theta.iter().sum();
            if t_total > 0.0 {
                for v in &mut new_theta {
                    *v /= t_total;
                }
            }
            // M step for phi.
            let mut new_phi = vec![0.0; nout];
            if self.beta > 0.0 {
                for o in 0..nout {
                    let mix = honest[o] + self.beta * phi[o];
                    if mix <= 1e-300 {
                        continue;
                    }
                    new_phi[o] = y[o] * self.beta * phi[o] / mix;
                }
                let p_total: f64 = new_phi.iter().sum();
                if p_total > 0.0 {
                    for v in &mut new_phi {
                        *v /= p_total;
                    }
                } else {
                    new_phi = phi.clone();
                }
            }

            let delta: f64 = theta
                .iter()
                .zip(&new_theta)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                + phi
                    .iter()
                    .zip(&new_phi)
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>();
            theta = new_theta;
            phi = new_phi;
            if delta < self.tol {
                break;
            }
        }
        (theta, phi)
    }

    /// Filtered mean estimate: mean of the recovered input histogram.
    #[must_use]
    pub fn filter_mean(&self, reports: &[f64]) -> f64 {
        let (theta, _) = self.decompose(reports);
        self.centers.iter().zip(&theta).map(|(c, t)| c * t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Attack, GeneralManipulation, InputManipulation};
    use crate::mechanism::LdpMechanism;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    fn honest_population(n: usize) -> Vec<f64> {
        // Smooth skewed population with an interior mode near -0.3
        // (quantile function of a clamped Gaussian). Box-kernel
        // deconvolution is well-posed for such densities; see
        // `edge_singular_population_biases_deconvolution` for the hard
        // case.
        let mut rng = seeded_rng(777);
        (0..n)
            .map(|_| {
                (-0.3 + 0.35 * trimgame_numerics::rand_ext::standard_normal(&mut rng))
                    .clamp(-1.0, 1.0)
            })
            .collect()
    }

    #[test]
    fn recovers_mean_without_attack() {
        let mech = Piecewise::new(2.0);
        let pop = honest_population(40_000);
        let truth = mean(&pop);
        let mut rng = seeded_rng(1);
        let reports: Vec<f64> = pop.iter().map(|&x| mech.privatize(x, &mut rng)).collect();
        let emf = EmFilter::for_piecewise(&mech, 16, 32, 0.01);
        let est = emf.filter_mean(&reports);
        assert!(
            (est - truth).abs() < 0.05,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn filters_general_manipulation() {
        let mech = Piecewise::new(1.0);
        let pop = honest_population(30_000);
        let truth = mean(&pop);
        let beta = 0.2;
        let n_attack = (pop.len() as f64 * beta / (1.0 - beta)) as usize;
        let mut rng = seeded_rng(2);
        let mut reports: Vec<f64> = pop.iter().map(|&x| mech.privatize(x, &mut rng)).collect();
        reports.extend(GeneralManipulation::new(1.0).reports(&mech, n_attack, &mut rng));

        let raw = mech.estimate_mean(&reports);
        let emf = EmFilter::for_piecewise(&mech, 16, 32, beta);
        let filtered = emf.filter_mean(&reports);
        assert!(
            (filtered - truth).abs() < (raw - truth).abs() * 0.6,
            "filtered {filtered}, raw {raw}, truth {truth}"
        );
    }

    #[test]
    fn cannot_filter_input_manipulation() {
        // Deniable attack: the EMF estimate stays biased toward the
        // counterfeit input (it cannot distinguish the attack mass).
        let mech = Piecewise::new(1.0);
        let pop = honest_population(30_000);
        let truth = mean(&pop);
        let beta = 0.25;
        let n_attack = (pop.len() as f64 * beta / (1.0 - beta)) as usize;
        let mut rng = seeded_rng(3);
        let mut reports: Vec<f64> = pop.iter().map(|&x| mech.privatize(x, &mut rng)).collect();
        reports.extend(InputManipulation::new(1.0).reports(&mech, n_attack, &mut rng));

        let emf = EmFilter::for_piecewise(&mech, 16, 32, beta);
        let filtered = emf.filter_mean(&reports);
        // The poisoned mixture has mean ~ truth*(1-beta) + 1*beta; the
        // filter should NOT get within a small distance of the truth.
        let poisoned_mean = truth * (1.0 - beta) + beta;
        assert!(
            (filtered - truth).abs() > 0.3 * (poisoned_mean - truth).abs(),
            "EMF unexpectedly defeated input manipulation: filtered {filtered}, truth {truth}"
        );
    }

    #[test]
    fn decompose_returns_distributions() {
        let mech = Piecewise::new(1.5);
        let mut rng = seeded_rng(4);
        let reports: Vec<f64> = (0..5_000).map(|_| mech.privatize(0.3, &mut rng)).collect();
        let emf = EmFilter::for_piecewise(&mech, 8, 16, 0.1);
        let (theta, phi) = emf.decompose(&reports);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((phi.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(theta.iter().all(|&t| t >= 0.0));
        assert!(phi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn edge_singular_population_biases_deconvolution() {
        // Known limitation (shared with the original EMF): the Piecewise
        // output density is a box filter of the input distribution, so
        // populations with a density singularity at the domain edge are
        // only weakly identifiable and the recovered mean is biased. This
        // test documents the behaviour rather than asserting perfection.
        let mech = Piecewise::new(2.0);
        let pop: Vec<f64> = (0..40_000)
            .map(|i| {
                let t = (i % 1000) as f64 / 1000.0;
                (t * t) * 1.6 - 1.0 // density ~ 1/sqrt(x+1): singular at -1
            })
            .collect();
        let truth = mean(&pop);
        let mut rng = seeded_rng(5);
        let reports: Vec<f64> = pop.iter().map(|&x| mech.privatize(x, &mut rng)).collect();
        let emf = EmFilter::for_piecewise(&mech, 16, 32, 0.01);
        let est = emf.filter_mean(&reports);
        // Bias is real but bounded: within the box-kernel half width.
        let err = (est - truth).abs();
        assert!(err > 0.02, "expected visible bias, got {err}");
        assert!(err < 0.4, "bias should stay bounded, got {err}");
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn degenerate_bins_rejected() {
        let mech = Piecewise::new(1.0);
        let _ = EmFilter::for_piecewise(&mech, 1, 16, 0.1);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1)")]
    fn bad_beta_rejected() {
        let mech = Piecewise::new(1.0);
        let _ = EmFilter::for_piecewise(&mech, 8, 16, 1.0);
    }
}
