//! Defender threshold policies — the scheme roster of Section VI-A.
//!
//! | Scheme | Defender behaviour |
//! |---|---|
//! | `Ostrich` | never trims (threshold 1.0); "no defensive measures" |
//! | `Fixed` | static threshold `Tth` (both `Baseline 0.9` and `Baseline static`) |
//! | `TitForTat` | soft at `Tth + 1%`; once triggered, hard at `Tth − 3%` forever |
//! | `Elastic` | `T(1) = Tth − 3%`, then `T(i+1) = Tth + k(A(i) − Tth − 1%)` |
//!
//! Policies observe the previous round through [`DefenderObservation`]:
//! the quality score (all schemes) and the adversary's realized injection
//! percentile (Elastic's coupled rule; observable in the complete-
//! information game via the public board).

use crate::elastic::{CoupledDynamics, ElasticThreshold};
use crate::titfortat::TitForTat;

/// What the defender sees from the previous round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenderObservation {
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
    /// The adversary's injection percentile last round, if identifiable
    /// from the public board (complete-information assumption).
    pub injection_percentile: Option<f64>,
}

/// A defender threshold policy.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenderPolicy {
    /// Accept everything.
    Ostrich,
    /// Static threshold.
    Fixed {
        /// The fixed trimming percentile.
        tth: f64,
    },
    /// Algorithm 1 around nominal threshold `tth`.
    TitForTat {
        /// Trigger-strategy state.
        inner: TitForTat,
    },
    /// §VI-A coupled Elastic rule.
    Elastic {
        /// The dynamics parameters.
        dynamics: CoupledDynamics,
        /// Current trim percentile `T(i)`.
        current: f64,
    },
    /// Algorithm 2 proper: the threshold interpolates between the soft and
    /// hard percentiles as the observed quality degrades (used by the LDP
    /// case study, where the injection position is not observable but the
    /// quality score is).
    QualityElastic {
        /// The interpolation parameters.
        inner: ElasticThreshold,
    },
}

impl DefenderPolicy {
    /// Tit-for-tat's soft offset above `Tth` (§VI-A: `Tth + 1%`).
    pub const TFT_SOFT_OFFSET: f64 = 0.01;
    /// Tit-for-tat's hard offset below `Tth` (§VI-A: `Tth − 3%`).
    pub const TFT_HARD_OFFSET: f64 = -0.03;

    /// Builds the paper's Tit-for-tat configuration around `tth` with
    /// calibration quality `baseline_quality` and redundancy `red`.
    ///
    /// # Panics
    /// Panics if the offsets leave `[0, 1]`.
    #[must_use]
    pub fn titfortat(tth: f64, baseline_quality: f64, red: f64) -> Self {
        let inner = TitForTat::new(
            (tth + Self::TFT_SOFT_OFFSET).min(1.0),
            tth + Self::TFT_HARD_OFFSET,
            baseline_quality,
            red,
        )
        .expect("paper offsets around a valid tth are valid");
        DefenderPolicy::TitForTat { inner }
    }

    /// Builds the paper's Elastic configuration around `tth` with response
    /// intensity `k`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range.
    #[must_use]
    pub fn elastic(tth: f64, k: f64) -> Self {
        let dynamics = CoupledDynamics::new(tth, k).expect("valid elastic parameters");
        DefenderPolicy::Elastic {
            current: dynamics.initial().trim,
            dynamics,
        }
    }

    /// Builds the Algorithm 2 quality-driven policy between `soft` and
    /// `hard` with intensity `k`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range.
    #[must_use]
    pub fn quality_elastic(soft: f64, hard: f64, k: f64) -> Self {
        let inner = ElasticThreshold::new(soft, hard, k).expect("valid elastic parameters");
        DefenderPolicy::QualityElastic { inner }
    }

    /// Human-readable scheme name (matches the paper's legend).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            DefenderPolicy::Ostrich => "Ostrich".to_string(),
            DefenderPolicy::Fixed { .. } => "Baseline".to_string(),
            DefenderPolicy::TitForTat { .. } => "Titfortat".to_string(),
            DefenderPolicy::Elastic { dynamics, .. } => format!("Elastic{}", dynamics.k),
            DefenderPolicy::QualityElastic { inner } => format!("Elastic{}", inner.k),
        }
    }

    /// Threshold percentile for the first round.
    #[must_use]
    pub fn initial_threshold(&self) -> f64 {
        match self {
            DefenderPolicy::Ostrich => 1.0,
            DefenderPolicy::Fixed { tth } => *tth,
            DefenderPolicy::TitForTat { inner } => inner.threshold(),
            DefenderPolicy::Elastic { current, .. } => *current,
            DefenderPolicy::QualityElastic { inner } => inner.threshold(0.0),
        }
    }

    /// Consumes last round's observation and returns this round's
    /// threshold percentile.
    pub fn next_threshold(&mut self, round: usize, obs: &DefenderObservation) -> f64 {
        match self {
            DefenderPolicy::Ostrich => 1.0,
            DefenderPolicy::Fixed { tth } => *tth,
            DefenderPolicy::TitForTat { inner } => inner.observe(round, obs.quality),
            DefenderPolicy::Elastic { dynamics, current } => {
                if let Some(a) = obs.injection_percentile {
                    *current = dynamics.tth + dynamics.k * (a - dynamics.tth - 0.01);
                }
                current.clamp(0.0, 1.0)
            }
            DefenderPolicy::QualityElastic { inner } => inner.threshold(1.0 - obs.quality),
        }
    }

    /// The round at which a trigger policy terminated cooperation, if it
    /// is a trigger policy and it fired.
    #[must_use]
    pub fn termination_round(&self) -> Option<usize> {
        match self {
            DefenderPolicy::TitForTat { inner } => inner.triggered_at(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(quality: f64, inject: Option<f64>) -> DefenderObservation {
        DefenderObservation {
            quality,
            injection_percentile: inject,
        }
    }

    #[test]
    fn ostrich_never_trims() {
        let mut p = DefenderPolicy::Ostrich;
        assert_eq!(p.initial_threshold(), 1.0);
        assert_eq!(p.next_threshold(5, &obs(0.0, Some(0.99))), 1.0);
    }

    #[test]
    fn fixed_is_static() {
        let mut p = DefenderPolicy::Fixed { tth: 0.9 };
        assert_eq!(p.initial_threshold(), 0.9);
        for round in 1..5 {
            assert_eq!(p.next_threshold(round, &obs(0.1, None)), 0.9);
        }
    }

    #[test]
    fn titfortat_soft_then_hard() {
        let mut p = DefenderPolicy::titfortat(0.9, 0.95, 0.05);
        assert!((p.initial_threshold() - 0.91).abs() < 1e-12);
        // Good quality: stays soft.
        assert!((p.next_threshold(1, &obs(0.94, None)) - 0.91).abs() < 1e-12);
        // Trigger: drops to Tth - 3% and stays.
        assert!((p.next_threshold(2, &obs(0.80, None)) - 0.87).abs() < 1e-12);
        assert!((p.next_threshold(3, &obs(1.0, None)) - 0.87).abs() < 1e-12);
    }

    #[test]
    fn elastic_reacts_to_injection() {
        let mut p = DefenderPolicy::elastic(0.9, 0.5);
        // Initial trim Tth - 3%.
        assert!((p.initial_threshold() - 0.87).abs() < 1e-12);
        // Adversary injected at 0.91 -> T = 0.9 + 0.5*(0.91-0.9-0.01) = 0.9.
        let t = p.next_threshold(2, &obs(1.0, Some(0.91)));
        assert!((t - 0.9).abs() < 1e-12);
        // Adversary dove to 0.85 -> T = 0.9 + 0.5*(0.85-0.91) = 0.87.
        let t = p.next_threshold(3, &obs(1.0, Some(0.85)));
        assert!((t - 0.87).abs() < 1e-12);
    }

    #[test]
    fn elastic_without_observation_keeps_current() {
        let mut p = DefenderPolicy::elastic(0.9, 0.5);
        let t1 = p.next_threshold(2, &obs(1.0, None));
        assert!((t1 - 0.87).abs() < 1e-12);
    }

    #[test]
    fn names_match_legend() {
        assert_eq!(DefenderPolicy::Ostrich.name(), "Ostrich");
        assert_eq!(DefenderPolicy::Fixed { tth: 0.9 }.name(), "Baseline");
        assert_eq!(DefenderPolicy::titfortat(0.9, 1.0, 0.0).name(), "Titfortat");
        assert_eq!(DefenderPolicy::elastic(0.9, 0.5).name(), "Elastic0.5");
        assert_eq!(
            DefenderPolicy::quality_elastic(0.95, 0.85, 0.1).name(),
            "Elastic0.1"
        );
    }

    #[test]
    fn quality_elastic_follows_algorithm2() {
        let mut p = DefenderPolicy::quality_elastic(0.95, 0.85, 0.5);
        // Perfect quality: soft threshold, also the initial threshold.
        assert!((p.initial_threshold() - 0.95).abs() < 1e-12);
        assert!((p.next_threshold(2, &obs(1.0, None)) - 0.95).abs() < 1e-12);
        // Worst quality: k of the way toward hard.
        let t = p.next_threshold(3, &obs(0.0, None));
        assert!((t - 0.90).abs() < 1e-12, "threshold {t}");
        assert_eq!(p.termination_round(), None);
    }

    #[test]
    fn termination_round_reports_trigger() {
        let mut p = DefenderPolicy::titfortat(0.9, 0.95, 0.01);
        assert_eq!(p.termination_round(), None);
        let _ = p.next_threshold(2, &obs(0.5, None));
        assert_eq!(p.termination_round(), Some(2));
    }
}
