//! Defender threshold policies — the scheme roster of Section VI-A.
//!
//! | Scheme | Defender behaviour |
//! |---|---|
//! | `Ostrich` | never trims (threshold 1.0); "no defensive measures" |
//! | `Fixed` | static threshold `Tth` (both `Baseline 0.9` and `Baseline static`) |
//! | `TitForTat` | soft at `Tth + 1%`; once triggered, hard at `Tth − 3%` forever |
//! | `Elastic` | `T(1) = Tth − 3%`, then `T(i+1) = Tth + k(A(i) − Tth − 1%)` |
//!
//! Policies observe the previous round through [`DefenderObservation`]:
//! the quality score (all schemes) and the adversary's realized injection
//! percentile (Elastic's coupled rule; observable in the complete-
//! information game via the public board).

use crate::elastic::{CoupledDynamics, ElasticThreshold};
use crate::error::CoreError;
use crate::space::MixedSupport;
use crate::titfortat::TitForTat;
use rand::RngCore;
use std::borrow::Cow;

/// What the defender sees from the previous round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenderObservation {
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
    /// The adversary's injection percentile last round, if identifiable
    /// from the public board (complete-information assumption).
    pub injection_percentile: Option<f64>,
}

/// An object-safe defender threshold policy: the open half of the policy
/// layer.
///
/// The engine drives implementations with the Fig. 3 information
/// structure: [`ThresholdPolicy::initial_threshold`] before any round has
/// completed, then [`ThresholdPolicy::next_threshold`] with the previous
/// round's [`DefenderObservation`]. The `rng` argument is the engine's
/// *dedicated defender sub-stream* — separate from the main environment
/// stream — so deterministic policies (which never draw from it) replay
/// bit-identically whether or not a randomized policy ran before them.
///
/// The paper's closed scheme roster remains available as the
/// [`DefenderPolicy`] enum, which implements this trait as a compatibility
/// shim; new policies ([`RandomizedDefender`], downstream custom
/// strategies) implement the trait directly and enter the engine through
/// [`crate::engine::Engine::with_policies`].
pub trait ThresholdPolicy: std::fmt::Debug {
    /// Human-readable scheme name (used in sweep/report keys).
    fn name(&self) -> Cow<'static, str>;

    /// Threshold percentile for the first round (no history yet).
    fn initial_threshold(&mut self, rng: &mut dyn RngCore) -> f64;

    /// Consumes last round's observation and returns this round's
    /// threshold percentile.
    fn next_threshold(
        &mut self,
        round: usize,
        obs: &DefenderObservation,
        rng: &mut dyn RngCore,
    ) -> f64;

    /// The round at which a trigger policy terminated cooperation, if it
    /// is a trigger policy and it fired.
    fn termination_round(&self) -> Option<usize> {
        None
    }
}

/// A defender threshold policy.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenderPolicy {
    /// Accept everything.
    Ostrich,
    /// Static threshold.
    Fixed {
        /// The fixed trimming percentile.
        tth: f64,
    },
    /// Algorithm 1 around nominal threshold `tth`.
    TitForTat {
        /// Trigger-strategy state.
        inner: TitForTat,
    },
    /// §VI-A coupled Elastic rule.
    Elastic {
        /// The dynamics parameters.
        dynamics: CoupledDynamics,
        /// Current trim percentile `T(i)`.
        current: f64,
    },
    /// Algorithm 2 proper: the threshold interpolates between the soft and
    /// hard percentiles as the observed quality degrades (used by the LDP
    /// case study, where the injection position is not observable but the
    /// quality score is).
    QualityElastic {
        /// The interpolation parameters.
        inner: ElasticThreshold,
    },
}

impl DefenderPolicy {
    /// Tit-for-tat's soft offset above `Tth` (§VI-A: `Tth + 1%`).
    pub const TFT_SOFT_OFFSET: f64 = 0.01;
    /// Tit-for-tat's hard offset below `Tth` (§VI-A: `Tth − 3%`).
    pub const TFT_HARD_OFFSET: f64 = -0.03;

    /// Builds the paper's Tit-for-tat configuration around `tth` with
    /// calibration quality `baseline_quality` and redundancy `red`.
    ///
    /// # Panics
    /// Panics if the offsets leave `[0, 1]`.
    #[must_use]
    pub fn titfortat(tth: f64, baseline_quality: f64, red: f64) -> Self {
        let inner = TitForTat::new(
            (tth + Self::TFT_SOFT_OFFSET).min(1.0),
            tth + Self::TFT_HARD_OFFSET,
            baseline_quality,
            red,
        )
        .expect("paper offsets around a valid tth are valid");
        DefenderPolicy::TitForTat { inner }
    }

    /// Builds the paper's Elastic configuration around `tth` with response
    /// intensity `k`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range.
    #[must_use]
    pub fn elastic(tth: f64, k: f64) -> Self {
        let dynamics = CoupledDynamics::new(tth, k).expect("valid elastic parameters");
        DefenderPolicy::Elastic {
            current: dynamics.initial().trim,
            dynamics,
        }
    }

    /// Builds the Algorithm 2 quality-driven policy between `soft` and
    /// `hard` with intensity `k`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range.
    #[must_use]
    pub fn quality_elastic(soft: f64, hard: f64, k: f64) -> Self {
        let inner = ElasticThreshold::new(soft, hard, k).expect("valid elastic parameters");
        DefenderPolicy::QualityElastic { inner }
    }

    /// Human-readable scheme name (matches the paper's legend). Static
    /// variants borrow; only the `Elastic` family allocates (its name
    /// embeds `k`), so sweep hot loops that key on the name stay
    /// allocation-free for the common schemes.
    #[must_use]
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            DefenderPolicy::Ostrich => Cow::Borrowed("Ostrich"),
            DefenderPolicy::Fixed { .. } => Cow::Borrowed("Baseline"),
            DefenderPolicy::TitForTat { .. } => Cow::Borrowed("Titfortat"),
            DefenderPolicy::Elastic { dynamics, .. } => {
                Cow::Owned(format!("Elastic{}", dynamics.k))
            }
            DefenderPolicy::QualityElastic { inner } => Cow::Owned(format!("Elastic{}", inner.k)),
        }
    }

    /// Threshold percentile for the first round.
    #[must_use]
    pub fn initial_threshold(&self) -> f64 {
        match self {
            DefenderPolicy::Ostrich => 1.0,
            DefenderPolicy::Fixed { tth } => *tth,
            DefenderPolicy::TitForTat { inner } => inner.threshold(),
            DefenderPolicy::Elastic { current, .. } => *current,
            DefenderPolicy::QualityElastic { inner } => inner.threshold(0.0),
        }
    }

    /// Consumes last round's observation and returns this round's
    /// threshold percentile.
    pub fn next_threshold(&mut self, round: usize, obs: &DefenderObservation) -> f64 {
        match self {
            DefenderPolicy::Ostrich => 1.0,
            DefenderPolicy::Fixed { tth } => *tth,
            DefenderPolicy::TitForTat { inner } => inner.observe(round, obs.quality),
            DefenderPolicy::Elastic { dynamics, current } => {
                if let Some(a) = obs.injection_percentile {
                    *current = dynamics.tth + dynamics.k * (a - dynamics.tth - 0.01);
                }
                current.clamp(0.0, 1.0)
            }
            DefenderPolicy::QualityElastic { inner } => inner.threshold(1.0 - obs.quality),
        }
    }

    /// The round at which a trigger policy terminated cooperation, if it
    /// is a trigger policy and it fired.
    #[must_use]
    pub fn termination_round(&self) -> Option<usize> {
        match self {
            DefenderPolicy::TitForTat { inner } => inner.triggered_at(),
            _ => None,
        }
    }
}

/// Compatibility shim: every closed-roster scheme is a [`ThresholdPolicy`].
/// All variants are deterministic and never touch the defender sub-stream,
/// so trajectories through the trait layer are bit-identical to direct
/// enum dispatch.
impl ThresholdPolicy for DefenderPolicy {
    fn name(&self) -> Cow<'static, str> {
        DefenderPolicy::name(self)
    }

    fn initial_threshold(&mut self, _rng: &mut dyn RngCore) -> f64 {
        DefenderPolicy::initial_threshold(self)
    }

    fn next_threshold(
        &mut self,
        round: usize,
        obs: &DefenderObservation,
        _rng: &mut dyn RngCore,
    ) -> f64 {
        DefenderPolicy::next_threshold(self, round, obs)
    }

    fn termination_round(&self) -> Option<usize> {
        DefenderPolicy::termination_round(self)
    }
}

/// A mixed defender strategy: a weighted distribution over threshold
/// atoms, sampled independently each round from the engine's defender
/// sub-stream (§III-C2 made playable).
///
/// Against an adaptive evader a deterministic threshold is fully
/// exploitable — the attacker rides just below it every round.
/// Randomizing over a small support forces the attacker to trade survival
/// probability against injection height, which is exactly the randomized
/// prediction-game advantage the empirical equilibrium estimator in
/// `trimgame-bench` quantifies.
///
/// A single-atom `RandomizedDefender` consumes no randomness and is
/// trajectory-identical to the equivalent [`DefenderPolicy::Fixed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedDefender {
    support: MixedSupport,
}

impl RandomizedDefender {
    /// Builds the policy from threshold `atoms` (percentiles in `[0, 1]`)
    /// and their unnormalized `weights`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if an atom leaves `[0, 1]`
    /// or the weights are invalid (negative/NaN entries, zero total mass,
    /// ragged inputs) — see [`MixedSupport::new`].
    pub fn new(atoms: &[f64], weights: &[f64]) -> Result<Self, CoreError> {
        MixedSupport::new(atoms, weights).and_then(Self::from_support)
    }

    /// Wraps an already-validated support whose atoms are threshold
    /// percentiles.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if an atom leaves `[0, 1]`.
    pub fn from_support(support: MixedSupport) -> Result<Self, CoreError> {
        for &a in support.atoms() {
            if !(0.0..=1.0).contains(&a) {
                return Err(CoreError::InvalidParameter {
                    name: "atom",
                    constraint: "0 <= atom <= 1",
                    value: a,
                });
            }
        }
        Ok(Self { support })
    }

    /// The underlying atom distribution.
    #[must_use]
    pub fn support(&self) -> &MixedSupport {
        &self.support
    }
}

impl ThresholdPolicy for RandomizedDefender {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Randomized")
    }

    fn initial_threshold(&mut self, rng: &mut dyn RngCore) -> f64 {
        self.support.sample(rng)
    }

    fn next_threshold(
        &mut self,
        _round: usize,
        _obs: &DefenderObservation,
        rng: &mut dyn RngCore,
    ) -> f64 {
        self.support.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(quality: f64, inject: Option<f64>) -> DefenderObservation {
        DefenderObservation {
            quality,
            injection_percentile: inject,
        }
    }

    #[test]
    fn ostrich_never_trims() {
        let mut p = DefenderPolicy::Ostrich;
        assert_eq!(p.initial_threshold(), 1.0);
        assert_eq!(p.next_threshold(5, &obs(0.0, Some(0.99))), 1.0);
    }

    #[test]
    fn fixed_is_static() {
        let mut p = DefenderPolicy::Fixed { tth: 0.9 };
        assert_eq!(p.initial_threshold(), 0.9);
        for round in 1..5 {
            assert_eq!(p.next_threshold(round, &obs(0.1, None)), 0.9);
        }
    }

    #[test]
    fn titfortat_soft_then_hard() {
        let mut p = DefenderPolicy::titfortat(0.9, 0.95, 0.05);
        assert!((p.initial_threshold() - 0.91).abs() < 1e-12);
        // Good quality: stays soft.
        assert!((p.next_threshold(1, &obs(0.94, None)) - 0.91).abs() < 1e-12);
        // Trigger: drops to Tth - 3% and stays.
        assert!((p.next_threshold(2, &obs(0.80, None)) - 0.87).abs() < 1e-12);
        assert!((p.next_threshold(3, &obs(1.0, None)) - 0.87).abs() < 1e-12);
    }

    #[test]
    fn elastic_reacts_to_injection() {
        let mut p = DefenderPolicy::elastic(0.9, 0.5);
        // Initial trim Tth - 3%.
        assert!((p.initial_threshold() - 0.87).abs() < 1e-12);
        // Adversary injected at 0.91 -> T = 0.9 + 0.5*(0.91-0.9-0.01) = 0.9.
        let t = p.next_threshold(2, &obs(1.0, Some(0.91)));
        assert!((t - 0.9).abs() < 1e-12);
        // Adversary dove to 0.85 -> T = 0.9 + 0.5*(0.85-0.91) = 0.87.
        let t = p.next_threshold(3, &obs(1.0, Some(0.85)));
        assert!((t - 0.87).abs() < 1e-12);
    }

    #[test]
    fn elastic_without_observation_keeps_current() {
        let mut p = DefenderPolicy::elastic(0.9, 0.5);
        let t1 = p.next_threshold(2, &obs(1.0, None));
        assert!((t1 - 0.87).abs() < 1e-12);
    }

    #[test]
    fn names_match_legend() {
        assert_eq!(DefenderPolicy::Ostrich.name(), "Ostrich");
        assert_eq!(DefenderPolicy::Fixed { tth: 0.9 }.name(), "Baseline");
        assert_eq!(DefenderPolicy::titfortat(0.9, 1.0, 0.0).name(), "Titfortat");
        assert_eq!(DefenderPolicy::elastic(0.9, 0.5).name(), "Elastic0.5");
        assert_eq!(
            DefenderPolicy::quality_elastic(0.95, 0.85, 0.1).name(),
            "Elastic0.1"
        );
    }

    #[test]
    fn quality_elastic_follows_algorithm2() {
        let mut p = DefenderPolicy::quality_elastic(0.95, 0.85, 0.5);
        // Perfect quality: soft threshold, also the initial threshold.
        assert!((p.initial_threshold() - 0.95).abs() < 1e-12);
        assert!((p.next_threshold(2, &obs(1.0, None)) - 0.95).abs() < 1e-12);
        // Worst quality: k of the way toward hard.
        let t = p.next_threshold(3, &obs(0.0, None));
        assert!((t - 0.90).abs() < 1e-12, "threshold {t}");
        assert_eq!(p.termination_round(), None);
    }

    #[test]
    fn termination_round_reports_trigger() {
        let mut p = DefenderPolicy::titfortat(0.9, 0.95, 0.01);
        assert_eq!(p.termination_round(), None);
        let _ = p.next_threshold(2, &obs(0.5, None));
        assert_eq!(p.termination_round(), Some(2));
    }

    #[test]
    fn trait_shim_matches_enum_dispatch() {
        use trimgame_numerics::rand_ext::seeded_rng;
        let mut direct = DefenderPolicy::elastic(0.9, 0.5);
        let mut boxed: Box<dyn ThresholdPolicy> = Box::new(DefenderPolicy::elastic(0.9, 0.5));
        let mut rng = seeded_rng(1);
        assert_eq!(
            boxed.initial_threshold(&mut rng),
            direct.initial_threshold()
        );
        for round in 2..6 {
            let o = obs(1.0, Some(0.9 + 0.001 * round as f64));
            assert_eq!(
                boxed.next_threshold(round, &o, &mut rng),
                direct.next_threshold(round, &o)
            );
        }
        assert_eq!(boxed.name(), direct.name());
        assert_eq!(boxed.termination_round(), None);
    }

    #[test]
    fn randomized_defender_validates_construction() {
        // Atom outside [0, 1].
        assert!(RandomizedDefender::new(&[1.2], &[1.0]).is_err());
        assert!(RandomizedDefender::new(&[-0.1], &[1.0]).is_err());
        // Invalid weights propagate from MixedSupport.
        assert!(RandomizedDefender::new(&[0.9, 0.95], &[1.0, -1.0]).is_err());
        assert!(RandomizedDefender::new(&[0.9], &[f64::NAN]).is_err());
        assert!(RandomizedDefender::new(&[0.9, 0.95], &[0.0, 0.0]).is_err());
        // Valid: non-unit sums renormalize.
        let d = RandomizedDefender::new(&[0.88, 0.96], &[3.0, 1.0]).unwrap();
        assert!((d.support().weights()[0] - 0.75).abs() < 1e-12);
        // from_support re-checks the percentile domain.
        let s = crate::space::MixedSupport::new(&[2.0], &[1.0]).unwrap();
        assert!(RandomizedDefender::from_support(s).is_err());
    }

    #[test]
    fn randomized_defender_samples_its_atoms() {
        use trimgame_numerics::rand_ext::seeded_rng;
        let mut d = RandomizedDefender::new(&[0.88, 0.96], &[0.5, 0.5]).unwrap();
        let mut rng = seeded_rng(5);
        let mut seen = std::collections::BTreeSet::new();
        let first = ThresholdPolicy::initial_threshold(&mut d, &mut rng);
        assert!(first == 0.88 || first == 0.96);
        for round in 2..200 {
            let t = d.next_threshold(round, &obs(1.0, None), &mut rng);
            assert!(t == 0.88 || t == 0.96);
            seen.insert(t.to_bits());
        }
        assert_eq!(seen.len(), 2, "both atoms should appear");
        assert_eq!(ThresholdPolicy::termination_round(&d), None);
        assert_eq!(ThresholdPolicy::name(&d), "Randomized");
    }
}
