//! Trigger-strategy variants — the paper's stated extension direction.
//!
//! "It should be noted that numerous variants of Tit-for-tat exist, such
//! as Tits-for-two-tats (ref. 2) and Generous Tit-for-tat (ref. 23). They can also
//! be adapted through Elastic strategies for repeated games with
//! uncertainty" (Section V). The paper defers them to future work; this
//! module implements the two cited variants, each with the same
//! quality-trigger interface as [`crate::titfortat::TitForTat`]:
//!
//! * [`TitForTwoTats`] — punish only after `tolerated + 1` *consecutive*
//!   defections (Axelrod's forgiving variant; robust to isolated noise
//!   spikes without a δ compromise).
//! * [`GenerousTitForTat`] — on each detected defection, forgive with
//!   probability `g` (Nowak–Sigmund). The generosity that maximizes
//!   long-run payoff under noise replaces Tit-for-tat's fixed redundancy
//!   margin with a randomized one.
//!
//! Both remain *rigid* in the paper's taxonomy (punishment, once
//! triggered, is permanent); the Elastic adaptation — a proportional
//! penalty instead of termination — is [`crate::elastic::ElasticThreshold`]
//! and composes with either detector via [`observe`](TriggerVariant::observe)'s
//! boolean defection signal.

use crate::error::CoreError;
use rand::Rng;

/// Common interface for trigger variants: feed per-round quality, get the
/// next threshold.
pub trait TriggerVariant {
    /// Observes round `round`'s quality score and returns the trimming
    /// percentile for the next round.
    fn observe(&mut self, round: usize, quality: f64) -> f64;

    /// The round at which punishment became permanent, if it has.
    fn triggered_at(&self) -> Option<usize>;

    /// Current threshold without new information.
    fn threshold(&self) -> f64;
}

/// Punish only after more than `tolerated` consecutive defections.
#[derive(Debug, Clone, PartialEq)]
pub struct TitForTwoTats {
    soft: f64,
    hard: f64,
    baseline_quality: f64,
    red: f64,
    /// Consecutive defections tolerated before triggering (1 = the classic
    /// "two tats").
    tolerated: usize,
    consecutive: usize,
    triggered_at: Option<usize>,
}

impl TitForTwoTats {
    /// Creates the policy; `tolerated = 1` is the classic variant.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 <= hard < soft <= 1` and `red >= 0`.
    pub fn new(
        soft: f64,
        hard: f64,
        baseline_quality: f64,
        red: f64,
        tolerated: usize,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&soft) || !(0.0..=1.0).contains(&hard) || hard >= soft {
            return Err(CoreError::InvalidParameter {
                name: "soft/hard",
                constraint: "0 <= hard < soft <= 1",
                value: soft,
            });
        }
        if red < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "red",
                constraint: "red >= 0",
                value: red,
            });
        }
        Ok(Self {
            soft,
            hard,
            baseline_quality,
            red,
            tolerated,
            consecutive: 0,
            triggered_at: None,
        })
    }
}

impl TriggerVariant for TitForTwoTats {
    fn observe(&mut self, round: usize, quality: f64) -> f64 {
        if self.triggered_at.is_none() {
            if quality < self.baseline_quality - self.red {
                self.consecutive += 1;
                if self.consecutive > self.tolerated {
                    self.triggered_at = Some(round);
                }
            } else {
                self.consecutive = 0;
            }
        }
        self.threshold()
    }

    fn triggered_at(&self) -> Option<usize> {
        self.triggered_at
    }

    fn threshold(&self) -> f64 {
        if self.triggered_at.is_some() {
            self.hard
        } else {
            self.soft
        }
    }
}

/// Forgive each detected defection with probability `g`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerousTitForTat {
    soft: f64,
    hard: f64,
    baseline_quality: f64,
    red: f64,
    /// Forgiveness probability `g ∈ [0, 1]`.
    generosity: f64,
    triggered_at: Option<usize>,
}

impl GenerousTitForTat {
    /// Creates the policy.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 <= hard < soft <= 1`, `red >= 0` and `g ∈ [0, 1]`.
    pub fn new(
        soft: f64,
        hard: f64,
        baseline_quality: f64,
        red: f64,
        generosity: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&soft) || !(0.0..=1.0).contains(&hard) || hard >= soft {
            return Err(CoreError::InvalidParameter {
                name: "soft/hard",
                constraint: "0 <= hard < soft <= 1",
                value: soft,
            });
        }
        if red < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "red",
                constraint: "red >= 0",
                value: red,
            });
        }
        if !(0.0..=1.0).contains(&generosity) {
            return Err(CoreError::InvalidParameter {
                name: "generosity",
                constraint: "0 <= g <= 1",
                value: generosity,
            });
        }
        Ok(Self {
            soft,
            hard,
            baseline_quality,
            red,
            generosity,
            triggered_at: None,
        })
    }

    /// Observes with an explicit RNG (the forgiveness coin).
    pub fn observe_with<R: Rng + ?Sized>(
        &mut self,
        round: usize,
        quality: f64,
        rng: &mut R,
    ) -> f64 {
        if self.triggered_at.is_none()
            && quality < self.baseline_quality - self.red
            && rng.gen::<f64>() >= self.generosity
        {
            self.triggered_at = Some(round);
        }
        self.threshold()
    }

    /// The round at which punishment became permanent.
    #[must_use]
    pub fn triggered_at(&self) -> Option<usize> {
        self.triggered_at
    }

    /// Current threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        if self.triggered_at.is_some() {
            self.hard
        } else {
            self.soft
        }
    }

    /// Expected number of rounds until termination when each round
    /// independently looks like a defection with probability `q`:
    /// a geometric wait with success probability `q(1 − g)`.
    ///
    /// # Panics
    /// Panics unless `q ∈ (0, 1]`.
    #[must_use]
    pub fn expected_termination_round(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "q={q} must be in (0,1]");
        let eff = q * (1.0 - self.generosity);
        if eff <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / eff
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    #[test]
    fn two_tats_tolerates_isolated_defection() {
        let mut t = TitForTwoTats::new(0.91, 0.87, 1.0, 0.02, 1).unwrap();
        // Isolated bad round, then recovery: no trigger.
        assert_eq!(t.observe(1, 0.5), 0.91);
        assert_eq!(t.observe(2, 1.0), 0.91);
        assert_eq!(t.observe(3, 0.5), 0.91);
        assert_eq!(t.triggered_at(), None);
        // Round 3 was the first of two consecutive bad rounds; round 4 is
        // the second and triggers.
        assert_eq!(t.observe(4, 0.5), 0.87);
        assert_eq!(t.triggered_at(), Some(4));
        // Permanent.
        assert_eq!(t.observe(5, 1.0), 0.87);
    }

    #[test]
    fn two_tats_with_zero_tolerance_is_titfortat() {
        let mut variant = TitForTwoTats::new(0.91, 0.87, 1.0, 0.02, 0).unwrap();
        let mut classic = crate::titfortat::TitForTat::new(0.91, 0.87, 1.0, 0.02).unwrap();
        for (round, &q) in [1.0, 0.99, 0.5, 1.0].iter().enumerate() {
            assert_eq!(
                variant.observe(round + 1, q),
                classic.observe(round + 1, q),
                "divergence at round {}",
                round + 1
            );
        }
        assert_eq!(variant.triggered_at(), classic.triggered_at());
    }

    #[test]
    fn generous_never_triggers_at_full_generosity() {
        let mut g = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 1.0).unwrap();
        let mut rng = seeded_rng(1);
        for round in 1..=100 {
            assert_eq!(g.observe_with(round, 0.0, &mut rng), 0.91);
        }
        assert_eq!(g.triggered_at(), None);
    }

    #[test]
    fn generous_zero_is_strict() {
        let mut g = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 0.0).unwrap();
        let mut rng = seeded_rng(2);
        assert_eq!(g.observe_with(1, 0.5, &mut rng), 0.87);
        assert_eq!(g.triggered_at(), Some(1));
    }

    #[test]
    fn generosity_extends_cooperation_statistically() {
        // With per-round defection-looking probability ~1 (quality always
        // bad), the strict policy dies at round 1; g = 0.8 survives ~5
        // rounds on average.
        let reps = 200;
        let mut total = 0.0;
        for rep in 0..reps {
            let mut g = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 0.8).unwrap();
            let mut rng = seeded_rng(100 + rep);
            let mut terminated = 50;
            for round in 1..=50 {
                g.observe_with(round, 0.0, &mut rng);
                if g.triggered_at().is_some() {
                    terminated = round;
                    break;
                }
            }
            total += terminated as f64;
        }
        let avg = total / reps as f64;
        let expected = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 0.8)
            .unwrap()
            .expected_termination_round(1.0);
        assert!(
            (avg - expected).abs() < 1.0,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn expected_termination_round_formula() {
        let g = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 0.5).unwrap();
        assert!((g.expected_termination_round(0.1) - 20.0).abs() < 1e-12);
        let never = GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 1.0).unwrap();
        assert!(never.expected_termination_round(0.5).is_infinite());
    }

    #[test]
    fn construction_validation() {
        assert!(TitForTwoTats::new(0.87, 0.91, 1.0, 0.0, 1).is_err());
        assert!(TitForTwoTats::new(0.91, 0.87, 1.0, -0.1, 1).is_err());
        assert!(GenerousTitForTat::new(0.91, 0.87, 1.0, 0.0, 1.5).is_err());
        assert!(GenerousTitForTat::new(0.91, 0.87, 1.0, -0.1, 0.5).is_err());
    }

    #[test]
    fn trigger_variant_trait_object_usable() {
        let mut t: Box<dyn TriggerVariant> =
            Box::new(TitForTwoTats::new(0.91, 0.87, 1.0, 0.0, 1).unwrap());
        assert_eq!(t.threshold(), 0.91);
        let _ = t.observe(1, 0.5);
        assert_eq!(t.triggered_at(), None);
    }
}
