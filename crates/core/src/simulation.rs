//! The scalar collection-game simulator (Table III and the analytical
//! checks).
//!
//! Runs the full interactive loop of Fig. 3 on a 1-D value stream with the
//! correct information structure: in round `i` the defender moves on what
//! it saw in round `i − 1` (quality score, adversary position from the
//! public board) and the adversary moves on the defender's round `i − 1`
//! threshold — a complete-information sequential game.
//!
//! Roundwise utilities use the percentile-damage proxy: an adversary whose
//! surviving poison sits at percentile `a` gains
//! `(surviving poison fraction) · a`, and the collector loses that gain
//! plus the benign trim fraction (the overhead `T`). Cumulative series
//! feed the Section IV analytical checks in [`crate::lagrange`].

use crate::adversary::{AdversaryPolicy, AttackPolicy};
use crate::engine::{Engine, EngineOutcome, EngineRun, EngineScratch, RoundReport, Scenario};
use crate::lagrange::UtilityTrajectory;
use crate::strategy::{DefenderPolicy, ThresholdPolicy};
use rand::Rng;
use std::borrow::Cow;
use trimgame_datasets::poison::{InjectionPosition, PoisonSpec};
use trimgame_datasets::stream::RoundStream;
use trimgame_numerics::quantile::{ecdf, percentile_sorted, Interpolation};
use trimgame_numerics::rand_ext::seeded_rng;
use trimgame_numerics::stats::OnlineStats;
use trimgame_stream::round::RoundOutcome;
use trimgame_stream::trim::{trim, SketchThreshold, TrimOp, TrimScratch};

/// The six evaluation schemes of Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// No defense; adversary injects at the 99th percentile.
    Ostrich,
    /// Static threshold; adversary uniform in `[0.9, 1]`.
    Baseline09,
    /// Static threshold; ideal adversary at `Tth − 1%`.
    BaselineStatic,
    /// Algorithm 1 around `Tth`; compliant adversary at `Tth − 1%`.
    TitForTat,
    /// §VI-A coupled Elastic with response intensity `k`.
    Elastic(f64),
}

impl Scheme {
    /// The paper's scheme roster in Fig. 4–8 legend order.
    #[must_use]
    pub fn roster() -> Vec<Scheme> {
        vec![
            Scheme::Ostrich,
            Scheme::Baseline09,
            Scheme::BaselineStatic,
            Scheme::TitForTat,
            Scheme::Elastic(0.1),
            Scheme::Elastic(0.5),
        ]
    }

    /// Legend name. Static schemes borrow; only `Elastic` allocates (its
    /// name embeds `k`), so sweep aggregation keys stay allocation-free
    /// for the common schemes.
    #[must_use]
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            Scheme::Ostrich => Cow::Borrowed("Ostrich"),
            Scheme::Baseline09 => Cow::Borrowed("Baseline0.9"),
            Scheme::BaselineStatic => Cow::Borrowed("Baselinestatic"),
            Scheme::TitForTat => Cow::Borrowed("Titfortat"),
            Scheme::Elastic(k) => Cow::Owned(format!("Elastic{k}")),
        }
    }

    /// The defender policy for this scheme around nominal threshold `tth`.
    #[must_use]
    pub fn defender(&self, tth: f64, baseline_quality: f64, red: f64) -> DefenderPolicy {
        match self {
            Scheme::Ostrich => DefenderPolicy::Ostrich,
            Scheme::Baseline09 | Scheme::BaselineStatic => DefenderPolicy::Fixed { tth },
            Scheme::TitForTat => DefenderPolicy::titfortat(tth, baseline_quality, red),
            Scheme::Elastic(k) => DefenderPolicy::elastic(tth, *k),
        }
    }

    /// The adversary paired with this scheme in the paper's experiments.
    #[must_use]
    pub fn adversary(&self, tth: f64) -> AdversaryPolicy {
        match self {
            Scheme::Ostrich => AdversaryPolicy::Fixed { percentile: 0.99 },
            Scheme::Baseline09 => AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 },
            Scheme::BaselineStatic => AdversaryPolicy::JustBelowThreshold {
                offset: 0.01,
                fallback: tth - 0.01,
            },
            Scheme::TitForTat => AdversaryPolicy::compliant(tth),
            Scheme::Elastic(k) => AdversaryPolicy::elastic(tth, *k),
        }
    }
}

/// Configuration of one scalar game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Nominal trimming threshold `Tth`.
    pub tth: f64,
    /// Number of rounds.
    pub rounds: usize,
    /// Attack ratio (poison per benign).
    pub attack_ratio: f64,
    /// Benign batch size per round.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Tit-for-tat redundancy on the quality scale.
    pub red: f64,
    /// Optional override of the adversary (Table III's mixed attacker).
    pub adversary_override: Option<AdversaryPolicy>,
    /// Optional streaming threshold source: when set, the defender's cut
    /// value is resolved from a Greenwald–Khanna sketch of the clean pool
    /// (rank error ≤ ε) instead of the exact sorted reference — the
    /// sketch-native mode a collector under heavy traffic runs in. The
    /// adversary still positions against the *exact* reference quantiles
    /// (the public quality standard), so the sketch's rank-error band is
    /// pure evasion headroom for it; `None` (the default) keeps the exact
    /// path and every pre-existing trajectory bit-identical.
    pub sketch_epsilon: Option<f64>,
}

impl GameConfig {
    /// A reasonable default configuration for `scheme` on `Tth = 0.9`.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            tth: 0.9,
            rounds: 20,
            attack_ratio: 0.2,
            batch: 1000,
            seed: 42,
            red: 0.05,
            adversary_override: None,
            sketch_epsilon: None,
        }
    }
}

/// Result of a scalar game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameResult {
    /// Per-round outcomes with provenance.
    pub outcomes: Vec<RoundOutcome>,
    /// All retained values across rounds.
    pub retained: Vec<f64>,
    /// Cumulative utility trajectories (percentile-damage proxy).
    pub utilities: UtilityTrajectory,
    /// Round at which Tit-for-tat triggered, if it did.
    pub termination_round: Option<usize>,
    /// The defender's threshold sequence actually applied.
    pub thresholds: Vec<f64>,
    /// The adversary's injection percentile sequence.
    pub injections: Vec<f64>,
}

impl GameResult {
    /// Fraction of retained values that are poison, aggregated over all
    /// rounds (Table III's metric).
    #[must_use]
    pub fn surviving_poison_fraction(&self) -> f64 {
        let kept: usize = self.outcomes.iter().map(|o| o.kept.len()).sum();
        let poison: usize = self.outcomes.iter().map(|o| o.poison_survived).sum();
        if kept == 0 {
            0.0
        } else {
            poison as f64 / kept as f64
        }
    }

    /// Aggregate benign trim fraction (overhead).
    #[must_use]
    pub fn benign_trim_fraction(&self) -> f64 {
        let benign: usize = self
            .outcomes
            .iter()
            .map(|o| o.received - o.poison_received)
            .sum();
        let trimmed: usize = self.outcomes.iter().map(|o| o.benign_trimmed).sum();
        if benign == 0 {
            0.0
        } else {
            trimmed as f64 / benign as f64
        }
    }
}

/// Reusable per-round buffers of the scalar round step: the benign
/// sample, the combined benign+poison batch with provenance, and the trim
/// scratch. Cleared — never shrunk — between rounds and between runs.
#[derive(Debug, Clone, Default)]
pub struct ScalarBufs {
    benign: Vec<f64>,
    values: Vec<f64>,
    is_poison: Vec<bool>,
    trim: TrimScratch,
}

/// Everything a scalar game run needs that depends only on the *pool*:
/// the stream pool, its sorted reference quantile table, and the
/// per-round buffers. Build one per worker and reuse it across any
/// number of seeded runs ([`run_game_with_scratch`]) — the pool copy and
/// the `O(n log n)` sort are paid once instead of per run.
#[derive(Debug, Clone)]
pub struct ScalarArena {
    pool: Vec<f64>,
    sorted_pool: Vec<f64>,
    bufs: ScalarBufs,
}

impl ScalarArena {
    /// Builds the arena over `pool`.
    ///
    /// # Panics
    /// Panics if the pool is empty or contains NaN.
    #[must_use]
    pub fn new(pool: &[f64]) -> Self {
        assert!(!pool.is_empty(), "empty value pool");
        let mut sorted_pool = pool.to_vec();
        sorted_pool.sort_by(|a, b| a.partial_cmp(b).expect("NaN in pool"));
        Self {
            pool: pool.to_vec(),
            sorted_pool,
            bufs: ScalarBufs::default(),
        }
    }

    /// The backing pool, in arrival order.
    #[must_use]
    pub fn pool(&self) -> &[f64] {
        &self.pool
    }

    /// The sorted reference quantile table.
    #[must_use]
    pub fn sorted_pool(&self) -> &[f64] {
        &self.sorted_pool
    }
}

/// The pool-independent parameters of one scalar game run.
#[derive(Debug, Clone, Copy)]
struct ScalarParams {
    attack_ratio: f64,
    ref_value: f64,
    expected_tail: f64,
    batch: usize,
}

impl ScalarParams {
    fn new(sorted_pool: &[f64], config: &GameConfig) -> Self {
        assert!(config.batch > 0, "batch size must be positive");
        // Quality standard: excess mass above the Tth reference value.
        let ref_value = percentile_sorted(
            sorted_pool,
            config.tth.clamp(0.0, 1.0),
            Interpolation::Linear,
        );
        Self {
            attack_ratio: config.attack_ratio,
            ref_value,
            expected_tail: 1.0 - config.tth,
            batch: config.batch,
        }
    }
}

/// One scalar round, shared verbatim by the owned [`ScalarScenario`] and
/// the arena-backed cell of [`run_game_with_scratch`]: benign sample
/// (draws identical to `RoundStream::next_round`), poison injection at
/// the reference value of the injection percentile, quality scoring,
/// in-place trim at the cut, payoff accounting. The kept values/mask are
/// left in `bufs.trim` for callers that record them.
#[allow(clippy::too_many_arguments)]
fn scalar_round<R: Rng + ?Sized>(
    pool: &[f64],
    sorted_pool: &[f64],
    sketch: Option<&SketchThreshold>,
    params: &ScalarParams,
    bufs: &mut ScalarBufs,
    threshold: f64,
    injection: f64,
    rng: &mut R,
) -> RoundReport {
    let ref_at = |p: f64| percentile_sorted(sorted_pool, p.clamp(0.0, 1.0), Interpolation::Linear);
    bufs.benign.clear();
    bufs.benign.reserve(params.batch);
    for _ in 0..params.batch {
        bufs.benign.push(pool[rng.gen_range(0..pool.len())]);
    }
    let spec = PoisonSpec::new(
        params.attack_ratio,
        InjectionPosition::Value(ref_at(injection)),
    );
    spec.inject_into(&bufs.benign, rng, &mut bufs.values, &mut bufs.is_poison);
    let above = 1.0 - ecdf(&bufs.values, params.ref_value);
    let quality = 1.0 - (above - params.expected_tail).max(0.0);
    // The defender's cut value: the GK sketch answer when the
    // sketch-native mode is on, the exact reference quantile otherwise.
    let cut = match sketch {
        Some(source) => source
            .cut(threshold.clamp(0.0, 1.0))
            .expect("sketch observed the pool at construction"),
        None => ref_at(threshold),
    };
    let stats = TrimOp::Absolute(cut).apply_in_place(&bufs.values, &mut bufs.trim);

    let mut poison_received = 0;
    let mut poison_survived = 0;
    let mut benign_trimmed = 0;
    for (idx, &is_poison) in bufs.is_poison.iter().enumerate() {
        let kept = bufs.trim.kept_mask()[idx];
        if is_poison {
            poison_received += 1;
            if kept {
                poison_survived += 1;
            }
        } else if !kept {
            benign_trimmed += 1;
        }
    }

    // Percentile-damage utility proxy.
    let batch_len = bufs.values.len().max(1);
    let g_a = poison_survived as f64 / batch_len as f64 * injection.clamp(0.0, 1.0);
    let overhead = benign_trimmed as f64 / batch_len as f64;

    let mut retained_stats = OnlineStats::new();
    retained_stats.extend(bufs.trim.kept());

    RoundReport {
        quality,
        received: bufs.values.len(),
        trimmed: stats.trimmed,
        poison_received,
        poison_survived,
        benign_trimmed,
        gain_adversary: g_a,
        overhead,
        observed_injection: Some(injection),
        threshold_value: stats.threshold_value,
        retained: retained_stats,
    }
}

/// Builds the GK sketch threshold source when the sketch-native mode is
/// requested.
fn sketch_source(pool: &[f64], config: &GameConfig) -> Option<SketchThreshold> {
    config.sketch_epsilon.map(|eps| {
        let mut source = SketchThreshold::new(eps);
        source.observe(pool);
        source
    })
}

/// The scalar value-stream workload as an
/// [`engine::Scenario`](crate::engine::Scenario).
///
/// Positions — the defender's threshold and the adversary's injection —
/// live in *reference percentile space*: the clean pool's quantile
/// function maps them to values. This is the paper's abstract game
/// `(x_c, x_a) ∈ [x_L, x_R]²` made concrete, and it is also what a real
/// collector does: the trimming threshold comes from the publicly
/// recognized quality standard (clean history), not from the current,
/// possibly contaminated batch — otherwise a colluding point mass could
/// drag the batch percentile onto itself and ride out any cut.
///
/// This owned form carries its own [`ScalarArena`]; sweeps and payoff
/// grids that play many runs per pool reuse one arena through
/// [`run_game_with_scratch`] instead.
#[derive(Debug, Clone)]
pub struct ScalarScenario {
    arena: ScalarArena,
    params: ScalarParams,
    record_kept: bool,
    /// GK summary of the clean pool when `GameConfig::sketch_epsilon` is
    /// set: the defender's cut resolves from it instead of the exact
    /// quantile table.
    sketch: Option<SketchThreshold>,
    /// Per-round outcomes with provenance (empty in lean mode).
    pub outcomes: Vec<RoundOutcome>,
    /// All retained values across rounds (empty in lean mode).
    pub retained: Vec<f64>,
}

impl ScalarScenario {
    /// Builds the scenario over `pool` with full per-round recording.
    ///
    /// # Panics
    /// Panics if the pool is empty or contains NaN.
    #[must_use]
    pub fn new(pool: &[f64], config: &GameConfig) -> Self {
        Self::build(pool, config, true)
    }

    /// Builds the scenario without retaining per-round kept values — the
    /// lean mode for large sweeps, where only the engine's aggregate
    /// totals and utility trajectories are needed.
    ///
    /// # Panics
    /// Panics if the pool is empty or contains NaN.
    #[must_use]
    pub fn lean(pool: &[f64], config: &GameConfig) -> Self {
        Self::build(pool, config, false)
    }

    fn build(pool: &[f64], config: &GameConfig, record_kept: bool) -> Self {
        let arena = ScalarArena::new(pool);
        let params = ScalarParams::new(&arena.sorted_pool, config);
        let sketch = sketch_source(pool, config);
        Self {
            arena,
            params,
            record_kept,
            sketch,
            outcomes: Vec::new(),
            retained: Vec::new(),
        }
    }
}

impl Scenario for ScalarScenario {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        let ScalarArena {
            pool,
            sorted_pool,
            bufs,
        } = &mut self.arena;
        let report = scalar_round(
            pool,
            sorted_pool,
            self.sketch.as_ref(),
            &self.params,
            bufs,
            threshold,
            injection,
            rng,
        );
        if self.record_kept {
            self.retained.extend_from_slice(bufs.trim.kept());
            self.outcomes.push(RoundOutcome {
                round,
                threshold_percentile: threshold,
                received: report.received,
                poison_received: report.poison_received,
                poison_survived: report.poison_survived,
                benign_trimmed: report.benign_trimmed,
                kept: bufs.trim.kept().to_vec(),
                quality: report.quality,
            });
        }
        report
    }
}

/// The arena-backed scalar cell: one seeded run borrowing a worker's
/// [`ScalarArena`], so back-to-back runs share every buffer and the
/// sorted reference table.
#[derive(Debug)]
struct ScalarCell<'a> {
    arena: &'a mut ScalarArena,
    params: ScalarParams,
    sketch: Option<SketchThreshold>,
}

impl<'a> ScalarCell<'a> {
    fn new(arena: &'a mut ScalarArena, config: &GameConfig) -> Self {
        let params = ScalarParams::new(&arena.sorted_pool, config);
        let sketch = sketch_source(&arena.pool, config);
        Self {
            arena,
            params,
            sketch,
        }
    }
}

impl Scenario for ScalarCell<'_> {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        _round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        let ScalarArena {
            pool,
            sorted_pool,
            bufs,
        } = &mut *self.arena;
        scalar_round(
            pool,
            sorted_pool,
            self.sketch.as_ref(),
            &self.params,
            bufs,
            threshold,
            injection,
            rng,
        )
    }
}

/// Drives one scalar game through the unified engine and returns the raw
/// [`EngineOutcome`] — the lean entry point for sweeps and custom
/// aggregation. Set `record_kept` to also keep per-round retained values
/// in the scenario.
///
/// # Panics
/// Panics if the pool is empty or the configuration is degenerate.
#[must_use]
pub fn run_game_engine(
    pool: &[f64],
    config: &GameConfig,
    record_kept: bool,
) -> EngineOutcome<ScalarScenario> {
    let baseline_quality = 1.0; // clean batches carry no excess tail mass
    let defender = config
        .scheme
        .defender(config.tth, baseline_quality, config.red);
    let adversary = config
        .adversary_override
        .clone()
        .unwrap_or_else(|| config.scheme.adversary(config.tth));
    run_game_with_policies(
        pool,
        config,
        Box::new(defender),
        Box::new(adversary),
        None,
        record_kept,
    )
}

/// The stream index the scalar game derives its defender policy sub-seed
/// from: `policy_seed = derive_seed(config.seed, POLICY_SEED_STREAM)`.
/// Deterministic policies never read the sub-stream, so this only matters
/// for randomized defenders — it gives them seed-varying draws across
/// repetitions while keeping every pre-existing fixed-seed trajectory
/// bit-identical.
pub const POLICY_SEED_STREAM: u64 = 0x504F_4C49_4359; // "POLICY"

/// Drives one scalar game through the unified engine with arbitrary boxed
/// policies — the entry point for [`crate::strategy::RandomizedDefender`],
/// [`crate::adversary::AdaptiveAttacker`] and downstream custom
/// strategies. Pass `board` to share a
/// [`PublicBoard`](trimgame_stream::board::PublicBoard) the attacker
/// already holds a clone of. The defender sub-stream is seeded from
/// `config.seed` via [`POLICY_SEED_STREAM`].
///
/// # Panics
/// Panics if the pool is empty or the configuration is degenerate.
#[must_use]
pub fn run_game_with_policies(
    pool: &[f64],
    config: &GameConfig,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
    record_kept: bool,
) -> EngineOutcome<ScalarScenario> {
    assert!(config.rounds > 0, "need at least one round");
    let mut rng = seeded_rng(config.seed);
    let scenario = if record_kept {
        ScalarScenario::new(pool, config)
    } else {
        ScalarScenario::lean(pool, config)
    };
    let mut engine = Engine::with_policies(scenario, defender, adversary).with_policy_seed(
        trimgame_numerics::rand_ext::derive_seed(config.seed, POLICY_SEED_STREAM),
    );
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run(config.rounds, &mut rng)
}

/// The allocation-free scalar run: one seeded game over the
/// worker-owned [`ScalarArena`] (pool tables + round buffers, built once
/// per worker) recording into the reusable [`EngineScratch`]. Trajectory
/// finals, totals and termination are bit-identical to
/// [`run_game_with_policies`] in lean mode — the payoff-grid cell path
/// of the equilibrium estimator.
///
/// # Panics
/// Panics if the configuration is degenerate.
#[must_use]
pub fn run_game_with_scratch(
    config: &GameConfig,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
    arena: &mut ScalarArena,
    scratch: &mut EngineScratch,
) -> EngineRun {
    assert!(config.rounds > 0, "need at least one round");
    let mut rng = seeded_rng(config.seed);
    let cell = ScalarCell::new(arena, config);
    let mut engine = Engine::with_policies(cell, defender, adversary).with_policy_seed(
        trimgame_numerics::rand_ext::derive_seed(config.seed, POLICY_SEED_STREAM),
    );
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run_with_scratch(config.rounds, &mut rng, scratch)
}

/// Runs one scalar collection game over `pool` (see [`ScalarScenario`]
/// for the game's concrete position semantics).
///
/// # Panics
/// Panics if the pool is empty or the configuration is degenerate.
#[must_use]
pub fn run_game(pool: &[f64], config: &GameConfig) -> GameResult {
    let out = run_game_engine(pool, config, true);
    GameResult {
        outcomes: out.scenario.outcomes,
        retained: out.scenario.retained,
        utilities: out.utilities,
        termination_round: out.termination_round,
        thresholds: out.thresholds,
        injections: out.injections,
    }
}

/// Table III's trimmed mean over repetitions: runs the game `reps` times
/// with derived seeds and returns the average surviving poison fraction
/// and the average termination round (non-terminating runs count as
/// `rounds + 1`, mirroring the paper's averages exceeding `Round_no`).
#[must_use]
pub fn averaged_game(pool: &[f64], config: &GameConfig, reps: usize) -> (f64, f64) {
    assert!(reps > 0, "need at least one repetition");
    let mut poison_total = 0.0;
    let mut term_total = 0.0;
    for rep in 0..reps {
        let mut cfg = config.clone();
        cfg.seed = trimgame_numerics::rand_ext::derive_seed(config.seed, rep as u64);
        let result = run_game(pool, &cfg);
        poison_total += result.surviving_poison_fraction();
        term_total += result
            .termination_round
            .map_or((config.rounds + 1) as f64, |r| r as f64);
    }
    (poison_total / reps as f64, term_total / reps as f64)
}

/// Removes values above the `p`-percentile of a batch — convenience used
/// by downstream consumers that only need one-shot trimming semantics
/// identical to the game's.
#[must_use]
pub fn oneshot_trim(values: &[f64], p: f64) -> Vec<f64> {
    trim(values, TrimOp::UpperPercentile(p)).kept
}

/// One row of the Table III study at mix probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The adversary's probability of the 99th-percentile position.
    pub p: f64,
    /// Average Tit-for-tat termination round (sentinel `rounds + 5` when
    /// no termination occurred, matching the paper's 25 at `Round_no=20`).
    pub avg_termination: f64,
    /// Surviving poison fraction of retained data under Tit-for-tat.
    pub titfortat_fraction: f64,
    /// Surviving poison fraction under Elastic.
    pub elastic_fraction: f64,
}

/// The §VI-D non-equilibrium protocol (Table III): the adversary mixes a
/// defecting position — the 99th percentile — with probability `p` against
/// an evasive (equilibrium) position just below the responsive cut with
/// probability `1 − p`; Tit-for-tat trims softly at `Tth + 1%` until the
/// estimated poison share of the reference tail exceeds `1 − p + 0.05` (a
/// 5% redundancy), then permanently shifts to the `Tth` percentile;
/// Elastic runs the coupled rule with `k`.
///
/// All positions are reference-percentile positions. The paper places the
/// evasive mass "at the 90th percentile"; under batch-percentile trimming
/// a point mass at the threshold percentile rides the cut and survives,
/// so in reference space the operationally equivalent evasive position is
/// just *below* the responsive cut (`Tth − 2%`). Batches are small
/// (Control-scale: 30 rows/round), which is what gives the paper's
/// trigger statistics their variance.
///
/// # Panics
/// Panics on an empty pool or `reps == 0`.
#[must_use]
pub fn run_table3_point(pool: &[f64], p: f64, k: f64, reps: usize, master_seed: u64) -> Table3Row {
    assert!(!pool.is_empty(), "empty value pool");
    assert!(reps > 0, "need at least one repetition");
    let tth = 0.9;
    let rounds = 20;
    let batch = 30;
    let ratio = 0.2;
    let lo_position = tth - 0.02;
    let sentinel = (rounds + 5) as f64;

    let mut sorted_pool = pool.to_vec();
    sorted_pool.sort_by(|a, b| a.partial_cmp(b).expect("NaN in pool"));
    let ref_at = |q: f64| {
        trimgame_numerics::quantile::percentile_sorted(
            &sorted_pool,
            q.clamp(0.0, 1.0),
            Interpolation::Linear,
        )
    };
    let ref_value = ref_at(tth);
    let expected_tail = 1.0 - tth;

    let mut term_total = 0.0;
    let mut tft_fraction_total = 0.0;
    let mut ela_fraction_total = 0.0;

    for rep in 0..reps {
        let seed = trimgame_numerics::rand_ext::derive_seed(master_seed, rep as u64);
        let mut rng = seeded_rng(seed);
        let mut stream = RoundStream::new(pool.to_vec(), batch);

        // Pre-draw the adversary's per-round positions so Tit-for-tat and
        // Elastic face the *same* attack sequence.
        let positions: Vec<f64> = (0..rounds)
            .map(|_| {
                if rng.gen::<f64>() < p {
                    0.99
                } else {
                    lo_position
                }
            })
            .collect();
        let benign_rounds: Vec<Vec<f64>> =
            (0..rounds).map(|_| stream.next_round(&mut rng)).collect();

        // --- Tit-for-tat ---
        let mut triggered: Option<usize> = None;
        let mut tft_kept = 0usize;
        let mut tft_poison = 0usize;
        for (i, benign) in benign_rounds.iter().enumerate() {
            let threshold = if triggered.is_some() { tth } else { tth + 0.01 };
            let spec = PoisonSpec::new(ratio, InjectionPosition::Value(ref_at(positions[i])));
            let batch_v = spec.inject(benign, &mut rng);
            let cut = ref_at(threshold);
            let outcome = trim(&batch_v.values, TrimOp::Absolute(cut));
            for (j, &is_p) in batch_v.is_poison.iter().enumerate() {
                if outcome.kept_mask[j] {
                    tft_kept += 1;
                    if is_p {
                        tft_poison += 1;
                    }
                }
            }
            // Estimated poison share of the reference tail.
            let above = 1.0 - ecdf(&batch_v.values, ref_value);
            let excess = (above - expected_tail).max(0.0);
            let share = if above > 0.0 { excess / above } else { 0.0 };
            if triggered.is_none() && share > (1.0 - p) + 0.05 {
                triggered = Some(i + 1);
            }
        }
        term_total += triggered.map_or(sentinel, |r| r as f64);
        tft_fraction_total += if tft_kept > 0 {
            tft_poison as f64 / tft_kept as f64
        } else {
            0.0
        };

        // --- Elastic (coupled rule, same attack sequence) ---
        let dynamics = crate::elastic::CoupledDynamics::new(tth, k).expect("valid k");
        let mut ela_threshold = dynamics.initial().trim;
        let mut ela_kept = 0usize;
        let mut ela_poison = 0usize;
        for (i, benign) in benign_rounds.iter().enumerate() {
            let spec = PoisonSpec::new(ratio, InjectionPosition::Value(ref_at(positions[i])));
            let batch_v = spec.inject(benign, &mut rng);
            let outcome = trim(&batch_v.values, TrimOp::Absolute(ref_at(ela_threshold)));
            for (j, &is_p) in batch_v.is_poison.iter().enumerate() {
                if outcome.kept_mask[j] {
                    ela_kept += 1;
                    if is_p {
                        ela_poison += 1;
                    }
                }
            }
            // Coupled response to the observed injection position.
            ela_threshold = tth + k * (positions[i] - tth - 0.01);
        }
        ela_fraction_total += if ela_kept > 0 {
            ela_poison as f64 / ela_kept as f64
        } else {
            0.0
        };
    }

    Table3Row {
        p,
        avg_termination: term_total / reps as f64,
        titfortat_fraction: tft_fraction_total / reps as f64,
        elastic_fraction: ela_fraction_total / reps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<f64> {
        (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect()
    }

    #[test]
    fn roster_matches_legend() {
        let names: Vec<_> = Scheme::roster().iter().map(Scheme::name).collect();
        assert_eq!(
            names,
            vec![
                "Ostrich",
                "Baseline0.9",
                "Baselinestatic",
                "Titfortat",
                "Elastic0.1",
                "Elastic0.5"
            ]
        );
    }

    #[test]
    fn ostrich_keeps_all_poison() {
        let cfg = GameConfig::new(Scheme::Ostrich);
        let result = run_game(&pool(), &cfg);
        for o in &result.outcomes {
            assert_eq!(o.poison_survived, o.poison_received);
            assert_eq!(o.benign_trimmed, 0);
        }
        assert!(result.surviving_poison_fraction() > 0.15);
    }

    #[test]
    fn baseline_static_adversary_evades() {
        let cfg = GameConfig::new(Scheme::BaselineStatic);
        let result = run_game(&pool(), &cfg);
        // The ideal attacker at Tth − 1% keeps nearly all poison in play.
        assert!(
            result.surviving_poison_fraction() > 0.12,
            "fraction {}",
            result.surviving_poison_fraction()
        );
        // But the collector also pays overhead (benign tail above Tth).
        assert!(result.benign_trim_fraction() > 0.05);
    }

    #[test]
    fn elastic_drives_poison_low() {
        let cfg = GameConfig::new(Scheme::Elastic(0.5));
        let result = run_game(&pool(), &cfg);
        // The coupled dynamics converge: injections approach Tth - 4.33%.
        let last = *result.injections.last().unwrap();
        assert!(
            (last - (0.9 - 0.04333)).abs() < 0.01,
            "last injection {last}"
        );
        // Poison survives but at a low, harmless percentile.
        assert!(result.surviving_poison_fraction() > 0.0);
    }

    #[test]
    fn titfortat_triggers_under_heavy_attack() {
        let mut cfg = GameConfig::new(Scheme::TitForTat);
        // Mixed attacker defecting to the 99th percentile at high rate.
        cfg.adversary_override = Some(AdversaryPolicy::Mixed {
            p: 0.0,
            hi: 0.99,
            lo: 0.99,
        });
        cfg.attack_ratio = 0.4;
        cfg.red = 0.02;
        let result = run_game(&pool(), &cfg);
        assert!(
            result.termination_round.is_some(),
            "heavy defection should trigger"
        );
        // After the trigger, the threshold is the hard one.
        let trigger = result.termination_round.unwrap();
        for o in result.outcomes.iter().skip(trigger) {
            assert!((o.threshold_percentile - 0.87).abs() < 1e-9);
        }
    }

    #[test]
    fn titfortat_stays_soft_against_compliance() {
        let cfg = GameConfig::new(Scheme::TitForTat);
        let result = run_game(&pool(), &cfg);
        assert_eq!(result.termination_round, None);
        for o in &result.outcomes {
            assert!((o.threshold_percentile - 0.91).abs() < 1e-9);
        }
    }

    #[test]
    fn utilities_track_rounds() {
        let cfg = GameConfig::new(Scheme::Baseline09);
        let result = run_game(&pool(), &cfg);
        assert_eq!(result.utilities.rounds(), cfg.rounds);
        // Adversary utility is non-decreasing (gains are non-negative).
        let ua = &result.utilities.u_a;
        for w in ua.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Collector utility is non-increasing.
        let uc = &result.utilities.u_c;
        for w in uc.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GameConfig::new(Scheme::Elastic(0.1));
        let a = run_game(&pool(), &cfg);
        let b = run_game(&pool(), &cfg);
        assert_eq!(a.retained, b.retained);
        assert_eq!(a.thresholds, b.thresholds);
    }

    #[test]
    fn averaged_game_returns_means() {
        let mut cfg = GameConfig::new(Scheme::TitForTat);
        cfg.rounds = 5;
        cfg.batch = 200;
        let (poison, term) = averaged_game(&pool(), &cfg, 3);
        assert!((0.0..=1.0).contains(&poison));
        assert!((1.0..=6.0).contains(&term));
    }

    #[test]
    fn lean_engine_run_matches_recording_run() {
        // The sweep's lean mode must produce the same trajectories and
        // aggregate counts as the full recording mode, just without the
        // per-round kept payloads.
        let cfg = GameConfig::new(Scheme::Elastic(0.5));
        let full = run_game_engine(&pool(), &cfg, true);
        let lean = run_game_engine(&pool(), &cfg, false);
        assert_eq!(full.thresholds, lean.thresholds);
        assert_eq!(full.injections, lean.injections);
        assert_eq!(full.utilities.u_a, lean.utilities.u_a);
        assert_eq!(full.utilities.u_c, lean.utilities.u_c);
        assert_eq!(full.totals, lean.totals);
        assert!(lean.scenario.outcomes.is_empty());
        assert!(lean.scenario.retained.is_empty());
        // And the totals agree with the GameResult-level metrics.
        let result = run_game(&pool(), &cfg);
        assert!(
            (full.totals.surviving_poison_fraction() - result.surviving_poison_fraction()).abs()
                < 1e-12
        );
        assert!((full.totals.benign_trim_fraction() - result.benign_trim_fraction()).abs() < 1e-12);
        assert_eq!(full.board.len(), cfg.rounds);
    }

    #[test]
    fn scratch_cells_replay_the_boxed_path_bit_for_bit() {
        // One arena + one engine scratch across many heterogeneous cells:
        // every cell must reproduce the allocating entry point exactly,
        // with no state leaking between consecutive runs.
        let pool = pool();
        let mut arena = ScalarArena::new(&pool);
        let mut scratch = EngineScratch::new();
        for (tth, seed, rounds) in [(0.88, 1u64, 6), (0.92, 2, 9), (0.88, 1, 6), (0.96, 3, 4)] {
            let mut cfg = GameConfig::new(Scheme::BaselineStatic);
            cfg.tth = tth;
            cfg.seed = seed;
            cfg.rounds = rounds;
            cfg.batch = 300;
            let policies = || {
                (
                    Box::new(DefenderPolicy::Fixed { tth }) as Box<dyn ThresholdPolicy>,
                    Box::new(AdversaryPolicy::Uniform {
                        lo: tth - 0.05,
                        hi: 1.0,
                    }) as Box<dyn AttackPolicy>,
                )
            };
            let (d, a) = policies();
            let owned = run_game_with_policies(&pool, &cfg, d, a, None, false);
            let (d, a) = policies();
            let lean = run_game_with_scratch(&cfg, d, a, None, &mut arena, &mut scratch);
            assert_eq!(lean.totals, owned.totals, "tth={tth} seed={seed}");
            assert_eq!(Some(&lean.final_u_a), owned.utilities.u_a.last());
            assert_eq!(Some(&lean.final_u_c), owned.utilities.u_c.last());
            assert_eq!(lean.termination_round, owned.termination_round);
            assert_eq!(scratch.thresholds(), owned.thresholds.as_slice());
            assert_eq!(scratch.injections(), owned.injections.as_slice());
        }
    }

    #[test]
    fn oneshot_trim_matches_trim_op() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let kept = oneshot_trim(&values, 0.9);
        assert_eq!(kept.len(), 90);
    }

    #[test]
    fn boxed_policies_replay_the_enum_path_exactly() {
        // Routing the same enum policies through run_game_with_policies
        // must reproduce run_game_engine bit-for-bit (the shim contract).
        let cfg = GameConfig::new(Scheme::BaselineStatic);
        let via_enum = run_game_engine(&pool(), &cfg, false);
        let via_boxed = run_game_with_policies(
            &pool(),
            &cfg,
            Box::new(DefenderPolicy::Fixed { tth: cfg.tth }),
            Box::new(cfg.scheme.adversary(cfg.tth)),
            None,
            false,
        );
        assert_eq!(via_enum.thresholds, via_boxed.thresholds);
        assert_eq!(via_enum.injections, via_boxed.injections);
        assert_eq!(via_enum.utilities.u_a, via_boxed.utilities.u_a);
        assert_eq!(via_enum.totals, via_boxed.totals);
    }

    #[test]
    fn randomized_defender_plays_adaptive_attacker() {
        use crate::adversary::AdaptiveAttacker;
        use crate::strategy::RandomizedDefender;
        use trimgame_stream::board::PublicBoard;
        let mut cfg = GameConfig::new(Scheme::BaselineStatic);
        cfg.rounds = 30;
        let run_once = || {
            let board = PublicBoard::new();
            let attacker = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
            let defender = RandomizedDefender::new(&[0.86, 0.94], &[0.5, 0.5]).unwrap();
            run_game_with_policies(
                &pool(),
                &cfg,
                Box::new(defender),
                Box::new(attacker),
                Some(board),
                false,
            )
        };
        let out = run_once();
        // The defender mixed over its atoms...
        assert!(out.thresholds.iter().all(|&t| t == 0.86 || t == 0.94));
        assert!(out.thresholds.contains(&0.86));
        assert!(out.thresholds.contains(&0.94));
        // ...and the attacker converged onto best responses just below the
        // discovered atoms (after the fallback opener).
        for &inj in &out.injections[1..] {
            assert!(
                (inj - 0.85).abs() < 1e-9 || (inj - 0.93).abs() < 1e-9,
                "injection {inj}"
            );
        }
        // Deterministic replay under the same config seed.
        let again = run_once();
        assert_eq!(out.thresholds, again.thresholds);
        assert_eq!(out.injections, again.injections);
    }

    #[test]
    fn sketch_threshold_source_bounds_extra_evasion_by_epsilon() {
        // Sketch-native scenario wiring: with the cut resolved from a GK
        // summary (rank error <= eps) the adversary gains *at most* eps of
        // extra evasion headroom above the threshold percentile — and the
        // exact path grants none. Quantified by scanning attacker
        // positions upward from the threshold: a position survives iff its
        // exact reference value sits at or below the (sketch) cut.
        let pool = pool();
        let tth = 0.9;
        let eps = 0.02;
        let margin_of = |sketch_epsilon: Option<f64>| -> f64 {
            let mut extra: f64 = 0.0;
            let mut a = tth;
            while a <= tth + 2.5 * eps {
                let mut cfg = GameConfig::new(Scheme::BaselineStatic);
                cfg.rounds = 1;
                cfg.batch = 500;
                cfg.sketch_epsilon = sketch_epsilon;
                cfg.adversary_override = Some(AdversaryPolicy::Fixed { percentile: a });
                let out = run_game_engine(&pool, &cfg, false);
                if out.totals.poison_survived == out.totals.poison_received {
                    extra = extra.max(a - tth);
                }
                a += eps / 8.0;
            }
            extra
        };
        let exact_margin = margin_of(None);
        let sketch_margin = margin_of(Some(eps));
        // Exact cuts concede nothing beyond interpolation slack (one pool
        // grid step on a 1000-point reference is 1e-3).
        assert!(exact_margin <= 2e-3, "exact margin {exact_margin}");
        // The sketch concedes at most its certified rank-error band.
        assert!(
            sketch_margin <= eps + 2e-3,
            "sketch margin {sketch_margin} exceeds eps {eps}"
        );
        // And the sketch path is deterministic: same run, same totals.
        let mut cfg = GameConfig::new(Scheme::BaselineStatic);
        cfg.sketch_epsilon = Some(eps);
        let a = run_game_engine(&pool, &cfg, false).totals;
        let b = run_game_engine(&pool, &cfg, false).totals;
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_adversary_override_is_used() {
        let mut cfg = GameConfig::new(Scheme::TitForTat);
        cfg.adversary_override = Some(AdversaryPolicy::Mixed {
            p: 1.0,
            hi: 0.99,
            lo: 0.90,
        });
        let result = run_game(&pool(), &cfg);
        for &inj in &result.injections {
            assert_eq!(inj, 0.99);
        }
    }
}
