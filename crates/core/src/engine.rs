//! The unified simulation core: one generic engine for the Fig. 3 round
//! loop.
//!
//! The paper's evaluation plays the *same* interactive trimming game on
//! three very different substrates — scalar value streams (§VI-B),
//! feature-vector collection feeding k-means/SVM/SOM (§VI-C), and LDP
//! report streams (§VI-E). What varies is only the environment: how a
//! round's batch is materialized, how poison is injected, and how payoffs
//! are accounted. What never varies is the information structure of the
//! sequential game: in round `i` the defender moves on round `i − 1`'s
//! quality score and observed injection (via the public board), and the
//! adversary moves on round `i − 1`'s threshold.
//!
//! [`Scenario`] captures the varying part; [`Engine`] owns the invariant
//! part — policy plumbing, observation hand-off, public-board recording,
//! utility trajectories and aggregate counts. Adding a new workload is a
//! ~100-line `Scenario` impl, not a new simulator file.
//!
//! The engine preserves RNG call order exactly: threshold (no main-stream
//! draws), then the adversary's injection draw, then the scenario's
//! environment step — so re-expressing a simulator on the engine keeps
//! fixed-seed runs bit-identical.
//!
//! Policies enter through the object-safe
//! [`ThresholdPolicy`] / [`AttackPolicy`] traits. The closed
//! enum rosters ([`DefenderPolicy`]/[`AdversaryPolicy`]) implement them as
//! shims, so [`Engine::new`] keeps its historical signature; open-world
//! policies (randomized defenders, board-driven attackers) use
//! [`Engine::with_policies`]. Randomized *defender* policies draw from a
//! dedicated sub-stream seeded by [`Engine::with_policy_seed`] — never
//! from the main environment stream — so adding randomness to the
//! defender cannot perturb the benign draws, the adversary's mixing, or
//! any deterministic-policy replay.

use crate::adversary::{AdversaryObservation, AdversaryPolicy, AttackPolicy};
use crate::lagrange::UtilityTrajectory;
use crate::strategy::{DefenderObservation, DefenderPolicy, ThresholdPolicy};
use rand::Rng;
use trimgame_numerics::rand_ext::seeded_rng;
use trimgame_numerics::stats::OnlineStats;
use trimgame_stream::board::{PublicBoard, RoundRecord};

/// What one environment step reports back to the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// `Quality_Evaluation()` score of the received batch.
    pub quality: f64,
    /// Values received (benign + poison).
    pub received: usize,
    /// Values removed by trimming.
    pub trimmed: usize,
    /// Poison values received.
    pub poison_received: usize,
    /// Poison values that survived trimming.
    pub poison_survived: usize,
    /// Benign values falsely trimmed (the overhead).
    pub benign_trimmed: usize,
    /// The adversary's roundwise gain `g_a` (percentile-damage proxy).
    pub gain_adversary: f64,
    /// The collector's roundwise overhead beyond `g_a` (benign trim
    /// fraction); the collector's gain is `−g_a − overhead`.
    pub overhead: f64,
    /// The injection percentile as identifiable from the public record
    /// (fed to the defender's next observation), if any.
    pub observed_injection: Option<f64>,
    /// The absolute threshold value applied, if any.
    pub threshold_value: Option<f64>,
    /// Summary statistics of the retained values (for the public board).
    pub retained: OnlineStats,
}

impl RoundReport {
    /// An empty report for scenarios that fill fields incrementally.
    #[must_use]
    pub fn new() -> Self {
        Self {
            quality: 1.0,
            received: 0,
            trimmed: 0,
            poison_received: 0,
            poison_survived: 0,
            benign_trimmed: 0,
            gain_adversary: 0.0,
            overhead: 0.0,
            observed_injection: None,
            threshold_value: None,
            retained: OnlineStats::new(),
        }
    }
}

impl Default for RoundReport {
    fn default() -> Self {
        Self::new()
    }
}

/// The environment side of one workload: batch generation, poison
/// materialization, trimming and payoff accounting for a single round.
///
/// Implementations own their scenario state (streams, reference quantile
/// tables, retained payloads, trim scratch buffers) and are driven by the
/// [`Engine`], which owns the game-theoretic plumbing.
pub trait Scenario {
    /// Executes round `round`'s environment step: materialize the batch
    /// with poison at `injection`, apply the cut at percentile
    /// `threshold`, account payoffs, and report the round's bookkeeping.
    ///
    /// `injection` arrives exactly as the adversary policy produced it
    /// (unclamped); scenarios clamp or reinterpret as their substrate
    /// requires.
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport;
}

/// Aggregate counts over a full engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTotals {
    /// Values received across all rounds.
    pub received: usize,
    /// Values trimmed across all rounds.
    pub trimmed: usize,
    /// Poison received across all rounds.
    pub poison_received: usize,
    /// Poison that survived trimming.
    pub poison_survived: usize,
    /// Benign values falsely trimmed.
    pub benign_trimmed: usize,
}

impl EngineTotals {
    /// Fraction of retained values that are poison (Table III's metric).
    #[must_use]
    pub fn surviving_poison_fraction(&self) -> f64 {
        let kept = self.received - self.trimmed;
        if kept == 0 {
            0.0
        } else {
            self.poison_survived as f64 / kept as f64
        }
    }

    /// Aggregate benign trim fraction (overhead).
    #[must_use]
    pub fn benign_trim_fraction(&self) -> f64 {
        let benign = self.received - self.poison_received;
        if benign == 0 {
            0.0
        } else {
            self.benign_trimmed as f64 / benign as f64
        }
    }
}

/// Reusable trajectory buffers for [`Engine::run_with_scratch`]: the
/// per-round series a run records, recycled across runs so a sweep or
/// payoff-grid worker allocates them once instead of five vectors per
/// cell.
///
/// After a scratch run the buffers hold that run's series (read them via
/// the accessors); the next run clears and refills them, keeping the
/// capacity.
#[derive(Debug, Default)]
pub struct EngineScratch {
    thresholds: Vec<f64>,
    injections: Vec<f64>,
    qualities: Vec<f64>,
    gains_a: Vec<f64>,
    gains_c: Vec<f64>,
}

impl EngineScratch {
    /// Creates empty buffers (they grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The threshold percentile applied each round of the last run.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The adversary's injection percentile each round of the last run.
    #[must_use]
    pub fn injections(&self) -> &[f64] {
        &self.injections
    }

    /// The quality score of each round of the last run.
    #[must_use]
    pub fn qualities(&self) -> &[f64] {
        &self.qualities
    }

    /// Cumulative utility trajectories of the last run (allocates — the
    /// scratch keeps only roundwise gains).
    #[must_use]
    pub fn utilities(&self) -> UtilityTrajectory {
        UtilityTrajectory::from_roundwise(&self.gains_a, &self.gains_c)
    }

    fn reset(&mut self, rounds: usize) {
        for buf in [
            &mut self.thresholds,
            &mut self.injections,
            &mut self.qualities,
            &mut self.gains_a,
            &mut self.gains_c,
        ] {
            buf.clear();
            buf.reserve(rounds);
        }
    }
}

/// Aggregate result of a scratch-backed lean run ([`Engine::run_with_scratch`]):
/// everything a payoff-estimation cell needs, with no owned trajectories
/// — those stay in the [`EngineScratch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineRun {
    /// Aggregate counts.
    pub totals: EngineTotals,
    /// Final cumulative adversary utility (bit-identical to
    /// `utilities.u_a.last()` of [`Engine::run`]).
    pub final_u_a: f64,
    /// Final cumulative collector utility.
    pub final_u_c: f64,
    /// Round at which a trigger defender terminated cooperation, if any.
    pub termination_round: Option<usize>,
    /// Rounds played.
    pub rounds: usize,
}

/// One round's full outcome as produced by [`EngineStepper::step`]: the
/// decisions that were played and the scenario's report. The caller owns
/// recording — post [`EngineStep::to_record`] to whichever board (or
/// board shard) hosts the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStep {
    /// The 1-based round just played.
    pub round: usize,
    /// The threshold percentile the defender applied.
    pub threshold: f64,
    /// The adversary's injection percentile (as produced, unclamped).
    pub injection: f64,
    /// The scenario's bookkeeping for the round.
    pub report: RoundReport,
}

impl EngineStep {
    /// The collector's roundwise gain, `−g_a − overhead`.
    #[must_use]
    pub fn gain_collector(&self) -> f64 {
        -self.report.gain_adversary - self.report.overhead
    }

    /// The public-board record for this round (Fig. 3 steps ①/⑥).
    #[must_use]
    pub fn to_record(&self) -> RoundRecord {
        RoundRecord {
            round: self.round,
            threshold_percentile: self.threshold,
            threshold_value: self.report.threshold_value,
            received: self.report.received,
            trimmed: self.report.trimmed,
            retained: self.report.retained,
            quality: self.report.quality,
        }
    }
}

/// A `play_round`-level engine entry usable without the pull-based
/// driver: the Fig. 3 information structure, one round at a time.
///
/// [`Engine::run`] owns the whole loop — it decides when rounds happen
/// and where records go. A streaming collector service cannot hand over
/// that control: rounds fire when the ingest pipeline *seals a batch*,
/// and records route to a per-worker board shard. The stepper inverts
/// the control flow — each [`EngineStepper::step`] call plays exactly
/// one round (threshold from the policy sub-stream, injection from the
/// main stream, `Scenario::play_round` unchanged, bandit feedback,
/// utility/total accumulation) and hands the outcome back to the
/// caller, who records it wherever the deployment demands.
///
/// [`Engine::run`]/[`Engine::run_with_scratch`] are implemented *on*
/// this stepper, so the two paths cannot drift: a stepper driven `n`
/// times produces bit-identical trajectories to `Engine::run(n)` for
/// the same seeds.
#[derive(Debug)]
pub struct EngineStepper<S: Scenario> {
    scenario: S,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn AttackPolicy>,
    policy_rng: rand::rngs::StdRng,
    def_obs: Option<DefenderObservation>,
    adv_obs: AdversaryObservation,
    totals: EngineTotals,
    // Running cumulative utilities, summed in round order — the same
    // addition sequence as `UtilityTrajectory::from_roundwise`, so the
    // finals are bit-identical to the trajectory's last entries.
    cum_u_a: f64,
    cum_u_c: f64,
    round: usize,
}

impl<S: Scenario> EngineStepper<S> {
    /// Builds a stepper with the default policy-sub-stream seed (see
    /// [`Engine::DEFAULT_POLICY_SEED`] for the replay caveats).
    #[must_use]
    pub fn new(
        scenario: S,
        defender: Box<dyn ThresholdPolicy>,
        adversary: Box<dyn AttackPolicy>,
    ) -> Self {
        Self::with_policy_seed(
            scenario,
            defender,
            adversary,
            Engine::<S>::DEFAULT_POLICY_SEED,
        )
    }

    /// Builds a stepper whose defender draws from a dedicated sub-stream
    /// seeded with `policy_seed` — the stepper equivalent of
    /// [`Engine::with_policy_seed`].
    #[must_use]
    pub fn with_policy_seed(
        scenario: S,
        defender: Box<dyn ThresholdPolicy>,
        adversary: Box<dyn AttackPolicy>,
        policy_seed: u64,
    ) -> Self {
        Self {
            scenario,
            defender,
            adversary,
            policy_rng: seeded_rng(policy_seed),
            def_obs: None,
            adv_obs: AdversaryObservation {
                last_threshold: None,
            },
            totals: EngineTotals::default(),
            cum_u_a: 0.0,
            cum_u_c: 0.0,
            round: 0,
        }
    }

    /// Rounds played so far.
    #[must_use]
    pub fn rounds_played(&self) -> usize {
        self.round
    }

    /// Plays the next round: decisions from the previous round's
    /// information only, environment step on the caller's `rng`, bandit
    /// feedback, accumulation. The caller records the returned step.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EngineStep {
        let round = self.round + 1;
        self.round = round;
        // Decisions from *previous* round information only. The
        // defender draws (if at all) from its dedicated sub-stream;
        // the adversary draws from the main environment stream, in
        // the historical call order.
        let threshold = match &self.def_obs {
            None => self.defender.initial_threshold(&mut self.policy_rng),
            Some(obs) => self
                .defender
                .next_threshold(round, obs, &mut self.policy_rng),
        };
        let injection = {
            let mut main = &mut *rng;
            self.adversary.next_injection(&self.adv_obs, &mut main)
        };

        let report = self.scenario.play_round(round, threshold, injection, rng);

        // Bandit feedback: learning attackers (Exp3) update on the
        // realized roundwise gain; everyone else ignores the call.
        self.adversary.observe_payoff(round, report.gain_adversary);

        let gain_c = -report.gain_adversary - report.overhead;
        self.cum_u_a += report.gain_adversary;
        self.cum_u_c += gain_c;
        self.totals.received += report.received;
        self.totals.trimmed += report.trimmed;
        self.totals.poison_received += report.poison_received;
        self.totals.poison_survived += report.poison_survived;
        self.totals.benign_trimmed += report.benign_trimmed;

        self.def_obs = Some(DefenderObservation {
            quality: report.quality,
            injection_percentile: report.observed_injection,
        });
        self.adv_obs = AdversaryObservation {
            last_threshold: Some(threshold),
        };

        EngineStep {
            round,
            threshold,
            injection,
            report,
        }
    }

    /// The aggregate result so far, without consuming the stepper.
    #[must_use]
    pub fn summary(&self) -> EngineRun {
        EngineRun {
            totals: self.totals,
            final_u_a: self.cum_u_a,
            final_u_c: self.cum_u_c,
            termination_round: self.defender.termination_round(),
            rounds: self.round,
        }
    }

    /// Finishes the run, returning the aggregate result.
    #[must_use]
    pub fn finish(self) -> EngineRun {
        self.summary()
    }

    /// Finishes the run, handing back the aggregate result together
    /// with the scenario and both policies in their final states.
    #[allow(clippy::type_complexity)]
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        EngineRun,
        S,
        Box<dyn ThresholdPolicy>,
        Box<dyn AttackPolicy>,
    ) {
        let run = self.summary();
        (run, self.scenario, self.defender, self.adversary)
    }
}

/// Result of driving a [`Scenario`] through the round loop.
#[derive(Debug)]
pub struct EngineOutcome<S> {
    /// The scenario, with whatever payload it accumulated.
    pub scenario: S,
    /// The defender policy in its final state.
    pub defender: Box<dyn ThresholdPolicy>,
    /// The adversary policy in its final state.
    pub adversary: Box<dyn AttackPolicy>,
    /// The threshold percentile applied each round.
    pub thresholds: Vec<f64>,
    /// The adversary's injection percentile each round (as produced by the
    /// policy, unclamped).
    pub injections: Vec<f64>,
    /// The quality score of each round's received batch.
    pub qualities: Vec<f64>,
    /// Cumulative utility trajectories (percentile-damage proxy).
    pub utilities: UtilityTrajectory,
    /// Aggregate counts.
    pub totals: EngineTotals,
    /// Round at which a trigger defender terminated cooperation, if any.
    pub termination_round: Option<usize>,
    /// The public board with one record per round (Fig. 3 steps ①/⑥).
    pub board: PublicBoard,
}

/// The Fig. 3 round loop over any [`Scenario`].
#[derive(Debug)]
pub struct Engine<S: Scenario> {
    scenario: S,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn AttackPolicy>,
    board: PublicBoard,
    policy_seed: u64,
}

impl<S: Scenario> Engine<S> {
    /// Default seed of the defender policy sub-stream when
    /// [`Engine::with_policy_seed`] is not called. Deterministic policies
    /// never draw from the sub-stream, so this default only matters for
    /// randomized defenders — and for those, **every run sharing this
    /// default replays the identical threshold draws**, even across
    /// different main-stream seeds. Repetitions meant to be independent
    /// must derive a per-run policy seed (as `run_game_with_policies`,
    /// `collect_poisoned_with` and `run_ldp_collection_with` do from the
    /// game seed); the constant default exists so deterministic replays
    /// need no ceremony, not as a sampling scheme.
    pub const DEFAULT_POLICY_SEED: u64 = 0x5452_494D_5052_4E47; // "TRIMPRNG"

    /// Builds an engine from the scenario and the paper's closed-roster
    /// policies (the enum shims; see [`Engine::with_policies`] for the
    /// open trait-object form).
    #[must_use]
    pub fn new(scenario: S, defender: DefenderPolicy, adversary: AdversaryPolicy) -> Self {
        Self::with_policies(scenario, Box::new(defender), Box::new(adversary))
    }

    /// Builds an engine from arbitrary boxed policies — the entry point
    /// for randomized defenders, board-driven attackers, and downstream
    /// custom strategies.
    #[must_use]
    pub fn with_policies(
        scenario: S,
        defender: Box<dyn ThresholdPolicy>,
        adversary: Box<dyn AttackPolicy>,
    ) -> Self {
        Self {
            scenario,
            defender,
            adversary,
            board: PublicBoard::new(),
            policy_seed: Self::DEFAULT_POLICY_SEED,
        }
    }

    /// Shares an existing public board (e.g. one the adversary already
    /// holds a clone of) instead of creating a fresh one.
    #[must_use]
    pub fn with_board(mut self, board: PublicBoard) -> Self {
        self.board = board;
        self
    }

    /// Seeds the dedicated defender policy sub-stream. Derive this from
    /// the run's master seed (e.g. with
    /// [`trimgame_numerics::rand_ext::derive_seed`]) so randomized
    /// defenders vary across repetitions while deterministic replays stay
    /// untouched.
    #[must_use]
    pub fn with_policy_seed(mut self, seed: u64) -> Self {
        self.policy_seed = seed;
        self
    }

    /// Runs `rounds` rounds with the paper's information structure and
    /// returns the outcome. `rng` drives the adversary's mixed strategies
    /// and the scenario's environment; the caller seeds it. Randomized
    /// defender policies draw from the separate sub-stream seeded by
    /// [`Engine::with_policy_seed`].
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn run<R: Rng + ?Sized>(self, rounds: usize, rng: &mut R) -> EngineOutcome<S> {
        let mut scratch = EngineScratch::new();
        let (run, scenario, defender, adversary, board) = self.run_core(rounds, rng, &mut scratch);
        EngineOutcome {
            termination_round: run.termination_round,
            scenario,
            defender,
            adversary,
            utilities: UtilityTrajectory::from_roundwise(&scratch.gains_a, &scratch.gains_c),
            thresholds: scratch.thresholds,
            injections: scratch.injections,
            qualities: scratch.qualities,
            totals: run.totals,
            board,
        }
    }

    /// The allocation-free run entry point: identical round loop, RNG
    /// call order and arithmetic as [`Engine::run`], but every per-round
    /// series is recorded into the caller's reusable [`EngineScratch`]
    /// and only the aggregate [`EngineRun`] is returned. A worker playing
    /// hundreds of payoff-grid cells reuses one scratch (and one scenario
    /// arena) across all of them.
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn run_with_scratch<R: Rng + ?Sized>(
        self,
        rounds: usize,
        rng: &mut R,
        scratch: &mut EngineScratch,
    ) -> EngineRun {
        self.run_core(rounds, rng, scratch).0
    }

    /// The Fig. 3 round loop shared by both run entry points.
    #[allow(clippy::type_complexity)]
    fn run_core<R: Rng + ?Sized>(
        self,
        rounds: usize,
        rng: &mut R,
        scratch: &mut EngineScratch,
    ) -> (
        EngineRun,
        S,
        Box<dyn ThresholdPolicy>,
        Box<dyn AttackPolicy>,
        PublicBoard,
    ) {
        assert!(rounds > 0, "need at least one round");
        scratch.reset(rounds);
        let mut stepper = EngineStepper::with_policy_seed(
            self.scenario,
            self.defender,
            self.adversary,
            self.policy_seed,
        );
        for _ in 0..rounds {
            let step = stepper.step(rng);
            scratch.gains_a.push(step.report.gain_adversary);
            scratch.gains_c.push(step.gain_collector());
            self.board.post(step.to_record());
            scratch.thresholds.push(step.threshold);
            scratch.injections.push(step.injection);
            scratch.qualities.push(step.report.quality);
        }
        let (run, scenario, defender, adversary) = stepper.into_parts();
        (run, scenario, defender, adversary, self.board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    /// A deterministic toy scenario: "poison" is a fixed fraction of the
    /// batch placed at the injection percentile of 0..100; the cut keeps
    /// everything at or below the threshold percentile.
    struct ToyScenario {
        batch: usize,
        poison: usize,
    }

    impl Scenario for ToyScenario {
        fn play_round<R: Rng + ?Sized>(
            &mut self,
            _round: usize,
            threshold: f64,
            injection: f64,
            _rng: &mut R,
        ) -> RoundReport {
            let mut report = RoundReport::new();
            report.received = self.batch + self.poison;
            let survives = injection <= threshold;
            report.poison_received = self.poison;
            report.poison_survived = if survives { self.poison } else { 0 };
            report.trimmed = if survives { 0 } else { self.poison };
            report.gain_adversary = report.poison_survived as f64 / report.received as f64;
            report.observed_injection = Some(injection);
            report.quality = 1.0 - injection.max(0.0) * 0.01;
            report
        }
    }

    #[test]
    fn engine_runs_rounds_and_accumulates() {
        let engine = Engine::new(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            DefenderPolicy::Fixed { tth: 0.9 },
            AdversaryPolicy::Fixed { percentile: 0.95 },
        );
        let mut rng = seeded_rng(1);
        let out = engine.run(5, &mut rng);
        assert_eq!(out.thresholds, vec![0.9; 5]);
        assert_eq!(out.injections, vec![0.95; 5]);
        assert_eq!(out.totals.received, 500);
        assert_eq!(out.totals.poison_survived, 0);
        assert_eq!(out.totals.trimmed, 50);
        assert_eq!(out.utilities.rounds(), 5);
        assert_eq!(out.board.len(), 5);
        assert_eq!(out.termination_round, None);
    }

    #[test]
    fn adversary_sees_previous_threshold() {
        let engine = Engine::new(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            DefenderPolicy::Fixed { tth: 0.9 },
            AdversaryPolicy::JustBelowThreshold {
                offset: 0.01,
                fallback: 0.99,
            },
        );
        let mut rng = seeded_rng(2);
        let out = engine.run(3, &mut rng);
        // Round 1: fallback (no history); afterwards: just below 0.9.
        assert_eq!(out.injections[0], 0.99);
        assert!((out.injections[1] - 0.89).abs() < 1e-12);
        assert_eq!(out.totals.poison_survived, 20);
    }

    #[test]
    fn defender_sees_previous_quality() {
        // Tit-for-tat triggers off the quality the scenario reported for
        // the high injection, then stays hard.
        let engine = Engine::new(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            DefenderPolicy::titfortat(0.9, 1.0, 0.005),
            AdversaryPolicy::Fixed { percentile: 0.99 },
        );
        let mut rng = seeded_rng(3);
        let out = engine.run(4, &mut rng);
        assert_eq!(out.termination_round, Some(2));
        assert!((out.thresholds[0] - 0.91).abs() < 1e-12);
        assert!((out.thresholds[2] - 0.87).abs() < 1e-12);
    }

    #[test]
    fn totals_fractions_are_consistent() {
        let totals = EngineTotals {
            received: 200,
            trimmed: 50,
            poison_received: 40,
            poison_survived: 30,
            benign_trimmed: 40,
        };
        assert!((totals.surviving_poison_fraction() - 0.2).abs() < 1e-12);
        assert!((totals.benign_trim_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(EngineTotals::default().surviving_poison_fraction(), 0.0);
        assert_eq!(EngineTotals::default().benign_trim_fraction(), 0.0);
    }

    #[test]
    fn single_atom_randomized_matches_fixed() {
        use crate::strategy::RandomizedDefender;
        let make = || ToyScenario {
            batch: 90,
            poison: 10,
        };
        let fixed = Engine::new(
            make(),
            DefenderPolicy::Fixed { tth: 0.9 },
            AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 },
        )
        .run(8, &mut seeded_rng(9));
        let randomized = Engine::with_policies(
            make(),
            Box::new(RandomizedDefender::new(&[0.9], &[3.0]).unwrap()),
            Box::new(AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 }),
        )
        .with_policy_seed(777)
        .run(8, &mut seeded_rng(9));
        // The degenerate mixture consumes no randomness anywhere, so the
        // whole trajectory — including the adversary's main-stream draws —
        // is bit-identical to the deterministic policy's.
        assert_eq!(fixed.thresholds, randomized.thresholds);
        assert_eq!(fixed.injections, randomized.injections);
        assert_eq!(fixed.utilities.u_a, randomized.utilities.u_a);
        assert_eq!(fixed.totals, randomized.totals);
    }

    #[test]
    fn randomized_defender_draws_from_substream_only() {
        use crate::strategy::RandomizedDefender;
        let make = || ToyScenario {
            batch: 90,
            poison: 10,
        };
        let run_with_seed = |policy_seed: u64| {
            Engine::with_policies(
                make(),
                Box::new(RandomizedDefender::new(&[0.86, 0.94], &[0.5, 0.5]).unwrap()),
                Box::new(AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 }),
            )
            .with_policy_seed(policy_seed)
            .run(16, &mut seeded_rng(4))
        };
        let a = run_with_seed(1);
        let b = run_with_seed(2);
        // Different sub-streams change the threshold sequence...
        assert_ne!(a.thresholds, b.thresholds);
        // ...but never the main environment stream: the adversary's
        // injection draws are identical across policy seeds.
        assert_eq!(a.injections, b.injections);
        // And the same policy seed replays exactly.
        let c = run_with_seed(1);
        assert_eq!(a.thresholds, c.thresholds);
        assert!(a.thresholds.iter().all(|&t| t == 0.86 || t == 0.94));
    }

    #[test]
    fn adaptive_attacker_rides_engine_board() {
        use crate::adversary::AdaptiveAttacker;
        let board = PublicBoard::new();
        let attacker = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        let out = Engine::with_policies(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            Box::new(DefenderPolicy::Fixed { tth: 0.9 }),
            Box::new(attacker),
        )
        .with_board(board)
        .run(4, &mut seeded_rng(6));
        // Round 1: fallback above the cut (trimmed); afterwards: the board
        // reveals the fixed threshold and the attacker rides just below.
        assert_eq!(out.injections[0], 0.99);
        for &inj in &out.injections[1..] {
            assert!((inj - 0.89).abs() < 1e-12, "injection {inj}");
        }
        assert_eq!(out.totals.poison_survived, 30);
        assert_eq!(out.adversary.name(), "Adaptive");
    }

    #[test]
    fn exp3_attacker_learns_through_engine_feedback() {
        use crate::adversary::Exp3Attacker;
        // Fixed defender at 0.9: the 0.85 response survives every round
        // (positive realized gain), the 0.95 response is always trimmed.
        // The engine's observe_payoff feedback is the only signal Exp3
        // gets — concentration on 0.85 proves the loop is wired.
        let rounds = 300;
        let out = Engine::with_policies(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            Box::new(DefenderPolicy::Fixed { tth: 0.9 }),
            Box::new(Exp3Attacker::new(&[0.85, 0.95], rounds, 0.1, 42).unwrap()),
        )
        .run(rounds, &mut seeded_rng(8));
        let late = &out.injections[rounds - 100..];
        let hits = late.iter().filter(|&&x| x == 0.85).count();
        assert!(hits > 70, "late surviving-arm plays: {hits}/100");
        // Replays are exact: the attacker samples only its private stream.
        let again = Engine::with_policies(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            Box::new(DefenderPolicy::Fixed { tth: 0.9 }),
            Box::new(Exp3Attacker::new(&[0.85, 0.95], rounds, 0.1, 42).unwrap()),
        )
        .run(rounds, &mut seeded_rng(8));
        assert_eq!(out.injections, again.injections);
    }

    #[test]
    fn scratch_run_matches_owned_run_bit_for_bit() {
        let make = || {
            Engine::new(
                ToyScenario {
                    batch: 90,
                    poison: 10,
                },
                DefenderPolicy::titfortat(0.9, 1.0, 0.005),
                AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 },
            )
        };
        let owned = make().run(12, &mut seeded_rng(11));
        let mut scratch = EngineScratch::new();
        // Warm the scratch on an unrelated run, then reuse it — stale
        // contents must not leak into the next run.
        let _ = make().run_with_scratch(5, &mut seeded_rng(99), &mut scratch);
        let lean = make().run_with_scratch(12, &mut seeded_rng(11), &mut scratch);
        assert_eq!(lean.totals, owned.totals);
        assert_eq!(lean.termination_round, owned.termination_round);
        assert_eq!(lean.rounds, 12);
        assert_eq!(Some(&lean.final_u_a), owned.utilities.u_a.last());
        assert_eq!(Some(&lean.final_u_c), owned.utilities.u_c.last());
        assert_eq!(scratch.thresholds(), owned.thresholds.as_slice());
        assert_eq!(scratch.injections(), owned.injections.as_slice());
        assert_eq!(scratch.qualities(), owned.qualities.as_slice());
        assert_eq!(scratch.utilities().u_a, owned.utilities.u_a);
        assert_eq!(scratch.utilities().u_c, owned.utilities.u_c);
    }

    #[test]
    fn stepper_matches_engine_run_bit_for_bit() {
        // Drive the stepper by hand — posting records to our own board —
        // and the outcome must be indistinguishable from Engine::run:
        // same thresholds, injections, utilities, totals and board.
        let make_defender = || Box::new(DefenderPolicy::titfortat(0.9, 1.0, 0.005));
        let make_adversary = || Box::new(AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 });
        let make_scenario = || ToyScenario {
            batch: 90,
            poison: 10,
        };
        let rounds = 12;
        let owned = Engine::with_policies(make_scenario(), make_defender(), make_adversary())
            .with_policy_seed(31)
            .run(rounds, &mut seeded_rng(21));

        let mut stepper =
            EngineStepper::with_policy_seed(make_scenario(), make_defender(), make_adversary(), 31);
        let board = PublicBoard::new();
        let mut rng = seeded_rng(21);
        let mut thresholds = Vec::new();
        let mut injections = Vec::new();
        let mut gains_a = Vec::new();
        let mut gains_c = Vec::new();
        for i in 1..=rounds {
            let step = stepper.step(&mut rng);
            assert_eq!(step.round, i);
            board.post(step.to_record());
            thresholds.push(step.threshold);
            injections.push(step.injection);
            gains_a.push(step.report.gain_adversary);
            gains_c.push(step.gain_collector());
        }
        assert_eq!(stepper.rounds_played(), rounds);
        let run = stepper.finish();
        assert_eq!(thresholds, owned.thresholds);
        assert_eq!(injections, owned.injections);
        assert_eq!(run.totals, owned.totals);
        assert_eq!(run.termination_round, owned.termination_round);
        assert_eq!(Some(&run.final_u_a), owned.utilities.u_a.last());
        assert_eq!(Some(&run.final_u_c), owned.utilities.u_c.last());
        let traj = UtilityTrajectory::from_roundwise(&gains_a, &gains_c);
        assert_eq!(traj.u_a, owned.utilities.u_a);
        assert_eq!(traj.u_c, owned.utilities.u_c);
        // The hand-posted board matches the engine's record for record.
        let ours = board.history();
        let theirs = owned.board.history();
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(theirs.iter()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.threshold_percentile, b.threshold_percentile);
            assert_eq!(a.quality, b.quality);
            assert_eq!(a.received, b.received);
            assert_eq!(a.trimmed, b.trimmed);
        }
    }

    #[test]
    fn stepper_summary_tracks_partial_runs() {
        let mut stepper = EngineStepper::new(
            ToyScenario {
                batch: 90,
                poison: 10,
            },
            Box::new(DefenderPolicy::Fixed { tth: 0.9 }),
            Box::new(AdversaryPolicy::Fixed { percentile: 0.95 }),
        );
        let mut rng = seeded_rng(5);
        assert_eq!(stepper.summary().rounds, 0);
        let _ = stepper.step(&mut rng);
        let _ = stepper.step(&mut rng);
        let mid = stepper.summary();
        assert_eq!(mid.rounds, 2);
        assert_eq!(mid.totals.received, 200);
        let (run, scenario, _defender, adversary) = stepper.into_parts();
        assert_eq!(run.rounds, 2);
        assert_eq!(scenario.batch, 90);
        assert_eq!(adversary.name(), "Adversary");
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let engine = Engine::new(
            ToyScenario {
                batch: 1,
                poison: 0,
            },
            DefenderPolicy::Ostrich,
            AdversaryPolicy::Fixed { percentile: 0.5 },
        );
        let _ = engine.run(0, &mut seeded_rng(4));
    }
}
