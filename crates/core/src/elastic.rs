//! Elastic trigger strategy — Algorithm 2, Definition 2 and the coupled
//! percentile dynamics of Section VI-A, plus the Table IV cost analysis.
//!
//! Elastic replaces Tit-for-tat's permanent termination with *forgiveness*:
//! a detected defection incurs a next-round penalty proportional to the
//! response intensity `k`, pulling the system back toward equilibrium like
//! a spring (`U = k(u_a − u_c)²/2`, Definition 2 — hence Theorem 4's
//! oscillation). Two layers are implemented:
//!
//! * [`ElasticThreshold`] — Algorithm 2 proper: the threshold is an affine
//!   interpolation between the soft threshold `T̄` and the hard threshold
//!   `T` driven by the normalized quality of the received batch. (The
//!   paper's pseudocode mixes two sign conventions for
//!   `Quality_Evaluation`; we use the coherent reading — worse quality ⇒
//!   closer to the hard threshold — which is also what its experiments
//!   do.)
//! * [`CoupledDynamics`] — the experimental instantiation of §VI-A:
//!   `T(i+1) = Tth + k(A(i) − Tth − 1%)`, `A(i+1) = Tth − 3% + k(T(i) − Tth)`
//!   with `T(1) = Tth − 3%`, `A(1) = Tth + 1%`, its closed-form fixed point
//!   and the roundwise cost of Table IV.

use crate::error::CoreError;

/// Algorithm 2: quality-driven elastic threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticThreshold {
    /// Soft trimming percentile `T̄` (used on perfect-quality rounds).
    pub soft: f64,
    /// Hard trimming percentile `T` (approached as quality degrades).
    pub hard: f64,
    /// Response intensity `k ∈ (0, 1]`.
    pub k: f64,
}

impl ElasticThreshold {
    /// Creates the policy.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 <= hard < soft <= 1` and `0 < k <= 1`.
    pub fn new(soft: f64, hard: f64, k: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&soft) || !(0.0..=1.0).contains(&hard) || hard >= soft {
            return Err(CoreError::InvalidParameter {
                name: "soft/hard",
                constraint: "0 <= hard < soft <= 1",
                value: soft,
            });
        }
        if !(k > 0.0 && k <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                constraint: "0 < k <= 1",
                value: k,
            });
        }
        Ok(Self { soft, hard, k })
    }

    /// Threshold for normalized badness `b ∈ [0, 1]`
    /// (`b = 1 − QE_i / max(QE)`): `T_th(i) = (1 − k·b)·T̄ + k·b·T`.
    ///
    /// Perfect quality (`b = 0`) trims at `T̄`; at full badness the
    /// threshold has moved fraction `k` of the way to `T` — a proportional
    /// penalty rather than a permanent termination.
    #[must_use]
    pub fn threshold(&self, badness: f64) -> f64 {
        let b = badness.clamp(0.0, 1.0);
        (1.0 - self.k * b) * self.soft + self.k * b * self.hard
    }
}

/// The coupled percentile dynamics of the §VI-A experiments, tracked in
/// offsets from the nominal threshold `Tth` (all quantities are percentile
/// *fractions*; the paper's "1%" is `0.01`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledDynamics {
    /// Nominal threshold `Tth` (e.g. 0.9).
    pub tth: f64,
    /// Response intensity `k ∈ (0, 1)`.
    pub k: f64,
}

/// One round's positions under [`CoupledDynamics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsState {
    /// Collector trim percentile `T(i)`.
    pub trim: f64,
    /// Adversary injection percentile `A(i)`.
    pub inject: f64,
}

impl CoupledDynamics {
    /// Offset of the collector's initial trim position (`T(1) = Tth − 3%`).
    pub const TRIM_INIT_OFFSET: f64 = -0.03;
    /// Offset of the adversary's initial injection (`A(1) = Tth + 1%`).
    pub const INJECT_INIT_OFFSET: f64 = 0.01;

    /// Creates the dynamics.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `0 < k < 1` and
    /// `0 < tth <= 1`.
    pub fn new(tth: f64, k: f64) -> Result<Self, CoreError> {
        if !(k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                constraint: "0 < k < 1",
                value: k,
            });
        }
        if !(tth > 0.0 && tth <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "tth",
                constraint: "0 < tth <= 1",
                value: tth,
            });
        }
        Ok(Self { tth, k })
    }

    /// Initial state `(T(1), A(1))`.
    #[must_use]
    pub fn initial(&self) -> DynamicsState {
        DynamicsState {
            trim: self.tth + Self::TRIM_INIT_OFFSET,
            inject: self.tth + Self::INJECT_INIT_OFFSET,
        }
    }

    /// One step of the coupled updates:
    /// `T(i+1) = Tth + k(A(i) − Tth − 1%)`,
    /// `A(i+1) = Tth − 3% + k(T(i) − Tth)`.
    #[must_use]
    pub fn step(&self, state: DynamicsState) -> DynamicsState {
        DynamicsState {
            trim: self.tth + self.k * (state.inject - self.tth - 0.01),
            inject: self.tth - 0.03 + self.k * (state.trim - self.tth),
        }
    }

    /// The trajectory over `rounds` rounds (including the initial state).
    #[must_use]
    pub fn trajectory(&self, rounds: usize) -> Vec<DynamicsState> {
        let mut out = Vec::with_capacity(rounds);
        let mut s = self.initial();
        for _ in 0..rounds {
            out.push(s);
            s = self.step(s);
        }
        out
    }

    /// Closed-form fixed point: offsets
    /// `t* = −0.04·k / (1 − k²)`, `a* = −0.03 + k·t*`.
    #[must_use]
    pub fn fixed_point(&self) -> DynamicsState {
        let t_off = -0.04 * self.k / (1.0 - self.k * self.k);
        let a_off = -0.03 + self.k * t_off;
        DynamicsState {
            trim: self.tth + t_off,
            inject: self.tth + a_off,
        }
    }

    /// The equilibrium injection offset `|a*|` below `Tth` — the analytic
    /// quantity whose values (0.0304 at k = 0.1, 0.0433 at k = 0.5) match
    /// Table IV's converged totals (with the two k columns transposed; see
    /// EXPERIMENTS.md).
    #[must_use]
    pub fn equilibrium_injection_offset(&self) -> f64 {
        (self.fixed_point().inject - self.tth).abs()
    }

    /// Per-round transient cost: the deviation of the realized trim/inject
    /// gap from its equilibrium value,
    /// `c_i = |(T(i) − A(i)) − (T* − A*)|`. Summed over rounds it
    /// converges, so the roundwise average decays as `~1/Round_no` —
    /// Table IV's shape.
    #[must_use]
    pub fn transient_costs(&self, rounds: usize) -> Vec<f64> {
        let eq = self.fixed_point();
        let eq_gap = eq.trim - eq.inject;
        self.trajectory(rounds)
            .iter()
            .map(|s| ((s.trim - s.inject) - eq_gap).abs())
            .collect()
    }

    /// Table IV's roundwise cost: mean transient cost over `rounds`.
    #[must_use]
    pub fn roundwise_cost(&self, rounds: usize) -> f64 {
        if rounds == 0 {
            return 0.0;
        }
        self.transient_costs(rounds).iter().sum::<f64>() / rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm2_interpolates_between_thresholds() {
        let e = ElasticThreshold::new(0.91, 0.87, 0.5).unwrap();
        // Perfect quality: soft threshold.
        assert!((e.threshold(0.0) - 0.91).abs() < 1e-12);
        // Worst quality: k of the way to hard: 0.5*0.91 + 0.5*0.87 = 0.89.
        assert!((e.threshold(1.0) - 0.89).abs() < 1e-12);
        // Monotone in badness.
        assert!(e.threshold(0.3) > e.threshold(0.7));
    }

    #[test]
    fn algorithm2_badness_is_clamped() {
        let e = ElasticThreshold::new(0.91, 0.87, 1.0).unwrap();
        assert_eq!(e.threshold(-1.0), e.threshold(0.0));
        assert_eq!(e.threshold(2.0), e.threshold(1.0));
    }

    #[test]
    fn stronger_k_penalizes_harder() {
        let weak = ElasticThreshold::new(0.91, 0.87, 0.1).unwrap();
        let strong = ElasticThreshold::new(0.91, 0.87, 0.5).unwrap();
        assert!(strong.threshold(1.0) < weak.threshold(1.0));
    }

    #[test]
    fn dynamics_initial_positions_match_paper() {
        let d = CoupledDynamics::new(0.9, 0.5).unwrap();
        let s = d.initial();
        assert!((s.trim - 0.87).abs() < 1e-12);
        assert!((s.inject - 0.91).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_is_stationary() {
        for &k in &[0.1, 0.3, 0.5, 0.9] {
            let d = CoupledDynamics::new(0.9, k).unwrap();
            let fp = d.fixed_point();
            let stepped = d.step(fp);
            assert!((stepped.trim - fp.trim).abs() < 1e-12, "k={k}");
            assert!((stepped.inject - fp.inject).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn trajectory_converges_to_fixed_point() {
        for &k in &[0.1, 0.5] {
            let d = CoupledDynamics::new(0.9, k).unwrap();
            let traj = d.trajectory(200);
            let fp = d.fixed_point();
            let last = traj.last().unwrap();
            assert!((last.trim - fp.trim).abs() < 1e-10, "k={k}");
            assert!((last.inject - fp.inject).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn equilibrium_offsets_match_closed_form_values() {
        // |a*| = 0.03 + 0.04 k^2/(1-k^2): 0.030404... at k=0.1 and
        // 0.043333... at k=0.5 — the constants visible in Table IV.
        let d01 = CoupledDynamics::new(0.9, 0.1).unwrap();
        assert!((d01.equilibrium_injection_offset() - 0.03040404).abs() < 1e-7);
        let d05 = CoupledDynamics::new(0.9, 0.5).unwrap();
        assert!((d05.equilibrium_injection_offset() - 0.04333333).abs() < 1e-7);
    }

    #[test]
    fn roundwise_cost_decays_roughly_as_one_over_n() {
        let d = CoupledDynamics::new(0.9, 0.5).unwrap();
        let c5 = d.roundwise_cost(5);
        let c10 = d.roundwise_cost(10);
        let c50 = d.roundwise_cost(50);
        assert!(c5 > c10 && c10 > c50, "costs must decay: {c5} {c10} {c50}");
        // Once converged, total cost is constant, so roundwise ~ 1/N:
        // c10 * 10 within a few percent of c50 * 50.
        let total10 = c10 * 10.0;
        let total50 = c50 * 50.0;
        assert!(
            (total10 - total50).abs() < 0.05 * total50,
            "totals {total10} vs {total50}"
        );
    }

    #[test]
    fn smaller_k_converges_faster_in_map_iteration() {
        // The iteration matrix has spectral radius k, so k = 0.1 reaches
        // the fixed point in fewer rounds than k = 0.5.
        let d01 = CoupledDynamics::new(0.9, 0.1).unwrap();
        let d05 = CoupledDynamics::new(0.9, 0.5).unwrap();
        let costs01 = d01.transient_costs(30);
        let costs05 = d05.transient_costs(30);
        assert!(costs01[10] < costs05[10]);
    }

    #[test]
    fn construction_validation() {
        assert!(CoupledDynamics::new(0.9, 0.0).is_err());
        assert!(CoupledDynamics::new(0.9, 1.0).is_err());
        assert!(CoupledDynamics::new(0.0, 0.5).is_err());
        assert!(ElasticThreshold::new(0.87, 0.91, 0.5).is_err());
        assert!(ElasticThreshold::new(0.91, 0.87, 0.0).is_err());
    }

    #[test]
    fn trajectory_has_requested_length() {
        let d = CoupledDynamics::new(0.9, 0.3).unwrap();
        assert_eq!(d.trajectory(7).len(), 7);
        assert_eq!(d.roundwise_cost(0), 0.0);
    }
}
