//! The LDP case study (Section V / Fig. 9): game-theoretic trimming under
//! a non-deterministic utility, versus the EMF baseline.
//!
//! Honest users privatize their Taxi values with the Piecewise Mechanism;
//! input-manipulation attackers (the strong evasion of Cheu et al.) hold a
//! counterfeit input of `+1` and follow the protocol, so their reports are
//! *distributed exactly like honest reports of 1.0* — undetectable
//! pointwise. Defenses operate on the report stream:
//!
//! * **Tit-for-tat** (Algorithm 1): soft upper-percentile trim; permanent
//!   hard trim once the tail-mass quality dips below the calibrated
//!   baseline minus the redundancy `Red`. The LDP noise is exactly the
//!   non-deterministic utility that makes the redundancy necessary
//!   (Theorem 3).
//! * **Elastic** (Algorithm 2): threshold interpolates between soft and
//!   hard as the normalized quality degrades, intensity `k`.
//! * **EMF**: no trimming; EM mixture filtering of the aggregate.
//!
//! The estimate is the *debiased* trimmed mean: trimming the upper tail of
//! an unbiased report stream biases the mean down, but the collector knows
//! the mechanism and its own cut, so it corrects each round's mean by the
//! trim bias measured on the clean calibration distribution. What remains
//! is the surviving attack mass below the cut plus the extra variance of
//! trimming under heavy noise — the overhead that produces the paper's
//! inflection at small ε.

use crate::adversary::AdversaryPolicy;
use crate::engine::{Engine, RoundReport, Scenario};
use crate::simulation::POLICY_SEED_STREAM;
use crate::strategy::{DefenderPolicy, ThresholdPolicy};
use crate::titfortat::TitForTat;
use rand::rngs::StdRng;
use rand::Rng;
use std::borrow::Cow;
use trimgame_ldp::attack::{Attack, InputManipulation};
use trimgame_ldp::emf::EmFilter;
use trimgame_ldp::mechanism::LdpMechanism;
use trimgame_ldp::piecewise::Piecewise;
use trimgame_numerics::quantile::{ecdf, Interpolation};
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng};
use trimgame_numerics::stats::{mean, OnlineStats};
use trimgame_stream::trim::{SketchThreshold, TrimOp, TrimScratch};

/// The Fig. 9 defense roster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LdpDefense {
    /// Algorithm 1 (rigid trigger with redundancy).
    TitForTat,
    /// Algorithm 2 with response intensity `k`.
    Elastic(f64),
    /// The EM filter baseline (no trimming).
    Emf,
}

impl LdpDefense {
    /// Fig. 9's legend order.
    #[must_use]
    pub fn roster() -> Vec<LdpDefense> {
        vec![
            LdpDefense::TitForTat,
            LdpDefense::Elastic(0.1),
            LdpDefense::Elastic(0.5),
            LdpDefense::Emf,
        ]
    }

    /// Legend name. Only `Elastic` allocates (its name embeds `k`).
    #[must_use]
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            LdpDefense::TitForTat => Cow::Borrowed("Titfortat"),
            LdpDefense::Elastic(k) => Cow::Owned(format!("Elastic{k}")),
            LdpDefense::Emf => Cow::Borrowed("EMF"),
        }
    }
}

/// Configuration of one Fig. 9 cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdpSimConfig {
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Attack ratio (attackers per honest user).
    pub attack_ratio: f64,
    /// Honest users per round.
    pub users_per_round: usize,
    /// Collection rounds.
    pub rounds: usize,
    /// Soft trimming percentile `T̄` on the report stream.
    pub soft: f64,
    /// Hard trimming percentile `T`.
    pub hard: f64,
    /// Tit-for-tat redundancy on the quality scale.
    pub red: f64,
    /// Master seed.
    pub seed: u64,
    /// Rank error of the memory-bounded threshold source. `Some(ε)`
    /// resolves trimming cuts from a GK sketch of the calibration report
    /// stream instead of the exact sorted table — the sketch-native game
    /// on the report stream. `None` keeps the exact cut. (Distinct from
    /// the privacy budget `epsilon`.)
    pub sketch_epsilon: Option<f64>,
}

impl LdpSimConfig {
    /// Defaults matching the Fig. 9 regime.
    #[must_use]
    pub fn new(epsilon: f64, attack_ratio: f64, seed: u64) -> Self {
        Self {
            epsilon,
            attack_ratio,
            users_per_round: 2_000,
            rounds: 10,
            soft: 0.95,
            hard: 0.85,
            red: 0.03,
            seed,
            sketch_epsilon: None,
        }
    }
}

/// Reusable buffers of the LDP game: the sorted calibration stream and
/// its prefix sums (refilled per run — their *contents* are seeded), the
/// round's report buffer and the trim scratch.
#[derive(Debug, Clone, Default)]
pub struct LdpBufs {
    calib: Vec<f64>,
    prefix: Vec<f64>,
    reports: Vec<f64>,
    trim: TrimScratch,
    /// The memory-bounded threshold source of the sketch-native game: a
    /// GK sketch fed the calibration stream (batched) by
    /// [`ldp_calibrate`] when the run asks for one.
    sketch: Option<SketchThreshold>,
}

/// A worker's reusable LDP game state. Unlike the scalar/ML arenas there
/// is no shareable model — the calibration stream is part of each run's
/// seeded randomness — but the buffers (calibration table, prefix sums,
/// per-round reports, trim scratch) are recycled across runs via
/// [`run_ldp_collection_with_scratch`], and the sketch-native game
/// additionally memoizes whole calibrations across the payoff grid's
/// cells (see `CalibEntry`).
#[derive(Debug, Clone, Default)]
pub struct LdpArena {
    bufs: LdpBufs,
    calib_cache: Vec<CalibEntry>,
}

/// One memoized calibration round of the sketch-native payoff grid:
/// everything [`ldp_calibrate`] derives from the seeded stream — the
/// sorted table, its prefix sums, the GK sketch, the stream mean — plus
/// the main-stream RNG state right after the calibration draws, so a
/// cache hit replays the rest of the run bit-for-bit.
#[derive(Debug, Clone)]
struct CalibEntry {
    key: u64,
    calib: Vec<f64>,
    prefix: Vec<f64>,
    sketch: Option<SketchThreshold>,
    calib_mean: f64,
    rng_after: StdRng,
}

/// Calibration cache capacity per worker arena: comfortably above the
/// per-cell seed counts the equilibrium grids use (the key varies only
/// with the repetition seed across a grid, so this keeps every seed's
/// calibration resident).
const CALIB_CACHE_CAP: usize = 16;

/// Stream tag of the calibration fingerprint chain.
const CALIB_KEY_STREAM: u64 = 0x4C43_4142; // "LCAB"

impl LdpArena {
    /// Creates empty buffers (they grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The per-run parameters of one LDP game.
#[derive(Debug, Clone, Copy)]
struct LdpParams {
    users_per_round: usize,
    n_attack: usize,
    calib_mean: f64,
    ref_value: f64,
    expected_tail: f64,
    trims: bool,
}

/// Runs the clean calibration round into `calib`/`prefix` (the collector
/// knows the honest report distribution shape: the mechanism is public
/// and the input prior comes from history) and computes the derived
/// per-run parameters. Draws are identical for the owned and the
/// arena-backed path.
fn ldp_calibrate<R: Rng + ?Sized>(
    population: &[f64],
    mech: &Piecewise,
    defense: LdpDefense,
    cfg: &LdpSimConfig,
    bufs: &mut LdpBufs,
    rng: &mut R,
) -> LdpParams {
    assert!(!population.is_empty(), "empty population");
    assert!(
        cfg.rounds > 0 && cfg.users_per_round > 0,
        "degenerate config"
    );
    bufs.calib.clear();
    bufs.calib.extend((0..cfg.users_per_round).map(|i| {
        let x = population[i % population.len()];
        mech.privatize(x, rng)
    }));
    bufs.calib
        .sort_by(|a, b| a.partial_cmp(b).expect("NaN report"));
    // Prefix sums over the sorted calibration stream: `trim_bias(cut)`
    // is how far the mean of an honest stream drops when values above
    // `cut` are removed — the collector adds it back after trimming.
    bufs.prefix.clear();
    bufs.prefix.extend(bufs.calib.iter().scan(0.0, |acc, &v| {
        *acc += v;
        Some(*acc)
    }));
    let calib_mean = mean(&bufs.calib);
    let ref_value = trimgame_numerics::quantile::percentile_sorted(
        &bufs.calib,
        cfg.soft.clamp(0.0, 1.0),
        Interpolation::Linear,
    );
    bufs.sketch = cfg.sketch_epsilon.map(|e| {
        let mut s = SketchThreshold::new(e);
        s.observe(&bufs.calib);
        s
    });
    LdpParams {
        users_per_round: cfg.users_per_round,
        n_attack: (cfg.users_per_round as f64 * cfg.attack_ratio).round() as usize,
        calib_mean,
        ref_value,
        expected_tail: 1.0 - cfg.soft,
        trims: !matches!(defense, LdpDefense::Emf),
    }
}

/// Fingerprint of everything the calibration round's *content* depends
/// on: the master seed (the draws), the privacy budget (the mechanism),
/// the stream length, the sketch rank error, and the exact population
/// prefix the round reads (`population[i % len]` for the first
/// `users_per_round` indices — cycling revisits the same elements). The
/// cell's thresholds (`soft`/`hard`), redundancy, attack ratio and
/// defense deliberately stay out: they never touch the calibration draws,
/// so cells across a payoff grid share entries.
fn calib_fingerprint(population: &[f64], cfg: &LdpSimConfig) -> u64 {
    let mut key = derive_seed(cfg.seed, CALIB_KEY_STREAM);
    key = derive_seed(key, cfg.epsilon.to_bits());
    key = derive_seed(key, cfg.users_per_round as u64);
    key = derive_seed(
        key,
        match cfg.sketch_epsilon {
            Some(e) => e.to_bits(),
            None => u64::MAX,
        },
    );
    key = derive_seed(key, population.len() as u64);
    for &x in &population[..cfg.users_per_round.min(population.len())] {
        key = derive_seed(key, x.to_bits());
    }
    key
}

/// [`ldp_calibrate`] with per-worker memoization — the payoff-grid
/// path, sketch-native and exact alike. The equilibrium estimator
/// prices a whole defender × attacker grid whose cells share a handful
/// of repetition seeds, yet each engine run used to redo the
/// calibration round: privatize and sort `users_per_round` reports,
/// rebuild prefix sums, and (in sketch mode) re-feed the GK sketch. All
/// of that depends only on [`calib_fingerprint`]'s inputs, not on the
/// cell, so a hit restores the buffers and the post-calibration RNG
/// state bit-for-bit and recomputes only the cheap per-cell scalars
/// (the reference quantile is one index into the sorted table). The
/// fingerprint encodes the sketch rank error (absent = `u64::MAX`), so
/// exact and sketch entries for the same seed never collide; an exact
/// entry simply carries `sketch: None`. Results are identical whether
/// or not the cache is warm, so worker counts and job order cannot skew
/// anything.
fn ldp_calibrate_cached(
    population: &[f64],
    mech: &Piecewise,
    defense: LdpDefense,
    cfg: &LdpSimConfig,
    arena: &mut LdpArena,
    rng: &mut StdRng,
) -> LdpParams {
    let key = calib_fingerprint(population, cfg);
    let LdpArena { bufs, calib_cache } = arena;
    if let Some(hit) = calib_cache.iter().find(|e| e.key == key) {
        bufs.calib.clone_from(&hit.calib);
        bufs.prefix.clone_from(&hit.prefix);
        bufs.sketch.clone_from(&hit.sketch);
        *rng = hit.rng_after.clone();
        let ref_value = trimgame_numerics::quantile::percentile_sorted(
            &bufs.calib,
            cfg.soft.clamp(0.0, 1.0),
            Interpolation::Linear,
        );
        return LdpParams {
            users_per_round: cfg.users_per_round,
            n_attack: (cfg.users_per_round as f64 * cfg.attack_ratio).round() as usize,
            calib_mean: hit.calib_mean,
            ref_value,
            expected_tail: 1.0 - cfg.soft,
            trims: !matches!(defense, LdpDefense::Emf),
        };
    }
    let params = ldp_calibrate(population, mech, defense, cfg, bufs, rng);
    if calib_cache.len() >= CALIB_CACHE_CAP {
        calib_cache.remove(0);
    }
    calib_cache.push(CalibEntry {
        key,
        calib: bufs.calib.clone(),
        prefix: bufs.prefix.clone(),
        sketch: bufs.sketch.clone(),
        calib_mean: params.calib_mean,
        rng_after: rng.clone(),
    });
    params
}

/// One LDP round, shared by the owned [`LdpScenario`] and the
/// arena-backed cell: honest privatization, protocol-compliant attack
/// reports, quality scoring, and (for trimming defenses) the cut at the
/// calibration quantile. Returns the report plus this round's debiased
/// trimmed-mean contribution `(estimate_delta, kept_delta)`; the raw
/// reports stay in `bufs.reports` for the EMF path.
fn ldp_round<R: Rng + ?Sized>(
    population: &[f64],
    mech: &Piecewise,
    params: &LdpParams,
    bufs: &mut LdpBufs,
    threshold: f64,
    injection: f64,
    rng: &mut R,
) -> (RoundReport, f64, usize) {
    // Honest reports.
    bufs.reports.clear();
    bufs.reports.extend((0..params.users_per_round).map(|_| {
        let idx = rng.gen_range(0..population.len());
        mech.privatize(population[idx], rng)
    }));
    // Attack reports (input manipulation: protocol-compliant, holding
    // the counterfeit input the adversary's position maps to; the
    // privatization consumes the same number of main-stream draws for
    // any input, so the position never perturbs the honest stream).
    let attack = InputManipulation::new(counterfeit_input(injection));
    for _ in 0..params.n_attack {
        let r = attack.report(mech, rng);
        bufs.reports.push(r);
    }

    // Quality: excess upper-tail mass relative to calibration.
    let above = 1.0 - ecdf(&bufs.reports, params.ref_value);
    let quality = 1.0 - (above - params.expected_tail).max(0.0);
    let received = bufs.reports.len();

    let mut report = RoundReport {
        quality,
        received,
        poison_received: params.n_attack,
        ..RoundReport::new()
    };
    if !params.trims {
        report.poison_survived = params.n_attack;
        let mut retained = OnlineStats::new();
        retained.extend(&bufs.reports);
        report.retained = retained;
        return (report, 0.0, 0);
    }

    // The sketch-native game resolves the cut from the GK summary of the
    // calibration stream; its ε rank error is evasion headroom for an
    // attacker positioning against the exact table.
    let cut = match &bufs.sketch {
        Some(s) => s
            .cut(threshold.clamp(0.0, 1.0))
            .expect("sketch ingested the calibration stream"),
        None => trimgame_numerics::quantile::percentile_sorted(
            &bufs.calib,
            threshold.clamp(0.0, 1.0),
            Interpolation::Linear,
        ),
    };
    let stats = TrimOp::Absolute(cut).apply_in_place(&bufs.reports, &mut bufs.trim);
    let (estimate_delta, kept_delta) = if stats.kept > 0 {
        // `trim_bias(cut)`: the honest-stream mean shift the cut induces.
        let n_below = bufs.calib.partition_point(|&v| v <= cut);
        let bias = if n_below == 0 {
            0.0
        } else {
            params.calib_mean - bufs.prefix[n_below - 1] / n_below as f64
        };
        (
            (mean(bufs.trim.kept()) + bias) * stats.kept as f64,
            stats.kept,
        )
    } else {
        (0.0, 0)
    };
    // Provenance the simulator (not the defender) knows: the attack
    // reports are the tail segment of the batch.
    let mask = bufs.trim.kept_mask();
    let poison_survived = mask[params.users_per_round..]
        .iter()
        .filter(|&&m| m)
        .count();
    let benign_trimmed = mask[..params.users_per_round]
        .iter()
        .filter(|&&m| !m)
        .count();
    report.trimmed = stats.trimmed;
    report.poison_survived = poison_survived;
    report.benign_trimmed = benign_trimmed;
    // Percentile-damage proxy, as on the other substrates: surviving
    // attack mass weighted by the attack position. The historical
    // fixed attack sits at percentile 1.0, where the weight is exactly
    // the old unweighted gain.
    report.gain_adversary =
        poison_survived as f64 / received.max(1) as f64 * injection.clamp(0.0, 1.0);
    report.overhead = benign_trimmed as f64 / received.max(1) as f64;
    report.threshold_value = stats.threshold_value;
    let mut retained = OnlineStats::new();
    retained.extend(bufs.trim.kept());
    report.retained = retained;
    (report, estimate_delta, kept_delta)
}

/// The LDP report-stream workload as an
/// [`engine::Scenario`](crate::engine::Scenario).
///
/// Each round privatizes a fresh honest sample with the Piecewise
/// Mechanism and appends protocol-compliant input-manipulation reports.
/// Trimming defenses cut at the calibration quantile of the engine's
/// threshold percentile and accumulate the *debiased* trimmed mean; the
/// EMF baseline stores the raw stream for one final EM filtering pass.
#[derive(Debug, Clone)]
pub struct LdpScenario<'a> {
    population: &'a [f64],
    mech: Piecewise,
    arena: LdpArena,
    params: LdpParams,
    estimate_sum: f64,
    kept_total: usize,
    all_reports: Vec<f64>,
}

impl<'a> LdpScenario<'a> {
    /// Builds the scenario, running the clean calibration round on `rng`
    /// (the collector knows the honest report distribution shape: the
    /// mechanism is public and the input prior comes from history).
    ///
    /// # Panics
    /// Panics if the population is empty or the config is degenerate.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        population: &'a [f64],
        defense: LdpDefense,
        cfg: &LdpSimConfig,
        rng: &mut R,
    ) -> Self {
        let mech = Piecewise::new(cfg.epsilon);
        let mut arena = LdpArena::new();
        let params = ldp_calibrate(population, &mech, defense, cfg, &mut arena.bufs, rng);
        Self {
            population,
            mech,
            arena,
            params,
            estimate_sum: 0.0,
            kept_total: 0,
            all_reports: Vec::new(),
        }
    }

    /// The weighted debiased trimmed-mean estimate accumulated so far
    /// (trimming defenses).
    #[must_use]
    pub fn trimmed_estimate(&self) -> f64 {
        if self.kept_total == 0 {
            0.0
        } else {
            self.estimate_sum / self.kept_total as f64
        }
    }

    /// The raw report stream (EMF baseline).
    #[must_use]
    pub fn raw_reports(&self) -> &[f64] {
        &self.all_reports
    }

    /// The mechanism in use.
    #[must_use]
    pub fn mechanism(&self) -> &Piecewise {
        &self.mech
    }
}

/// Maps an engine injection *percentile* to the attacker's counterfeit
/// *input* on the LDP substrate: the linear image of `[0, 1]` onto the
/// input domain `[−1, 1]`. The historical fixed attack (`percentile 1.0`)
/// maps to the counterfeit input `+1` exactly, so games driven by the
/// default [`AdversaryPolicy::Fixed`] at 1.0 replay bit-identically; a
/// mixed or learning attacker lowering its percentile holds a smaller
/// counterfeit whose protocol-compliant reports are likelier to duck the
/// trimming cut — the LDP image of the evasion/damage trade-off.
#[must_use]
pub fn counterfeit_input(injection_percentile: f64) -> f64 {
    2.0 * injection_percentile.clamp(0.0, 1.0) - 1.0
}

impl Scenario for LdpScenario<'_> {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        _round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        let (report, estimate_delta, kept_delta) = ldp_round(
            self.population,
            &self.mech,
            &self.params,
            &mut self.arena.bufs,
            threshold,
            injection,
            rng,
        );
        self.estimate_sum += estimate_delta;
        self.kept_total += kept_delta;
        if !self.params.trims {
            self.all_reports.extend_from_slice(&self.arena.bufs.reports);
        }
        report
    }
}

/// The arena-backed LDP cell: one seeded run borrowing a worker's
/// [`LdpArena`], with no raw-report retention or estimate accumulation —
/// the payoff-grid cell shape.
#[derive(Debug)]
struct LdpCell<'a> {
    population: &'a [f64],
    mech: Piecewise,
    arena: &'a mut LdpArena,
    params: LdpParams,
}

impl Scenario for LdpCell<'_> {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        _round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        ldp_round(
            self.population,
            &self.mech,
            &self.params,
            &mut self.arena.bufs,
            threshold,
            injection,
            rng,
        )
        .0
    }
}

/// The defender policy a [`LdpDefense`] maps onto the unified engine:
/// Tit-for-tat keeps Algorithm 1's trigger between `soft` and `hard`,
/// Elastic uses Algorithm 2's quality-driven interpolation, and EMF never
/// trims (Ostrich).
#[must_use]
pub fn ldp_defender(defense: LdpDefense, cfg: &LdpSimConfig) -> DefenderPolicy {
    let baseline_quality = 1.0;
    match defense {
        LdpDefense::TitForTat => DefenderPolicy::TitForTat {
            inner: TitForTat::new(cfg.soft, cfg.hard, baseline_quality, cfg.red)
                .expect("valid tit-for-tat parameters"),
        },
        LdpDefense::Elastic(k) => DefenderPolicy::quality_elastic(cfg.soft, cfg.hard, k),
        LdpDefense::Emf => DefenderPolicy::Ostrich,
    }
}

/// Runs one repetition of the collection under `defense` and returns the
/// final mean estimate.
///
/// # Panics
/// Panics if the population is empty or config degenerate.
#[must_use]
pub fn run_ldp_collection(population: &[f64], defense: LdpDefense, cfg: &LdpSimConfig) -> f64 {
    let defender = ldp_defender(defense, cfg);
    run_ldp_collection_with(population, defense, cfg, Box::new(defender), None)
}

/// Runs the collection with an arbitrary boxed trimming policy (e.g. a
/// [`crate::strategy::RandomizedDefender`] mixing over report-percentile
/// thresholds) in place of the roster defender; `defense` still selects
/// the estimator path (trimmed mean vs EMF). Pass `board` to share a
/// [`PublicBoard`](trimgame_stream::board::PublicBoard) an outside
/// observer (or a board-driven policy) already holds a clone of. The
/// defender sub-stream is seeded from `cfg.seed` via
/// [`POLICY_SEED_STREAM`].
///
/// # Panics
/// Panics if the population is empty or config degenerate.
#[must_use]
pub fn run_ldp_collection_with(
    population: &[f64],
    defense: LdpDefense,
    cfg: &LdpSimConfig,
    defender: Box<dyn ThresholdPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
) -> f64 {
    // The historical attack position: counterfeit input +1, every round.
    let adversary = AdversaryPolicy::Fixed { percentile: 1.0 };
    let out = run_ldp_collection_outcome(
        population,
        defense,
        cfg,
        defender,
        Box::new(adversary),
        board,
    );
    match defense {
        LdpDefense::Emf => {
            let beta = cfg.attack_ratio / (1.0 + cfg.attack_ratio);
            let emf = EmFilter::for_piecewise(out.scenario.mechanism(), 16, 32, beta.min(0.95));
            emf.filter_mean(out.scenario.raw_reports())
        }
        _ => out.scenario.trimmed_estimate(),
    }
}

/// Runs the collection with arbitrary boxed policies on *both* sides and
/// returns the raw [`EngineOutcome`](crate::engine::EngineOutcome) —
/// utility trajectories, totals, board and the scenario with its
/// accumulated estimate. The attacker's injection percentile maps to a
/// counterfeit input through [`counterfeit_input`], so mixed and learning
/// attackers play a real position game on the report stream. This is the
/// entry point the substrate-generic equilibrium estimator drives; the
/// collector's per-round loss is `−u_c / rounds`, as on the other
/// substrates.
///
/// # Panics
/// Panics if the population is empty or config degenerate.
#[must_use]
pub fn run_ldp_collection_outcome<'a>(
    population: &'a [f64],
    defense: LdpDefense,
    cfg: &LdpSimConfig,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn crate::adversary::AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
) -> crate::engine::EngineOutcome<LdpScenario<'a>> {
    let mut rng = seeded_rng(cfg.seed);
    let scenario = LdpScenario::new(population, defense, cfg, &mut rng);
    let mut engine = Engine::with_policies(scenario, defender, adversary)
        .with_policy_seed(derive_seed(cfg.seed, POLICY_SEED_STREAM));
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run(cfg.rounds, &mut rng)
}

/// The allocation-free LDP run: one seeded collection over the
/// worker-owned [`LdpArena`] (calibration table, prefix sums, report and
/// trim buffers) recording into the reusable
/// [`EngineScratch`](crate::engine::EngineScratch). No raw-report
/// retention and no trimmed-mean estimate — trajectory finals and totals
/// are bit-identical to [`run_ldp_collection_outcome`], the LDP
/// payoff-grid cell path.
///
/// # Panics
/// Panics if the population is empty or config degenerate.
#[must_use]
#[allow(clippy::too_many_arguments)] // one arg per game ingredient, like the outcome entry point
pub fn run_ldp_collection_with_scratch(
    population: &[f64],
    defense: LdpDefense,
    cfg: &LdpSimConfig,
    defender: Box<dyn ThresholdPolicy>,
    adversary: Box<dyn crate::adversary::AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
    arena: &mut LdpArena,
    scratch: &mut crate::engine::EngineScratch,
) -> crate::engine::EngineRun {
    let mut rng = seeded_rng(cfg.seed);
    let mech = Piecewise::new(cfg.epsilon);
    let params = ldp_calibrate_cached(population, &mech, defense, cfg, arena, &mut rng);
    let cell = LdpCell {
        population,
        mech,
        arena,
        params,
    };
    let mut engine = Engine::with_policies(cell, defender, adversary)
        .with_policy_seed(derive_seed(cfg.seed, POLICY_SEED_STREAM));
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run_with_scratch(cfg.rounds, &mut rng, scratch)
}

/// A deterministic honest-report calibration sample: `n` reports of the
/// population cycled through the Piecewise Mechanism at `epsilon`, seeded
/// by `seed`, sorted ascending. Mirrors the calibration round
/// [`LdpScenario::new`] runs, but on an explicit seed so the equilibrium
/// estimator's closed-form benchmark is reproducible independent of any
/// game run.
///
/// # Panics
/// Panics if the population is empty or `n == 0`.
#[must_use]
pub fn ldp_calibration(population: &[f64], epsilon: f64, n: usize, seed: u64) -> Vec<f64> {
    assert!(!population.is_empty(), "empty population");
    assert!(n > 0, "need at least one calibration report");
    let mech = Piecewise::new(epsilon);
    let mut rng = seeded_rng(seed);
    let mut calib: Vec<f64> = (0..n)
        .map(|i| mech.privatize(population[i % population.len()], &mut rng))
        .collect();
    calib.sort_by(|a, b| a.partial_cmp(b).expect("NaN report"));
    calib
}

/// MSE of `defense` over `reps` repetitions against the true benign mean.
#[must_use]
pub fn ldp_mse(population: &[f64], defense: LdpDefense, cfg: &LdpSimConfig, reps: usize) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let truth = mean(population);
    let mut total = 0.0;
    for rep in 0..reps {
        let mut c = *cfg;
        c.seed = derive_seed(cfg.seed, rep as u64);
        let est = run_ldp_collection(population, defense, &c);
        total += (est - truth) * (est - truth);
    }
    total / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Vec<f64> {
        // Taxi-like bounded skewed population.
        (0..4_000)
            .map(|i| {
                let t = (i % 1000) as f64 / 1000.0;
                (2.0 * t - 1.0) * 0.7
            })
            .collect()
    }

    #[test]
    fn roster_matches_legend() {
        let names: Vec<_> = LdpDefense::roster().iter().map(LdpDefense::name).collect();
        assert_eq!(names, vec!["Titfortat", "Elastic0.1", "Elastic0.5", "EMF"]);
    }

    #[test]
    fn ldp_scratch_cells_replay_the_outcome_path_bit_for_bit() {
        use crate::adversary::AdversaryPolicy;
        use crate::engine::EngineScratch;
        let pop = population();
        let mut arena = LdpArena::new();
        let mut scratch = EngineScratch::new();
        // The sketch column exercises the calibration-time sketch build
        // and its reset on arena reuse.
        for (soft, seed, sketch_epsilon) in [
            (0.9f64, 3u64, None),
            (0.95, 4, Some(0.02)),
            (0.9, 3, None),
            (0.9, 3, Some(0.05)),
        ] {
            let cfg = LdpSimConfig {
                users_per_round: 400,
                rounds: 3,
                soft,
                hard: soft - 0.1,
                sketch_epsilon,
                ..LdpSimConfig::new(3.0, 0.25, seed)
            };
            let policies = || {
                (
                    Box::new(ldp_defender(LdpDefense::TitForTat, &cfg)) as Box<dyn ThresholdPolicy>,
                    Box::new(AdversaryPolicy::Fixed { percentile: 0.97 })
                        as Box<dyn crate::adversary::AttackPolicy>,
                )
            };
            let (d, a) = policies();
            let owned = run_ldp_collection_outcome(&pop, LdpDefense::TitForTat, &cfg, d, a, None);
            let (d, a) = policies();
            let lean = run_ldp_collection_with_scratch(
                &pop,
                LdpDefense::TitForTat,
                &cfg,
                d,
                a,
                None,
                &mut arena,
                &mut scratch,
            );
            assert_eq!(lean.totals, owned.totals, "soft={soft} seed={seed}");
            assert_eq!(Some(&lean.final_u_a), owned.utilities.u_a.last());
            assert_eq!(Some(&lean.final_u_c), owned.utilities.u_c.last());
            assert_eq!(scratch.thresholds(), owned.thresholds.as_slice());
            assert_eq!(scratch.qualities(), owned.qualities.as_slice());
        }
    }

    #[test]
    fn ldp_calibration_cache_replays_bit_for_bit() {
        use crate::adversary::AdversaryPolicy;
        use crate::engine::EngineScratch;
        // The payoff-grid shape: cells differ in threshold but share the
        // repetition seed. The second run on a warm arena hits the
        // calibration cache and must match a cold run from a fresh arena
        // bit for bit (restored buffers + restored RNG state).
        let pop = population();
        let run = |arena: &mut LdpArena, soft: f64, seed: u64| {
            let cfg = LdpSimConfig {
                users_per_round: 500,
                rounds: 3,
                soft,
                hard: soft - 0.1,
                sketch_epsilon: Some(0.02),
                ..LdpSimConfig::new(3.0, 0.2, seed)
            };
            let mut scratch = EngineScratch::new();
            run_ldp_collection_with_scratch(
                &pop,
                LdpDefense::TitForTat,
                &cfg,
                Box::new(ldp_defender(LdpDefense::TitForTat, &cfg)),
                Box::new(AdversaryPolicy::Fixed { percentile: 0.97 }),
                None,
                arena,
                &mut scratch,
            )
        };
        let mut warm = LdpArena::new();
        let _ = run(&mut warm, 0.90, 5); // primes the cache for seed 5
        let hit = run(&mut warm, 0.95, 5);
        let cold = run(&mut LdpArena::new(), 0.95, 5);
        assert_eq!(hit.totals, cold.totals);
        assert_eq!(hit.final_u_c.to_bits(), cold.final_u_c.to_bits());
        assert_eq!(hit.final_u_a.to_bits(), cold.final_u_a.to_bits());
    }

    #[test]
    fn ldp_exact_path_calibration_cache_replays_bit_for_bit() {
        use crate::adversary::AdversaryPolicy;
        use crate::engine::EngineScratch;
        // Same contract as the sketch-mode test, on the exact (no
        // sketch) table game: the second run on a warm arena restores
        // the calibration buffers and RNG state from the cache and must
        // be indistinguishable from a cold run. The fingerprint keeps
        // exact and sketch entries for the same seed apart, so priming
        // one mode must never leak into the other.
        let pop = population();
        let run = |arena: &mut LdpArena, soft: f64, seed: u64, sketch: Option<f64>| {
            let cfg = LdpSimConfig {
                users_per_round: 500,
                rounds: 3,
                soft,
                hard: soft - 0.1,
                sketch_epsilon: sketch,
                ..LdpSimConfig::new(3.0, 0.2, seed)
            };
            let mut scratch = EngineScratch::new();
            run_ldp_collection_with_scratch(
                &pop,
                LdpDefense::TitForTat,
                &cfg,
                Box::new(ldp_defender(LdpDefense::TitForTat, &cfg)),
                Box::new(AdversaryPolicy::Fixed { percentile: 0.97 }),
                None,
                arena,
                &mut scratch,
            )
        };
        let mut warm = LdpArena::new();
        // Prime both the sketch entry (would poison the exact run if
        // the modes collided) and the exact entry for seed 5.
        let _ = run(&mut warm, 0.90, 5, Some(0.02));
        let _ = run(&mut warm, 0.90, 5, None);
        let hit = run(&mut warm, 0.95, 5, None);
        let cold = run(&mut LdpArena::new(), 0.95, 5, None);
        assert_eq!(hit.totals, cold.totals);
        assert_eq!(hit.final_u_c.to_bits(), cold.final_u_c.to_bits());
        assert_eq!(hit.final_u_a.to_bits(), cold.final_u_a.to_bits());
    }

    #[test]
    fn ldp_sketch_cut_tracks_exact_cut() {
        // The sketch-native report-stream game: cuts resolved from a GK
        // summary of the calibration stream stay within its rank-error
        // band of the exact table, so the debiased estimate lands near
        // the exact path's — and the sketch path replays deterministically.
        let pop = population();
        let base = LdpSimConfig {
            users_per_round: 1_000,
            rounds: 4,
            ..LdpSimConfig::new(3.0, 0.2, 41)
        };
        let exact = run_ldp_collection(&pop, LdpDefense::TitForTat, &base);
        let sk_cfg = LdpSimConfig {
            sketch_epsilon: Some(0.02),
            ..base
        };
        let sk = run_ldp_collection(&pop, LdpDefense::TitForTat, &sk_cfg);
        let again = run_ldp_collection(&pop, LdpDefense::TitForTat, &sk_cfg);
        assert_eq!(sk, again, "sketch path must replay deterministically");
        assert!((sk - exact).abs() < 0.1, "sketch {sk} vs exact {exact}");
        assert!((-1.0..=1.0).contains(&sk), "estimate {sk}");
    }

    #[test]
    fn trimming_beats_no_defense_under_attack() {
        let pop = population();
        let cfg = LdpSimConfig::new(3.0, 0.3, 99);
        let truth = mean(&pop);
        let elastic = run_ldp_collection(&pop, LdpDefense::Elastic(0.5), &cfg);
        let mech_bias = 0.3 / 1.3 * (1.0 - truth); // poisoned mixture shift
        assert!(
            (elastic - truth).abs() < mech_bias,
            "elastic {elastic} vs truth {truth} (raw shift {mech_bias})"
        );
    }

    #[test]
    fn mse_decreases_with_epsilon_for_trimming() {
        let pop = population();
        let lo = ldp_mse(
            &pop,
            LdpDefense::Elastic(0.5),
            &LdpSimConfig::new(1.0, 0.1, 7),
            3,
        );
        let hi = ldp_mse(
            &pop,
            LdpDefense::Elastic(0.5),
            &LdpSimConfig::new(5.0, 0.1, 7),
            3,
        );
        assert!(hi < lo, "eps=5 mse {hi} should beat eps=1 mse {lo}");
    }

    #[test]
    fn emf_runs_and_is_finite() {
        let pop = population();
        let cfg = LdpSimConfig {
            users_per_round: 800,
            rounds: 3,
            ..LdpSimConfig::new(2.0, 0.2, 5)
        };
        let est = run_ldp_collection(&pop, LdpDefense::Emf, &cfg);
        assert!(est.is_finite());
        assert!((-1.0..=1.0).contains(&est));
    }

    #[test]
    fn trimming_beats_emf_against_input_manipulation() {
        // Fig. 9's headline: input manipulation is invisible to the EM
        // filter but not to adaptive trimming.
        let pop = population();
        let cfg = LdpSimConfig {
            users_per_round: 1_000,
            rounds: 5,
            ..LdpSimConfig::new(3.0, 0.3, 21)
        };
        let mse_trim = ldp_mse(&pop, LdpDefense::Elastic(0.5), &cfg, 3);
        let mse_emf = ldp_mse(&pop, LdpDefense::Emf, &cfg, 3);
        assert!(
            mse_trim < mse_emf,
            "trimming {mse_trim} should beat EMF {mse_emf}"
        );
    }

    #[test]
    fn titfortat_defends_comparably_to_elastic() {
        let pop = population();
        let cfg = LdpSimConfig {
            users_per_round: 1_000,
            rounds: 5,
            ..LdpSimConfig::new(3.0, 0.2, 31)
        };
        let tft = ldp_mse(&pop, LdpDefense::TitForTat, &cfg, 3);
        let ela = ldp_mse(&pop, LdpDefense::Elastic(0.5), &cfg, 3);
        // Same order of magnitude.
        assert!(tft < 20.0 * ela + 1e-6, "tft {tft} vs elastic {ela}");
    }

    #[test]
    fn deterministic_under_seed() {
        let pop = population();
        let cfg = LdpSimConfig {
            users_per_round: 500,
            rounds: 2,
            ..LdpSimConfig::new(2.0, 0.1, 77)
        };
        let a = run_ldp_collection(&pop, LdpDefense::TitForTat, &cfg);
        let b = run_ldp_collection(&pop, LdpDefense::TitForTat, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_defender_runs_on_the_report_stream() {
        use crate::strategy::RandomizedDefender;
        let pop = population();
        let cfg = LdpSimConfig {
            users_per_round: 500,
            rounds: 3,
            ..LdpSimConfig::new(3.0, 0.2, 13)
        };
        let mixed = || {
            Box::new(RandomizedDefender::new(&[cfg.hard, cfg.soft], &[0.5, 0.5]).unwrap())
                as Box<dyn ThresholdPolicy>
        };
        let a = run_ldp_collection_with(&pop, LdpDefense::TitForTat, &cfg, mixed(), None);
        let b = run_ldp_collection_with(&pop, LdpDefense::TitForTat, &cfg, mixed(), None);
        assert_eq!(a, b, "randomized runs must replay under a fixed seed");
        assert!(a.is_finite());
        // The mixed trim stays within the domain of sane estimates.
        assert!((-1.0..=1.0).contains(&a), "estimate {a}");
    }
}
