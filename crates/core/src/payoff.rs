//! Payoff functions and the balance point `x_L` (Section III-B).
//!
//! The game is zero-sum in the poisoning payoff `P` (any gain for the
//! adversary is a loss for the collector), but the collector additionally
//! pays the trimming overhead `T` for falsely removed honest values:
//! collector payoff = `−P − T`. Rational play confines both parties to
//! `[x_L, x_R]`, where `x_L` is the balance point `P(x_L) = T(x_L)` —
//! "below which the collector is not motivated to trim the data any
//! further" — and `x_R` is the largest injection a rational adversary would
//! attempt.

use crate::error::CoreError;
use trimgame_numerics::rootfind::brent;

/// The balance point between poison loss and trimming overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancePoint {
    /// Location `x_L` where the curves cross.
    pub x: f64,
    /// Common payoff magnitude `P(x_L) = T(x_L)` at the crossing.
    pub payoff: f64,
}

/// Solves `P(x) = T(x)` on `[lo, hi]` for a poison-loss curve `poison`
/// (typically increasing in `x`) and a trimming-overhead curve `overhead`
/// (typically decreasing in `x`, since "the trimming overhead decreases as
/// more data points are removed").
///
/// # Errors
/// Returns [`CoreError::BalancePointNotBracketed`] if the curves do not
/// cross on the interval.
pub fn balance_point<P, T>(
    mut poison: P,
    mut overhead: T,
    lo: f64,
    hi: f64,
) -> Result<BalancePoint, CoreError>
where
    P: FnMut(f64) -> f64,
    T: FnMut(f64) -> f64,
{
    let root = brent(|x| poison(x) - overhead(x), lo, hi, 1e-12)
        .map_err(|_| CoreError::BalancePointNotBracketed)?;
    Ok(BalancePoint {
        x: root,
        payoff: poison(root),
    })
}

/// Per-round realized payoffs given concrete positions, following
/// Definition 1's sign conventions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPayoff {
    /// Adversary gain `P` (poison damage that survived trimming).
    pub adversary: f64,
    /// Collector payoff `−P − T`.
    pub collector: f64,
    /// The trimming overhead component `T` alone.
    pub overhead: f64,
}

/// Computes the round payoff for trim position `xc` and injection `xa`,
/// with `damage(xa)` the poison damage if it survives and `overhead(xc)`
/// the collector's trimming overhead. Poison survives iff `xa <= xc`.
pub fn round_payoff<D, O>(xc: f64, xa: f64, mut damage: D, mut overhead: O) -> RoundPayoff
where
    D: FnMut(f64) -> f64,
    O: FnMut(f64) -> f64,
{
    let p = if xa <= xc { damage(xa) } else { 0.0 };
    let t = overhead(xc);
    RoundPayoff {
        adversary: p,
        collector: -p - t,
        overhead: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poison(x: f64) -> f64 {
        0.8 * x
    }

    fn overhead(x: f64) -> f64 {
        (1.0 - x) * (1.0 - x)
    }

    #[test]
    fn balance_point_crossing() {
        let bp = balance_point(poison, overhead, 0.0, 1.0).unwrap();
        assert!((poison(bp.x) - overhead(bp.x)).abs() < 1e-10);
        assert!((bp.payoff - poison(bp.x)).abs() < 1e-12);
        assert!(bp.x > 0.0 && bp.x < 1.0);
    }

    #[test]
    fn no_crossing_is_an_error() {
        let err = balance_point(|_| 1.0, |_| 0.0, 0.0, 1.0).unwrap_err();
        assert_eq!(err, CoreError::BalancePointNotBracketed);
    }

    #[test]
    fn round_payoff_zero_sum_plus_overhead() {
        let rp = round_payoff(0.9, 0.8, poison, overhead);
        // Poison at 0.8 <= trim 0.9 survives.
        assert!((rp.adversary - poison(0.8)).abs() < 1e-12);
        assert!((rp.collector - (-poison(0.8) - overhead(0.9))).abs() < 1e-12);
        assert!((rp.overhead - overhead(0.9)).abs() < 1e-12);
    }

    #[test]
    fn trimmed_poison_gains_nothing() {
        let rp = round_payoff(0.5, 0.8, poison, overhead);
        assert_eq!(rp.adversary, 0.0);
        assert!((rp.collector + overhead(0.5)).abs() < 1e-12);
    }

    #[test]
    fn harder_trimming_costs_more_overhead() {
        let soft = round_payoff(0.95, 1.0, poison, overhead);
        let hard = round_payoff(0.5, 1.0, poison, overhead);
        assert!(hard.overhead > soft.overhead);
    }
}
