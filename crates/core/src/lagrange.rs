//! Bridge between game trajectories and the analytical model of Section IV.
//!
//! The analytical model treats cumulative utilities `(u_a(r), u_c(r))` as
//! generalized coordinates. This module extracts those trajectories from
//! simulated games and checks the paper's claims against them:
//!
//! * **Theorem 1** (equilibrium ⇒ constant utility velocity):
//!   [`fit_constant_velocity`] regresses a cumulative utility series on
//!   the round index and reports the maximum deviation from linearity.
//! * **Theorem 2** (equilibrium Lagrangian is free): equilibrium
//!   trajectories produce near-zero Euler–Lagrange residuals under
//!   [`trimgame_numerics::FreeLagrangian`].
//! * **Theorem 4** (Elastic ⇒ periodic relative utility):
//!   [`oscillation_metrics`] detrends `u_a − u_c` and measures zero-
//!   crossing regularity against the closed-form period.

use trimgame_numerics::lagrangian::CoupledOscillatorLagrangian;
use trimgame_numerics::ode::Trajectory;

/// Cumulative utility trajectories of both parties over rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityTrajectory {
    /// Adversary cumulative utility per round, `u_a(r)`.
    pub u_a: Vec<f64>,
    /// Collector cumulative utility per round, `u_c(r)`.
    pub u_c: Vec<f64>,
}

impl UtilityTrajectory {
    /// Builds cumulative trajectories from per-round gains.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn from_roundwise(gains_a: &[f64], gains_c: &[f64]) -> Self {
        assert_eq!(gains_a.len(), gains_c.len(), "length mismatch");
        let cum = |g: &[f64]| {
            let mut acc = 0.0;
            g.iter()
                .map(|x| {
                    acc += x;
                    acc
                })
                .collect::<Vec<f64>>()
        };
        Self {
            u_a: cum(gains_a),
            u_c: cum(gains_c),
        }
    }

    /// Number of rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.u_a.len()
    }

    /// The relative utility `u_a − u_c` per round (the oscillator's
    /// coordinate in Theorem 4).
    #[must_use]
    pub fn relative(&self) -> Vec<f64> {
        self.u_a.iter().zip(&self.u_c).map(|(a, c)| a - c).collect()
    }

    /// Converts to a [`Trajectory`] with unit round spacing and forward-
    /// difference velocities, for Euler–Lagrange residual checks.
    #[must_use]
    pub fn to_trajectory(&self) -> Trajectory {
        let n = self.rounds();
        let mut qdot = Vec::with_capacity(n);
        for i in 0..n {
            let j = if i + 1 < n { i + 1 } else { i };
            let k = if i + 1 < n { i } else { i.saturating_sub(1) };
            let denom = if j == k { 1.0 } else { (j - k) as f64 };
            qdot.push(vec![
                (self.u_a[j] - self.u_a[k]) / denom,
                (self.u_c[j] - self.u_c[k]) / denom,
            ]);
        }
        Trajectory {
            r: (0..n).map(|i| i as f64).collect(),
            q: self
                .u_a
                .iter()
                .zip(&self.u_c)
                .map(|(a, c)| vec![*a, *c])
                .collect(),
            qdot,
        }
    }
}

/// Least-squares linear fit of a series against the round index.
/// Returns `(slope, intercept, max_abs_deviation)`.
///
/// # Panics
/// Panics on series shorter than 2.
#[must_use]
pub fn fit_constant_velocity(series: &[f64]) -> (f64, f64, f64) {
    let n = series.len();
    assert!(n >= 2, "need at least two samples");
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = series.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = mean_y - slope * mean_x;
    let max_dev = series
        .iter()
        .enumerate()
        .map(|(i, &y)| (y - (intercept + slope * i as f64)).abs())
        .fold(0.0, f64::max);
    (slope, intercept, max_dev)
}

/// Theorem 1 check: is the cumulative utility series linear in `r` (within
/// `tol` × its range)?
#[must_use]
pub fn is_constant_velocity(series: &[f64], tol: f64) -> bool {
    if series.len() < 2 {
        return true;
    }
    let (_, _, max_dev) = fit_constant_velocity(series);
    let range = series.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
        - series.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    max_dev <= tol * range.max(1e-12)
}

/// Oscillation diagnostics for Theorem 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationMetrics {
    /// Number of sign changes of the detrended relative utility.
    pub zero_crossings: usize,
    /// Mean spacing (in rounds) between consecutive zero crossings —
    /// half the empirical oscillation period.
    pub mean_crossing_gap: f64,
    /// Peak absolute detrended amplitude.
    pub amplitude: f64,
}

/// Detrends the relative utility and measures its oscillation.
///
/// # Panics
/// Panics on series shorter than 4.
#[must_use]
pub fn oscillation_metrics(relative: &[f64]) -> OscillationMetrics {
    assert!(relative.len() >= 4, "need at least four samples");
    let (slope, intercept, _) = fit_constant_velocity(relative);
    let detrended: Vec<f64> = relative
        .iter()
        .enumerate()
        .map(|(i, &y)| y - (intercept + slope * i as f64))
        .collect();
    let mut crossings = Vec::new();
    for i in 1..detrended.len() {
        if detrended[i - 1].signum() != detrended[i].signum() && detrended[i - 1] != 0.0 {
            crossings.push(i);
        }
    }
    let mean_gap = if crossings.len() >= 2 {
        let total: usize = crossings.windows(2).map(|w| w[1] - w[0]).sum();
        total as f64 / (crossings.len() - 1) as f64
    } else {
        f64::INFINITY
    };
    OscillationMetrics {
        zero_crossings: crossings.len(),
        mean_crossing_gap: mean_gap,
        amplitude: detrended.iter().fold(0.0, |m, &x| m.max(x.abs())),
    }
}

/// The closed-form oscillator for Elastic games with interaction `k` and
/// unit inertial factors — used to predict the Theorem 4 period
/// `2π/√(2k)` that [`oscillation_metrics`] should detect.
#[must_use]
pub fn elastic_oscillator_lagrangian(k: f64) -> CoupledOscillatorLagrangian {
    CoupledOscillatorLagrangian::new(1.0, 1.0, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::ode::rk4_integrate;
    use trimgame_numerics::variational::max_residual;
    use trimgame_numerics::FreeLagrangian;

    #[test]
    fn cumulative_from_roundwise() {
        let traj = UtilityTrajectory::from_roundwise(&[1.0, 1.0, 1.0], &[0.5, 0.5, 0.5]);
        assert_eq!(traj.u_a, vec![1.0, 2.0, 3.0]);
        assert_eq!(traj.u_c, vec![0.5, 1.0, 1.5]);
        assert_eq!(traj.relative(), vec![0.5, 1.0, 1.5]);
        assert_eq!(traj.rounds(), 3);
    }

    #[test]
    fn theorem1_constant_gains_are_linear() {
        // Equilibrium play: constant roundwise gains -> linear cumulative
        // utility -> constant velocity.
        let gains = vec![2.0; 50];
        let traj = UtilityTrajectory::from_roundwise(&gains, &gains);
        assert!(is_constant_velocity(&traj.u_a, 1e-9));
        let (slope, intercept, dev) = fit_constant_velocity(&traj.u_a);
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 2.0).abs() < 1e-9);
        assert!(dev < 1e-9);
    }

    #[test]
    fn theorem1_violated_off_equilibrium() {
        // Quadratically growing utility is not constant-velocity.
        let series: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        assert!(!is_constant_velocity(&series, 0.01));
    }

    #[test]
    fn theorem2_equilibrium_has_zero_free_residual() {
        let gains_a = vec![1.5; 100];
        let gains_c = vec![-0.5; 100];
        let traj = UtilityTrajectory::from_roundwise(&gains_a, &gains_c).to_trajectory();
        let free = FreeLagrangian::new(vec![1.0, 1.0]);
        assert!(max_residual(&free, &traj) < 1e-9);
    }

    #[test]
    fn theorem4_oscillation_detected_with_correct_period() {
        // Integrate the Elastic oscillator and check the measured
        // half-period against 2π/√(2k) / 2.
        let k = 0.5;
        let lag = elastic_oscillator_lagrangian(k);
        let h = 0.1;
        let traj = rk4_integrate(&lag, 0.0, &[1.0, -1.0], &[0.0, 0.0], h, 2_000);
        let relative: Vec<f64> = traj.q.iter().map(|q| q[0] - q[1]).collect();
        let m = oscillation_metrics(&relative);
        assert!(m.zero_crossings >= 10, "crossings {}", m.zero_crossings);
        let period = std::f64::consts::TAU / (2.0 * k / 1.0_f64).sqrt() / h; // in samples
        assert!(
            (m.mean_crossing_gap - period / 2.0).abs() < 0.1 * period,
            "gap {} vs half period {}",
            m.mean_crossing_gap,
            period / 2.0
        );
        assert!(
            (m.amplitude - 2.0).abs() < 0.05,
            "amplitude {}",
            m.amplitude
        );
    }

    #[test]
    fn oscillation_metrics_flat_series() {
        let m = oscillation_metrics(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(m.zero_crossings, 0);
        assert!(m.mean_crossing_gap.is_infinite());
        assert_eq!(m.amplitude, 0.0);
    }

    #[test]
    fn fit_handles_two_points() {
        let (slope, intercept, dev) = fit_constant_velocity(&[1.0, 3.0]);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!(dev < 1e-12);
    }
}
