//! Tit-for-tat — Algorithm 1 and its non-deterministic-utility analysis
//! (Theorem 3).
//!
//! Tit-for-tat is a *rigid trigger strategy*: trim softly at `T̄` until the
//! quality standard detects a defection, then trim hard at `T` forever.
//! Under a non-deterministic utility (LDP noise), honest rounds can look
//! like defections, so the collector grants a redundancy margin `Red`; and
//! a defecting adversary is only *caught* with probability `1 − p`.
//! Theorem 3 gives the compliance condition: with roundwise discount `d`,
//! the adversary prefers compliance iff
//!
//! ```text
//! δ < (d − d·p) / (1 − d·p) · g_ac
//! ```
//!
//! where `δ` is the collector's per-round utility compromise and
//! `g_ac = (g_a + g_c)/2` is the symmetric cooperation gain.

use crate::error::CoreError;

/// Expected discounted gain of a compliant adversary (Eq. 10):
/// `g_com = g_0 / (1 − d)`.
///
/// # Panics
/// Panics unless `0 <= d < 1`.
#[must_use]
pub fn compliant_gain(g0: f64, d: f64) -> f64 {
    assert!((0.0..1.0).contains(&d), "discount d={d} must be in [0,1)");
    g0 / (1.0 - d)
}

/// Expected discounted gain of a defecting adversary (Eq. 11):
/// `g_def = g_ac / (1 − d·p)`.
///
/// # Panics
/// Panics unless `0 <= d < 1` and `0 <= p <= 1`.
#[must_use]
pub fn defector_gain(g_ac: f64, d: f64, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&d), "discount d={d} must be in [0,1)");
    assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
    g_ac / (1.0 - d * p)
}

/// Theorem 3's compliance margin: the largest utility compromise `δ` the
/// collector can grant while keeping compliance strictly preferable,
/// `δ_max = (d − d·p)/(1 − d·p) · g_ac`.
///
/// # Panics
/// Panics unless `0 <= d < 1` and `0 <= p <= 1`.
#[must_use]
pub fn compliance_margin(d: f64, p: f64, g_ac: f64) -> f64 {
    assert!((0.0..1.0).contains(&d), "discount d={d} must be in [0,1)");
    assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
    (d - d * p) / (1.0 - d * p) * g_ac
}

/// True iff a rational adversary complies under Theorem 3's condition
/// (`g_com > g_def` for `g_0 = g_ac − δ`).
#[must_use]
pub fn adversary_complies(delta: f64, d: f64, p: f64, g_ac: f64) -> bool {
    delta < compliance_margin(d, p, g_ac)
}

/// The symmetric cooperation gain `g_ac = (g_a + g_c) / 2` from the
/// roundwise gains of both parties.
#[must_use]
pub fn symmetric_gain(g_a: f64, g_c: f64) -> f64 {
    0.5 * (g_a + g_c)
}

/// Algorithm 1 as a stateful threshold policy.
///
/// Until triggered, trim at the soft threshold; once
/// `quality < baseline_quality − red` is observed, trim at the hard
/// threshold in every subsequent round (permanent termination of
/// cooperation).
#[derive(Debug, Clone, PartialEq)]
pub struct TitForTat {
    /// Soft (untriggered) trimming percentile `T̄`.
    pub soft: f64,
    /// Hard (triggered) trimming percentile `T`.
    pub hard: f64,
    /// Quality score of the calibration batch `Quality_Evaluation(X_0)`.
    pub baseline_quality: f64,
    /// Redundancy margin `Red` below baseline tolerated before triggering.
    pub red: f64,
    triggered_at: Option<usize>,
}

impl TitForTat {
    /// Creates the policy.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 <= hard < soft <= 1` and `red >= 0`.
    pub fn new(soft: f64, hard: f64, baseline_quality: f64, red: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&soft) || !(0.0..=1.0).contains(&hard) || hard >= soft {
            return Err(CoreError::InvalidParameter {
                name: "soft/hard",
                constraint: "0 <= hard < soft <= 1",
                value: soft,
            });
        }
        if red < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "red",
                constraint: "red >= 0",
                value: red,
            });
        }
        Ok(Self {
            soft,
            hard,
            baseline_quality,
            red,
            triggered_at: None,
        })
    }

    /// Whether the trigger has fired, and at which round.
    #[must_use]
    pub fn triggered_at(&self) -> Option<usize> {
        self.triggered_at
    }

    /// Observes round `round`'s quality and returns the trimming percentile
    /// to use *next*. Once triggered, the hard threshold is permanent
    /// (Algorithm 1's `break`).
    pub fn observe(&mut self, round: usize, quality: f64) -> f64 {
        if self.triggered_at.is_none() && quality < self.baseline_quality - self.red {
            self.triggered_at = Some(round);
        }
        self.threshold()
    }

    /// Current trimming percentile without observing anything.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        if self.triggered_at.is_some() {
            self.hard
        } else {
            self.soft
        }
    }
}

/// Probability that a cooperative game survives `rounds` rounds when each
/// round independently false-triggers with probability `q` — the
/// quantitative form of "the probability of termination keeps increasing
/// and will ultimately converge to 1 in the long run" (Section V-B), the
/// motivation for Elastic.
///
/// # Panics
/// Panics unless `0 <= q <= 1`.
#[must_use]
pub fn survival_probability(q: f64, rounds: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q={q} must be a probability");
    (1.0 - q).powi(rounds as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_margin_zero_when_never_caught() {
        // p = 1: defection is never detected, margin collapses to 0 —
        // "they would always opt to defect given the lack of consequences".
        assert_eq!(compliance_margin(0.9, 1.0, 5.0), 0.0);
        assert!(!adversary_complies(0.01, 0.9, 1.0, 5.0));
    }

    #[test]
    fn theorem3_margin_maximal_when_always_caught() {
        // p = 0: every defection is flagged; margin = d * g_ac.
        let m = compliance_margin(0.9, 0.0, 5.0);
        assert!((m - 0.9 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_margin_decreases_in_p() {
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let m = compliance_margin(0.8, p, 3.0);
            assert!(m <= last + 1e-12, "margin not decreasing at p={p}");
            last = m;
        }
    }

    #[test]
    fn theorem3_condition_equivalent_to_gain_comparison() {
        // δ < margin  <=>  g_com > g_def with g0 = g_ac - δ.
        let (d, g_ac) = (0.85, 4.0);
        for &p in &[0.0, 0.3, 0.7, 0.95] {
            for &delta in &[0.0, 0.5, 1.0, 2.0, 3.5] {
                let complies = adversary_complies(delta, d, p, g_ac);
                let g_com = compliant_gain(g_ac - delta, d);
                let g_def = defector_gain(g_ac, d, p);
                assert_eq!(
                    complies,
                    g_com > g_def,
                    "mismatch at p={p}, delta={delta}: g_com={g_com}, g_def={g_def}"
                );
            }
        }
    }

    #[test]
    fn higher_discount_tolerates_larger_compromise() {
        // Patient adversaries (d close to 1) can be asked for more.
        assert!(compliance_margin(0.95, 0.5, 2.0) > compliance_margin(0.5, 0.5, 2.0));
    }

    #[test]
    fn symmetric_gain_is_average() {
        assert_eq!(symmetric_gain(3.0, 1.0), 2.0);
    }

    #[test]
    fn algorithm1_triggers_once_and_stays() {
        let mut tft = TitForTat::new(0.91, 0.87, 0.95, 0.05).unwrap();
        assert_eq!(tft.threshold(), 0.91);
        // Quality above baseline - red: no trigger.
        assert_eq!(tft.observe(1, 0.93), 0.91);
        assert_eq!(tft.triggered_at(), None);
        // Quality dips below 0.90: trigger.
        assert_eq!(tft.observe(2, 0.89), 0.87);
        assert_eq!(tft.triggered_at(), Some(2));
        // Recovery does not restore cooperation (rigid trigger).
        assert_eq!(tft.observe(3, 1.0), 0.87);
        assert_eq!(tft.triggered_at(), Some(2));
    }

    #[test]
    fn redundancy_suppresses_false_triggers() {
        // With jittery quality around the baseline, zero redundancy
        // triggers immediately, a 10% margin does not.
        let jitter = [0.94, 0.96, 0.93, 0.95, 0.92];
        let mut strict = TitForTat::new(0.91, 0.87, 0.95, 0.0).unwrap();
        let mut tolerant = TitForTat::new(0.91, 0.87, 0.95, 0.10).unwrap();
        for (i, &q) in jitter.iter().enumerate() {
            strict.observe(i + 1, q);
            tolerant.observe(i + 1, q);
        }
        assert!(strict.triggered_at().is_some());
        assert!(tolerant.triggered_at().is_none());
    }

    #[test]
    fn construction_validation() {
        assert!(TitForTat::new(0.87, 0.91, 1.0, 0.0).is_err()); // hard > soft
        assert!(TitForTat::new(0.91, 0.87, 1.0, -0.1).is_err()); // negative red
        assert!(TitForTat::new(1.2, 0.9, 1.0, 0.0).is_err()); // out of range
    }

    #[test]
    fn survival_probability_decays_to_zero() {
        let q = 0.05;
        let s10 = survival_probability(q, 10);
        let s100 = survival_probability(q, 100);
        let s1000 = survival_probability(q, 1000);
        assert!(s10 > s100 && s100 > s1000);
        assert!(s1000 < 1e-20);
        assert_eq!(survival_probability(0.0, 1000), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn discount_of_one_rejected() {
        let _ = compliant_gain(1.0, 1.0);
    }
}
