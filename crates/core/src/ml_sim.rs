//! Multi-dimensional poisoned-collection pipeline for the k-means / SVM /
//! SOM experiments (Figs. 4–8).
//!
//! For feature-vector data the trimming game is played on the classic
//! distance scalar (Kloft & Laskov's centroid anomaly score): each point's
//! Euclidean distance to the nearest centroid of the *clean clustering*
//! (k-means on the collector's clean history — no labels needed). The
//! adversary is a colluding Sybil batch that materializes its poison as a
//! per-round point mass at a chosen score percentile of the clean
//! reference distribution; the collector trims every point whose score
//! exceeds the reference value of its threshold percentile. The
//! defender/adversary position dynamics are exactly those of
//! [`crate::simulation`]; this module adds the geometry, the retained
//! training set, and the three learners' metrics.

use crate::engine::{Engine, EngineOutcome, EngineTotals, RoundReport, Scenario};
use crate::simulation::Scheme;
use rand::Rng;
use trimgame_datasets::Dataset;
use trimgame_ml::kmeans::{KMeans, KMeansConfig};
use trimgame_ml::som::{Som, SomConfig};
use trimgame_ml::svm::{SvmConfig, SvmModel};
use trimgame_numerics::quantile::{percentile_of, Interpolation};
use trimgame_numerics::rand_ext::{seeded_rng, standard_normal};
use trimgame_numerics::stats::{euclidean, OnlineStats};
use trimgame_stream::trim::{SketchThreshold, TrimOp, TrimScratch};

/// Configuration of a poisoned multi-round collection over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlSimConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Nominal threshold `Tth` (0.9 for Fig. 4, 0.97 for Fig. 5, 0.95 for
    /// Fig. 7).
    pub tth: f64,
    /// Rounds of collection (paper: 20).
    pub rounds: usize,
    /// Attack ratio.
    pub attack_ratio: f64,
    /// Benign rows sampled per round.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Tit-for-tat redundancy on the quality scale.
    pub red: f64,
    /// Rank error of the memory-bounded threshold source. `Some(ε)`
    /// resolves the trimming cut from a GK sketch of the clean
    /// anomaly-score stream instead of the exact sorted table — the
    /// sketch-native game, where ε is evasion headroom the adversary can
    /// price (exactly as on the scalar substrate). `None` keeps the exact
    /// cut.
    pub sketch_epsilon: Option<f64>,
}

impl MlSimConfig {
    /// Fig. 4-style defaults for `scheme` at `attack_ratio`.
    #[must_use]
    pub fn new(scheme: Scheme, tth: f64, attack_ratio: f64, seed: u64) -> Self {
        Self {
            scheme,
            tth,
            rounds: 20,
            attack_ratio,
            batch: 200,
            seed,
            red: 0.05,
            sketch_epsilon: None,
        }
    }
}

/// Result of a poisoned collection: the retained training set (benign rows
/// keep their labels, poison rows carry adversary-chosen labels) plus
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CollectedSet {
    /// Retained rows as a dataset (labels preserved/poisoned).
    pub retained: Dataset,
    /// Provenance: `true` = poison row.
    pub is_poison: Vec<bool>,
    /// Poison rows received / survived across all rounds.
    pub poison_received: usize,
    /// Poison rows that survived trimming.
    pub poison_survived: usize,
    /// Benign rows falsely trimmed.
    pub benign_trimmed: usize,
}

impl CollectedSet {
    /// Fraction of retained rows that are poison.
    #[must_use]
    pub fn surviving_poison_fraction(&self) -> f64 {
        if self.is_poison.is_empty() {
            0.0
        } else {
            self.is_poison.iter().filter(|&&p| p).count() as f64 / self.is_poison.len() as f64
        }
    }
}

/// The clean reference model of the feature-vector game: the clean
/// k-means centroids and the sorted clean anomaly-score distribution.
/// Depends only on the dataset — fit it once ([`MlModel::fit`]) and
/// share it (`Arc`) across every run, worker and payoff cell on that
/// dataset; fitting is by far the most expensive part of constructing an
/// ML game.
#[derive(Debug, Clone)]
pub struct MlModel {
    centroids: Vec<Vec<f64>>,
    clean_scores: Vec<f64>,
}

impl MlModel {
    /// Fits the clean clustering and its score distribution.
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled or smaller than two rows.
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        assert!(data.labels().is_some(), "collect_poisoned needs labels");
        assert!(data.rows() >= 2, "dataset too small");
        // Anomaly score: distance to the nearest centroid of the *clean
        // clustering* (Kloft & Laskov's centroid sanitization, per
        // cluster). The collector has no labels; its public quality
        // standard is the k-means structure of the clean history — the
        // same centroids the Figs. 4/5 "Distance" metric is measured
        // against.
        let centroids = kmeans_truth(data);
        let score = |row: &[f64]| -> f64 {
            centroids
                .iter()
                .map(|c| euclidean(row, c))
                .fold(f64::INFINITY, f64::min)
        };
        let mut clean_scores: Vec<f64> = data.iter_rows().map(score).collect();
        clean_scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        Self {
            centroids,
            clean_scores,
        }
    }

    /// The clean k-means centroids.
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// The sorted clean anomaly-score distribution.
    #[must_use]
    pub fn clean_scores(&self) -> &[f64] {
        &self.clean_scores
    }

    fn score(&self, row: &[f64]) -> f64 {
        self.centroids
            .iter()
            .map(|c| euclidean(row, c))
            .fold(f64::INFINITY, f64::min)
    }

    fn ref_at(&self, p: f64) -> f64 {
        trimgame_numerics::quantile::percentile_sorted(
            &self.clean_scores,
            p.clamp(0.0, 1.0),
            Interpolation::Linear,
        )
    }
}

/// Reusable per-round buffers of the ML round step: the flat batch
/// matrix, labels, provenance, the anomaly scores and the trim scratch.
#[derive(Debug, Clone, Default)]
pub struct MlBufs {
    /// Row-major batch matrix (`received × cols`).
    rows: Vec<f64>,
    labels: Vec<usize>,
    is_poison: Vec<bool>,
    dists: Vec<f64>,
    dir: Vec<f64>,
    poison_row: Vec<f64>,
    trim: TrimScratch,
}

/// A worker's reusable ML game state: the shared clean model plus the
/// round buffers. Build one per worker ([`MlArena::new`] fits the model;
/// [`MlArena::with_model`] shares an already-fitted one) and reuse it
/// across seeded runs via [`collect_poisoned_with_scratch`].
#[derive(Debug, Clone)]
pub struct MlArena {
    model: std::sync::Arc<MlModel>,
    bufs: MlBufs,
    /// The memory-bounded threshold source of the sketch-native game,
    /// cached by its rank error: a GK sketch fed the clean anomaly-score
    /// stream once (batched). Rebuilt only when a run asks for a
    /// different ε; `None` while every run uses the exact cut.
    sketch: Option<(f64, SketchThreshold)>,
}

impl MlArena {
    /// Fits the clean model and creates empty buffers.
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled or smaller than two rows.
    #[must_use]
    pub fn new(data: &Dataset) -> Self {
        Self::with_model(std::sync::Arc::new(MlModel::fit(data)))
    }

    /// Wraps an already-fitted shared model.
    #[must_use]
    pub fn with_model(model: std::sync::Arc<MlModel>) -> Self {
        Self {
            model,
            bufs: MlBufs::default(),
            sketch: None,
        }
    }

    /// The shared clean model.
    #[must_use]
    pub fn model(&self) -> &std::sync::Arc<MlModel> {
        &self.model
    }

    /// Aligns the cached threshold sketch with a run's `sketch_epsilon`:
    /// drops it for exact-cut runs, keeps it when ε is unchanged, and
    /// otherwise ingests the clean score stream into a fresh sketch in
    /// one batched pass.
    fn ensure_sketch(&mut self, epsilon: Option<f64>) {
        match epsilon {
            None => self.sketch = None,
            Some(e) => {
                if self.sketch.as_ref().map(|(have, _)| *have) != Some(e) {
                    let mut s = SketchThreshold::new(e);
                    s.observe(&self.model.clean_scores);
                    self.sketch = Some((e, s));
                }
            }
        }
    }
}

/// The dataset-independent parameters of one ML game run.
#[derive(Debug, Clone, Copy)]
struct MlParams {
    ref_value: f64,
    expected_tail: f64,
    batch: usize,
    attack_ratio: f64,
    classes: usize,
}

impl MlParams {
    fn new(model: &MlModel, data: &Dataset, cfg: &MlSimConfig) -> Self {
        Self {
            ref_value: model.ref_at(cfg.tth.clamp(0.0, 1.0)),
            expected_tail: 1.0 - cfg.tth,
            batch: cfg.batch,
            attack_ratio: cfg.attack_ratio,
            classes: data.clusters().max(1),
        }
    }
}

/// One ML round, shared by the owned [`MlScenario`] and the arena-backed
/// cell of [`collect_poisoned_with_scratch`]: benign sample into the flat
/// batch matrix, the colluding Sybil point mass at the injection score
/// percentile, score trimming at the cut, payoff accounting. The batch
/// matrix, labels, provenance and kept mask are left in `bufs` for
/// callers that record retained rows.
#[allow(clippy::too_many_arguments)] // one arg per game ingredient, like the LDP round
fn ml_round<R: Rng + ?Sized>(
    data: &Dataset,
    model: &MlModel,
    params: &MlParams,
    bufs: &mut MlBufs,
    sketch: Option<&SketchThreshold>,
    threshold: f64,
    injection: f64,
    rng: &mut R,
) -> RoundReport {
    let injection = injection.clamp(0.0, 1.0);
    let cols = data.cols();

    // Benign sample (flat rows; draws identical to the historical
    // row-per-Vec form).
    bufs.rows.clear();
    bufs.labels.clear();
    bufs.is_poison.clear();
    bufs.rows.reserve(params.batch * cols);
    for _ in 0..params.batch {
        let i = rng.gen_range(0..data.rows());
        bufs.rows.extend_from_slice(data.row(i));
        bufs.labels.push(data.label(i).expect("labelled"));
        bufs.is_poison.push(false);
    }
    // Poison points at the injection score percentile (of the clean
    // reference distribution). The attackers are *colluding* Sybils
    // (the paper's threat model), so the round's whole poison batch is
    // a coordinated point mass: one target cluster, one direction, all
    // poison at the same spot — the placement that maximizes centroid
    // displacement at a given anomaly score. Labels are adversary
    // chosen (random class).
    let n_poison = (params.attack_ratio * params.batch as f64).round() as usize;
    let poison_dist = model.ref_at(injection);
    if n_poison > 0 {
        let centroids = model.centroids();
        let target = rng.gen_range(0..centroids.len().max(1));
        let base = &centroids[target.min(centroids.len() - 1)];
        bufs.dir.clear();
        bufs.dir.extend((0..cols).map(|_| standard_normal(rng)));
        let norm = bufs
            .dir
            .iter()
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt()
            .max(1e-12);
        bufs.poison_row.clear();
        bufs.poison_row.extend(
            base.iter()
                .zip(&bufs.dir)
                .map(|(c, d)| c + poison_dist * d / norm),
        );
        let poison_label = rng.gen_range(0..params.classes);
        for _ in 0..n_poison {
            bufs.rows.extend_from_slice(&bufs.poison_row);
            bufs.labels.push(poison_label);
            bufs.is_poison.push(true);
        }
    }

    // Score trimming at the reference value of the threshold
    // percentile, on the distance scalars (shared in-place hot path).
    // The sketch-native game resolves the cut from the GK summary of the
    // clean score stream — its ε rank error is headroom the adversary
    // (who still positions against exact quantiles) can exploit.
    bufs.dists.clear();
    bufs.dists
        .extend(bufs.rows.chunks_exact(cols).map(|r| model.score(r)));
    let cut = match sketch {
        Some(s) => s
            .cut(threshold.clamp(0.0, 1.0))
            .expect("sketch ingested the clean reference stream"),
        None => model.ref_at(threshold.clamp(0.0, 1.0)),
    };
    let stats = TrimOp::Absolute(cut).apply_in_place(&bufs.dists, &mut bufs.trim);

    // Quality: excess tail mass above the clean reference distance.
    let above = bufs.dists.iter().filter(|&&d| d > params.ref_value).count() as f64
        / bufs.dists.len() as f64;
    let quality = 1.0 - (above - params.expected_tail).max(0.0);

    let mut poison_received = 0;
    let mut poison_survived = 0;
    let mut benign_trimmed = 0;
    let received = bufs.is_poison.len();
    for (i, &is_poison) in bufs.is_poison.iter().enumerate() {
        let keep = bufs.trim.kept_mask()[i];
        if is_poison {
            poison_received += 1;
            if keep {
                poison_survived += 1;
            }
        } else if !keep {
            benign_trimmed += 1;
        }
    }

    // The defender observes the adversary's realized reference
    // percentile via the public record (complete information).
    let observed = if n_poison > 0 {
        percentile_of(model.clean_scores(), poison_dist)
    } else {
        injection
    };
    let batch_len = received.max(1);
    let mut retained_stats = OnlineStats::new();
    retained_stats.extend(bufs.trim.kept());
    RoundReport {
        quality,
        received,
        trimmed: stats.trimmed,
        poison_received,
        poison_survived,
        benign_trimmed,
        gain_adversary: poison_survived as f64 / batch_len as f64 * injection,
        overhead: benign_trimmed as f64 / batch_len as f64,
        observed_injection: Some(observed),
        threshold_value: stats.threshold_value,
        retained: retained_stats,
    }
}

/// The feature-vector collection workload as an
/// [`engine::Scenario`](crate::engine::Scenario).
///
/// The trimming game is played on the classic distance scalar: each row's
/// anomaly score is its Euclidean distance to the nearest clean centroid,
/// and both the trimming cut and the injection distance resolve
/// percentiles against the clean score distribution (the public quality
/// standard). The retained rows accumulate into the training set the
/// learners consume.
#[derive(Debug, Clone)]
pub struct MlScenario<'a> {
    data: &'a Dataset,
    arena: MlArena,
    params: MlParams,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    is_poison: Vec<bool>,
}

impl<'a> MlScenario<'a> {
    /// Builds the scenario over the clean dataset (fits the clean model;
    /// see [`MlScenario::with_arena`] to share a fitted one).
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled or smaller than two rows.
    #[must_use]
    pub fn new(data: &'a Dataset, cfg: &MlSimConfig) -> Self {
        Self::with_arena(data, MlArena::new(data), cfg)
    }

    /// Builds the scenario over a pre-fitted arena (the model must have
    /// been fitted on `data`).
    #[must_use]
    pub fn with_arena(data: &'a Dataset, mut arena: MlArena, cfg: &MlSimConfig) -> Self {
        let params = MlParams::new(&arena.model, data, cfg);
        arena.ensure_sketch(cfg.sketch_epsilon);
        Self {
            data,
            arena,
            params,
            rows: Vec::new(),
            labels: Vec::new(),
            is_poison: Vec::new(),
        }
    }

    /// Converts the accumulated retained rows into a [`CollectedSet`] for
    /// `scheme`, taking the received/trimmed counts from the engine run's
    /// [`EngineTotals`].
    #[must_use]
    pub fn into_collected(self, scheme: Scheme, totals: &EngineTotals) -> CollectedSet {
        let retained = Dataset::from_rows(
            format!("{}-{}", self.data.name(), scheme.name()),
            &self.rows,
            Some(self.labels),
            self.data.clusters(),
        );
        debug_assert_eq!(
            totals.poison_survived,
            self.is_poison.iter().filter(|&&p| p).count(),
            "engine totals and retained provenance must agree"
        );
        CollectedSet {
            retained,
            is_poison: self.is_poison,
            poison_received: totals.poison_received,
            poison_survived: totals.poison_survived,
            benign_trimmed: totals.benign_trimmed,
        }
    }
}

impl Scenario for MlScenario<'_> {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        _round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        let arena = &mut self.arena;
        let report = ml_round(
            self.data,
            &arena.model,
            &self.params,
            &mut arena.bufs,
            arena.sketch.as_ref().map(|(_, s)| s),
            threshold,
            injection,
            rng,
        );
        // Accumulate the retained training set.
        let bufs = &self.arena.bufs;
        let cols = self.data.cols();
        for (i, keep) in bufs.trim.kept_mask().iter().enumerate() {
            if *keep {
                self.rows.push(bufs.rows[i * cols..(i + 1) * cols].to_vec());
                self.labels.push(bufs.labels[i]);
                self.is_poison.push(bufs.is_poison[i]);
            }
        }
        report
    }
}

/// The arena-backed ML cell: one seeded run borrowing a worker's
/// [`MlArena`], with no retained-set accumulation — the payoff-grid cell
/// shape.
#[derive(Debug)]
struct MlCell<'a> {
    data: &'a Dataset,
    arena: &'a mut MlArena,
    params: MlParams,
}

impl Scenario for MlCell<'_> {
    fn play_round<R: Rng + ?Sized>(
        &mut self,
        _round: usize,
        threshold: f64,
        injection: f64,
        rng: &mut R,
    ) -> RoundReport {
        let arena = &mut *self.arena;
        ml_round(
            self.data,
            &arena.model,
            &self.params,
            &mut arena.bufs,
            arena.sketch.as_ref().map(|(_, s)| s),
            threshold,
            injection,
            rng,
        )
    }
}

/// Runs the poisoned collection and returns the retained training set.
///
/// # Panics
/// Panics if the dataset is unlabelled or smaller than the batch size.
#[must_use]
pub fn collect_poisoned(data: &Dataset, cfg: &MlSimConfig) -> CollectedSet {
    collect_poisoned_with_model(data, cfg, &std::sync::Arc::new(MlModel::fit(data)))
}

/// [`collect_poisoned`] over an already-fitted shared clean model — the
/// retained-set path of the figure experiments, which replay many
/// (scheme, ratio, seed) cells over one dataset: the k-means fit happens
/// once per dataset instead of once per cell, and the cells fan out
/// across workers without contention (the model is behind an `Arc`).
/// Results are bit-identical to [`collect_poisoned`] on a freshly fitted
/// model.
///
/// # Panics
/// Panics if the dataset is unlabelled or smaller than the batch size
/// (the model must have been fitted on `data`).
#[must_use]
pub fn collect_poisoned_with_model(
    data: &Dataset,
    cfg: &MlSimConfig,
    model: &std::sync::Arc<MlModel>,
) -> CollectedSet {
    let defender = cfg.scheme.defender(cfg.tth, 1.0, cfg.red);
    let adversary = cfg.scheme.adversary(cfg.tth);
    let mut rng = seeded_rng(cfg.seed);
    let arena = MlArena::with_model(std::sync::Arc::clone(model));
    let scenario = MlScenario::with_arena(data, arena, cfg);
    let engine = Engine::with_policies(scenario, Box::new(defender), Box::new(adversary))
        .with_policy_seed(trimgame_numerics::rand_ext::derive_seed(
            cfg.seed,
            crate::simulation::POLICY_SEED_STREAM,
        ));
    let out = engine.run(cfg.rounds, &mut rng);
    out.scenario.into_collected(cfg.scheme, &out.totals)
}

/// Runs the poisoned collection with arbitrary boxed policies — randomized
/// defenders and board-driven attackers play the feature-vector game
/// exactly as the closed roster does (the anomaly-score substrate is
/// unchanged; only the position dynamics differ). Pass `board` to share a
/// [`PublicBoard`](trimgame_stream::board::PublicBoard) the attacker
/// already holds a clone of (an
/// [`AdaptiveAttacker`](crate::adversary::AdaptiveAttacker) without it
/// reads an empty history and degenerates to its fallback). `cfg.scheme`
/// still labels the resulting [`CollectedSet`]. The defender sub-stream
/// is seeded from `cfg.seed` via
/// [`POLICY_SEED_STREAM`](crate::simulation::POLICY_SEED_STREAM).
///
/// # Panics
/// Panics if the dataset is unlabelled or smaller than the batch size.
#[must_use]
pub fn collect_poisoned_with(
    data: &Dataset,
    cfg: &MlSimConfig,
    defender: Box<dyn crate::strategy::ThresholdPolicy>,
    adversary: Box<dyn crate::adversary::AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
) -> CollectedSet {
    let out = collect_poisoned_outcome(data, cfg, defender, adversary, board);
    out.scenario.into_collected(cfg.scheme, &out.totals)
}

/// Runs the poisoned collection and returns the raw
/// [`EngineOutcome`] — utility trajectories, totals, board and the
/// scenario with its retained payload. This is the entry point the
/// substrate-generic equilibrium estimator plays the feature-vector game
/// through: the collector's per-round loss is `−u_c / rounds`, exactly as
/// on the scalar substrate. Use
/// [`MlScenario::into_collected`] on the result to recover a
/// [`CollectedSet`].
///
/// # Panics
/// Panics if the dataset is unlabelled or smaller than the batch size.
#[must_use]
pub fn collect_poisoned_outcome<'a>(
    data: &'a Dataset,
    cfg: &MlSimConfig,
    defender: Box<dyn crate::strategy::ThresholdPolicy>,
    adversary: Box<dyn crate::adversary::AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
) -> EngineOutcome<MlScenario<'a>> {
    let mut rng = seeded_rng(cfg.seed);
    let scenario = MlScenario::new(data, cfg);
    let mut engine = Engine::with_policies(scenario, defender, adversary).with_policy_seed(
        trimgame_numerics::rand_ext::derive_seed(cfg.seed, crate::simulation::POLICY_SEED_STREAM),
    );
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run(cfg.rounds, &mut rng)
}

/// The allocation-free ML run: one seeded collection over the
/// worker-owned [`MlArena`] (shared fitted model + round buffers)
/// recording into the reusable
/// [`EngineScratch`](crate::engine::EngineScratch). No retained-set
/// accumulation; trajectory finals and totals are bit-identical to
/// [`collect_poisoned_outcome`] — the ML payoff-grid cell path.
///
/// # Panics
/// Panics if the arena's model does not match `data` or the config is
/// degenerate.
#[must_use]
pub fn collect_poisoned_with_scratch(
    data: &Dataset,
    cfg: &MlSimConfig,
    defender: Box<dyn crate::strategy::ThresholdPolicy>,
    adversary: Box<dyn crate::adversary::AttackPolicy>,
    board: Option<trimgame_stream::board::PublicBoard>,
    arena: &mut MlArena,
    scratch: &mut crate::engine::EngineScratch,
) -> crate::engine::EngineRun {
    let mut rng = seeded_rng(cfg.seed);
    let params = MlParams::new(&arena.model, data, cfg);
    arena.ensure_sketch(cfg.sketch_epsilon);
    let cell = MlCell {
        data,
        arena,
        params,
    };
    let mut engine = Engine::with_policies(cell, defender, adversary).with_policy_seed(
        trimgame_numerics::rand_ext::derive_seed(cfg.seed, crate::simulation::POLICY_SEED_STREAM),
    );
    if let Some(board) = board {
        engine = engine.with_board(board);
    }
    engine.run_with_scratch(cfg.rounds, &mut rng, scratch)
}

/// The sorted clean anomaly-score distribution of `data`: each row's
/// distance to its nearest [`kmeans_truth`] centroid. This is the
/// reference quantile table [`MlScenario`] resolves threshold and
/// injection percentiles against — exposed so the equilibrium estimator's
/// closed-form benchmark can share the exact same primitives. (One
/// [`MlModel::fit`] provides both pieces when the centroids are needed
/// too.)
#[must_use]
pub fn clean_score_distribution(data: &Dataset) -> Vec<f64> {
    MlModel::fit(data).clean_scores
}

/// Ground-truth centroids for the Figs. 4/5 "Distance" metric: the
/// k-means clustering of the *clean, unpoisoned* dataset (the paper's
/// `Groundtruth` scheme — "the discrepancy between the actual centroid of
/// the clustering and the ground truth"). Deterministic for a given clean
/// dataset.
#[must_use]
pub fn kmeans_truth(clean: &Dataset) -> Vec<Vec<f64>> {
    let k = clean.clusters().max(1);
    let mut rng = seeded_rng(0x7471_u64); // fixed: truth depends only on the data
    KMeans::fit_best(clean, KMeansConfig::new(k), 8, &mut rng)
        .centroids()
        .to_vec()
}

/// Fig. 4/5 metrics against precomputed ground-truth centroids: k-means
/// SSE on the retained set and the matched centroid distance. Lloyd is
/// warm-started from the truth centroids, so the Distance is the
/// displacement the poisoned collection induces on the clean solution —
/// deterministic, with no initialization noise.
#[must_use]
pub fn kmeans_metrics_vs(collected: &CollectedSet, truth: &[Vec<f64>]) -> (f64, f64) {
    let k = truth.len().max(1);
    let model = KMeans::fit_from(&collected.retained, truth, KMeansConfig::new(k));
    (model.sse(), model.centroid_distance_to(truth))
}

/// Convenience wrapper computing the ground truth on the fly; prefer
/// [`kmeans_truth`] + [`kmeans_metrics_vs`] when sweeping many schemes
/// over one dataset.
#[must_use]
pub fn kmeans_metrics(collected: &CollectedSet, clean: &Dataset) -> (f64, f64) {
    let truth = kmeans_truth(clean);
    kmeans_metrics_vs(collected, &truth)
}

/// Fig. 7 metric: SVM accuracy on the clean dataset after training on the
/// collected set.
#[must_use]
pub fn svm_accuracy(collected: &CollectedSet, clean: &Dataset, seed: u64) -> f64 {
    let mut rng = seeded_rng(seed);
    let model = SvmModel::fit(&collected.retained, SvmConfig::default(), &mut rng);
    model.accuracy(clean)
}

/// Fig. 8 metrics: SOM class structure — number of perfectly separated
/// classes and per-class footprints when the clean data is mapped onto a
/// SOM trained on the collected set.
#[must_use]
pub fn som_structure(
    collected: &CollectedSet,
    clean: &Dataset,
    config: SomConfig,
    seed: u64,
) -> (usize, Vec<usize>) {
    let mut rng = seeded_rng(seed);
    let som = Som::fit(&collected.retained, config, &mut rng);
    (som.separated_classes(clean), som.class_footprint(clean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_datasets::synthetic::{GaussianComponent, GmmSpec};

    fn blobs(seed: u64) -> Dataset {
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-8.0, 0.0], 1.0, 1.0),
            GaussianComponent::spherical(vec![8.0, 0.0], 1.0, 1.0),
        ]);
        spec.generate("blobs", 600, &mut seeded_rng(seed))
    }

    fn small_cfg(scheme: Scheme, ratio: f64) -> MlSimConfig {
        MlSimConfig {
            scheme,
            tth: 0.9,
            rounds: 5,
            attack_ratio: ratio,
            batch: 100,
            seed: 7,
            red: 0.05,
            sketch_epsilon: None,
        }
    }

    #[test]
    fn ostrich_retains_all_poison() {
        let data = blobs(1);
        let set = collect_poisoned(&data, &small_cfg(Scheme::Ostrich, 0.2));
        assert_eq!(set.poison_survived, set.poison_received);
        assert_eq!(set.benign_trimmed, 0);
        assert!(set.surviving_poison_fraction() > 0.1);
    }

    #[test]
    fn trimming_schemes_reduce_poison_damage() {
        // Poison survives under Elastic too, but sits at lower distance
        // percentiles; compare kmeans centroid displacement instead of raw
        // counts.
        let data = blobs(2);
        let ostrich = collect_poisoned(&data, &small_cfg(Scheme::Ostrich, 0.4));
        let elastic = collect_poisoned(&data, &small_cfg(Scheme::Elastic(0.5), 0.4));
        let (_, d_ostrich) = kmeans_metrics(&ostrich, &data);
        let (_, d_elastic) = kmeans_metrics(&elastic, &data);
        assert!(
            d_elastic < d_ostrich,
            "elastic {d_elastic} should beat ostrich {d_ostrich}"
        );
    }

    #[test]
    fn collected_set_has_consistent_provenance() {
        let data = blobs(3);
        let set = collect_poisoned(&data, &small_cfg(Scheme::Baseline09, 0.2));
        assert_eq!(set.retained.rows(), set.is_poison.len());
        let survived = set.is_poison.iter().filter(|&&p| p).count();
        assert_eq!(survived, set.poison_survived);
        assert!(set.poison_received >= set.poison_survived);
    }

    #[test]
    fn zero_attack_keeps_everything_clean() {
        let data = blobs(4);
        let set = collect_poisoned(&data, &small_cfg(Scheme::TitForTat, 0.0));
        assert_eq!(set.poison_received, 0);
        assert_eq!(set.surviving_poison_fraction(), 0.0);
        // k-means on clean retained data lands near the truth.
        let (_, dist) = kmeans_metrics(&set, &data);
        assert!(dist < 1.0, "distance {dist}");
    }

    #[test]
    fn svm_accuracy_degrades_with_unchecked_poison() {
        let data = blobs(5);
        let clean = collect_poisoned(&data, &small_cfg(Scheme::TitForTat, 0.0));
        let dirty = collect_poisoned(&data, &small_cfg(Scheme::Ostrich, 0.5));
        let acc_clean = svm_accuracy(&clean, &data, 17);
        let acc_dirty = svm_accuracy(&dirty, &data, 17);
        assert!(
            acc_dirty <= acc_clean + 0.02,
            "clean {acc_clean}, dirty {acc_dirty}"
        );
    }

    #[test]
    fn som_structure_reports_classes() {
        let data = blobs(6);
        let set = collect_poisoned(&data, &small_cfg(Scheme::Elastic(0.1), 0.1));
        let (separated, footprint) = som_structure(&set, &data, SomConfig::small(), 19);
        assert!(footprint.len() >= 2);
        assert!(separated <= footprint.len());
        assert!(footprint.iter().all(|&f| f > 0));
    }

    #[test]
    fn deterministic_under_seed() {
        let data = blobs(7);
        let a = collect_poisoned(&data, &small_cfg(Scheme::Elastic(0.5), 0.2));
        let b = collect_poisoned(&data, &small_cfg(Scheme::Elastic(0.5), 0.2));
        assert_eq!(a.retained.values(), b.retained.values());
        assert_eq!(a.poison_survived, b.poison_survived);
    }

    #[test]
    fn randomized_defender_collects_on_features() {
        use crate::strategy::RandomizedDefender;
        let data = blobs(8);
        let cfg = small_cfg(Scheme::Baseline09, 0.3);
        let run_once = || {
            collect_poisoned_with(
                &data,
                &cfg,
                Box::new(RandomizedDefender::new(&[0.85, 0.95], &[0.5, 0.5]).unwrap()),
                Box::new(cfg.scheme.adversary(cfg.tth)),
                None,
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.retained.values(), b.retained.values());
        assert_eq!(a.poison_survived, b.poison_survived);
        assert!(a.retained.rows() > 0);
        assert_eq!(a.retained.rows(), a.is_poison.len());
    }

    #[test]
    fn ml_scratch_cells_replay_the_outcome_path_bit_for_bit() {
        use crate::engine::EngineScratch;
        use crate::strategy::DefenderPolicy;
        let data = blobs(11);
        let mut arena = MlArena::new(&data);
        let mut scratch = EngineScratch::new();
        // The sketch column exercises the arena's threshold-sketch cache:
        // build, reuse, drop, rebuild.
        for (tth, seed, sketch_epsilon) in [
            (0.88, 5u64, None),
            (0.94, 6, Some(0.03)),
            (0.94, 6, Some(0.03)),
            (0.88, 5, None),
            (0.88, 5, Some(0.01)),
        ] {
            let cfg = MlSimConfig {
                scheme: Scheme::BaselineStatic,
                tth,
                rounds: 4,
                attack_ratio: 0.25,
                batch: 80,
                seed,
                red: 0.05,
                sketch_epsilon,
            };
            let policies = || {
                (
                    Box::new(DefenderPolicy::Fixed { tth })
                        as Box<dyn crate::strategy::ThresholdPolicy>,
                    Box::new(cfg.scheme.adversary(tth)) as Box<dyn crate::adversary::AttackPolicy>,
                )
            };
            let (d, a) = policies();
            let owned = collect_poisoned_outcome(&data, &cfg, d, a, None);
            let (d, a) = policies();
            let lean =
                collect_poisoned_with_scratch(&data, &cfg, d, a, None, &mut arena, &mut scratch);
            assert_eq!(lean.totals, owned.totals, "tth={tth} seed={seed}");
            assert_eq!(Some(&lean.final_u_a), owned.utilities.u_a.last());
            assert_eq!(Some(&lean.final_u_c), owned.utilities.u_c.last());
            assert_eq!(scratch.thresholds(), owned.thresholds.as_slice());
            assert_eq!(scratch.injections(), owned.injections.as_slice());
        }
    }

    #[test]
    fn ml_sketch_cut_bounds_extra_evasion_by_epsilon() {
        // Sketch-native feature-vector game: with the trimming cut
        // resolved from a GK summary of the clean anomaly scores, the
        // adversary (who positions against exact quantiles) gains at most
        // ε of extra evasion headroom above the threshold percentile; the
        // exact path grants only interpolation slack. Mirrors the scalar
        // substrate's contract.
        use crate::adversary::AdversaryPolicy;
        use crate::strategy::DefenderPolicy;
        let data = blobs(12);
        let tth = 0.9;
        let eps = 0.02;
        let margin_of = |sketch_epsilon: Option<f64>| -> f64 {
            let mut extra: f64 = 0.0;
            let mut a = tth;
            while a <= tth + 2.5 * eps {
                let mut cfg = small_cfg(Scheme::BaselineStatic, 0.2);
                cfg.rounds = 1;
                cfg.sketch_epsilon = sketch_epsilon;
                let out = collect_poisoned_outcome(
                    &data,
                    &cfg,
                    Box::new(DefenderPolicy::Fixed { tth }),
                    Box::new(AdversaryPolicy::Fixed { percentile: a }),
                    None,
                );
                assert!(out.totals.poison_received > 0);
                if out.totals.poison_survived == out.totals.poison_received {
                    extra = extra.max(a - tth);
                }
                a += eps / 8.0;
            }
            extra
        };
        let exact_margin = margin_of(None);
        let sketch_margin = margin_of(Some(eps));
        // One grid step of the 600-row reference table is ~1.7e-3.
        assert!(exact_margin <= 5e-3, "exact margin {exact_margin}");
        assert!(
            sketch_margin <= eps + 5e-3,
            "sketch margin {sketch_margin} exceeds eps {eps}"
        );
    }

    #[test]
    fn adaptive_attacker_sees_the_shared_board() {
        use crate::adversary::AdaptiveAttacker;
        use crate::strategy::DefenderPolicy;
        use trimgame_stream::board::PublicBoard;
        let data = blobs(9);
        let cfg = small_cfg(Scheme::Baseline09, 0.3);
        let board = PublicBoard::new();
        let attacker = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        let set = collect_poisoned_with(
            &data,
            &cfg,
            Box::new(DefenderPolicy::Fixed { tth: cfg.tth }),
            Box::new(attacker),
            Some(board.clone()),
        );
        // The engine posted every round onto the shared board...
        assert_eq!(board.len(), cfg.rounds);
        // ...so after the fallback opener the attacker rode just below the
        // fixed cut and its poison survived (Fixed keeps score <= cut).
        assert!(set.poison_survived > 0);
    }
}
