//! `trim-core` — the paper's primary contribution: an interactive
//! game-theoretic model for online data manipulation attacks and the
//! trimming defense, with the Tit-for-tat and Elastic strategies derived
//! from its analytical (least-action) model.
//!
//! Map from paper sections to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | §III-B payoffs, balance point `x_L` | [`payoff`] |
//! | §III-C strategy space `[x_L, x_R]`, mixed strategies | [`space`] |
//! | §III-D Table I ultimatum game | [`matrix`] |
//! | §IV analytical model, Theorems 1–2 | [`lagrange`] |
//! | §V-A Tit-for-tat (Algorithm 1), Theorem 3 | [`titfortat`] |
//! | §V-B Elastic (Algorithm 2), Definition 2, Theorem 4 | [`elastic`] |
//! | §VI-A scheme roster (Ostrich, baselines, ours) | [`strategy`], [`adversary`] |
//! | Stackelberg equilibrium computation | [`equilibrium`] |
//! | Fig. 3 unified round loop (`Engine<S: Scenario>`) | [`engine`] |
//! | §VI-B/C/D experiment drivers (k-means/SVM/SOM, Table III/IV) | [`simulation`], [`ml_sim`] |
//! | §VI-E LDP case study (Fig. 9) | [`ldp_sim`] |

pub mod adversary;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod equilibrium;
pub mod error;
pub mod lagrange;
pub mod ldp_sim;
pub mod matrix;
pub mod ml_sim;
pub mod payoff;
pub mod simulation;
pub mod space;
pub mod strategy;
pub mod titfortat;
pub mod variants;

pub use adversary::{AdaptiveAttacker, AdversaryPolicy, AttackPolicy};
pub use elastic::{CoupledDynamics, ElasticThreshold};
pub use engine::{
    Engine, EngineOutcome, EngineRun, EngineScratch, EngineStep, EngineStepper, EngineTotals,
    RoundReport, Scenario,
};
pub use equilibrium::StackelbergSolver;
pub use error::CoreError;
pub use matrix::{MatrixGame, MixedEquilibrium, Move, PayoffMatrix, UltimatumPayoffs};
pub use payoff::BalancePoint;
pub use simulation::{GameConfig, GameResult, Scheme};
pub use space::{MixedPoint, MixedSupport, StrategySpace};
pub use strategy::{DefenderPolicy, RandomizedDefender, ThresholdPolicy};
pub use titfortat::{compliance_margin, TitForTat};
pub use variants::{GenerousTitForTat, TitForTwoTats, TriggerVariant};
