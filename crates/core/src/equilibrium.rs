//! Stackelberg equilibrium computation over the strategy space.
//!
//! In the sequential (leader–follower) game the collector commits to a
//! trimming position `x_c ∈ [x_L, x_R]` and the adversary best-responds
//! with an injection `x_a`. Since poison survives iff `x_a ≤ x_c` and
//! damage increases with `x_a`, the follower's best response is to ride
//! just below the threshold (`x_a = x_c`); the leader therefore solves
//!
//! ```text
//! min_{x_c}  damage(x_c) + overhead(x_c)
//! ```
//!
//! which the solver does by golden-section search (both curves are assumed
//! unimodal on the interval, as in Fig. 1a) with a grid fallback check.

use crate::error::CoreError;
use crate::space::StrategySpace;

/// The computed Stackelberg equilibrium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackelbergEquilibrium {
    /// The leader's (collector's) trimming position.
    pub x_c: f64,
    /// The follower's (adversary's) best-response injection.
    pub x_a: f64,
    /// The leader's equilibrium loss `damage + overhead`.
    pub leader_loss: f64,
}

/// Golden-section + grid solver for the leader's problem.
pub struct StackelbergSolver<D, O>
where
    D: Fn(f64) -> f64,
    O: Fn(f64) -> f64,
{
    space: StrategySpace,
    damage: D,
    overhead: O,
}

impl<D, O> std::fmt::Debug for StackelbergSolver<D, O>
where
    D: Fn(f64) -> f64,
    O: Fn(f64) -> f64,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackelbergSolver")
            .field("space", &self.space)
            .finish_non_exhaustive()
    }
}

impl<D, O> StackelbergSolver<D, O>
where
    D: Fn(f64) -> f64,
    O: Fn(f64) -> f64,
{
    /// Creates a solver over `space` with the given damage (increasing)
    /// and overhead (decreasing) curves.
    #[must_use]
    pub fn new(space: StrategySpace, damage: D, overhead: O) -> Self {
        Self {
            space,
            damage,
            overhead,
        }
    }

    fn leader_loss(&self, x: f64) -> f64 {
        (self.damage)(x) + (self.overhead)(x)
    }

    /// Solves for the equilibrium.
    ///
    /// # Errors
    /// Returns [`CoreError::NoConvergence`] if the search degenerates
    /// (non-finite losses).
    pub fn solve(&self) -> Result<StackelbergEquilibrium, CoreError> {
        let (a, b) = (self.space.x_l, self.space.x_r);
        // Golden-section search for the minimum of leader_loss.
        let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
        let mut lo = a;
        let mut hi = b;
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = self.leader_loss(x1);
        let mut f2 = self.leader_loss(x2);
        for _ in 0..200 {
            if !(f1.is_finite() && f2.is_finite()) {
                return Err(CoreError::NoConvergence { iterations: 200 });
            }
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = self.leader_loss(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = self.leader_loss(x2);
            }
            if (hi - lo).abs() < 1e-12 {
                break;
            }
        }
        let mut best_x = 0.5 * (lo + hi);
        let mut best_f = self.leader_loss(best_x);
        // Grid fallback guards against multimodal curves.
        for i in 0..=400 {
            let x = a + (b - a) * i as f64 / 400.0;
            let f = self.leader_loss(x);
            if f < best_f {
                best_f = f;
                best_x = x;
            }
        }
        Ok(StackelbergEquilibrium {
            x_c: best_x,
            x_a: best_x, // follower rides the threshold
            leader_loss: best_f,
        })
    }

    /// The follower's best response to an arbitrary leader commitment: the
    /// most damaging surviving position, i.e. `x_c` itself (any
    /// `x_a > x_c` is trimmed and earns zero).
    #[must_use]
    pub fn best_response(&self, x_c: f64) -> f64 {
        x_c.clamp(self.space.x_l, self.space.x_r)
    }

    /// The leader's loss `damage + overhead` at commitment `x` (clamped
    /// into the strategy space) — the curve [`StackelbergSolver::solve`]
    /// minimizes, exposed for finite-support comparisons.
    #[must_use]
    pub fn loss_at(&self, x: f64) -> f64 {
        self.leader_loss(x.clamp(self.space.x_l, self.space.x_r))
    }

    /// The best pure commitment restricted to a finite set of threshold
    /// `atoms`: `min` over the (clamped) atoms of the leader loss, with
    /// the follower riding each threshold. This is the deterministic
    /// benchmark the empirical equilibrium estimator compares mixed play
    /// against — the mixed minimax value over the same atoms is never
    /// worse, and the difference is the defender's randomization
    /// advantage. Returns `+∞` for an empty atom set.
    #[must_use]
    pub fn pure_commitment_value(&self, atoms: &[f64]) -> f64 {
        atoms
            .iter()
            .map(|&x| self.loss_at(x))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> StrategySpace {
        StrategySpace::new(0.85, 1.0).unwrap()
    }

    #[test]
    fn equilibrium_balances_marginals() {
        // damage(x) = 2(x - 0.85), overhead(x) = (1 - x)^2 / 0.15.
        // leader loss f(x) = 2(x-0.85) + (1-x)^2/0.15; f'(x) = 2 - 2(1-x)/0.15
        // = 0  =>  1 - x = 0.15  =>  x = 0.85 ... boundary-ish; pick curves
        // with an interior optimum instead:
        let damage = |x: f64| 4.0 * (x - 0.85);
        let overhead = |x: f64| (1.0 - x) * (1.0 - x) / 0.05;
        // f'(x) = 4 - 2(1-x)/0.05 = 0 => 1-x = 0.1 => x = 0.9.
        let solver = StackelbergSolver::new(space(), damage, overhead);
        let eq = solver.solve().unwrap();
        assert!((eq.x_c - 0.9).abs() < 1e-3, "x_c = {}", eq.x_c);
        assert_eq!(eq.x_a, eq.x_c);
        assert!((eq.leader_loss - (damage(eq.x_c) + overhead(eq.x_c))).abs() < 1e-9);
    }

    #[test]
    fn pure_damage_pushes_to_hard_end() {
        // No overhead: the collector trims as hard as allowed.
        let solver = StackelbergSolver::new(space(), |x| x, |_| 0.0);
        let eq = solver.solve().unwrap();
        assert!((eq.x_c - 0.85).abs() < 1e-6);
    }

    #[test]
    fn pure_overhead_pushes_to_soft_end() {
        // No damage: never trim more than necessary.
        let solver = StackelbergSolver::new(space(), |_| 0.0, |x| 1.0 - x);
        let eq = solver.solve().unwrap();
        assert!((eq.x_c - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equilibrium_beats_grid_alternatives() {
        let damage = |x: f64| (x - 0.85).powi(2) * 30.0;
        let overhead = |x: f64| (1.0 - x).sqrt();
        let solver = StackelbergSolver::new(space(), damage, overhead);
        let eq = solver.solve().unwrap();
        for i in 0..=100 {
            let x = 0.85 + 0.15 * i as f64 / 100.0;
            assert!(
                eq.leader_loss <= damage(x) + overhead(x) + 1e-9,
                "beaten at x={x}"
            );
        }
    }

    #[test]
    fn best_response_clamps_to_space() {
        let solver = StackelbergSolver::new(space(), |x| x, |x| 1.0 - x);
        assert_eq!(solver.best_response(0.5), 0.85);
        assert_eq!(solver.best_response(1.5), 1.0);
        assert_eq!(solver.best_response(0.9), 0.9);
    }

    #[test]
    fn pure_commitment_over_atoms_bounds_the_continuum() {
        let damage = |x: f64| 4.0 * (x - 0.85);
        let overhead = |x: f64| (1.0 - x) * (1.0 - x) / 0.05;
        let solver = StackelbergSolver::new(space(), damage, overhead);
        let continuum = solver.solve().unwrap().leader_loss;
        let grid = solver.pure_commitment_value(&[0.86, 0.9, 0.98]);
        // The optimum 0.9 is on the grid, so the restricted value matches.
        assert!((grid - continuum).abs() < 1e-9);
        // A grid missing the optimum can only be worse.
        let coarse = solver.pure_commitment_value(&[0.86, 0.98]);
        assert!(coarse > continuum);
        // Atoms outside the space clamp; empty grids are infinitely bad.
        assert!((solver.loss_at(0.5) - solver.loss_at(0.85)).abs() < 1e-12);
        assert_eq!(solver.pure_commitment_value(&[]), f64::INFINITY);
    }

    #[test]
    fn non_finite_curves_error() {
        let solver = StackelbergSolver::new(space(), |_| f64::NAN, |_| 0.0);
        assert!(matches!(
            solver.solve(),
            Err(CoreError::NoConvergence { .. })
        ));
    }
}
