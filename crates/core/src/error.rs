//! Error type for `trim-core`.

use std::fmt;

/// Errors raised by the game-theoretic core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was outside its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The balance point `P(x_L) = T(x_L)` could not be bracketed on the
    /// supplied domain.
    BalancePointNotBracketed,
    /// Best-response iteration failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                constraint,
                value,
            } => write!(f, "invalid parameter {name}={value}: requires {constraint}"),
            CoreError::BalancePointNotBracketed => {
                write!(
                    f,
                    "poison-loss and trimming-overhead curves do not cross on the domain"
                )
            }
            CoreError::NoConvergence { iterations } => {
                write!(
                    f,
                    "best-response iteration did not converge in {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// `a > b` under `partial_cmp`, false for NaN — the explicit form for
/// validation guards, where a NaN parameter must fail the check.
pub(crate) fn strictly_greater(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Greater)
}

/// `a < b` under `partial_cmp`, false for NaN (see [`strictly_greater`]).
pub(crate) fn strictly_less(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Less)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::InvalidParameter {
            name: "k",
            constraint: "0 < k < 1",
            value: 2.0,
        };
        assert!(e.to_string().contains("k=2"));
        assert!(CoreError::BalancePointNotBracketed
            .to_string()
            .contains("cross"));
        assert!(CoreError::NoConvergence { iterations: 5 }
            .to_string()
            .contains('5'));
    }
}
