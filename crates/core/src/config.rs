//! Experiment-scaling knobs shared by simulations and the bench harness.
//!
//! The paper averages over 100 repetitions on a large desktop; this
//! workspace defaults to laptop-friendly sizes and lets the environment
//! restore paper scale:
//!
//! * `TRIMGAME_REPS` — repetitions per experiment point (default 10;
//!   paper: 100).
//! * `TRIMGAME_SCALE` — divisor on the large dataset instance counts
//!   (default 64; 1 reproduces full Table II sizes).

/// Repetitions per experiment point (`TRIMGAME_REPS`, default 10).
#[must_use]
pub fn repetitions() -> usize {
    read_env("TRIMGAME_REPS", 10)
}

/// Instance-count divisor for the large datasets (`TRIMGAME_SCALE`,
/// default 64).
#[must_use]
pub fn dataset_scale() -> usize {
    read_env("TRIMGAME_SCALE", 64)
}

fn read_env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        assert!(repetitions() > 0);
        assert!(dataset_scale() > 0);
    }

    #[test]
    fn read_env_ignores_garbage() {
        assert_eq!(read_env("TRIMGAME_DOES_NOT_EXIST", 7), 7);
    }
}
