//! Table I — the one-shot (ultimatum) collection game and its equilibrium
//! (Section III-D).
//!
//! With payoff constants `P̄ > T̄ ≫ P > T > 0` (hard/soft poisoning gains
//! and hard/soft trimming overheads), the single-round strategic game is:
//!
//! |               | Adversary Soft      | Adversary Hard      |
//! |---------------|---------------------|---------------------|
//! | Collector Soft| `(−P − T, P)`       | `(−P̄ − T, P̄)`      |
//! | Collector Hard| `(−T̄, 0)`           | `(−T̄, 0)`           |
//!
//! A hard collector trims at `x_L`, removing all rational poison (adversary
//! gets 0) at overhead `T̄`; a soft collector trims at `x_R`, paying the
//! small overhead `T` but conceding whatever the adversary injected. The
//! unique equilibrium outcome is mutual hardness — "this situation mirrors
//! the prisoner's dilemma, culminating in a unique equilibrium wherein both
//! the adversary and the player opt for a tough stance, despite a gentler
//! approach being mutually beneficial" — which is precisely why Section IV
//! moves to the *infinite* repeated game.

use crate::error::{strictly_greater, CoreError};
use std::fmt;

/// A player move in the one-shot game (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Near `x_L` (adversary) / near `x_R` (collector).
    Soft,
    /// Near `x_R` (adversary) / near `x_L` (collector).
    Hard,
}

impl Move {
    /// Both moves.
    pub const ALL: [Move; 2] = [Move::Soft, Move::Hard];
}

/// The four payoff constants of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UltimatumPayoffs {
    /// `P̄`: adversary gain for hard poisoning that survives.
    pub p_hard: f64,
    /// `T̄`: collector overhead for hard trimming.
    pub t_hard: f64,
    /// `P`: adversary gain for soft poisoning that survives.
    pub p_soft: f64,
    /// `T`: collector overhead for soft trimming.
    pub t_soft: f64,
}

impl UltimatumPayoffs {
    /// Validates `P̄ > T̄ > P > T > 0` (the paper writes `T̄ ≫ P`; strict
    /// inequality is what the equilibrium analysis needs).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the ordering fails.
    pub fn new(p_hard: f64, t_hard: f64, p_soft: f64, t_soft: f64) -> Result<Self, CoreError> {
        if !strictly_greater(t_soft, 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "t_soft",
                constraint: "T > 0",
                value: t_soft,
            });
        }
        if !strictly_greater(p_soft, t_soft) {
            return Err(CoreError::InvalidParameter {
                name: "p_soft",
                constraint: "P > T",
                value: p_soft,
            });
        }
        // The paper writes T̄ ≫ P; the quantitative requirement for the
        // unique (Hard, Hard) equilibrium is T̄ > P + T (so that against a
        // *soft* adversary the collector prefers soft trimming, killing
        // the (Hard, Soft) profile).
        if !strictly_greater(t_hard, p_soft + t_soft) {
            return Err(CoreError::InvalidParameter {
                name: "t_hard",
                constraint: "T̄ >> P (at least T̄ > P + T)",
                value: t_hard,
            });
        }
        if !strictly_greater(p_hard, t_hard) {
            return Err(CoreError::InvalidParameter {
                name: "p_hard",
                constraint: "P̄ > T̄",
                value: p_hard,
            });
        }
        Ok(Self {
            p_hard,
            t_hard,
            p_soft,
            t_soft,
        })
    }

    /// The paper-style defaults `P̄=10 > T̄=8 ≫ P=2 > T=1 > 0`.
    #[must_use]
    pub fn default_paper() -> Self {
        Self::new(10.0, 8.0, 2.0, 1.0).expect("defaults satisfy the ordering")
    }

    /// Builds the full payoff matrix.
    #[must_use]
    pub fn matrix(&self) -> PayoffMatrix {
        let entry = |collector: Move, adversary: Move| -> (f64, f64) {
            match (collector, adversary) {
                (Move::Soft, Move::Soft) => (-self.p_soft - self.t_soft, self.p_soft),
                (Move::Soft, Move::Hard) => (-self.p_hard - self.t_soft, self.p_hard),
                // A hard collector trims at x_L: all rational poison is
                // removed regardless of the adversary's move.
                (Move::Hard, _) => (-self.t_hard, 0.0),
            }
        };
        PayoffMatrix {
            entries: [
                [entry(Move::Soft, Move::Soft), entry(Move::Soft, Move::Hard)],
                [entry(Move::Hard, Move::Soft), entry(Move::Hard, Move::Hard)],
            ],
        }
    }
}

/// A 2×2 bimatrix game: `entries[c][a] = (collector payoff, adversary
/// payoff)` for collector move `c` and adversary move `a`
/// (index 0 = Soft, 1 = Hard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayoffMatrix {
    /// Payoff entries.
    pub entries: [[(f64, f64); 2]; 2],
}

impl PayoffMatrix {
    fn idx(m: Move) -> usize {
        match m {
            Move::Soft => 0,
            Move::Hard => 1,
        }
    }

    /// Payoffs for a move pair.
    #[must_use]
    pub fn payoff(&self, collector: Move, adversary: Move) -> (f64, f64) {
        self.entries[Self::idx(collector)][Self::idx(adversary)]
    }

    /// All pure-strategy Nash equilibria (allowing ties, i.e. weak
    /// equilibria).
    #[must_use]
    pub fn pure_nash_equilibria(&self) -> Vec<(Move, Move)> {
        let mut out = Vec::new();
        for c in Move::ALL {
            for a in Move::ALL {
                let (pc, pa) = self.payoff(c, a);
                let collector_ok = Move::ALL
                    .iter()
                    .all(|&c2| self.payoff(c2, a).0 <= pc + 1e-12);
                let adversary_ok = Move::ALL
                    .iter()
                    .all(|&a2| self.payoff(c, a2).1 <= pa + 1e-12);
                if collector_ok && adversary_ok {
                    out.push((c, a));
                }
            }
        }
        out
    }

    /// True if outcome `b` strictly Pareto-dominates outcome `a`.
    #[must_use]
    pub fn pareto_dominates(&self, b: (Move, Move), a: (Move, Move)) -> bool {
        let (bc, ba) = self.payoff(b.0, b.1);
        let (ac, aa) = self.payoff(a.0, a.1);
        bc > ac && ba > aa
    }
}

impl fmt::Display for PayoffMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>22} {:>22}",
            "", "Adversary Soft", "Adversary Hard"
        )?;
        for c in Move::ALL {
            let row: Vec<String> = Move::ALL
                .iter()
                .map(|&a| {
                    let (pc, pa) = self.payoff(c, a);
                    format!("({pc:>7.2}, {pa:>7.2})")
                })
                .collect();
            writeln!(
                f,
                "{:<16} {:>22} {:>22}",
                format!("Collector {c:?}"),
                row[0],
                row[1]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_validated() {
        assert!(UltimatumPayoffs::new(10.0, 8.0, 2.0, 1.0).is_ok());
        assert!(UltimatumPayoffs::new(8.0, 10.0, 2.0, 1.0).is_err()); // P̄ < T̄
        assert!(UltimatumPayoffs::new(10.0, 1.5, 2.0, 1.0).is_err()); // T̄ < P
        assert!(UltimatumPayoffs::new(10.0, 8.0, 0.5, 1.0).is_err()); // P < T
        assert!(UltimatumPayoffs::new(10.0, 8.0, 2.0, 0.0).is_err()); // T = 0
    }

    #[test]
    fn matrix_entries_match_table_i() {
        let u = UltimatumPayoffs::default_paper();
        let m = u.matrix();
        assert_eq!(m.payoff(Move::Soft, Move::Soft), (-3.0, 2.0));
        assert_eq!(m.payoff(Move::Soft, Move::Hard), (-11.0, 10.0));
        assert_eq!(m.payoff(Move::Hard, Move::Soft), (-8.0, 0.0));
        assert_eq!(m.payoff(Move::Hard, Move::Hard), (-8.0, 0.0));
    }

    #[test]
    fn hard_hard_is_an_equilibrium() {
        let m = UltimatumPayoffs::default_paper().matrix();
        let eq = m.pure_nash_equilibria();
        assert!(eq.contains(&(Move::Hard, Move::Hard)), "equilibria: {eq:?}");
        // (Soft, Soft) is NOT an equilibrium: the adversary deviates to
        // Hard for P̄ > P.
        assert!(!eq.contains(&(Move::Soft, Move::Soft)));
        // (Hard, Soft) is NOT an equilibrium: against a soft adversary the
        // collector prefers soft trimming (−P − T > −T̄).
        assert!(!eq.contains(&(Move::Hard, Move::Soft)));
        // (Soft, Hard) is NOT an equilibrium: the collector deviates to
        // Hard (−T̄ > −P̄ − T).
        assert!(!eq.contains(&(Move::Soft, Move::Hard)));
    }

    #[test]
    fn soft_soft_pareto_dominates_the_equilibrium() {
        // The prisoner's-dilemma structure: mutual gentleness is better for
        // BOTH than the unique equilibrium.
        let m = UltimatumPayoffs::default_paper().matrix();
        assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
    }

    #[test]
    fn equilibrium_is_unique() {
        let m = UltimatumPayoffs::default_paper().matrix();
        assert_eq!(m.pure_nash_equilibria(), vec![(Move::Hard, Move::Hard)]);
    }

    #[test]
    fn structure_holds_across_parameterizations() {
        for (ph, th, ps, ts) in [
            (100.0, 50.0, 5.0, 1.0),
            (20.0, 19.0, 3.0, 2.9),
            (10.0, 8.0, 4.0, 3.0),
        ] {
            let u = UltimatumPayoffs::new(ph, th, ps, ts).unwrap();
            let m = u.matrix();
            assert_eq!(
                m.pure_nash_equilibria(),
                vec![(Move::Hard, Move::Hard)],
                "params ({ph},{th},{ps},{ts})"
            );
            assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
        }
    }

    #[test]
    fn display_renders_table() {
        let m = UltimatumPayoffs::default_paper().matrix();
        let s = m.to_string();
        assert!(s.contains("Adversary Soft"));
        assert!(s.contains("Collector Hard"));
    }
}
