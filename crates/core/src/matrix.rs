//! Table I — the one-shot (ultimatum) collection game and its equilibrium
//! (Section III-D).
//!
//! With payoff constants `P̄ > T̄ ≫ P > T > 0` (hard/soft poisoning gains
//! and hard/soft trimming overheads), the single-round strategic game is:
//!
//! |               | Adversary Soft      | Adversary Hard      |
//! |---------------|---------------------|---------------------|
//! | Collector Soft| `(−P − T, P)`       | `(−P̄ − T, P̄)`      |
//! | Collector Hard| `(−T̄, 0)`           | `(−T̄, 0)`           |
//!
//! A hard collector trims at `x_L`, removing all rational poison (adversary
//! gets 0) at overhead `T̄`; a soft collector trims at `x_R`, paying the
//! small overhead `T` but conceding whatever the adversary injected. The
//! unique equilibrium outcome is mutual hardness — "this situation mirrors
//! the prisoner's dilemma, culminating in a unique equilibrium wherein both
//! the adversary and the player opt for a tough stance, despite a gentler
//! approach being mutually beneficial" — which is precisely why Section IV
//! moves to the *infinite* repeated game.

use crate::error::{strictly_greater, CoreError};
use std::fmt;

/// A player move in the one-shot game (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Near `x_L` (adversary) / near `x_R` (collector).
    Soft,
    /// Near `x_R` (adversary) / near `x_L` (collector).
    Hard,
}

impl Move {
    /// Both moves.
    pub const ALL: [Move; 2] = [Move::Soft, Move::Hard];
}

/// The four payoff constants of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UltimatumPayoffs {
    /// `P̄`: adversary gain for hard poisoning that survives.
    pub p_hard: f64,
    /// `T̄`: collector overhead for hard trimming.
    pub t_hard: f64,
    /// `P`: adversary gain for soft poisoning that survives.
    pub p_soft: f64,
    /// `T`: collector overhead for soft trimming.
    pub t_soft: f64,
}

impl UltimatumPayoffs {
    /// Validates `P̄ > T̄ > P > T > 0` (the paper writes `T̄ ≫ P`; strict
    /// inequality is what the equilibrium analysis needs).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the ordering fails.
    pub fn new(p_hard: f64, t_hard: f64, p_soft: f64, t_soft: f64) -> Result<Self, CoreError> {
        if !strictly_greater(t_soft, 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "t_soft",
                constraint: "T > 0",
                value: t_soft,
            });
        }
        if !strictly_greater(p_soft, t_soft) {
            return Err(CoreError::InvalidParameter {
                name: "p_soft",
                constraint: "P > T",
                value: p_soft,
            });
        }
        // The paper writes T̄ ≫ P; the quantitative requirement for the
        // unique (Hard, Hard) equilibrium is T̄ > P + T (so that against a
        // *soft* adversary the collector prefers soft trimming, killing
        // the (Hard, Soft) profile).
        if !strictly_greater(t_hard, p_soft + t_soft) {
            return Err(CoreError::InvalidParameter {
                name: "t_hard",
                constraint: "T̄ >> P (at least T̄ > P + T)",
                value: t_hard,
            });
        }
        if !strictly_greater(p_hard, t_hard) {
            return Err(CoreError::InvalidParameter {
                name: "p_hard",
                constraint: "P̄ > T̄",
                value: p_hard,
            });
        }
        Ok(Self {
            p_hard,
            t_hard,
            p_soft,
            t_soft,
        })
    }

    /// The paper-style defaults `P̄=10 > T̄=8 ≫ P=2 > T=1 > 0`.
    #[must_use]
    pub fn default_paper() -> Self {
        Self::new(10.0, 8.0, 2.0, 1.0).expect("defaults satisfy the ordering")
    }

    /// Builds the full payoff matrix.
    #[must_use]
    pub fn matrix(&self) -> PayoffMatrix {
        let entry = |collector: Move, adversary: Move| -> (f64, f64) {
            match (collector, adversary) {
                (Move::Soft, Move::Soft) => (-self.p_soft - self.t_soft, self.p_soft),
                (Move::Soft, Move::Hard) => (-self.p_hard - self.t_soft, self.p_hard),
                // A hard collector trims at x_L: all rational poison is
                // removed regardless of the adversary's move.
                (Move::Hard, _) => (-self.t_hard, 0.0),
            }
        };
        PayoffMatrix {
            entries: [
                [entry(Move::Soft, Move::Soft), entry(Move::Soft, Move::Hard)],
                [entry(Move::Hard, Move::Soft), entry(Move::Hard, Move::Hard)],
            ],
        }
    }
}

/// A 2×2 bimatrix game: `entries[c][a] = (collector payoff, adversary
/// payoff)` for collector move `c` and adversary move `a`
/// (index 0 = Soft, 1 = Hard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayoffMatrix {
    /// Payoff entries.
    pub entries: [[(f64, f64); 2]; 2],
}

impl PayoffMatrix {
    fn idx(m: Move) -> usize {
        match m {
            Move::Soft => 0,
            Move::Hard => 1,
        }
    }

    /// Payoffs for a move pair.
    #[must_use]
    pub fn payoff(&self, collector: Move, adversary: Move) -> (f64, f64) {
        self.entries[Self::idx(collector)][Self::idx(adversary)]
    }

    /// All pure-strategy Nash equilibria (allowing ties, i.e. weak
    /// equilibria).
    #[must_use]
    pub fn pure_nash_equilibria(&self) -> Vec<(Move, Move)> {
        let mut out = Vec::new();
        for c in Move::ALL {
            for a in Move::ALL {
                let (pc, pa) = self.payoff(c, a);
                let collector_ok = Move::ALL
                    .iter()
                    .all(|&c2| self.payoff(c2, a).0 <= pc + 1e-12);
                let adversary_ok = Move::ALL
                    .iter()
                    .all(|&a2| self.payoff(c, a2).1 <= pa + 1e-12);
                if collector_ok && adversary_ok {
                    out.push((c, a));
                }
            }
        }
        out
    }

    /// True if outcome `b` strictly Pareto-dominates outcome `a`.
    #[must_use]
    pub fn pareto_dominates(&self, b: (Move, Move), a: (Move, Move)) -> bool {
        let (bc, ba) = self.payoff(b.0, b.1);
        let (ac, aa) = self.payoff(a.0, a.1);
        bc > ac && ba > aa
    }
}

/// A finite two-player zero-sum matrix game: `entries[i][j]` is the **row
/// player's loss** (equivalently the column player's gain) when the row
/// player plays `i` and the column player plays `j`. In the trimming
/// game the row player is the defender (choosing a threshold atom,
/// minimizing) and the column player is the adversary (choosing an
/// injection response, maximizing).
///
/// [`MatrixGame::solve`] computes an approximate mixed-strategy
/// equilibrium by fictitious play — deterministic, with certified value
/// bounds from the averaged strategies — which is all the empirical
/// equilibrium estimator needs on the small supports where threshold-game
/// equilibria concentrate.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixGame {
    entries: Vec<Vec<f64>>,
}

/// An approximate mixed equilibrium of a [`MatrixGame`], with certified
/// value bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedEquilibrium {
    /// The row player's (defender's) mixed strategy.
    pub row_strategy: Vec<f64>,
    /// The column player's (adversary's) mixed strategy.
    pub col_strategy: Vec<f64>,
    /// The game value estimate (midpoint of `lower..upper`).
    pub value: f64,
    /// Guaranteed by the column mix: `min_i loss(i, col_strategy)`. The
    /// true value is at least this.
    pub lower: f64,
    /// Guaranteed by the row mix: `max_j loss(row_strategy, j)`. The true
    /// value is at most this.
    pub upper: f64,
}

impl MixedEquilibrium {
    /// The duality gap `upper − lower`: how far from exact the fictitious
    /// play ran.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.upper - self.lower
    }
}

impl MatrixGame {
    /// Builds a game from a rectangular loss matrix.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the matrix is empty,
    /// ragged, or contains non-finite entries.
    pub fn new(entries: Vec<Vec<f64>>) -> Result<Self, CoreError> {
        if entries.is_empty() || entries[0].is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "entries",
                constraint: "non-empty matrix",
                value: entries.len() as f64,
            });
        }
        let cols = entries[0].len();
        for row in &entries {
            if row.len() != cols {
                return Err(CoreError::InvalidParameter {
                    name: "entries",
                    constraint: "rectangular matrix",
                    value: row.len() as f64,
                });
            }
            for &v in row {
                if !v.is_finite() {
                    return Err(CoreError::InvalidParameter {
                        name: "entry",
                        constraint: "finite",
                        value: v,
                    });
                }
            }
        }
        Ok(Self { entries })
    }

    /// Number of row strategies.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Number of column strategies.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.entries[0].len()
    }

    /// The loss entry at `(row, col)`.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.entries[row][col]
    }

    /// The row player's expected loss under mixed strategies `x` (rows)
    /// and `y` (columns).
    #[must_use]
    pub fn expected_loss(&self, x: &[f64], y: &[f64]) -> f64 {
        self.entries
            .iter()
            .zip(x)
            .map(|(row, &xi)| xi * row.iter().zip(y).map(|(&v, &yj)| v * yj).sum::<f64>())
            .sum()
    }

    /// The pure-commitment (unrandomized Stackelberg) value: the best loss
    /// the row player can guarantee with a single row,
    /// `min_i max_j entries[i][j]`. The mixed value from
    /// [`MatrixGame::solve`] is never worse; the difference is the row
    /// player's randomization advantage.
    #[must_use]
    pub fn pure_commitment_value(&self) -> f64 {
        self.entries
            .iter()
            .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .fold(f64::INFINITY, f64::min)
    }

    /// Solves the game by `iterations` rounds of simultaneous fictitious
    /// play (deterministic; ties break to the lowest index) and returns
    /// the averaged strategies with certified value bounds.
    ///
    /// # Panics
    /// Panics if `iterations == 0`.
    #[must_use]
    pub fn solve(&self, iterations: usize) -> MixedEquilibrium {
        self.solve_warm(iterations, None)
    }

    /// [`MatrixGame::solve`] seeded from a prior equilibrium: the
    /// fictitious-play cumulative losses start as if each side had faced
    /// `WARM_WEIGHT` virtual plays of the opponent's prior mixture, so a
    /// game grown by a few rows/columns (the double-oracle restricted
    /// games) resumes its best-response sequence near the previous fixed
    /// point rather than re-deriving it. Prior strategies shorter than
    /// the current matrix are padded with zeros — exactly the embedding
    /// of the smaller game's mixture.
    ///
    /// The virtual plays steer only the play *sequence*; the averaged
    /// strategies (and hence the certified bounds) contain real plays
    /// only, so a stale prior can only cost iterations (its influence on
    /// play selection washes out as `WARM_WEIGHT / iterations`), never
    /// correctness or bound tightness.
    ///
    /// # Panics
    /// Panics if `iterations == 0` or the prior's strategies are longer
    /// than the current matrix.
    #[must_use]
    pub fn solve_warm(
        &self,
        iterations: usize,
        warm: Option<&MixedEquilibrium>,
    ) -> MixedEquilibrium {
        assert!(iterations > 0, "need at least one iteration");
        let mut fp = self.start_fictitious_play(warm);
        fp.run(self, iterations);
        fp.equilibrium(self)
    }

    /// Runs fictitious play until the certified duality gap drops to
    /// `gap`, checking every few hundred iterations, up to
    /// `max_iterations` plays. Returns the equilibrium and the iterations
    /// actually spent — the warm-start satellite's iterations-to-bound
    /// measure.
    ///
    /// # Panics
    /// Panics if `max_iterations == 0`, `gap` is negative/NaN, or the
    /// prior does not embed in the current matrix.
    #[must_use]
    pub fn solve_to_gap(
        &self,
        gap: f64,
        max_iterations: usize,
        warm: Option<&MixedEquilibrium>,
    ) -> (MixedEquilibrium, usize) {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(gap >= 0.0, "gap target must be non-negative");
        let mut fp = self.start_fictitious_play(warm);
        // Checking bounds costs O(n·m); amortize it over blocks that cost
        // about as much as the check itself.
        let block = (self.rows() + self.cols()).max(64);
        let mut spent = 0usize;
        let mut eq = loop {
            let step = block.min(max_iterations - spent);
            fp.run(self, step);
            spent += step;
            let eq = fp.equilibrium(self);
            if eq.gap() <= gap || spent >= max_iterations {
                break eq;
            }
        };
        // Guard against a pathological averaged pair wobbling above the
        // target at the cap: report whatever was certified.
        if eq.gap().is_nan() {
            eq = fp.equilibrium(self);
        }
        (eq, spent)
    }

    fn start_fictitious_play(&self, warm: Option<&MixedEquilibrium>) -> FictitiousPlay {
        let (n, m) = (self.rows(), self.cols());
        let mut fp = FictitiousPlay {
            row_cum: vec![0.0; n],
            col_cum: vec![0.0; m],
            row_counts: vec![0.0; n],
            col_counts: vec![0.0; m],
            row_play: 0,
            col_play: 0,
        };
        if let Some(prior) = warm {
            assert!(
                prior.row_strategy.len() <= n && prior.col_strategy.len() <= m,
                "warm-start prior does not embed: {}x{} prior vs {n}x{m} game",
                prior.row_strategy.len(),
                prior.col_strategy.len()
            );
            // Seed only the cumulative losses — each side starts as if it
            // had faced WARM_WEIGHT plays of the opponent's prior mixture
            // — but leave the play counts at zero. The play sequence
            // resumes in the parent game's groove while the averaged
            // (certified) strategies contain real plays only, so a stale
            // prior cannot park a bias floor under the duality gap.
            for (i, cum) in fp.row_cum.iter_mut().enumerate() {
                *cum = (0..m)
                    .map(|j| {
                        WARM_WEIGHT
                            * prior.col_strategy.get(j).copied().unwrap_or(0.0).max(0.0)
                            * self.entries[i][j]
                    })
                    .sum();
            }
            for (j, cum) in fp.col_cum.iter_mut().enumerate() {
                *cum = (0..n)
                    .map(|i| {
                        WARM_WEIGHT
                            * prior.row_strategy.get(i).copied().unwrap_or(0.0).max(0.0)
                            * self.entries[i][j]
                    })
                    .sum();
            }
            fp.row_play = argmin(&fp.row_cum);
            fp.col_play = argmax(&fp.col_cum);
        }
        fp
    }
}

/// Virtual play count a warm-start prior is worth in the cumulative-loss
/// seed. Large enough to steer the first plays onto the prior's support,
/// small enough that a stale prior's pull on play selection washes out
/// within a few thousand iterations.
const WARM_WEIGHT: f64 = 256.0;

/// Resumable simultaneous-fictitious-play state (the loop body of
/// [`MatrixGame::solve`], factored out so warm starts and gap-targeted
/// solves share it).
struct FictitiousPlay {
    row_cum: Vec<f64>,
    col_cum: Vec<f64>,
    row_counts: Vec<f64>,
    col_counts: Vec<f64>,
    row_play: usize,
    col_play: usize,
}

impl FictitiousPlay {
    fn run(&mut self, game: &MatrixGame, iterations: usize) {
        for _ in 0..iterations {
            self.row_counts[self.row_play] += 1.0;
            self.col_counts[self.col_play] += 1.0;
            for (i, cum) in self.row_cum.iter_mut().enumerate() {
                *cum += game.entries[i][self.col_play];
            }
            for (j, cum) in self.col_cum.iter_mut().enumerate() {
                *cum += game.entries[self.row_play][j];
            }
            self.row_play = argmin(&self.row_cum);
            self.col_play = argmax(&self.col_cum);
        }
    }

    fn equilibrium(&self, game: &MatrixGame) -> MixedEquilibrium {
        let (n, m) = (game.rows(), game.cols());
        let row_total: f64 = self.row_counts.iter().sum();
        let col_total: f64 = self.col_counts.iter().sum();
        let row_strategy: Vec<f64> = self.row_counts.iter().map(|c| c / row_total).collect();
        let col_strategy: Vec<f64> = self.col_counts.iter().map(|c| c / col_total).collect();
        // Certified bounds from the averaged strategies.
        let upper = (0..m)
            .map(|j| {
                (0..n)
                    .map(|i| row_strategy[i] * game.entries[i][j])
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let lower = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| col_strategy[j] * game.entries[i][j])
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        MixedEquilibrium {
            row_strategy,
            col_strategy,
            value: 0.5 * (lower + upper),
            lower,
            upper,
        }
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

impl fmt::Display for PayoffMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>22} {:>22}",
            "", "Adversary Soft", "Adversary Hard"
        )?;
        for c in Move::ALL {
            let row: Vec<String> = Move::ALL
                .iter()
                .map(|&a| {
                    let (pc, pa) = self.payoff(c, a);
                    format!("({pc:>7.2}, {pa:>7.2})")
                })
                .collect();
            writeln!(
                f,
                "{:<16} {:>22} {:>22}",
                format!("Collector {c:?}"),
                row[0],
                row[1]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_validated() {
        assert!(UltimatumPayoffs::new(10.0, 8.0, 2.0, 1.0).is_ok());
        assert!(UltimatumPayoffs::new(8.0, 10.0, 2.0, 1.0).is_err()); // P̄ < T̄
        assert!(UltimatumPayoffs::new(10.0, 1.5, 2.0, 1.0).is_err()); // T̄ < P
        assert!(UltimatumPayoffs::new(10.0, 8.0, 0.5, 1.0).is_err()); // P < T
        assert!(UltimatumPayoffs::new(10.0, 8.0, 2.0, 0.0).is_err()); // T = 0
    }

    #[test]
    fn matrix_entries_match_table_i() {
        let u = UltimatumPayoffs::default_paper();
        let m = u.matrix();
        assert_eq!(m.payoff(Move::Soft, Move::Soft), (-3.0, 2.0));
        assert_eq!(m.payoff(Move::Soft, Move::Hard), (-11.0, 10.0));
        assert_eq!(m.payoff(Move::Hard, Move::Soft), (-8.0, 0.0));
        assert_eq!(m.payoff(Move::Hard, Move::Hard), (-8.0, 0.0));
    }

    #[test]
    fn hard_hard_is_an_equilibrium() {
        let m = UltimatumPayoffs::default_paper().matrix();
        let eq = m.pure_nash_equilibria();
        assert!(eq.contains(&(Move::Hard, Move::Hard)), "equilibria: {eq:?}");
        // (Soft, Soft) is NOT an equilibrium: the adversary deviates to
        // Hard for P̄ > P.
        assert!(!eq.contains(&(Move::Soft, Move::Soft)));
        // (Hard, Soft) is NOT an equilibrium: against a soft adversary the
        // collector prefers soft trimming (−P − T > −T̄).
        assert!(!eq.contains(&(Move::Hard, Move::Soft)));
        // (Soft, Hard) is NOT an equilibrium: the collector deviates to
        // Hard (−T̄ > −P̄ − T).
        assert!(!eq.contains(&(Move::Soft, Move::Hard)));
    }

    #[test]
    fn soft_soft_pareto_dominates_the_equilibrium() {
        // The prisoner's-dilemma structure: mutual gentleness is better for
        // BOTH than the unique equilibrium.
        let m = UltimatumPayoffs::default_paper().matrix();
        assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
    }

    #[test]
    fn equilibrium_is_unique() {
        let m = UltimatumPayoffs::default_paper().matrix();
        assert_eq!(m.pure_nash_equilibria(), vec![(Move::Hard, Move::Hard)]);
    }

    #[test]
    fn structure_holds_across_parameterizations() {
        for (ph, th, ps, ts) in [
            (100.0, 50.0, 5.0, 1.0),
            (20.0, 19.0, 3.0, 2.9),
            (10.0, 8.0, 4.0, 3.0),
        ] {
            let u = UltimatumPayoffs::new(ph, th, ps, ts).unwrap();
            let m = u.matrix();
            assert_eq!(
                m.pure_nash_equilibria(),
                vec![(Move::Hard, Move::Hard)],
                "params ({ph},{th},{ps},{ts})"
            );
            assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
        }
    }

    #[test]
    fn display_renders_table() {
        let m = UltimatumPayoffs::default_paper().matrix();
        let s = m.to_string();
        assert!(s.contains("Adversary Soft"));
        assert!(s.contains("Collector Hard"));
    }

    #[test]
    fn matrix_game_validates_shape() {
        assert!(MatrixGame::new(vec![]).is_err());
        assert!(MatrixGame::new(vec![vec![]]).is_err());
        assert!(MatrixGame::new(vec![vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(MatrixGame::new(vec![vec![1.0, f64::NAN]]).is_err());
        let g = MatrixGame::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!((g.rows(), g.cols()), (2, 2));
        assert_eq!(g.at(1, 0), 3.0);
    }

    #[test]
    fn matching_pennies_mixes_evenly() {
        // Row loses 1 on a match, wins 1 on a mismatch: value 0, both mix
        // 50/50.
        let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let eq = g.solve(200_000);
        assert!(eq.value.abs() < 0.01, "value {}", eq.value);
        assert!(eq.gap() < 0.02, "gap {}", eq.gap());
        for w in eq.row_strategy.iter().chain(&eq.col_strategy) {
            assert!((w - 0.5).abs() < 0.01, "weight {w}");
        }
        // Pure commitment is fully exploitable: guaranteed loss 1.
        assert_eq!(g.pure_commitment_value(), 1.0);
    }

    #[test]
    fn dominant_row_solves_pure() {
        // Row 0 dominates (lower loss everywhere).
        let g = MatrixGame::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let eq = g.solve(10_000);
        assert!(eq.row_strategy[0] > 0.99);
        // Column player maximizes: column 1 dominates.
        assert!(eq.col_strategy[1] > 0.99);
        assert!((eq.value - 2.0).abs() < 1e-3);
        assert_eq!(g.pure_commitment_value(), 2.0);
    }

    #[test]
    fn bounds_bracket_the_value_and_mixing_helps() {
        // A threshold-game shape: defender atoms {0.85, 0.95} against
        // just-below responses {0.84, 0.94}, loss = surviving damage plus
        // (1 − t) overhead. Every pure row is exploitable (worst case
        // 0.99), but the 2×2 minimax mixes to value 0.9006…: the classic
        // randomization advantage.
        let g = MatrixGame::new(vec![vec![0.99, 0.15], vec![0.89, 0.99]]).unwrap();
        let eq = g.solve(100_000);
        assert!(eq.lower <= eq.value + 1e-12 && eq.value <= eq.upper + 1e-12);
        assert!(eq.gap() < 0.01, "gap {}", eq.gap());
        // Mixed play strictly beats the best pure commitment.
        assert_eq!(g.pure_commitment_value(), 0.99);
        assert!(eq.upper < 0.92, "upper {}", eq.upper);
        assert!((eq.value - 0.9006).abs() < 0.01, "value {}", eq.value);
        // Expected loss under the solved profile sits inside the bounds.
        let v = g.expected_loss(&eq.row_strategy, &eq.col_strategy);
        assert!(v >= eq.lower - 1e-9 && v <= eq.upper + 1e-9);
    }

    #[test]
    fn warm_start_matches_cold_solve_api() {
        let g = MatrixGame::new(vec![vec![0.99, 0.15], vec![0.89, 0.99]]).unwrap();
        let cold = g.solve(50_000);
        // `solve` is `solve_warm(_, None)` by construction.
        let none = g.solve_warm(50_000, None);
        assert_eq!(cold.value.to_bits(), none.value.to_bits());
        assert_eq!(cold.row_strategy, none.row_strategy);
        // Warm-starting from the solved point keeps certified bounds valid
        // and does not move the value materially.
        let warm = g.solve_warm(50_000, Some(&cold));
        assert!(warm.lower <= warm.value + 1e-12 && warm.value <= warm.upper + 1e-12);
        assert!((warm.value - cold.value).abs() < 0.01);
    }

    #[test]
    fn warm_start_speeds_up_grown_matrices() {
        // Solve a 2x2, grow it by one row and one column whose entries do
        // not change the fixed point much, and compare iterations-to-bound
        // cold vs warm. This is the double-oracle inner loop in miniature.
        let small = MatrixGame::new(vec![vec![0.99, 0.15], vec![0.89, 0.99]]).unwrap();
        let prior = small.solve(100_000);
        let grown = MatrixGame::new(vec![
            vec![0.99, 0.15, 0.40],
            vec![0.89, 0.99, 0.60],
            vec![0.95, 0.70, 0.97],
        ])
        .unwrap();
        let gap = 0.01;
        let (cold_eq, cold_iters) = grown.solve_to_gap(gap, 2_000_000, None);
        let (warm_eq, warm_iters) = grown.solve_to_gap(gap, 2_000_000, Some(&prior));
        assert!(cold_eq.gap() <= gap && warm_eq.gap() <= gap);
        assert!((cold_eq.value - warm_eq.value).abs() < 2.0 * gap);
        assert!(
            warm_iters <= cold_iters,
            "warm {warm_iters} vs cold {cold_iters}"
        );
    }

    #[test]
    fn solve_to_gap_respects_iteration_cap() {
        let g = MatrixGame::new(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let (eq, spent) = g.solve_to_gap(0.0, 500, None);
        assert!(spent <= 500);
        assert!(eq.gap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "warm-start prior does not embed")]
    fn warm_start_rejects_oversized_prior() {
        let big = MatrixGame::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let prior = big.solve(1_000);
        let small = MatrixGame::new(vec![vec![1.0]]).unwrap();
        let _ = small.solve_warm(1_000, Some(&prior));
    }
}
