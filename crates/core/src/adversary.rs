//! Adversary injection policies — the attacker side of Section VI-A.
//!
//! | Opposing scheme | Adversary behaviour |
//! |---|---|
//! | `Ostrich` | always injects at the 99th percentile |
//! | `Baseline 0.9` | uniform random percentile in `[0.9, 1]` |
//! | `Baseline static` | the *ideal attack*: exactly `Tth − 1%`, i.e. just below the known static threshold |
//! | `Titfortat` (equilibrium) | complies at `Tth − 1%` (below the soft trim, within the agreed quality) |
//! | `Elastic` | the coupled rule `A(i+1) = Tth − 3% + k(T(i) − Tth)`, `A(1) = Tth + 1%` |
//! | Table III (non-equilibrium) | mixed: 99th percentile w.p. `p`, 90th w.p. `1 − p` |
//!
//! Policies see the defender's previous threshold via the public board
//! (white-box attacker, complete information).

use rand::{Rng, RngCore};
use std::borrow::Cow;
use trimgame_stream::board::PublicBoard;

/// What the adversary observes before choosing this round's injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryObservation {
    /// The defender's trimming percentile last round (from the public
    /// board), if any round has completed.
    pub last_threshold: Option<f64>,
}

/// An object-safe adversary injection policy: the open half of the policy
/// layer on the attacker side.
///
/// The `rng` argument is the engine's *main* environment stream — the same
/// stream the closed [`AdversaryPolicy`] roster always drew from — so
/// re-expressing an enum variant through the trait keeps fixed-seed
/// trajectories bit-identical. Policies that need richer information than
/// [`AdversaryObservation`] (the white-box threat model grants the full
/// public record) hold a clone of the engine's [`PublicBoard`], as
/// [`AdaptiveAttacker`] does.
pub trait AttackPolicy: std::fmt::Debug {
    /// Human-readable attacker name (used in reports).
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Adversary")
    }

    /// Chooses this round's injection percentile.
    fn next_injection(&mut self, obs: &AdversaryObservation, rng: &mut dyn RngCore) -> f64;
}

/// An adversary injection-position policy (percentile of the benign
/// distribution at which poison is placed).
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryPolicy {
    /// Fixed percentile (Ostrich's opponent uses 0.99).
    Fixed {
        /// Injection percentile.
        percentile: f64,
    },
    /// Uniform percentile in `[lo, hi]` each poison value (Baseline 0.9's
    /// opponent).
    Uniform {
        /// Low percentile.
        lo: f64,
        /// High percentile.
        hi: f64,
    },
    /// Just below the defender's last threshold (`threshold − offset`) —
    /// the "ideal attack" of Baseline static.
    JustBelowThreshold {
        /// Gap below the defender threshold.
        offset: f64,
        /// Fallback percentile before any threshold is visible.
        fallback: f64,
    },
    /// Mixed strategy of Table III: high percentile w.p. `p`, low w.p.
    /// `1 − p`, decided once per round (the whole round's poison mass is a
    /// coordinated Sybil batch).
    Mixed {
        /// Probability of the high (equilibrium) position.
        p: f64,
        /// High percentile (paper: 0.99).
        hi: f64,
        /// Low percentile (paper: 0.90).
        lo: f64,
    },
    /// §VI-A coupled Elastic rule.
    Elastic {
        /// Nominal threshold `Tth`.
        tth: f64,
        /// Response intensity `k`.
        k: f64,
        /// Current injection percentile `A(i)`.
        current: f64,
    },
}

impl AdversaryPolicy {
    /// The Elastic adversary's initial injection (`A(1) = Tth + 1%`).
    #[must_use]
    pub fn elastic(tth: f64, k: f64) -> Self {
        AdversaryPolicy::Elastic {
            tth,
            k,
            current: tth + 0.01,
        }
    }

    /// The equilibrium (compliant) adversary against Tit-for-tat: injects
    /// at `Tth − 1%`.
    #[must_use]
    pub fn compliant(tth: f64) -> Self {
        AdversaryPolicy::Fixed {
            percentile: tth - 0.01,
        }
    }

    /// Chooses this round's injection percentile. `Uniform` and `Mixed`
    /// draw randomness once per round (colluding attackers coordinate the
    /// round's poison batch).
    pub fn next_injection<R: Rng + ?Sized>(
        &mut self,
        obs: &AdversaryObservation,
        rng: &mut R,
    ) -> f64 {
        match self {
            AdversaryPolicy::Fixed { percentile } => *percentile,
            AdversaryPolicy::Uniform { lo, hi } => *lo + (*hi - *lo) * rng.gen::<f64>(),
            AdversaryPolicy::JustBelowThreshold { offset, fallback } => obs
                .last_threshold
                .map_or(*fallback, |t| (t - *offset).max(0.0)),
            AdversaryPolicy::Mixed { p, hi, lo } => {
                if rng.gen::<f64>() < *p {
                    *hi
                } else {
                    *lo
                }
            }
            AdversaryPolicy::Elastic { tth, k, current } => {
                if let Some(t) = obs.last_threshold {
                    *current = *tth - 0.03 + *k * (t - *tth);
                }
                current.clamp(0.0, 1.0)
            }
        }
    }
}

/// Compatibility shim: every closed-roster attacker is an [`AttackPolicy`].
/// The trait hands the same main-stream RNG to the same drawing code, so
/// trajectories through the trait layer are bit-identical to direct enum
/// dispatch.
impl AttackPolicy for AdversaryPolicy {
    fn next_injection(&mut self, obs: &AdversaryObservation, rng: &mut dyn RngCore) -> f64 {
        AdversaryPolicy::next_injection(self, obs, rng)
    }
}

/// An empirical best-response attacker that learns the defender's
/// threshold distribution from the public board.
///
/// Each round it reads the full published threshold history (the white-box
/// channel of the threat model), groups the observed percentiles into
/// atoms, and for each candidate position *just below an atom* scores the
/// expected percentile-damage gain: the empirical probability that a
/// future threshold clears the position, times the position itself.
/// It injects at the argmax. Against a deterministic defender this
/// converges to the classic just-below-the-threshold ideal attack; against
/// a [`RandomizedDefender`](crate::strategy::RandomizedDefender) it
/// reproduces the finite-support best-response structure of threshold
/// games (equilibria concentrate on small supports), trading survival
/// probability against injection height.
#[derive(Debug, Clone)]
pub struct AdaptiveAttacker {
    board: PublicBoard,
    offset: f64,
    fallback: f64,
    tol: f64,
    /// Distinct observed threshold atoms, ascending, with observation
    /// counts — maintained incrementally via
    /// [`PublicBoard::history_since`] so a `T`-round game costs `O(T)`
    /// board reads total instead of re-copying the whole history each
    /// round.
    atoms: Vec<(f64, usize)>,
    /// Board records consumed so far.
    seen: usize,
}

impl AdaptiveAttacker {
    /// Creates the attacker over a clone of the engine's public board.
    /// `offset` is the evasion margin kept below a targeted threshold
    /// atom; `fallback` is the injection used before any history exists.
    ///
    /// # Panics
    /// Panics unless `0 <= offset <= 1` and `0 <= fallback <= 1`.
    #[must_use]
    pub fn new(board: PublicBoard, offset: f64, fallback: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&offset),
            "offset {offset} not in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&fallback),
            "fallback {fallback} not in [0, 1]"
        );
        Self {
            board,
            offset,
            fallback,
            tol: 1e-9,
            atoms: Vec::new(),
            seen: 0,
        }
    }

    /// The board view this attacker reads.
    #[must_use]
    pub fn board(&self) -> &PublicBoard {
        &self.board
    }

    /// Folds records published since the last read into the atom counts.
    fn ingest_new_records(&mut self) {
        for record in self.board.history_since(self.seen) {
            self.seen += 1;
            let t = record.threshold_percentile;
            assert!(!t.is_nan(), "NaN threshold on the public board");
            let idx = self.atoms.partition_point(|&(a, _)| a < t - self.tol);
            match self.atoms.get_mut(idx) {
                Some((a, count)) if (*a - t).abs() <= self.tol => *count += 1,
                _ => self.atoms.insert(idx, (t, 1)),
            }
        }
    }
}

impl AttackPolicy for AdaptiveAttacker {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Adaptive")
    }

    fn next_injection(&mut self, _obs: &AdversaryObservation, _rng: &mut dyn RngCore) -> f64 {
        self.ingest_new_records();
        if self.seen == 0 {
            return self.fallback;
        }
        let total = self.seen as f64;
        let mut best = self.fallback;
        let mut best_gain = f64::NEG_INFINITY;
        // Ascending scan with strict improvement: deterministic, and ties
        // resolve to the safest (lowest) position. Candidate `atom − offset`
        // survives whenever the sampled threshold is at least that high, so
        // with ascending atoms the survivor mass is a running suffix sum.
        let mut survivors: usize = self.atoms.iter().map(|&(_, count)| count).sum();
        let mut k = 0; // first atom index counted in `survivors`
        for i in 0..self.atoms.len() {
            let position = (self.atoms[i].0 - self.offset).clamp(0.0, 1.0);
            while k < self.atoms.len() && self.atoms[k].0 < position {
                survivors -= self.atoms[k].1;
                k += 1;
            }
            let gain = survivors as f64 / total * position;
            if gain > best_gain {
                best_gain = gain;
                best = position;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn obs(t: Option<f64>) -> AdversaryObservation {
        AdversaryObservation { last_threshold: t }
    }

    #[test]
    fn fixed_ignores_observations() {
        let mut a = AdversaryPolicy::Fixed { percentile: 0.99 };
        let mut rng = seeded_rng(1);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert_eq!(a.next_injection(&obs(Some(0.5)), &mut rng), 0.99);
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut a = AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 };
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            let x = a.next_injection(&obs(None), &mut rng);
            assert!((0.9..=1.0).contains(&x));
        }
    }

    #[test]
    fn just_below_tracks_threshold() {
        let mut a = AdversaryPolicy::JustBelowThreshold {
            offset: 0.01,
            fallback: 0.99,
        };
        let mut rng = seeded_rng(3);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert!((a.next_injection(&obs(Some(0.9)), &mut rng) - 0.89).abs() < 1e-12);
        // Never negative.
        assert_eq!(a.next_injection(&obs(Some(0.005)), &mut rng), 0.0);
    }

    #[test]
    fn mixed_extremes_are_pure() {
        let mut hi = AdversaryPolicy::Mixed {
            p: 1.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut lo = AdversaryPolicy::Mixed {
            p: 0.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(4);
        for _ in 0..20 {
            assert_eq!(hi.next_injection(&obs(None), &mut rng), 0.99);
            assert_eq!(lo.next_injection(&obs(None), &mut rng), 0.90);
        }
    }

    #[test]
    fn mixed_frequency_matches_p() {
        let mut a = AdversaryPolicy::Mixed {
            p: 0.3,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(5);
        let hits = (0..10_000)
            .filter(|_| a.next_injection(&obs(None), &mut rng) == 0.99)
            .count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn elastic_follows_coupled_rule() {
        let mut a = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(6);
        // A(1) = Tth + 1%.
        assert!((a.next_injection(&obs(None), &mut rng) - 0.91).abs() < 1e-12);
        // Defender trimmed at 0.87: A = 0.9 - 0.03 + 0.5*(0.87-0.9) = 0.855.
        let x = a.next_injection(&obs(Some(0.87)), &mut rng);
        assert!((x - 0.855).abs() < 1e-12);
    }

    #[test]
    fn elastic_and_dynamics_agree() {
        // The adversary policy + defender policy reproduce the
        // CoupledDynamics trajectory exactly.
        use crate::elastic::CoupledDynamics;
        use crate::strategy::{DefenderObservation, DefenderPolicy};
        let d = CoupledDynamics::new(0.9, 0.5).unwrap();
        let reference = d.trajectory(10);

        let mut def = DefenderPolicy::elastic(0.9, 0.5);
        let mut adv = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(7);
        let mut trim = def.initial_threshold();
        let mut inject = adv.next_injection(&obs(None), &mut rng);
        for state in &reference {
            assert!((state.trim - trim).abs() < 1e-12);
            assert!((state.inject - inject).abs() < 1e-12);
            let next_trim = def.next_threshold(
                0,
                &DefenderObservation {
                    quality: 1.0,
                    injection_percentile: Some(inject),
                },
            );
            let next_inject = adv.next_injection(&obs(Some(trim)), &mut rng);
            trim = next_trim;
            inject = next_inject;
        }
    }

    #[test]
    fn compliant_sits_just_below_nominal() {
        let mut a = AdversaryPolicy::compliant(0.9);
        let mut rng = seeded_rng(8);
        assert!((a.next_injection(&obs(Some(0.91)), &mut rng) - 0.89).abs() < 1e-12);
    }

    #[test]
    fn attack_trait_shim_matches_enum_dispatch() {
        let mut direct = AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 };
        let mut boxed: Box<dyn AttackPolicy> =
            Box::new(AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 });
        let mut rng_a = seeded_rng(42);
        let mut rng_b = seeded_rng(42);
        for _ in 0..50 {
            assert_eq!(
                direct.next_injection(&obs(None), &mut rng_a),
                boxed.next_injection(&obs(None), &mut rng_b)
            );
        }
    }

    fn post_threshold(board: &PublicBoard, round: usize, threshold: f64) {
        board.post(trimgame_stream::board::RoundRecord {
            round,
            threshold_percentile: threshold,
            threshold_value: None,
            received: 100,
            trimmed: 10,
            retained: trimgame_numerics::stats::OnlineStats::new(),
            quality: 1.0,
        });
    }

    #[test]
    fn adaptive_attacker_falls_back_without_history() {
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board, 0.01, 0.99);
        let mut rng = seeded_rng(1);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
    }

    #[test]
    fn adaptive_attacker_tracks_a_deterministic_defender() {
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        for round in 1..=5 {
            post_threshold(&board, round, 0.9);
        }
        let mut rng = seeded_rng(2);
        // One atom at 0.9: ride just below it (the ideal attack).
        let x = a.next_injection(&obs(Some(0.9)), &mut rng);
        assert!((x - 0.89).abs() < 1e-12);
    }

    #[test]
    fn adaptive_attacker_best_responds_to_a_mixture() {
        // 80% of thresholds at 0.95, 20% at 0.85. Riding below 0.95 earns
        // 0.8 * 0.94 = 0.752; hiding below 0.85 earns 1.0 * 0.84 = 0.84.
        // The safe low position wins.
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        for round in 1..=10 {
            let t = if round <= 8 { 0.95 } else { 0.85 };
            post_threshold(&board, round, t);
        }
        let mut rng = seeded_rng(3);
        let x = a.next_injection(&obs(Some(0.95)), &mut rng);
        assert!((x - 0.84).abs() < 1e-12, "expected 0.84, got {x}");

        // Tilt the mixture to 90% high: below-0.95 now earns
        // 0.9 * 0.94 = 0.846, beating below-0.85's 0.84.
        let board2 = PublicBoard::new();
        let mut b = AdaptiveAttacker::new(board2.clone(), 0.01, 0.99);
        for round in 1..=10 {
            let t = if round <= 9 { 0.95 } else { 0.85 };
            post_threshold(&board2, round, t);
        }
        let x = b.next_injection(&obs(Some(0.95)), &mut rng);
        assert!((x - 0.94).abs() < 1e-12, "expected 0.94, got {x}");
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn adaptive_attacker_rejects_bad_offset() {
        let _ = AdaptiveAttacker::new(PublicBoard::new(), 1.5, 0.9);
    }
}
