//! Adversary injection policies — the attacker side of Section VI-A.
//!
//! | Opposing scheme | Adversary behaviour |
//! |---|---|
//! | `Ostrich` | always injects at the 99th percentile |
//! | `Baseline 0.9` | uniform random percentile in `[0.9, 1]` |
//! | `Baseline static` | the *ideal attack*: exactly `Tth − 1%`, i.e. just below the known static threshold |
//! | `Titfortat` (equilibrium) | complies at `Tth − 1%` (below the soft trim, within the agreed quality) |
//! | `Elastic` | the coupled rule `A(i+1) = Tth − 3% + k(T(i) − Tth)`, `A(1) = Tth + 1%` |
//! | Table III (non-equilibrium) | mixed: 99th percentile w.p. `p`, 90th w.p. `1 − p` |
//!
//! Policies see the defender's previous threshold via the public board
//! (white-box attacker, complete information).

use rand::Rng;

/// What the adversary observes before choosing this round's injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryObservation {
    /// The defender's trimming percentile last round (from the public
    /// board), if any round has completed.
    pub last_threshold: Option<f64>,
}

/// An adversary injection-position policy (percentile of the benign
/// distribution at which poison is placed).
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryPolicy {
    /// Fixed percentile (Ostrich's opponent uses 0.99).
    Fixed {
        /// Injection percentile.
        percentile: f64,
    },
    /// Uniform percentile in `[lo, hi]` each poison value (Baseline 0.9's
    /// opponent).
    Uniform {
        /// Low percentile.
        lo: f64,
        /// High percentile.
        hi: f64,
    },
    /// Just below the defender's last threshold (`threshold − offset`) —
    /// the "ideal attack" of Baseline static.
    JustBelowThreshold {
        /// Gap below the defender threshold.
        offset: f64,
        /// Fallback percentile before any threshold is visible.
        fallback: f64,
    },
    /// Mixed strategy of Table III: high percentile w.p. `p`, low w.p.
    /// `1 − p`, decided once per round (the whole round's poison mass is a
    /// coordinated Sybil batch).
    Mixed {
        /// Probability of the high (equilibrium) position.
        p: f64,
        /// High percentile (paper: 0.99).
        hi: f64,
        /// Low percentile (paper: 0.90).
        lo: f64,
    },
    /// §VI-A coupled Elastic rule.
    Elastic {
        /// Nominal threshold `Tth`.
        tth: f64,
        /// Response intensity `k`.
        k: f64,
        /// Current injection percentile `A(i)`.
        current: f64,
    },
}

impl AdversaryPolicy {
    /// The Elastic adversary's initial injection (`A(1) = Tth + 1%`).
    #[must_use]
    pub fn elastic(tth: f64, k: f64) -> Self {
        AdversaryPolicy::Elastic {
            tth,
            k,
            current: tth + 0.01,
        }
    }

    /// The equilibrium (compliant) adversary against Tit-for-tat: injects
    /// at `Tth − 1%`.
    #[must_use]
    pub fn compliant(tth: f64) -> Self {
        AdversaryPolicy::Fixed {
            percentile: tth - 0.01,
        }
    }

    /// Chooses this round's injection percentile. `Uniform` and `Mixed`
    /// draw randomness once per round (colluding attackers coordinate the
    /// round's poison batch).
    pub fn next_injection<R: Rng + ?Sized>(
        &mut self,
        obs: &AdversaryObservation,
        rng: &mut R,
    ) -> f64 {
        match self {
            AdversaryPolicy::Fixed { percentile } => *percentile,
            AdversaryPolicy::Uniform { lo, hi } => *lo + (*hi - *lo) * rng.gen::<f64>(),
            AdversaryPolicy::JustBelowThreshold { offset, fallback } => obs
                .last_threshold
                .map_or(*fallback, |t| (t - *offset).max(0.0)),
            AdversaryPolicy::Mixed { p, hi, lo } => {
                if rng.gen::<f64>() < *p {
                    *hi
                } else {
                    *lo
                }
            }
            AdversaryPolicy::Elastic { tth, k, current } => {
                if let Some(t) = obs.last_threshold {
                    *current = *tth - 0.03 + *k * (t - *tth);
                }
                current.clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn obs(t: Option<f64>) -> AdversaryObservation {
        AdversaryObservation { last_threshold: t }
    }

    #[test]
    fn fixed_ignores_observations() {
        let mut a = AdversaryPolicy::Fixed { percentile: 0.99 };
        let mut rng = seeded_rng(1);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert_eq!(a.next_injection(&obs(Some(0.5)), &mut rng), 0.99);
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut a = AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 };
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            let x = a.next_injection(&obs(None), &mut rng);
            assert!((0.9..=1.0).contains(&x));
        }
    }

    #[test]
    fn just_below_tracks_threshold() {
        let mut a = AdversaryPolicy::JustBelowThreshold {
            offset: 0.01,
            fallback: 0.99,
        };
        let mut rng = seeded_rng(3);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert!((a.next_injection(&obs(Some(0.9)), &mut rng) - 0.89).abs() < 1e-12);
        // Never negative.
        assert_eq!(a.next_injection(&obs(Some(0.005)), &mut rng), 0.0);
    }

    #[test]
    fn mixed_extremes_are_pure() {
        let mut hi = AdversaryPolicy::Mixed {
            p: 1.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut lo = AdversaryPolicy::Mixed {
            p: 0.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(4);
        for _ in 0..20 {
            assert_eq!(hi.next_injection(&obs(None), &mut rng), 0.99);
            assert_eq!(lo.next_injection(&obs(None), &mut rng), 0.90);
        }
    }

    #[test]
    fn mixed_frequency_matches_p() {
        let mut a = AdversaryPolicy::Mixed {
            p: 0.3,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(5);
        let hits = (0..10_000)
            .filter(|_| a.next_injection(&obs(None), &mut rng) == 0.99)
            .count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn elastic_follows_coupled_rule() {
        let mut a = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(6);
        // A(1) = Tth + 1%.
        assert!((a.next_injection(&obs(None), &mut rng) - 0.91).abs() < 1e-12);
        // Defender trimmed at 0.87: A = 0.9 - 0.03 + 0.5*(0.87-0.9) = 0.855.
        let x = a.next_injection(&obs(Some(0.87)), &mut rng);
        assert!((x - 0.855).abs() < 1e-12);
    }

    #[test]
    fn elastic_and_dynamics_agree() {
        // The adversary policy + defender policy reproduce the
        // CoupledDynamics trajectory exactly.
        use crate::elastic::CoupledDynamics;
        use crate::strategy::{DefenderObservation, DefenderPolicy};
        let d = CoupledDynamics::new(0.9, 0.5).unwrap();
        let reference = d.trajectory(10);

        let mut def = DefenderPolicy::elastic(0.9, 0.5);
        let mut adv = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(7);
        let mut trim = def.initial_threshold();
        let mut inject = adv.next_injection(&obs(None), &mut rng);
        for state in &reference {
            assert!((state.trim - trim).abs() < 1e-12);
            assert!((state.inject - inject).abs() < 1e-12);
            let next_trim = def.next_threshold(
                0,
                &DefenderObservation {
                    quality: 1.0,
                    injection_percentile: Some(inject),
                },
            );
            let next_inject = adv.next_injection(&obs(Some(trim)), &mut rng);
            trim = next_trim;
            inject = next_inject;
        }
    }

    #[test]
    fn compliant_sits_just_below_nominal() {
        let mut a = AdversaryPolicy::compliant(0.9);
        let mut rng = seeded_rng(8);
        assert!((a.next_injection(&obs(Some(0.91)), &mut rng) - 0.89).abs() < 1e-12);
    }
}
