//! Adversary injection policies — the attacker side of Section VI-A.
//!
//! | Opposing scheme | Adversary behaviour |
//! |---|---|
//! | `Ostrich` | always injects at the 99th percentile |
//! | `Baseline 0.9` | uniform random percentile in `[0.9, 1]` |
//! | `Baseline static` | the *ideal attack*: exactly `Tth − 1%`, i.e. just below the known static threshold |
//! | `Titfortat` (equilibrium) | complies at `Tth − 1%` (below the soft trim, within the agreed quality) |
//! | `Elastic` | the coupled rule `A(i+1) = Tth − 3% + k(T(i) − Tth)`, `A(1) = Tth + 1%` |
//! | Table III (non-equilibrium) | mixed: 99th percentile w.p. `p`, 90th w.p. `1 − p` |
//!
//! Policies see the defender's previous threshold via the public board
//! (white-box attacker, complete information).

use rand::{Rng, RngCore};
use std::borrow::Cow;
use trimgame_stream::board::{PublicBoard, RangedVenue};

/// What the adversary observes before choosing this round's injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryObservation {
    /// The defender's trimming percentile last round (from the public
    /// board), if any round has completed.
    pub last_threshold: Option<f64>,
}

/// An object-safe adversary injection policy: the open half of the policy
/// layer on the attacker side.
///
/// The `rng` argument is the engine's *main* environment stream — the same
/// stream the closed [`AdversaryPolicy`] roster always drew from — so
/// re-expressing an enum variant through the trait keeps fixed-seed
/// trajectories bit-identical. Policies that need richer information than
/// [`AdversaryObservation`] (the white-box threat model grants the full
/// public record) hold a clone of the engine's [`PublicBoard`], as
/// [`AdaptiveAttacker`] does.
pub trait AttackPolicy: std::fmt::Debug {
    /// Human-readable attacker name (used in reports).
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Adversary")
    }

    /// Chooses this round's injection percentile.
    fn next_injection(&mut self, obs: &AdversaryObservation, rng: &mut dyn RngCore) -> f64;

    /// Feedback hook: the engine reports the adversary's *realized*
    /// roundwise gain (`RoundReport::gain_adversary`) after each round, so
    /// learning attackers — bandit/no-regret policies like
    /// [`Exp3Attacker`] — can update on actual payoffs rather than
    /// modeled ones. The default is a no-op; the closed roster and the
    /// board-driven best-responder ignore it.
    fn observe_payoff(&mut self, round: usize, payoff: f64) {
        let _ = (round, payoff);
    }
}

/// An adversary injection-position policy (percentile of the benign
/// distribution at which poison is placed).
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryPolicy {
    /// Fixed percentile (Ostrich's opponent uses 0.99).
    Fixed {
        /// Injection percentile.
        percentile: f64,
    },
    /// Uniform percentile in `[lo, hi]` each poison value (Baseline 0.9's
    /// opponent).
    Uniform {
        /// Low percentile.
        lo: f64,
        /// High percentile.
        hi: f64,
    },
    /// Just below the defender's last threshold (`threshold − offset`) —
    /// the "ideal attack" of Baseline static.
    JustBelowThreshold {
        /// Gap below the defender threshold.
        offset: f64,
        /// Fallback percentile before any threshold is visible.
        fallback: f64,
    },
    /// Mixed strategy of Table III: high percentile w.p. `p`, low w.p.
    /// `1 − p`, decided once per round (the whole round's poison mass is a
    /// coordinated Sybil batch).
    Mixed {
        /// Probability of the high (equilibrium) position.
        p: f64,
        /// High percentile (paper: 0.99).
        hi: f64,
        /// Low percentile (paper: 0.90).
        lo: f64,
    },
    /// §VI-A coupled Elastic rule.
    Elastic {
        /// Nominal threshold `Tth`.
        tth: f64,
        /// Response intensity `k`.
        k: f64,
        /// Current injection percentile `A(i)`.
        current: f64,
    },
}

impl AdversaryPolicy {
    /// The Elastic adversary's initial injection (`A(1) = Tth + 1%`).
    #[must_use]
    pub fn elastic(tth: f64, k: f64) -> Self {
        AdversaryPolicy::Elastic {
            tth,
            k,
            current: tth + 0.01,
        }
    }

    /// The equilibrium (compliant) adversary against Tit-for-tat: injects
    /// at `Tth − 1%`.
    #[must_use]
    pub fn compliant(tth: f64) -> Self {
        AdversaryPolicy::Fixed {
            percentile: tth - 0.01,
        }
    }

    /// Chooses this round's injection percentile. `Uniform` and `Mixed`
    /// draw randomness once per round (colluding attackers coordinate the
    /// round's poison batch).
    pub fn next_injection<R: Rng + ?Sized>(
        &mut self,
        obs: &AdversaryObservation,
        rng: &mut R,
    ) -> f64 {
        match self {
            AdversaryPolicy::Fixed { percentile } => *percentile,
            AdversaryPolicy::Uniform { lo, hi } => *lo + (*hi - *lo) * rng.gen::<f64>(),
            AdversaryPolicy::JustBelowThreshold { offset, fallback } => obs
                .last_threshold
                .map_or(*fallback, |t| (t - *offset).max(0.0)),
            AdversaryPolicy::Mixed { p, hi, lo } => {
                if rng.gen::<f64>() < *p {
                    *hi
                } else {
                    *lo
                }
            }
            AdversaryPolicy::Elastic { tth, k, current } => {
                if let Some(t) = obs.last_threshold {
                    *current = *tth - 0.03 + *k * (t - *tth);
                }
                current.clamp(0.0, 1.0)
            }
        }
    }
}

/// Compatibility shim: every closed-roster attacker is an [`AttackPolicy`].
/// The trait hands the same main-stream RNG to the same drawing code, so
/// trajectories through the trait layer are bit-identical to direct enum
/// dispatch.
impl AttackPolicy for AdversaryPolicy {
    fn next_injection(&mut self, obs: &AdversaryObservation, rng: &mut dyn RngCore) -> f64 {
        AdversaryPolicy::next_injection(self, obs, rng)
    }
}

/// An empirical best-response attacker that learns the defender's
/// threshold distribution from the public board.
///
/// Each round it reads the full published threshold history (the white-box
/// channel of the threat model), groups the observed percentiles into
/// atoms, and for each candidate position *just below an atom* scores the
/// expected percentile-damage gain: the empirical probability that a
/// future threshold clears the position, times the position itself.
/// It injects at the argmax. Against a deterministic defender this
/// converges to the classic just-below-the-threshold ideal attack; against
/// a [`RandomizedDefender`](crate::strategy::RandomizedDefender) it
/// reproduces the finite-support best-response structure of threshold
/// games (equilibria concentrate on small supports), trading survival
/// probability against injection height.
#[derive(Debug, Clone)]
pub struct AdaptiveAttacker {
    feed: ThresholdFeed,
    offset: f64,
    fallback: f64,
    tol: f64,
    /// Distinct observed threshold atoms, ascending, with observation
    /// counts — maintained incrementally via
    /// [`PublicBoard::history_since`] so a `T`-round game costs `O(T)`
    /// board reads total instead of re-copying the whole history each
    /// round.
    atoms: Vec<(f64, usize)>,
    /// Board records consumed so far.
    seen: usize,
}

/// Where an [`AdaptiveAttacker`] reads published thresholds from.
#[derive(Debug, Clone)]
enum ThresholdFeed {
    /// A single collector's public board, consumed by record index.
    Board(PublicBoard),
    /// A sharded [`RangedVenue`], consumed through the bounded merge
    /// ([`RangedVenue::merged_since_round`]) so fully-consumed cold spans
    /// are skipped without being touched — under tiered storage they stay
    /// compacted (or spilled) instead of being re-inflated every round.
    Venue {
        venue: RangedVenue,
        /// Last round consumed per collector shard. The merge bound is
        /// `min(last) + 1`: everything below it is consumed on *every*
        /// shard, so no span holding only such rounds needs reading.
        last: Vec<usize>,
    },
}

impl AdaptiveAttacker {
    /// Creates the attacker over a clone of the engine's public board.
    /// `offset` is the evasion margin kept below a targeted threshold
    /// atom; `fallback` is the injection used before any history exists.
    ///
    /// # Panics
    /// Panics unless `0 <= offset <= 1` and `0 <= fallback <= 1`.
    #[must_use]
    pub fn new(board: PublicBoard, offset: f64, fallback: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&offset),
            "offset {offset} not in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&fallback),
            "fallback {fallback} not in [0, 1]"
        );
        Self {
            feed: ThresholdFeed::Board(board),
            offset,
            fallback,
            tol: 1e-9,
            atoms: Vec::new(),
            seen: 0,
        }
    }

    /// Creates the attacker over a sharded [`RangedVenue`] — the white-box
    /// channel when several collectors publish to one venue. Records are
    /// consumed through [`RangedVenue::merged_since_round`] with the bound
    /// advanced past fully-consumed rounds, so under tiered storage the
    /// per-round read never inflates compacted or spilled spans it has
    /// already folded into its threshold model.
    ///
    /// # Panics
    /// Panics unless `0 <= offset <= 1` and `0 <= fallback <= 1`.
    #[must_use]
    pub fn over_venue(venue: RangedVenue, offset: f64, fallback: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&offset),
            "offset {offset} not in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&fallback),
            "fallback {fallback} not in [0, 1]"
        );
        let last = vec![0; venue.collectors()];
        Self {
            feed: ThresholdFeed::Venue { venue, last },
            offset,
            fallback,
            tol: 1e-9,
            atoms: Vec::new(),
            seen: 0,
        }
    }

    /// The board view this attacker reads, if it is board-backed (a
    /// venue-backed attacker reads a sharded merge instead).
    #[must_use]
    pub fn board(&self) -> Option<&PublicBoard> {
        match &self.feed {
            ThresholdFeed::Board(board) => Some(board),
            ThresholdFeed::Venue { .. } => None,
        }
    }

    /// Folds records published since the last read into the atom counts
    /// (an allocation-free visitor read of the chunked board, or of the
    /// round-bounded venue merge).
    fn ingest_new_records(&mut self) {
        let Self {
            feed,
            atoms,
            seen,
            tol,
            ..
        } = self;
        let tol = *tol;
        let mut fold = |t: f64| {
            assert!(!t.is_nan(), "NaN threshold on the public board");
            let idx = atoms.partition_point(|&(a, _)| a < t - tol);
            match atoms.get_mut(idx) {
                Some((a, count)) if (*a - t).abs() <= tol => *count += 1,
                _ => atoms.insert(idx, (t, 1)),
            }
        };
        match feed {
            ThresholdFeed::Board(board) => {
                board.for_each_since(*seen, |record| {
                    *seen += 1;
                    fold(record.threshold_percentile);
                });
            }
            ThresholdFeed::Venue { venue, last } => {
                let bound = last.iter().copied().min().unwrap_or(0) + 1;
                venue.merged_since_round(bound).for_each(|shard, record| {
                    // Shards advance unevenly: the bound is the min across
                    // shards, so records a faster shard already yielded can
                    // reappear — the per-shard watermark drops them.
                    if record.round <= last[shard] {
                        return;
                    }
                    last[shard] = record.round;
                    *seen += 1;
                    fold(record.threshold_percentile);
                });
            }
        }
    }
}

impl AttackPolicy for AdaptiveAttacker {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Adaptive")
    }

    fn next_injection(&mut self, _obs: &AdversaryObservation, _rng: &mut dyn RngCore) -> f64 {
        self.ingest_new_records();
        if self.seen == 0 {
            return self.fallback;
        }
        let total = self.seen as f64;
        let mut best = self.fallback;
        let mut best_gain = f64::NEG_INFINITY;
        // Ascending scan with strict improvement: deterministic, and ties
        // resolve to the safest (lowest) position. Candidate `atom − offset`
        // survives whenever the sampled threshold is at least that high, so
        // with ascending atoms the survivor mass is a running suffix sum.
        let mut survivors: usize = self.atoms.iter().map(|&(_, count)| count).sum();
        let mut k = 0; // first atom index counted in `survivors`
        for i in 0..self.atoms.len() {
            let position = (self.atoms[i].0 - self.offset).clamp(0.0, 1.0);
            while k < self.atoms.len() && self.atoms[k].0 < position {
                survivors -= self.atoms[k].1;
                k += 1;
            }
            let gain = survivors as f64 / total * position;
            if gain > best_gain {
                best_gain = gain;
                best = position;
            }
        }
        best
    }
}

/// A no-regret (bandit) attacker: Exp3 multiplicative weights over a
/// finite set of injection responses, fed by the *realized* per-round
/// payoffs the engine reports through [`AttackPolicy::observe_payoff`].
///
/// Unlike [`AdaptiveAttacker`] — which best-responds to a *model* built
/// from the public threshold history — Exp3 never models the defender at
/// all: it only sees its own bandit feedback (the payoff of the arm it
/// played), yet its average payoff provably converges to within the
/// certified regret bound of the best fixed response in hindsight. Against
/// a defender playing the solved mixed equilibrium this is exactly the
/// robustness claim worth testing: no learning attacker, however adaptive,
/// can push its long-run average payoff above the game value plus the
/// regret bound.
///
/// Determinism: the attacker draws **only from its own seeded sub-stream**
/// (never from the engine's main environment RNG passed to
/// [`AttackPolicy::next_injection`]), so adding it to a game cannot
/// perturb the benign draws, and fixed-seed replays are exact. A
/// single-response set consumes no randomness at all and is
/// trajectory-identical to the corresponding pure
/// [`AdversaryPolicy::Fixed`] policy.
#[derive(Debug, Clone)]
pub struct Exp3Attacker {
    atoms: Vec<f64>,
    /// Normalized weights (sum to one); the played distribution mixes
    /// them with uniform exploration `γ/K`.
    weights: Vec<f64>,
    gamma: f64,
    horizon: usize,
    payoff_bound: f64,
    rng: rand::rngs::StdRng,
    /// Arm played this round and its sampling probability, pending payoff.
    last_play: Option<(usize, f64)>,
    rounds_observed: usize,
    total_payoff: f64,
}

impl Exp3Attacker {
    /// Builds the attacker over response `atoms` (injection percentiles)
    /// for a game of `horizon` rounds. `payoff_bound` is an upper bound on
    /// the per-round payoff magnitude (the percentile-damage proxy is at
    /// most 1); `seed` seeds the attacker's private sampling stream. The
    /// exploration rate is the horizon-optimal
    /// `γ = min(1, √(K·ln K / ((e−1)·horizon)))`.
    ///
    /// # Errors
    /// Returns [`crate::error::CoreError::InvalidParameter`] if the atom
    /// set is empty or leaves `[0, 1]`, `horizon` is zero, or
    /// `payoff_bound` is not strictly positive and finite.
    pub fn new(
        atoms: &[f64],
        horizon: usize,
        payoff_bound: f64,
        seed: u64,
    ) -> Result<Self, crate::error::CoreError> {
        use crate::error::CoreError;
        if atoms.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "atoms",
                constraint: "non-empty response set",
                value: 0.0,
            });
        }
        for &a in atoms {
            if !(0.0..=1.0).contains(&a) {
                return Err(CoreError::InvalidParameter {
                    name: "atom",
                    constraint: "0 <= atom <= 1",
                    value: a,
                });
            }
        }
        if horizon == 0 {
            return Err(CoreError::InvalidParameter {
                name: "horizon",
                constraint: "at least one round",
                value: 0.0,
            });
        }
        if !(payoff_bound.is_finite() && payoff_bound > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "payoff_bound",
                constraint: "finite and strictly positive",
                value: payoff_bound,
            });
        }
        let k = atoms.len() as f64;
        let gamma = if atoms.len() == 1 {
            0.0
        } else {
            (k * k.ln() / ((std::f64::consts::E - 1.0) * horizon as f64))
                .sqrt()
                .min(1.0)
        };
        Ok(Self {
            atoms: atoms.to_vec(),
            weights: vec![1.0 / k; atoms.len()],
            gamma,
            horizon,
            payoff_bound,
            rng: trimgame_numerics::rand_ext::seeded_rng(seed),
            last_play: None,
            rounds_observed: 0,
            total_payoff: 0.0,
        })
    }

    /// The response atoms.
    #[must_use]
    pub fn atoms(&self) -> &[f64] {
        &self.atoms
    }

    /// The played distribution this round:
    /// `p_i = (1 − γ)·w_i + γ/K`. Every entry is at least `γ/K > 0` (for
    /// `K > 1`) and the entries sum to one.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let k = self.atoms.len() as f64;
        self.weights
            .iter()
            .map(|w| (1.0 - self.gamma) * w + self.gamma / k)
            .collect()
    }

    /// The normalized internal weights (sum to one).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mean realized payoff per observed round so far.
    #[must_use]
    pub fn average_payoff(&self) -> f64 {
        if self.rounds_observed == 0 {
            0.0
        } else {
            self.total_payoff / self.rounds_observed as f64
        }
    }

    /// Rounds of payoff feedback consumed so far.
    #[must_use]
    pub fn rounds_observed(&self) -> usize {
        self.rounds_observed
    }

    /// The certified *average* (per-round) regret bound of Exp3 with this
    /// exploration rate after `rounds` rounds, in payoff units:
    /// `bound · ((e−1)·γ + K·ln K / (γ·rounds))`. At the construction
    /// horizon this is the classic `2√(e−1)·√(K ln K / T)·bound`. A
    /// singleton response set has zero regret by definition.
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn average_regret_bound(&self, rounds: usize) -> f64 {
        assert!(rounds > 0, "regret is per observed round");
        if self.atoms.len() == 1 {
            return 0.0;
        }
        let k = self.atoms.len() as f64;
        self.payoff_bound
            * ((std::f64::consts::E - 1.0) * self.gamma + k * k.ln() / (self.gamma * rounds as f64))
    }

    /// The construction horizon (the `T` the exploration rate is tuned to).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

impl AttackPolicy for Exp3Attacker {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Exp3")
    }

    fn next_injection(&mut self, _obs: &AdversaryObservation, _rng: &mut dyn RngCore) -> f64 {
        // Singleton: no sampling, no randomness — replay-identical to the
        // pure policy at the same atom.
        if self.atoms.len() == 1 {
            self.last_play = Some((0, 1.0));
            return self.atoms[0];
        }
        let probs = self.probabilities();
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        let mut arm = probs.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                arm = i;
                break;
            }
        }
        self.last_play = Some((arm, probs[arm]));
        self.atoms[arm]
    }

    fn observe_payoff(&mut self, _round: usize, payoff: f64) {
        self.rounds_observed += 1;
        self.total_payoff += payoff;
        let Some((arm, prob)) = self.last_play.take() else {
            return;
        };
        if self.atoms.len() == 1 {
            return;
        }
        // Importance-weighted payoff estimate of the played arm, scaled
        // into [0, 1]; unplayed arms get estimate 0 (the bandit update).
        let x = (payoff / self.payoff_bound).clamp(0.0, 1.0) / prob;
        let k = self.atoms.len() as f64;
        self.weights[arm] *= (self.gamma * x / k).exp();
        // Keep the weights normalized: positivity and Σw = 1 become
        // invariants instead of floating-point hopes (the played mixture
        // is scale-free, so this is the standard Exp3 up to normalization).
        let total: f64 = self.weights.iter().sum();
        for w in &mut self.weights {
            *w /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn obs(t: Option<f64>) -> AdversaryObservation {
        AdversaryObservation { last_threshold: t }
    }

    #[test]
    fn fixed_ignores_observations() {
        let mut a = AdversaryPolicy::Fixed { percentile: 0.99 };
        let mut rng = seeded_rng(1);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert_eq!(a.next_injection(&obs(Some(0.5)), &mut rng), 0.99);
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut a = AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 };
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            let x = a.next_injection(&obs(None), &mut rng);
            assert!((0.9..=1.0).contains(&x));
        }
    }

    #[test]
    fn just_below_tracks_threshold() {
        let mut a = AdversaryPolicy::JustBelowThreshold {
            offset: 0.01,
            fallback: 0.99,
        };
        let mut rng = seeded_rng(3);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
        assert!((a.next_injection(&obs(Some(0.9)), &mut rng) - 0.89).abs() < 1e-12);
        // Never negative.
        assert_eq!(a.next_injection(&obs(Some(0.005)), &mut rng), 0.0);
    }

    #[test]
    fn mixed_extremes_are_pure() {
        let mut hi = AdversaryPolicy::Mixed {
            p: 1.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut lo = AdversaryPolicy::Mixed {
            p: 0.0,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(4);
        for _ in 0..20 {
            assert_eq!(hi.next_injection(&obs(None), &mut rng), 0.99);
            assert_eq!(lo.next_injection(&obs(None), &mut rng), 0.90);
        }
    }

    #[test]
    fn mixed_frequency_matches_p() {
        let mut a = AdversaryPolicy::Mixed {
            p: 0.3,
            hi: 0.99,
            lo: 0.90,
        };
        let mut rng = seeded_rng(5);
        let hits = (0..10_000)
            .filter(|_| a.next_injection(&obs(None), &mut rng) == 0.99)
            .count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn elastic_follows_coupled_rule() {
        let mut a = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(6);
        // A(1) = Tth + 1%.
        assert!((a.next_injection(&obs(None), &mut rng) - 0.91).abs() < 1e-12);
        // Defender trimmed at 0.87: A = 0.9 - 0.03 + 0.5*(0.87-0.9) = 0.855.
        let x = a.next_injection(&obs(Some(0.87)), &mut rng);
        assert!((x - 0.855).abs() < 1e-12);
    }

    #[test]
    fn elastic_and_dynamics_agree() {
        // The adversary policy + defender policy reproduce the
        // CoupledDynamics trajectory exactly.
        use crate::elastic::CoupledDynamics;
        use crate::strategy::{DefenderObservation, DefenderPolicy};
        let d = CoupledDynamics::new(0.9, 0.5).unwrap();
        let reference = d.trajectory(10);

        let mut def = DefenderPolicy::elastic(0.9, 0.5);
        let mut adv = AdversaryPolicy::elastic(0.9, 0.5);
        let mut rng = seeded_rng(7);
        let mut trim = def.initial_threshold();
        let mut inject = adv.next_injection(&obs(None), &mut rng);
        for state in &reference {
            assert!((state.trim - trim).abs() < 1e-12);
            assert!((state.inject - inject).abs() < 1e-12);
            let next_trim = def.next_threshold(
                0,
                &DefenderObservation {
                    quality: 1.0,
                    injection_percentile: Some(inject),
                },
            );
            let next_inject = adv.next_injection(&obs(Some(trim)), &mut rng);
            trim = next_trim;
            inject = next_inject;
        }
    }

    #[test]
    fn compliant_sits_just_below_nominal() {
        let mut a = AdversaryPolicy::compliant(0.9);
        let mut rng = seeded_rng(8);
        assert!((a.next_injection(&obs(Some(0.91)), &mut rng) - 0.89).abs() < 1e-12);
    }

    #[test]
    fn attack_trait_shim_matches_enum_dispatch() {
        let mut direct = AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 };
        let mut boxed: Box<dyn AttackPolicy> =
            Box::new(AdversaryPolicy::Uniform { lo: 0.9, hi: 1.0 });
        let mut rng_a = seeded_rng(42);
        let mut rng_b = seeded_rng(42);
        for _ in 0..50 {
            assert_eq!(
                direct.next_injection(&obs(None), &mut rng_a),
                boxed.next_injection(&obs(None), &mut rng_b)
            );
        }
    }

    fn post_threshold(board: &PublicBoard, round: usize, threshold: f64) {
        board.post(trimgame_stream::board::RoundRecord {
            round,
            threshold_percentile: threshold,
            threshold_value: None,
            received: 100,
            trimmed: 10,
            retained: trimgame_numerics::stats::OnlineStats::new(),
            quality: 1.0,
        });
    }

    #[test]
    fn adaptive_attacker_falls_back_without_history() {
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board, 0.01, 0.99);
        let mut rng = seeded_rng(1);
        assert_eq!(a.next_injection(&obs(None), &mut rng), 0.99);
    }

    #[test]
    fn adaptive_attacker_tracks_a_deterministic_defender() {
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        for round in 1..=5 {
            post_threshold(&board, round, 0.9);
        }
        let mut rng = seeded_rng(2);
        // One atom at 0.9: ride just below it (the ideal attack).
        let x = a.next_injection(&obs(Some(0.9)), &mut rng);
        assert!((x - 0.89).abs() < 1e-12);
    }

    #[test]
    fn adaptive_attacker_best_responds_to_a_mixture() {
        // 80% of thresholds at 0.95, 20% at 0.85. Riding below 0.95 earns
        // 0.8 * 0.94 = 0.752; hiding below 0.85 earns 1.0 * 0.84 = 0.84.
        // The safe low position wins.
        let board = PublicBoard::new();
        let mut a = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        for round in 1..=10 {
            let t = if round <= 8 { 0.95 } else { 0.85 };
            post_threshold(&board, round, t);
        }
        let mut rng = seeded_rng(3);
        let x = a.next_injection(&obs(Some(0.95)), &mut rng);
        assert!((x - 0.84).abs() < 1e-12, "expected 0.84, got {x}");

        // Tilt the mixture to 90% high: below-0.95 now earns
        // 0.9 * 0.94 = 0.846, beating below-0.85's 0.84.
        let board2 = PublicBoard::new();
        let mut b = AdaptiveAttacker::new(board2.clone(), 0.01, 0.99);
        for round in 1..=10 {
            let t = if round <= 9 { 0.95 } else { 0.85 };
            post_threshold(&board2, round, t);
        }
        let x = b.next_injection(&obs(Some(0.95)), &mut rng);
        assert!((x - 0.94).abs() < 1e-12, "expected 0.94, got {x}");
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn adaptive_attacker_rejects_bad_offset() {
        let _ = AdaptiveAttacker::new(PublicBoard::new(), 1.5, 0.9);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn venue_attacker_rejects_bad_fallback() {
        let _ = AdaptiveAttacker::over_venue(RangedVenue::new(1, 8), 0.01, 1.5);
    }

    fn post_ranged(board: &trimgame_stream::board::RangedBoard, round: usize, threshold: f64) {
        board.post(trimgame_stream::board::RoundRecord {
            round,
            threshold_percentile: threshold,
            threshold_value: None,
            received: 100,
            trimmed: 10,
            retained: trimgame_numerics::stats::OnlineStats::new(),
            quality: 1.0,
        });
    }

    #[test]
    fn venue_backed_attacker_matches_board_backed() {
        // Two shards publishing interleaved rounds: the venue merge yields
        // the same global threshold sequence a single board would, so both
        // attackers must best-respond identically at every step.
        let board = PublicBoard::new();
        let venue = RangedVenue::new(2, 8);
        let mut on_board = AdaptiveAttacker::new(board.clone(), 0.01, 0.99);
        let mut on_venue = AdaptiveAttacker::over_venue(venue.clone(), 0.01, 0.99);
        let mut rng = seeded_rng(4);
        assert!(on_venue.board().is_none());
        assert!(on_board.board().is_some());
        for round in 1..=30 {
            let t = if round % 5 == 0 { 0.85 } else { 0.95 };
            post_threshold(&board, round, t);
            post_ranged(&venue.collector(round % 2), round, t);
            if round % 7 == 0 {
                let a = on_board.next_injection(&obs(Some(t)), &mut rng);
                let b = on_venue.next_injection(&obs(Some(t)), &mut rng);
                assert_eq!(a, b, "diverged at round {round}");
            }
        }
    }

    #[test]
    fn venue_attacker_skips_cold_spans_without_inflating() {
        use trimgame_stream::compact::{Compactor, TierConfig};
        let venue = RangedVenue::new(1, 8);
        let shard = venue.collector(0);
        let mut a = AdaptiveAttacker::over_venue(venue.clone(), 0.01, 0.99);
        let mut rng = seeded_rng(5);
        for round in 1..=100 {
            post_ranged(&shard, round, 0.9);
        }
        let x = a.next_injection(&obs(Some(0.9)), &mut rng);
        assert!((x - 0.89).abs() < 1e-12);
        // Compact the consumed history, then keep playing: the bounded
        // merge reads only from the watermark forward, so the compacted
        // spans are never re-inflated by the attacker's per-round reads.
        Compactor::new(TierConfig::default(), "adv").run(&shard);
        let stats = venue.tier_stats();
        assert!(stats.snapshot().frames_built > 0);
        let inflations_before = stats.snapshot().inflations;
        for round in 101..=110 {
            post_ranged(&shard, round, 0.9);
            let x = a.next_injection(&obs(Some(0.9)), &mut rng);
            assert!((x - 0.89).abs() < 1e-12);
        }
        assert_eq!(stats.snapshot().inflations, inflations_before);
    }

    #[test]
    fn exp3_validates_construction() {
        assert!(Exp3Attacker::new(&[], 10, 1.0, 1).is_err());
        assert!(Exp3Attacker::new(&[1.2], 10, 1.0, 1).is_err());
        assert!(Exp3Attacker::new(&[-0.1], 10, 1.0, 1).is_err());
        assert!(Exp3Attacker::new(&[0.9], 0, 1.0, 1).is_err());
        assert!(Exp3Attacker::new(&[0.9], 10, 0.0, 1).is_err());
        assert!(Exp3Attacker::new(&[0.9], 10, f64::NAN, 1).is_err());
        let a = Exp3Attacker::new(&[0.85, 0.95], 100, 1.0, 1).unwrap();
        assert!(a.gamma > 0.0 && a.gamma <= 1.0);
        assert_eq!(a.name(), "Exp3");
    }

    #[test]
    fn exp3_singleton_consumes_no_randomness_and_has_zero_regret() {
        let mut a = Exp3Attacker::new(&[0.93], 50, 1.0, 7).unwrap();
        let rng_fingerprint: u64 = seeded_rng(7).gen();
        let mut main = seeded_rng(99);
        for round in 1..=20 {
            assert_eq!(a.next_injection(&obs(None), &mut main), 0.93);
            a.observe_payoff(round, 0.4);
        }
        // Private stream untouched: its next draw equals a fresh clone's.
        assert_eq!(a.rng.gen::<u64>(), rng_fingerprint);
        assert_eq!(a.average_regret_bound(20), 0.0);
        assert!((a.average_payoff() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn exp3_probabilities_keep_the_exploration_floor() {
        let mut a = Exp3Attacker::new(&[0.8, 0.9, 0.99], 200, 1.0, 3).unwrap();
        let floor = a.gamma / 3.0;
        let mut main = seeded_rng(5);
        for round in 1..=100 {
            let inj = a.next_injection(&obs(None), &mut main);
            // Adversarial feedback: only the lowest atom ever pays.
            a.observe_payoff(round, if inj == 0.8 { 1.0 } else { 0.0 });
            let probs = a.probabilities();
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for &p in &probs {
                assert!(p >= floor - 1e-12, "prob {p} below floor {floor}");
            }
        }
    }

    #[test]
    fn exp3_concentrates_on_the_paying_arm() {
        let mut a = Exp3Attacker::new(&[0.85, 0.95], 400, 1.0, 11).unwrap();
        let mut main = seeded_rng(2);
        for round in 1..=400 {
            let inj = a.next_injection(&obs(None), &mut main);
            a.observe_payoff(round, if inj == 0.95 { 1.0 } else { 0.0 });
        }
        let probs = a.probabilities();
        assert!(
            probs[1] > 0.7,
            "should concentrate on the paying arm: {probs:?}"
        );
        // The main environment stream was never touched.
        let mut fresh = seeded_rng(2);
        assert_eq!(main.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn exp3_regret_bound_shrinks_with_rounds() {
        let a = Exp3Attacker::new(&[0.8, 0.9, 0.99], 1_000, 1.0, 1).unwrap();
        let b100 = a.average_regret_bound(100);
        let b1000 = a.average_regret_bound(1_000);
        assert!(b1000 < b100);
        // At the tuned horizon the bound matches the classic closed form.
        let k = 3.0_f64;
        let classic = 2.0 * (std::f64::consts::E - 1.0).sqrt() * (k * k.ln() / 1_000.0).sqrt();
        assert!((b1000 - classic).abs() < 1e-9, "{b1000} vs {classic}");
    }
}
