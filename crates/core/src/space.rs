//! The complete strategy space `[x_L, x_R]` and mixed strategies
//! (Section III-C).
//!
//! Both players pick positions in `[x_L, x_R]`. Any point `x_p` in the
//! domain decomposes as a convex combination `x_p = p_L·x_L + p_R·x_R` —
//! "a mixed strategy in the sense of game theory" — and because the
//! decomposition is linear and additive, *any poison value distribution*
//! on the domain reduces to a single mixed-strategy point, making the
//! strategy space complete (the key step that lets the model cover
//! colluding adversaries with arbitrary poison distributions).

use crate::error::{strictly_less, CoreError};
use rand::Rng;

/// The strategy interval `[x_L, x_R]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpace {
    /// Balance point `x_L` (soft end).
    pub x_l: f64,
    /// Maximum rational injection `x_R` (hard end).
    pub x_r: f64,
}

/// A mixed strategy: play `x_L` with probability `p_l` and `x_R` with
/// probability `1 − p_l`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPoint {
    /// Probability of the soft end `x_L`.
    pub p_l: f64,
    /// The equivalent pure position `p_l·x_L + (1−p_l)·x_R`.
    pub position: f64,
}

impl StrategySpace {
    /// Creates the space.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `x_L < x_R`.
    pub fn new(x_l: f64, x_r: f64) -> Result<Self, CoreError> {
        if !strictly_less(x_l, x_r) {
            return Err(CoreError::InvalidParameter {
                name: "x_l",
                constraint: "x_L < x_R",
                value: x_l,
            });
        }
        Ok(Self { x_l, x_r })
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x_r - self.x_l
    }

    /// True if `x` is a legal (rational) position.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.x_l..=self.x_r).contains(&x)
    }

    /// Decomposes a pure position into its mixed strategy
    /// (`x = p_L x_L + p_R x_R`, Section III-C2).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `x` is outside the space.
    pub fn decompose(&self, x: f64) -> Result<MixedPoint, CoreError> {
        if !self.contains(x) {
            return Err(CoreError::InvalidParameter {
                name: "x",
                constraint: "x_L <= x <= x_R",
                value: x,
            });
        }
        let p_l = (self.x_r - x) / self.width();
        Ok(MixedPoint { p_l, position: x })
    }

    /// Reduces an arbitrary poison distribution (values + weights) on the
    /// space to its single mixed-strategy point: the weighted mean, which
    /// by linearity carries the same expected payoff (Fig. 1b).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if any value leaves the
    /// space, weights are non-positive, or the inputs are empty/ragged.
    pub fn reduce_distribution(
        &self,
        values: &[f64],
        weights: &[f64],
    ) -> Result<MixedPoint, CoreError> {
        if values.is_empty() || values.len() != weights.len() {
            return Err(CoreError::InvalidParameter {
                name: "values",
                constraint: "non-empty and matching weights",
                value: values.len() as f64,
            });
        }
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for (&v, &w) in values.iter().zip(weights) {
            if !self.contains(v) {
                return Err(CoreError::InvalidParameter {
                    name: "value",
                    constraint: "inside [x_L, x_R]",
                    value: v,
                });
            }
            if w <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "weight",
                    constraint: "positive",
                    value: w,
                });
            }
            total_w += w;
            acc += w * v;
        }
        self.decompose(acc / total_w)
    }

    /// The pure position equivalent to playing `x_L` with probability
    /// `p_l`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `p_l ∈ [0, 1]`.
    pub fn compose(&self, p_l: f64) -> Result<MixedPoint, CoreError> {
        if !(0.0..=1.0).contains(&p_l) {
            return Err(CoreError::InvalidParameter {
                name: "p_l",
                constraint: "0 <= p_l <= 1",
                value: p_l,
            });
        }
        Ok(MixedPoint {
            p_l,
            position: p_l * self.x_l + (1.0 - p_l) * self.x_r,
        })
    }
}

/// A finite-support mixed strategy over positions: a set of atoms with
/// validated, normalized weights (Section III-C2's distributions over
/// trimming/injection positions, in playable form).
///
/// Construction rejects NaN or negative weights and renormalizes any
/// positive total mass to one, so a support built from unnormalized
/// empirical counts is directly usable. [`MixedSupport::sample`] draws one
/// atom by inverse-CDF lookup; a single-atom support short-circuits
/// without consuming randomness, which is what makes a singleton
/// randomized policy replay-identical to its deterministic counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSupport {
    atoms: Vec<f64>,
    weights: Vec<f64>,
    cdf: Vec<f64>,
}

impl MixedSupport {
    /// Builds a support from `atoms` and their (unnormalized) `weights`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the inputs are empty or
    /// ragged, an atom is non-finite, a weight is NaN/non-finite/negative,
    /// or the total weight mass is not strictly positive.
    pub fn new(atoms: &[f64], weights: &[f64]) -> Result<Self, CoreError> {
        if atoms.is_empty() || atoms.len() != weights.len() {
            return Err(CoreError::InvalidParameter {
                name: "atoms",
                constraint: "non-empty and matching weights",
                value: atoms.len() as f64,
            });
        }
        for &a in atoms {
            if !a.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "atom",
                    constraint: "finite",
                    value: a,
                });
            }
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "weight",
                    constraint: "finite and non-negative",
                    value: w,
                });
            }
            total += w;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "weights",
                constraint: "strictly positive total mass",
                value: total,
            });
        }
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        // Guard the last bucket against accumulated rounding.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Self {
            atoms: atoms.to_vec(),
            weights,
            cdf,
        })
    }

    /// A degenerate support: one atom with all the mass.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the atom is non-finite.
    pub fn singleton(atom: f64) -> Result<Self, CoreError> {
        Self::new(&[atom], &[1.0])
    }

    /// The support atoms.
    #[must_use]
    pub fn atoms(&self) -> &[f64] {
        &self.atoms
    }

    /// The normalized weights (sum to one).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Always false: construction rejects empty supports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The mean position `Σ wᵢ·atomᵢ` — the equivalent pure strategy under
    /// the linear-payoff reduction of [`StrategySpace::reduce_distribution`].
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.atoms
            .iter()
            .zip(&self.weights)
            .map(|(a, w)| a * w)
            .sum()
    }

    /// Draws one atom. A single-atom support returns its atom without
    /// consuming any randomness.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.atoms.len() == 1 {
            return self.atoms[0];
        }
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c <= u);
        self.atoms[idx.min(self.atoms.len() - 1)]
    }
}

/// Golden-section minimization of a 1-D objective on `[lo, hi]`:
/// `iterations` interior probes (after the initial bracket pair), plus the
/// two endpoints, returning the best `(argmin, min)` seen. Deterministic —
/// the probe sequence depends only on the bracket — which is what the
/// support optimizer needs to stay reproducible across worker counts.
/// The objective need not be smooth; on a non-unimodal function the result
/// is a local refinement, never worse than the best probed point.
///
/// # Panics
/// Panics unless `lo < hi` and both are finite.
pub fn golden_section_min(
    lo: f64,
    hi: f64,
    iterations: usize,
    mut f: impl FnMut(f64) -> f64,
) -> (f64, f64) {
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "degenerate bracket [{lo}, {hi}]"
    );
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut best = (lo, f(lo));
    let f_hi = f(hi);
    if f_hi < best.1 {
        best = (hi, f_hi);
    }
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iterations {
        if fc < best.1 {
            best = (c, fc);
        }
        if fd < best.1 {
            best = (d, fd);
        }
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    if fc < best.1 {
        best = (c, fc);
    }
    if fd < best.1 {
        best = (d, fd);
    }
    best
}

/// Golden-section *maximization* on `[lo, hi]`: the attacker's oracle
/// search, where the best response maximizes expected damage against the
/// defender's mixture. Same determinism and probe budget as
/// [`golden_section_min`], returning `(argmax, max)`.
///
/// # Panics
/// Panics unless `lo < hi` and both are finite.
pub fn golden_section_max(
    lo: f64,
    hi: f64,
    iterations: usize,
    mut f: impl FnMut(f64) -> f64,
) -> (f64, f64) {
    let (arg, neg) = golden_section_min(lo, hi, iterations, |x| -f(x));
    (arg, -neg)
}

/// Result of a [`refine_placements`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRefinement {
    /// The refined atom placements (strictly ascending).
    pub atoms: Vec<f64>,
    /// Objective value of the refined placement.
    pub value: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
    /// How many atom moves were accepted.
    pub moved: usize,
}

/// Coordinate-descent refinement of mixed-strategy atom *placements*
/// (Section III-C2 taken beyond a fixed grid): each pass sweeps the atoms
/// in order and golden-sections each atom inside the open bracket between
/// its neighbours (clamped to `bounds`, kept `min_gap` apart so the
/// support stays strictly ascending), accepting a move only on strict
/// improvement — the refined value can therefore never be worse than the
/// starting placement's.
///
/// `objective(atoms, moved)` evaluates a full candidate placement and is
/// told which index changed, so callers re-estimating per-atom payoff
/// rows (the empirical equilibrium estimator) can cache the unchanged
/// rows.
///
/// # Panics
/// Panics if `atoms` is empty or not strictly ascending within `bounds`,
/// or if the bracket parameters are degenerate.
pub fn refine_placements(
    atoms: &[f64],
    bounds: (f64, f64),
    min_gap: f64,
    passes: usize,
    golden_iterations: usize,
    mut objective: impl FnMut(&[f64], usize) -> f64,
) -> PlacementRefinement {
    let (lo, hi) = bounds;
    assert!(!atoms.is_empty(), "need at least one atom");
    assert!(
        atoms.windows(2).all(|w| w[0] < w[1]),
        "atoms must be strictly ascending"
    );
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "degenerate bounds [{lo}, {hi}]"
    );
    assert!(
        atoms.iter().all(|a| (lo..=hi).contains(a)),
        "atoms must start inside the bounds"
    );
    assert!(min_gap > 0.0, "need a positive separation gap");

    let mut current: Vec<f64> = atoms.to_vec();
    let mut evaluations = 1;
    let mut moved = 0;
    let mut value = objective(&current, 0);
    for _ in 0..passes {
        for i in 0..current.len() {
            let left = if i == 0 { lo } else { current[i - 1] + min_gap };
            let right = if i + 1 == current.len() {
                hi
            } else {
                current[i + 1] - min_gap
            };
            if right - left <= min_gap {
                continue; // bracket collapsed: neighbours pin this atom
            }
            let mut candidate = current.clone();
            let (best_x, best_v) = golden_section_min(left, right, golden_iterations, |x| {
                candidate[i] = x;
                evaluations += 1;
                objective(&candidate, i)
            });
            if best_v < value {
                current[i] = best_x;
                moved += 1;
            }
            // Re-evaluate the accepted state: leaves the caller's cache
            // consistent and makes `value` authoritative either way.
            evaluations += 1;
            value = objective(&current, i);
        }
    }
    PlacementRefinement {
        atoms: current,
        value,
        evaluations,
        moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn space() -> StrategySpace {
        StrategySpace::new(0.9, 0.99).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(StrategySpace::new(0.5, 0.5).is_err());
        assert!(StrategySpace::new(0.9, 0.1).is_err());
        assert!(StrategySpace::new(0.1, 0.9).is_ok());
    }

    #[test]
    fn decompose_endpoints() {
        let s = space();
        assert!((s.decompose(0.9).unwrap().p_l - 1.0).abs() < 1e-12);
        assert!((s.decompose(0.99).unwrap().p_l - 0.0).abs() < 1e-12);
    }

    #[test]
    fn decompose_midpoint() {
        let s = space();
        let m = s.decompose(0.945).unwrap();
        assert!((m.p_l - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compose_decompose_round_trip() {
        let s = space();
        for &p in &[0.0, 0.25, 0.5, 0.8, 1.0] {
            let m = s.compose(p).unwrap();
            let back = s.decompose(m.position).unwrap();
            assert!((back.p_l - p).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_space_rejected() {
        let s = space();
        assert!(s.decompose(0.8).is_err());
        assert!(s.decompose(1.0).is_err());
        assert!(s.compose(1.5).is_err());
    }

    #[test]
    fn distribution_reduces_to_weighted_mean() {
        let s = space();
        // 50/50 at the endpoints -> midpoint.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 1.0]).unwrap();
        assert!((m.position - 0.945).abs() < 1e-12);
        assert!((m.p_l - 0.5).abs() < 1e-12);
        // Weighted toward the hard end.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 3.0]).unwrap();
        assert!(m.position > 0.945);
    }

    #[test]
    fn distribution_validation() {
        let s = space();
        assert!(s.reduce_distribution(&[], &[]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[1.0, 2.0]).is_err());
        assert!(s.reduce_distribution(&[0.5], &[1.0]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[0.0]).is_err());
    }

    #[test]
    fn contains_and_width() {
        let s = space();
        assert!(s.contains(0.95));
        assert!(!s.contains(0.899));
        assert!((s.width() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn support_rejects_bad_weights() {
        // Negative weight.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.5, -0.1]).is_err());
        // NaN weight.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.5, f64::NAN]).is_err());
        // Infinite weight.
        assert!(MixedSupport::new(&[0.9], &[f64::INFINITY]).is_err());
        // Zero total mass.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.0, 0.0]).is_err());
        // Empty / ragged.
        assert!(MixedSupport::new(&[], &[]).is_err());
        assert!(MixedSupport::new(&[0.9], &[1.0, 2.0]).is_err());
        // Non-finite atom.
        assert!(MixedSupport::new(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn support_renormalizes_non_unit_sums() {
        let s = MixedSupport::new(&[0.9, 0.95, 0.99], &[2.0, 6.0, 2.0]).unwrap();
        assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s.weights()[1] - 0.6).abs() < 1e-12);
        assert!((s.mean() - (0.9 * 0.2 + 0.95 * 0.6 + 0.99 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn support_zero_weight_atoms_are_never_sampled() {
        let s = MixedSupport::new(&[0.1, 0.9], &[0.0, 1.0]).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng), 0.9);
        }
    }

    #[test]
    fn singleton_sampling_consumes_no_randomness() {
        let s = MixedSupport::singleton(0.92).unwrap();
        let mut rng = seeded_rng(7);
        let before: u64 = rng.gen();
        let mut rng_a = seeded_rng(7);
        for _ in 0..5 {
            assert_eq!(s.sample(&mut rng_a), 0.92);
        }
        // The stream is untouched: the next draw equals the first draw of a
        // fresh generator with the same seed.
        let after: u64 = rng_a.gen();
        assert_eq!(before, after);
    }

    #[test]
    fn sampling_frequencies_match_weights() {
        let s = MixedSupport::new(&[0.88, 0.96], &[0.25, 0.75]).unwrap();
        let mut rng = seeded_rng(11);
        let hi = (0..20_000).filter(|_| s.sample(&mut rng) == 0.96).count();
        assert!((hi as f64 / 20_000.0 - 0.75).abs() < 0.02);
    }

    #[test]
    fn golden_section_finds_quadratic_minimum() {
        let (x, v) = golden_section_min(0.0, 1.0, 40, |x| (x - 0.37) * (x - 0.37));
        assert!((x - 0.37).abs() < 1e-6, "argmin {x}");
        assert!(v < 1e-12);
        // Endpoint minima are found too.
        let (x, _) = golden_section_min(0.0, 1.0, 20, |x| x);
        assert!(x < 1e-9);
        let (x, _) = golden_section_min(0.0, 1.0, 20, |x| -x);
        assert!((x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_section_max_mirrors_min() {
        let (x, v) = golden_section_max(0.0, 1.0, 40, |x| -(x - 0.62) * (x - 0.62));
        assert!((x - 0.62).abs() < 1e-6, "argmax {x}");
        assert!(v > -1e-12 && v <= 0.0);
        // Identical probe sequence to the negated minimization.
        let (xm, vm) = golden_section_min(0.0, 1.0, 40, |x| (x - 0.62) * (x - 0.62));
        assert_eq!(x.to_bits(), xm.to_bits());
        assert_eq!(v.to_bits(), (-vm).to_bits());
    }

    #[test]
    #[should_panic(expected = "degenerate bracket")]
    fn golden_section_rejects_inverted_bracket() {
        let _ = golden_section_min(1.0, 0.0, 10, |x| x);
    }

    #[test]
    fn refine_placements_never_regresses_and_orders_atoms() {
        // Objective: distance of each atom to its nearest "good spot".
        let targets = [0.25, 0.55, 0.85];
        let objective = |atoms: &[f64], _moved: usize| -> f64 {
            atoms
                .iter()
                .zip(&targets)
                .map(|(a, t)| (a - t) * (a - t))
                .sum()
        };
        let start = [0.2, 0.5, 0.8];
        let initial = objective(&start, 0);
        let refined = refine_placements(&start, (0.0, 1.0), 0.01, 2, 20, objective);
        assert!(refined.value <= initial + 1e-12);
        assert!(refined.moved >= 1);
        assert!(refined.atoms.windows(2).all(|w| w[0] < w[1]));
        for (a, t) in refined.atoms.iter().zip(&targets) {
            assert!((a - t).abs() < 0.01, "atom {a} target {t}");
        }
    }

    #[test]
    fn refine_placements_ties_keep_the_original_atoms() {
        // Constant objective: no strict improvement exists, so nothing
        // moves and the value is unchanged.
        let start = [0.3, 0.6];
        let refined = refine_placements(&start, (0.0, 1.0), 0.01, 2, 8, |_, _| 1.0);
        assert_eq!(refined.atoms, start.to_vec());
        assert_eq!(refined.value, 1.0);
        assert_eq!(refined.moved, 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn refine_placements_rejects_unsorted_atoms() {
        let _ = refine_placements(&[0.6, 0.3], (0.0, 1.0), 0.01, 1, 4, |_, _| 0.0);
    }
}
