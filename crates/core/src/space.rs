//! The complete strategy space `[x_L, x_R]` and mixed strategies
//! (Section III-C).
//!
//! Both players pick positions in `[x_L, x_R]`. Any point `x_p` in the
//! domain decomposes as a convex combination `x_p = p_L·x_L + p_R·x_R` —
//! "a mixed strategy in the sense of game theory" — and because the
//! decomposition is linear and additive, *any poison value distribution*
//! on the domain reduces to a single mixed-strategy point, making the
//! strategy space complete (the key step that lets the model cover
//! colluding adversaries with arbitrary poison distributions).

use crate::error::{strictly_less, CoreError};
use rand::Rng;

/// The strategy interval `[x_L, x_R]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpace {
    /// Balance point `x_L` (soft end).
    pub x_l: f64,
    /// Maximum rational injection `x_R` (hard end).
    pub x_r: f64,
}

/// A mixed strategy: play `x_L` with probability `p_l` and `x_R` with
/// probability `1 − p_l`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPoint {
    /// Probability of the soft end `x_L`.
    pub p_l: f64,
    /// The equivalent pure position `p_l·x_L + (1−p_l)·x_R`.
    pub position: f64,
}

impl StrategySpace {
    /// Creates the space.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `x_L < x_R`.
    pub fn new(x_l: f64, x_r: f64) -> Result<Self, CoreError> {
        if !strictly_less(x_l, x_r) {
            return Err(CoreError::InvalidParameter {
                name: "x_l",
                constraint: "x_L < x_R",
                value: x_l,
            });
        }
        Ok(Self { x_l, x_r })
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x_r - self.x_l
    }

    /// True if `x` is a legal (rational) position.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.x_l..=self.x_r).contains(&x)
    }

    /// Decomposes a pure position into its mixed strategy
    /// (`x = p_L x_L + p_R x_R`, Section III-C2).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `x` is outside the space.
    pub fn decompose(&self, x: f64) -> Result<MixedPoint, CoreError> {
        if !self.contains(x) {
            return Err(CoreError::InvalidParameter {
                name: "x",
                constraint: "x_L <= x <= x_R",
                value: x,
            });
        }
        let p_l = (self.x_r - x) / self.width();
        Ok(MixedPoint { p_l, position: x })
    }

    /// Reduces an arbitrary poison distribution (values + weights) on the
    /// space to its single mixed-strategy point: the weighted mean, which
    /// by linearity carries the same expected payoff (Fig. 1b).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if any value leaves the
    /// space, weights are non-positive, or the inputs are empty/ragged.
    pub fn reduce_distribution(
        &self,
        values: &[f64],
        weights: &[f64],
    ) -> Result<MixedPoint, CoreError> {
        if values.is_empty() || values.len() != weights.len() {
            return Err(CoreError::InvalidParameter {
                name: "values",
                constraint: "non-empty and matching weights",
                value: values.len() as f64,
            });
        }
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for (&v, &w) in values.iter().zip(weights) {
            if !self.contains(v) {
                return Err(CoreError::InvalidParameter {
                    name: "value",
                    constraint: "inside [x_L, x_R]",
                    value: v,
                });
            }
            if w <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "weight",
                    constraint: "positive",
                    value: w,
                });
            }
            total_w += w;
            acc += w * v;
        }
        self.decompose(acc / total_w)
    }

    /// The pure position equivalent to playing `x_L` with probability
    /// `p_l`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `p_l ∈ [0, 1]`.
    pub fn compose(&self, p_l: f64) -> Result<MixedPoint, CoreError> {
        if !(0.0..=1.0).contains(&p_l) {
            return Err(CoreError::InvalidParameter {
                name: "p_l",
                constraint: "0 <= p_l <= 1",
                value: p_l,
            });
        }
        Ok(MixedPoint {
            p_l,
            position: p_l * self.x_l + (1.0 - p_l) * self.x_r,
        })
    }
}

/// A finite-support mixed strategy over positions: a set of atoms with
/// validated, normalized weights (Section III-C2's distributions over
/// trimming/injection positions, in playable form).
///
/// Construction rejects NaN or negative weights and renormalizes any
/// positive total mass to one, so a support built from unnormalized
/// empirical counts is directly usable. [`MixedSupport::sample`] draws one
/// atom by inverse-CDF lookup; a single-atom support short-circuits
/// without consuming randomness, which is what makes a singleton
/// randomized policy replay-identical to its deterministic counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSupport {
    atoms: Vec<f64>,
    weights: Vec<f64>,
    cdf: Vec<f64>,
}

impl MixedSupport {
    /// Builds a support from `atoms` and their (unnormalized) `weights`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the inputs are empty or
    /// ragged, an atom is non-finite, a weight is NaN/non-finite/negative,
    /// or the total weight mass is not strictly positive.
    pub fn new(atoms: &[f64], weights: &[f64]) -> Result<Self, CoreError> {
        if atoms.is_empty() || atoms.len() != weights.len() {
            return Err(CoreError::InvalidParameter {
                name: "atoms",
                constraint: "non-empty and matching weights",
                value: atoms.len() as f64,
            });
        }
        for &a in atoms {
            if !a.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "atom",
                    constraint: "finite",
                    value: a,
                });
            }
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "weight",
                    constraint: "finite and non-negative",
                    value: w,
                });
            }
            total += w;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "weights",
                constraint: "strictly positive total mass",
                value: total,
            });
        }
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        // Guard the last bucket against accumulated rounding.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Self {
            atoms: atoms.to_vec(),
            weights,
            cdf,
        })
    }

    /// A degenerate support: one atom with all the mass.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if the atom is non-finite.
    pub fn singleton(atom: f64) -> Result<Self, CoreError> {
        Self::new(&[atom], &[1.0])
    }

    /// The support atoms.
    #[must_use]
    pub fn atoms(&self) -> &[f64] {
        &self.atoms
    }

    /// The normalized weights (sum to one).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Always false: construction rejects empty supports.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The mean position `Σ wᵢ·atomᵢ` — the equivalent pure strategy under
    /// the linear-payoff reduction of [`StrategySpace::reduce_distribution`].
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.atoms
            .iter()
            .zip(&self.weights)
            .map(|(a, w)| a * w)
            .sum()
    }

    /// Draws one atom. A single-atom support returns its atom without
    /// consuming any randomness.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.atoms.len() == 1 {
            return self.atoms[0];
        }
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c <= u);
        self.atoms[idx.min(self.atoms.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn space() -> StrategySpace {
        StrategySpace::new(0.9, 0.99).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(StrategySpace::new(0.5, 0.5).is_err());
        assert!(StrategySpace::new(0.9, 0.1).is_err());
        assert!(StrategySpace::new(0.1, 0.9).is_ok());
    }

    #[test]
    fn decompose_endpoints() {
        let s = space();
        assert!((s.decompose(0.9).unwrap().p_l - 1.0).abs() < 1e-12);
        assert!((s.decompose(0.99).unwrap().p_l - 0.0).abs() < 1e-12);
    }

    #[test]
    fn decompose_midpoint() {
        let s = space();
        let m = s.decompose(0.945).unwrap();
        assert!((m.p_l - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compose_decompose_round_trip() {
        let s = space();
        for &p in &[0.0, 0.25, 0.5, 0.8, 1.0] {
            let m = s.compose(p).unwrap();
            let back = s.decompose(m.position).unwrap();
            assert!((back.p_l - p).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_space_rejected() {
        let s = space();
        assert!(s.decompose(0.8).is_err());
        assert!(s.decompose(1.0).is_err());
        assert!(s.compose(1.5).is_err());
    }

    #[test]
    fn distribution_reduces_to_weighted_mean() {
        let s = space();
        // 50/50 at the endpoints -> midpoint.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 1.0]).unwrap();
        assert!((m.position - 0.945).abs() < 1e-12);
        assert!((m.p_l - 0.5).abs() < 1e-12);
        // Weighted toward the hard end.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 3.0]).unwrap();
        assert!(m.position > 0.945);
    }

    #[test]
    fn distribution_validation() {
        let s = space();
        assert!(s.reduce_distribution(&[], &[]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[1.0, 2.0]).is_err());
        assert!(s.reduce_distribution(&[0.5], &[1.0]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[0.0]).is_err());
    }

    #[test]
    fn contains_and_width() {
        let s = space();
        assert!(s.contains(0.95));
        assert!(!s.contains(0.899));
        assert!((s.width() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn support_rejects_bad_weights() {
        // Negative weight.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.5, -0.1]).is_err());
        // NaN weight.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.5, f64::NAN]).is_err());
        // Infinite weight.
        assert!(MixedSupport::new(&[0.9], &[f64::INFINITY]).is_err());
        // Zero total mass.
        assert!(MixedSupport::new(&[0.9, 0.95], &[0.0, 0.0]).is_err());
        // Empty / ragged.
        assert!(MixedSupport::new(&[], &[]).is_err());
        assert!(MixedSupport::new(&[0.9], &[1.0, 2.0]).is_err());
        // Non-finite atom.
        assert!(MixedSupport::new(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn support_renormalizes_non_unit_sums() {
        let s = MixedSupport::new(&[0.9, 0.95, 0.99], &[2.0, 6.0, 2.0]).unwrap();
        assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s.weights()[1] - 0.6).abs() < 1e-12);
        assert!((s.mean() - (0.9 * 0.2 + 0.95 * 0.6 + 0.99 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn support_zero_weight_atoms_are_never_sampled() {
        let s = MixedSupport::new(&[0.1, 0.9], &[0.0, 1.0]).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng), 0.9);
        }
    }

    #[test]
    fn singleton_sampling_consumes_no_randomness() {
        let s = MixedSupport::singleton(0.92).unwrap();
        let mut rng = seeded_rng(7);
        let before: u64 = rng.gen();
        let mut rng_a = seeded_rng(7);
        for _ in 0..5 {
            assert_eq!(s.sample(&mut rng_a), 0.92);
        }
        // The stream is untouched: the next draw equals the first draw of a
        // fresh generator with the same seed.
        let after: u64 = rng_a.gen();
        assert_eq!(before, after);
    }

    #[test]
    fn sampling_frequencies_match_weights() {
        let s = MixedSupport::new(&[0.88, 0.96], &[0.25, 0.75]).unwrap();
        let mut rng = seeded_rng(11);
        let hi = (0..20_000).filter(|_| s.sample(&mut rng) == 0.96).count();
        assert!((hi as f64 / 20_000.0 - 0.75).abs() < 0.02);
    }
}
