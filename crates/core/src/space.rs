//! The complete strategy space `[x_L, x_R]` and mixed strategies
//! (Section III-C).
//!
//! Both players pick positions in `[x_L, x_R]`. Any point `x_p` in the
//! domain decomposes as a convex combination `x_p = p_L·x_L + p_R·x_R` —
//! "a mixed strategy in the sense of game theory" — and because the
//! decomposition is linear and additive, *any poison value distribution*
//! on the domain reduces to a single mixed-strategy point, making the
//! strategy space complete (the key step that lets the model cover
//! colluding adversaries with arbitrary poison distributions).

use crate::error::{strictly_less, CoreError};

/// The strategy interval `[x_L, x_R]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpace {
    /// Balance point `x_L` (soft end).
    pub x_l: f64,
    /// Maximum rational injection `x_R` (hard end).
    pub x_r: f64,
}

/// A mixed strategy: play `x_L` with probability `p_l` and `x_R` with
/// probability `1 − p_l`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPoint {
    /// Probability of the soft end `x_L`.
    pub p_l: f64,
    /// The equivalent pure position `p_l·x_L + (1−p_l)·x_R`.
    pub position: f64,
}

impl StrategySpace {
    /// Creates the space.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `x_L < x_R`.
    pub fn new(x_l: f64, x_r: f64) -> Result<Self, CoreError> {
        if !strictly_less(x_l, x_r) {
            return Err(CoreError::InvalidParameter {
                name: "x_l",
                constraint: "x_L < x_R",
                value: x_l,
            });
        }
        Ok(Self { x_l, x_r })
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x_r - self.x_l
    }

    /// True if `x` is a legal (rational) position.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.x_l..=self.x_r).contains(&x)
    }

    /// Decomposes a pure position into its mixed strategy
    /// (`x = p_L x_L + p_R x_R`, Section III-C2).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if `x` is outside the space.
    pub fn decompose(&self, x: f64) -> Result<MixedPoint, CoreError> {
        if !self.contains(x) {
            return Err(CoreError::InvalidParameter {
                name: "x",
                constraint: "x_L <= x <= x_R",
                value: x,
            });
        }
        let p_l = (self.x_r - x) / self.width();
        Ok(MixedPoint { p_l, position: x })
    }

    /// Reduces an arbitrary poison distribution (values + weights) on the
    /// space to its single mixed-strategy point: the weighted mean, which
    /// by linearity carries the same expected payoff (Fig. 1b).
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] if any value leaves the
    /// space, weights are non-positive, or the inputs are empty/ragged.
    pub fn reduce_distribution(
        &self,
        values: &[f64],
        weights: &[f64],
    ) -> Result<MixedPoint, CoreError> {
        if values.is_empty() || values.len() != weights.len() {
            return Err(CoreError::InvalidParameter {
                name: "values",
                constraint: "non-empty and matching weights",
                value: values.len() as f64,
            });
        }
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for (&v, &w) in values.iter().zip(weights) {
            if !self.contains(v) {
                return Err(CoreError::InvalidParameter {
                    name: "value",
                    constraint: "inside [x_L, x_R]",
                    value: v,
                });
            }
            if w <= 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "weight",
                    constraint: "positive",
                    value: w,
                });
            }
            total_w += w;
            acc += w * v;
        }
        self.decompose(acc / total_w)
    }

    /// The pure position equivalent to playing `x_L` with probability
    /// `p_l`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidParameter`] unless `p_l ∈ [0, 1]`.
    pub fn compose(&self, p_l: f64) -> Result<MixedPoint, CoreError> {
        if !(0.0..=1.0).contains(&p_l) {
            return Err(CoreError::InvalidParameter {
                name: "p_l",
                constraint: "0 <= p_l <= 1",
                value: p_l,
            });
        }
        Ok(MixedPoint {
            p_l,
            position: p_l * self.x_l + (1.0 - p_l) * self.x_r,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> StrategySpace {
        StrategySpace::new(0.9, 0.99).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(StrategySpace::new(0.5, 0.5).is_err());
        assert!(StrategySpace::new(0.9, 0.1).is_err());
        assert!(StrategySpace::new(0.1, 0.9).is_ok());
    }

    #[test]
    fn decompose_endpoints() {
        let s = space();
        assert!((s.decompose(0.9).unwrap().p_l - 1.0).abs() < 1e-12);
        assert!((s.decompose(0.99).unwrap().p_l - 0.0).abs() < 1e-12);
    }

    #[test]
    fn decompose_midpoint() {
        let s = space();
        let m = s.decompose(0.945).unwrap();
        assert!((m.p_l - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compose_decompose_round_trip() {
        let s = space();
        for &p in &[0.0, 0.25, 0.5, 0.8, 1.0] {
            let m = s.compose(p).unwrap();
            let back = s.decompose(m.position).unwrap();
            assert!((back.p_l - p).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_space_rejected() {
        let s = space();
        assert!(s.decompose(0.8).is_err());
        assert!(s.decompose(1.0).is_err());
        assert!(s.compose(1.5).is_err());
    }

    #[test]
    fn distribution_reduces_to_weighted_mean() {
        let s = space();
        // 50/50 at the endpoints -> midpoint.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 1.0]).unwrap();
        assert!((m.position - 0.945).abs() < 1e-12);
        assert!((m.p_l - 0.5).abs() < 1e-12);
        // Weighted toward the hard end.
        let m = s.reduce_distribution(&[0.9, 0.99], &[1.0, 3.0]).unwrap();
        assert!(m.position > 0.945);
    }

    #[test]
    fn distribution_validation() {
        let s = space();
        assert!(s.reduce_distribution(&[], &[]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[1.0, 2.0]).is_err());
        assert!(s.reduce_distribution(&[0.5], &[1.0]).is_err());
        assert!(s.reduce_distribution(&[0.95], &[0.0]).is_err());
    }

    #[test]
    fn contains_and_width() {
        let s = space();
        assert!(s.contains(0.95));
        assert!(!s.contains(0.899));
        assert!((s.width() - 0.09).abs() < 1e-12);
    }
}
