//! Property-based tests for the game-theoretic core.

use proptest::prelude::*;
use trim_core::elastic::CoupledDynamics;
use trim_core::matrix::{Move, UltimatumPayoffs};
use trim_core::simulation::{run_game, GameConfig, Scheme};
use trim_core::space::StrategySpace;
use trim_core::titfortat::{adversary_complies, compliance_margin, compliant_gain, defector_gain};

proptest! {
    #[test]
    fn theorem3_margin_is_consistent_with_gains(
        d in 0.01_f64..0.99,
        p in 0.0_f64..1.0,
        g_ac in 0.1_f64..100.0,
    ) {
        let margin = compliance_margin(d, p, g_ac);
        prop_assert!(margin >= -1e-12);
        prop_assert!(margin <= d * g_ac + 1e-9);
        // Just inside the margin: compliance; just outside: defection.
        if margin > 1e-6 {
            prop_assert!(adversary_complies(margin * 0.999, d, p, g_ac));
        }
        prop_assert!(!adversary_complies(margin * 1.001 + 1e-9, d, p, g_ac));
        // Cross-check against the discounted-gain comparison.
        let delta = margin / 2.0;
        let complies = adversary_complies(delta, d, p, g_ac);
        let by_gains = compliant_gain(g_ac - delta, d) > defector_gain(g_ac, d, p);
        prop_assert_eq!(complies, by_gains);
    }

    #[test]
    fn ultimatum_equilibrium_is_always_hard_hard(
        t_soft in 0.1_f64..5.0,
        p_gap in 0.1_f64..5.0,
        t_gap in 0.1_f64..50.0,
        p_hard_gap in 0.1_f64..50.0,
    ) {
        // Construct parameters satisfying P̄ > T̄ > P + T.
        let p_soft = t_soft + p_gap;
        let t_hard = p_soft + t_soft + t_gap;
        let p_hard = t_hard + p_hard_gap;
        let u = UltimatumPayoffs::new(p_hard, t_hard, p_soft, t_soft).unwrap();
        let m = u.matrix();
        prop_assert_eq!(m.pure_nash_equilibria(), vec![(Move::Hard, Move::Hard)]);
        prop_assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
    }

    #[test]
    fn coupled_dynamics_contract_to_fixed_point(k in 0.01_f64..0.95, tth in 0.5_f64..0.99) {
        let d = CoupledDynamics::new(tth, k).unwrap();
        let fp = d.fixed_point();
        let traj = d.trajectory(300);
        let last = traj.last().unwrap();
        prop_assert!((last.trim - fp.trim).abs() < 1e-6);
        prop_assert!((last.inject - fp.inject).abs() < 1e-6);
        // Fixed point is below the nominal threshold on both sides.
        prop_assert!(fp.trim < tth + 1e-12);
        prop_assert!(fp.inject < tth);
    }

    #[test]
    fn coupled_costs_decay(k in 0.05_f64..0.9) {
        let d = CoupledDynamics::new(0.9, k).unwrap();
        let c10 = d.roundwise_cost(10);
        let c40 = d.roundwise_cost(40);
        prop_assert!(c40 <= c10 + 1e-12);
    }

    #[test]
    fn strategy_space_decomposition_round_trips(
        lo in 0.0_f64..0.5,
        width in 0.01_f64..0.5,
        t in 0.0_f64..1.0,
    ) {
        let space = StrategySpace::new(lo, lo + width).unwrap();
        let x = lo + t * width;
        let m = space.decompose(x).unwrap();
        prop_assert!((m.position - x).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&m.p_l));
        let back = space.compose(m.p_l).unwrap();
        prop_assert!((back.position - x).abs() < 1e-9);
    }

    #[test]
    fn game_provenance_is_conserved(
        seed in any::<u64>(),
        ratio in 0.0_f64..0.5,
    ) {
        let pool: Vec<f64> = (0..2_000).map(|i| (i % 500) as f64).collect();
        let mut cfg = GameConfig::new(Scheme::Baseline09);
        cfg.rounds = 5;
        cfg.batch = 200;
        cfg.seed = seed;
        cfg.attack_ratio = ratio;
        let r = run_game(&pool, &cfg);
        for o in &r.outcomes {
            prop_assert!(o.poison_survived <= o.poison_received);
            prop_assert_eq!(
                o.kept.len() + o.benign_trimmed + (o.poison_received - o.poison_survived),
                o.received
            );
            let expected_poison = (ratio * 200.0).round() as usize;
            prop_assert_eq!(o.poison_received, expected_poison);
        }
        let f = r.surviving_poison_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn schemes_never_panic_across_ratios(
        ratio in 0.0_f64..0.6,
        seed in any::<u64>(),
    ) {
        let pool: Vec<f64> = (0..1_000).map(|i| (i % 250) as f64).collect();
        for scheme in Scheme::roster() {
            let mut cfg = GameConfig::new(scheme);
            cfg.rounds = 3;
            cfg.batch = 100;
            cfg.seed = seed;
            cfg.attack_ratio = ratio;
            let r = run_game(&pool, &cfg);
            prop_assert_eq!(r.outcomes.len(), 3);
        }
    }

    #[test]
    fn single_atom_randomized_defender_is_trajectory_identical_to_fixed(
        tth in 0.5_f64..0.98,
        weight in 0.01_f64..50.0,
        seed in any::<u64>(),
        ratio in 0.05_f64..0.4,
    ) {
        // A RandomizedDefender whose support is one atom must replay the
        // equivalent Fixed policy bit-for-bit: the degenerate mixture
        // consumes no randomness from any stream, so the main environment
        // stream (benign draws, the Uniform adversary's mixing) is
        // untouched, regardless of the (renormalized) weight.
        use trim_core::adversary::AdversaryPolicy;
        use trim_core::simulation::run_game_with_policies;
        use trim_core::strategy::{DefenderPolicy, RandomizedDefender};
        let pool: Vec<f64> = (0..2_000).map(|i| (i % 500) as f64).collect();
        let mut cfg = GameConfig::new(Scheme::Baseline09);
        cfg.tth = tth;
        cfg.rounds = 4;
        cfg.batch = 150;
        cfg.seed = seed;
        cfg.attack_ratio = ratio;
        let adversary = || AdversaryPolicy::Uniform { lo: 0.85, hi: 1.0 };
        let fixed = run_game_with_policies(
            &pool,
            &cfg,
            Box::new(DefenderPolicy::Fixed { tth }),
            Box::new(adversary()),
            None,
            false,
        );
        let singleton = RandomizedDefender::new(&[tth], &[weight]).unwrap();
        let randomized = run_game_with_policies(
            &pool,
            &cfg,
            Box::new(singleton),
            Box::new(adversary()),
            None,
            false,
        );
        prop_assert_eq!(&fixed.thresholds, &randomized.thresholds);
        prop_assert_eq!(&fixed.injections, &randomized.injections);
        prop_assert_eq!(&fixed.utilities.u_a, &randomized.utilities.u_a);
        prop_assert_eq!(&fixed.utilities.u_c, &randomized.utilities.u_c);
        prop_assert_eq!(fixed.totals, randomized.totals);
    }

    #[test]
    fn randomized_defender_weights_reject_invalid_inputs(
        w in -10.0_f64..-0.001,
        atom in 0.0_f64..1.0,
    ) {
        use trim_core::strategy::RandomizedDefender;
        // Any negative weight anywhere fails construction.
        prop_assert!(RandomizedDefender::new(&[atom, 0.95], &[w, 1.0]).is_err());
        prop_assert!(RandomizedDefender::new(&[atom], &[w]).is_err());
        // NaN propagates to an error, never a panic.
        prop_assert!(RandomizedDefender::new(&[atom], &[f64::NAN]).is_err());
    }

    #[test]
    fn exp3_weights_stay_positive_and_normalized_under_adversarial_payoffs(
        k in 2_usize..6,
        seed in 0_u64..1_000,
        payoffs in prop::collection::vec(-2.0_f64..3.0, 1..150),
    ) {
        // Adversarial payoff sequences — including negative and
        // out-of-bound values the clamp must absorb — never break the
        // invariants: weights strictly positive and summing to one,
        // played probabilities strictly positive and summing to one.
        use trim_core::adversary::{AdversaryObservation, AttackPolicy, Exp3Attacker};
        use trimgame_numerics::rand_ext::seeded_rng;
        let atoms: Vec<f64> = (0..k).map(|i| 0.5 + 0.4 * i as f64 / k as f64).collect();
        let mut attacker =
            Exp3Attacker::new(&atoms, payoffs.len().max(2), 1.0, seed).unwrap();
        let obs = AdversaryObservation { last_threshold: None };
        let mut main = seeded_rng(1);
        for (round, &g) in payoffs.iter().enumerate() {
            let inj = attacker.next_injection(&obs, &mut main);
            prop_assert!(atoms.contains(&inj));
            attacker.observe_payoff(round + 1, g);
            let weights = attacker.weights();
            prop_assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for &w in weights {
                prop_assert!(w > 0.0 && w.is_finite(), "weight {}", w);
            }
            let probs = attacker.probabilities();
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for &p in &probs {
                prop_assert!(p > 0.0 && p.is_finite(), "probability {}", p);
            }
        }
    }

    #[test]
    fn exp3_singleton_is_trajectory_identical_to_fixed(
        percentile in 0.0_f64..1.0,
        seed in 0_u64..500,
        rounds in 2_usize..10,
    ) {
        // A single-response Exp3 consumes no randomness anywhere — not the
        // main environment stream, not its private stream — so the whole
        // engine trajectory is bit-identical to the corresponding pure
        // Fixed attack policy.
        use trim_core::adversary::{AdversaryPolicy, AttackPolicy, Exp3Attacker};
        use trim_core::simulation::run_game_with_policies;
        use trim_core::strategy::DefenderPolicy;
        let pool: Vec<f64> = (0..2_000).map(|i| (i % 500) as f64 / 5.0).collect();
        let mut cfg = GameConfig::new(Scheme::BaselineStatic);
        cfg.rounds = rounds;
        cfg.batch = 120;
        cfg.seed = seed;
        let run = |attacker: Box<dyn AttackPolicy>| {
            run_game_with_policies(
                &pool,
                &cfg,
                Box::new(DefenderPolicy::Fixed { tth: cfg.tth }),
                attacker,
                None,
                false,
            )
        };
        let exp3 = run(Box::new(
            Exp3Attacker::new(&[percentile], rounds, 1.0, seed).unwrap(),
        ));
        let fixed = run(Box::new(AdversaryPolicy::Fixed { percentile }));
        prop_assert_eq!(&exp3.thresholds, &fixed.thresholds);
        prop_assert_eq!(&exp3.injections, &fixed.injections);
        prop_assert_eq!(&exp3.utilities.u_a, &fixed.utilities.u_a);
        prop_assert_eq!(&exp3.utilities.u_c, &fixed.utilities.u_c);
        prop_assert_eq!(exp3.totals, fixed.totals);
    }
}
