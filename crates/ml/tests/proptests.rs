//! Property-based tests for the ML substrate.

use proptest::prelude::*;
use trimgame_datasets::Dataset;
use trimgame_ml::matching::{align_clusters, hungarian, matched_centroid_distance};
use trimgame_ml::metrics::ConfusionMatrix;
use trimgame_ml::{KMeans, KMeansConfig};
use trimgame_numerics::rand_ext::seeded_rng;

fn square_cost(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0_f64..100.0, n), n)
}

proptest! {
    #[test]
    fn hungarian_is_a_permutation(cost in (2_usize..8).prop_flat_map(square_cost)) {
        let assign = hungarian(&cost);
        let mut cols: Vec<usize> = assign.iter().map(|j| j.unwrap()).collect();
        cols.sort_unstable();
        for (i, &c) in cols.iter().enumerate() {
            prop_assert_eq!(c, i, "assignment is not a permutation");
        }
    }

    #[test]
    fn hungarian_beats_identity_and_reverse(cost in (2_usize..7).prop_flat_map(square_cost)) {
        let n = cost.len();
        let assign = hungarian(&cost);
        let optimal: f64 = assign.iter().enumerate().map(|(i, j)| cost[i][j.unwrap()]).sum();
        let identity: f64 = (0..n).map(|i| cost[i][i]).sum();
        let reverse: f64 = (0..n).map(|i| cost[i][n - 1 - i]).sum();
        prop_assert!(optimal <= identity + 1e-9);
        prop_assert!(optimal <= reverse + 1e-9);
    }

    #[test]
    fn matched_distance_is_symmetric(
        a in prop::collection::vec(prop::collection::vec(-50.0_f64..50.0, 3), 1..6),
        b in prop::collection::vec(prop::collection::vec(-50.0_f64..50.0, 3), 1..6),
    ) {
        let ab = matched_centroid_distance(&a, &b);
        let ba = matched_centroid_distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn matched_distance_zero_iff_same_set(
        a in prop::collection::vec(prop::collection::vec(-50.0_f64..50.0, 2), 1..6),
    ) {
        prop_assert!(matched_centroid_distance(&a, &a) < 1e-9);
    }

    #[test]
    fn align_clusters_never_reduces_agreement(
        labels in prop::collection::vec(0_usize..4, 8..64),
        perm_seed in 0_usize..24,
    ) {
        // Apply a fixed permutation of 4 symbols to produce "predictions".
        let perms: Vec<Vec<usize>> = {
            let mut all = Vec::new();
            let symbols = [0usize, 1, 2, 3];
            // Generate all 24 permutations of 4 symbols.
            fn heap(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
                if k == 1 {
                    out.push(arr.clone());
                    return;
                }
                for i in 0..k {
                    heap(arr, k - 1, out);
                    if k.is_multiple_of(2) {
                        arr.swap(i, k - 1);
                    } else {
                        arr.swap(0, k - 1);
                    }
                }
            }
            let mut arr = symbols.to_vec();
            heap(&mut arr, 4, &mut all);
            all
        };
        let perm = &perms[perm_seed % perms.len()];
        let predicted: Vec<usize> = labels.iter().map(|&l| perm[l]).collect();
        let aligned = align_clusters(&predicted, &labels);
        // A pure permutation must be perfectly unscrambled.
        prop_assert_eq!(aligned, labels);
    }

    #[test]
    fn confusion_accuracy_in_unit_interval(
        pairs in prop::collection::vec((0_usize..5, 0_usize..5), 1..100),
    ) {
        let actual: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let predicted: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let cm = ConfusionMatrix::from_predictions(&actual, &predicted, 5);
        let acc = cm.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(cm.total(), pairs.len() as u64);
    }

    #[test]
    fn kmeans_sse_non_increasing_in_k(
        seed in any::<u64>(),
    ) {
        let mut rng = seeded_rng(seed);
        let data: Vec<f64> = (0..60).map(|_| rand::Rng::gen::<f64>(&mut rng) * 100.0).collect();
        let d = Dataset::new("p", 1, data, None, 1);
        let sse2 = KMeans::fit(&d, KMeansConfig::new(2), &mut seeded_rng(seed)).sse();
        let sse6 = KMeans::fit(&d, KMeansConfig::new(6), &mut seeded_rng(seed)).sse();
        // More clusters cannot fit worse by much (local minima allow tiny
        // slack).
        prop_assert!(sse6 <= sse2 * 1.05 + 1e-9, "sse2={sse2} sse6={sse6}");
    }

    #[test]
    fn kmeans_assignments_are_valid(seed in any::<u64>(), k in 1_usize..5) {
        let mut rng = seeded_rng(seed);
        let data: Vec<f64> = (0..40).map(|_| rand::Rng::gen::<f64>(&mut rng) * 10.0).collect();
        let d = Dataset::new("p", 1, data, None, 1);
        let model = KMeans::fit(&d, KMeansConfig::new(k), &mut rng);
        prop_assert_eq!(model.assignments().len(), 40);
        for &a in model.assignments() {
            prop_assert!(a < k);
        }
        prop_assert!(model.sse().is_finite());
        prop_assert!(model.sse() >= 0.0);
    }
}
