//! ML substrate for the `trimgame` workspace.
//!
//! Section VI of the paper evaluates the trimming game through three
//! learners, all re-implemented here from scratch:
//!
//! * [`kmeans`] — k-means clustering (k-means++ initialization + Lloyd
//!   iterations) with the SSE and centroid-distance metrics of Figs. 4/5.
//! * [`svm`] — linear multiclass SVM trained with the Pegasos subgradient
//!   method, one-vs-rest (Figs. 6a/7).
//! * [`som`] — self-organizing map with Gaussian neighbourhood and the
//!   U-matrix visualization of Figs. 6b/8.
//! * [`metrics`] — confusion matrices with the PPV/FDR rows the paper's
//!   Fig. 6a/7 panels display, plus accuracy.
//! * [`matching`] — the Hungarian algorithm for optimal assignment, used to
//!   align fitted centroids with ground-truth centroids ("Distance" in
//!   Figs. 4/5) and predicted clusters with true classes.

pub mod kmeans;
pub mod matching;
pub mod metrics;
pub mod som;
pub mod svm;

pub use kmeans::{class_centroids, KMeans, KMeansConfig};
pub use matching::{align_clusters, hungarian, matched_centroid_distance};
pub use metrics::ConfusionMatrix;
pub use som::{Som, SomConfig};
pub use svm::{LinearSvm, SvmConfig, SvmModel};
