//! Classification metrics: confusion matrix, accuracy, PPV and FDR.
//!
//! Fig. 6(a) and Fig. 7 of the paper display MATLAB-style confusion charts
//! whose bottom rows are the per-class **PPV** (positive predictive value,
//! the diagonal share of each predicted-class column) and **FDR** (false
//! discovery rate, its complement). [`ConfusionMatrix`] reproduces those
//! numbers and renders a comparable text chart.

use std::fmt;

/// A `classes × classes` confusion matrix; rows = actual class,
/// columns = predicted class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel label arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length, are empty, or contain a label
    /// `>= classes`.
    #[must_use]
    pub fn from_predictions(actual: &[usize], predicted: &[usize], classes: usize) -> Self {
        assert_eq!(
            actual.len(),
            predicted.len(),
            "label arrays differ in length"
        );
        assert!(!actual.is_empty(), "empty label arrays");
        assert!(classes > 0, "need at least one class");
        let mut counts = vec![0u64; classes * classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            assert!(a < classes, "actual label {a} out of range");
            assert!(p < classes, "predicted label {p} out of range");
            counts[a * classes + p] += 1;
        }
        Self { classes, counts }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of (actual = `a`, predicted = `p`).
    #[must_use]
    pub fn count(&self, a: usize, p: usize) -> u64 {
        self.counts[a * self.classes + p]
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy: trace / total.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / self.total() as f64
    }

    /// Positive predictive value of predicted class `p`:
    /// `count(p, p) / Σ_a count(a, p)`. Returns `None` if nothing was
    /// predicted as `p`.
    #[must_use]
    pub fn ppv(&self, p: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|a| self.count(a, p)).sum();
        (col > 0).then(|| self.count(p, p) as f64 / col as f64)
    }

    /// False discovery rate of predicted class `p`: `1 − PPV(p)`.
    #[must_use]
    pub fn fdr(&self, p: usize) -> Option<f64> {
        self.ppv(p).map(|v| 1.0 - v)
    }

    /// Recall (true positive rate) of actual class `a`. `None` if class `a`
    /// never occurs.
    #[must_use]
    pub fn recall(&self, a: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(a, p)).sum();
        (row > 0).then(|| self.count(a, a) as f64 / row as f64)
    }

    /// Per-predicted-class PPV row, with `NaN` for empty columns — the
    /// shape of the Fig. 6(a) bottom strip.
    #[must_use]
    pub fn ppv_row(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|p| self.ppv(p).unwrap_or(f64::NAN))
            .collect()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actual\\pred |")?;
        for p in 0..self.classes {
            write!(f, " {p:>6}")?;
        }
        writeln!(f)?;
        for a in 0..self.classes {
            write!(f, "{a:>11} |")?;
            for p in 0..self.classes {
                write!(f, " {:>6}", self.count(a, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "        PPV |")?;
        for p in 0..self.classes {
            match self.ppv(p) {
                Some(v) => write!(f, " {:>5.1}%", v * 100.0)?,
                None => write!(f, "     --")?,
            }
        }
        writeln!(f)?;
        write!(f, "        FDR |")?;
        for p in 0..self.classes {
            match self.fdr(p) {
                Some(v) => write!(f, " {:>5.1}%", v * 100.0)?,
                None => write!(f, "     --")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let labels = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&labels, &labels, 3);
        assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.ppv(c), Some(1.0));
            assert_eq!(cm.fdr(c), Some(0.0));
            assert_eq!(cm.recall(c), Some(1.0));
        }
    }

    #[test]
    fn known_counts() {
        let actual = vec![0, 0, 0, 1, 1, 1];
        let predicted = vec![0, 0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&actual, &predicted, 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.ppv(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.fdr(0).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_predicted_column_gives_none() {
        let actual = vec![0, 0, 1];
        let predicted = vec![0, 0, 0];
        let cm = ConfusionMatrix::from_predictions(&actual, &predicted, 2);
        assert_eq!(cm.ppv(1), None);
        assert_eq!(cm.fdr(1), None);
        assert!(cm.ppv_row()[1].is_nan());
    }

    #[test]
    fn total_counts_samples() {
        let actual = vec![0; 10];
        let predicted = vec![0; 10];
        let cm = ConfusionMatrix::from_predictions(&actual, &predicted, 1);
        assert_eq!(cm.total(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[3], 2);
    }

    #[test]
    fn display_contains_ppv_and_fdr() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 2);
        let s = cm.to_string();
        assert!(s.contains("PPV"));
        assert!(s.contains("FDR"));
        assert!(s.contains("100.0%"));
    }
}
