//! Self-organizing map (SOM) with Gaussian neighbourhood and U-matrix.
//!
//! Fig. 6(b)/Fig. 8 of the paper train a 20×20 SOM on the Creditcard data
//! and read the **U-matrix** — "the color depth between adjacent neurons
//! represents their distance" — to see whether trimming schemes preserve
//! the dataset's skewed class structure (one bulk class, two isolated
//! outliers, a five-point "green" class). [`Som::fit`] implements the
//! classic online SOM; [`Som::u_matrix`] and the class-structure helpers
//! quantify what the paper reads off the picture.

use rand::Rng;
use trimgame_datasets::Dataset;
use trimgame_numerics::stats::sq_euclidean;

/// SOM training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SomConfig {
    /// Grid width (paper: 20).
    pub width: usize,
    /// Grid height (paper: 20).
    pub height: usize,
    /// Training epochs (passes over the dataset).
    pub epochs: usize,
    /// Initial learning rate.
    pub lr0: f64,
    /// Initial neighbourhood radius (in grid cells); decays exponentially.
    pub sigma0: f64,
}

impl SomConfig {
    /// The paper's 20×20 configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            width: 20,
            height: 20,
            epochs: 5,
            lr0: 0.5,
            sigma0: 5.0,
        }
    }

    /// A small grid for quick tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            width: 6,
            height: 6,
            epochs: 8,
            lr0: 0.5,
            sigma0: 2.0,
        }
    }
}

/// A trained self-organizing map.
#[derive(Debug, Clone, PartialEq)]
pub struct Som {
    width: usize,
    height: usize,
    dim: usize,
    /// Neuron weights, row-major over the grid.
    weights: Vec<Vec<f64>>,
}

impl Som {
    /// Trains a SOM on the dataset rows.
    ///
    /// # Panics
    /// Panics if the dataset is empty or the grid is degenerate.
    #[must_use]
    pub fn fit<R: Rng + ?Sized>(data: &Dataset, config: SomConfig, rng: &mut R) -> Self {
        assert!(data.rows() > 0, "empty dataset");
        assert!(config.width > 0 && config.height > 0, "degenerate grid");
        let dim = data.cols();
        let n_neurons = config.width * config.height;
        // Initialize neurons at random data points (plus tiny jitter) so the
        // map starts inside the data support.
        let mut weights: Vec<Vec<f64>> = (0..n_neurons)
            .map(|_| {
                let base = data.row(rng.gen_range(0..data.rows()));
                base.iter()
                    .map(|v| v + 1e-3 * trimgame_numerics::rand_ext::standard_normal(rng))
                    .collect()
            })
            .collect();

        let total_steps = (config.epochs * data.rows()).max(1) as f64;
        let mut step = 0f64;
        let mut order: Vec<usize> = (0..data.rows()).collect();
        for _ in 0..config.epochs {
            // Shuffled full pass (Fisher–Yates): every row — including
            // rare outliers — is visited exactly once per epoch, which is
            // what lets isolated single-point classes claim their own
            // neurons as the neighbourhood shrinks.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &row_idx in &order {
                let x = data.row(row_idx);
                let t = step / total_steps;
                let lr = config.lr0 * (1.0 - t).max(0.01);
                let sigma = (config.sigma0 * (-3.0 * t).exp()).max(0.5);
                let bmu = bmu_index(&weights, x);
                let (bx, by) = (bmu % config.width, bmu / config.width);
                let reach = (3.0 * sigma).ceil() as isize;
                for dy in -reach..=reach {
                    for dx in -reach..=reach {
                        let nx = bx as isize + dx;
                        let ny = by as isize + dy;
                        if nx < 0
                            || ny < 0
                            || nx >= config.width as isize
                            || ny >= config.height as isize
                        {
                            continue;
                        }
                        let grid_d2 = (dx * dx + dy * dy) as f64;
                        let h = (-grid_d2 / (2.0 * sigma * sigma)).exp();
                        let idx = ny as usize * config.width + nx as usize;
                        for (w, &xv) in weights[idx].iter_mut().zip(x) {
                            *w += lr * h * (xv - *w);
                        }
                    }
                }
                step += 1.0;
            }
        }

        Self {
            width: config.width,
            height: config.height,
            dim,
            weights,
        }
    }

    /// Grid width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Neuron weight vector at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn neuron(&self, x: usize, y: usize) -> &[f64] {
        assert!(x < self.width && y < self.height, "neuron out of range");
        &self.weights[y * self.width + x]
    }

    /// Best-matching unit for an input row, as `(x, y)`.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn bmu(&self, row: &[f64]) -> (usize, usize) {
        assert_eq!(row.len(), self.dim, "row arity mismatch");
        let idx = bmu_index(&self.weights, row);
        (idx % self.width, idx / self.width)
    }

    /// The U-matrix: per neuron, the mean Euclidean distance to its grid
    /// neighbours (4-neighbourhood). Large values mark cluster boundaries —
    /// the "darker colors" of Fig. 6(b).
    #[must_use]
    pub fn u_matrix(&self) -> Vec<Vec<f64>> {
        let mut u = vec![vec![0.0; self.width]; self.height];
        for (y, row) in u.iter_mut().enumerate() {
            for (x, cell) in row.iter_mut().enumerate() {
                let here = self.neuron(x, y);
                let mut total = 0.0;
                let mut count = 0;
                let neighbours: [(isize, isize); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
                for (dx, dy) in neighbours {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx < 0 || ny < 0 || nx >= self.width as isize || ny >= self.height as isize {
                        continue;
                    }
                    total += sq_euclidean(here, self.neuron(nx as usize, ny as usize)).sqrt();
                    count += 1;
                }
                *cell = total / count as f64;
            }
        }
        u
    }

    /// Maps a labelled dataset onto the grid and reports, per class, the
    /// number of *distinct* neurons its rows activate. The paper reads
    /// exactly this off Fig. 8: did the small classes keep their own
    /// territory or were they absorbed?
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled.
    #[must_use]
    pub fn class_footprint(&self, data: &Dataset) -> Vec<usize> {
        let labels = data.labels().expect("class_footprint needs labels");
        let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut cells: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); classes];
        for (row, &l) in data.iter_rows().zip(labels) {
            let (x, y) = self.bmu(row);
            cells[l].insert(y * self.width + x);
        }
        cells.iter().map(std::collections::BTreeSet::len).collect()
    }

    /// Number of classes whose footprint is disjoint from every other
    /// class's footprint (their BMUs are exclusively theirs) — a scalar
    /// summary of "distinct classes visible on the map".
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled.
    #[must_use]
    pub fn separated_classes(&self, data: &Dataset) -> usize {
        let labels = data.labels().expect("separated_classes needs labels");
        let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut owner: std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> =
            std::collections::BTreeMap::new();
        for (row, &l) in data.iter_rows().zip(labels) {
            let (x, y) = self.bmu(row);
            owner.entry(y * self.width + x).or_default().insert(l);
        }
        (0..classes)
            .filter(|&c| {
                let mut appears = false;
                for owners in owner.values() {
                    if owners.contains(&c) {
                        appears = true;
                        if owners.len() > 1 {
                            return false;
                        }
                    }
                }
                appears
            })
            .count()
    }
}

fn bmu_index(weights: &[Vec<f64>], x: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, w) in weights.iter().enumerate() {
        let d = sq_euclidean(w, x);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_datasets::synthetic::{GaussianComponent, GmmSpec};
    use trimgame_numerics::rand_ext::seeded_rng;

    fn blobs(seed: u64) -> Dataset {
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-10.0, -10.0], 0.5, 1.0),
            GaussianComponent::spherical(vec![10.0, 10.0], 0.5, 1.0),
        ]);
        spec.generate("blobs", 200, &mut seeded_rng(seed))
    }

    #[test]
    fn grid_shape_is_respected() {
        let data = blobs(1);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(2));
        assert_eq!(som.width(), 6);
        assert_eq!(som.height(), 6);
        let _ = som.neuron(5, 5);
    }

    #[test]
    fn separated_blobs_map_to_separated_regions() {
        let data = blobs(3);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(4));
        // BMUs of the two classes should not coincide.
        let labels = data.labels().unwrap();
        let mut cells = [
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
        ];
        for (row, &l) in data.iter_rows().zip(labels) {
            let (x, y) = som.bmu(row);
            cells[l].insert((x, y));
        }
        assert!(cells[0].is_disjoint(&cells[1]), "class BMU regions overlap");
        assert_eq!(som.separated_classes(&data), 2);
    }

    #[test]
    fn u_matrix_shows_boundary() {
        let data = blobs(5);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(6));
        let u = som.u_matrix();
        let mut values: Vec<f64> = u.iter().flatten().copied().collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // A boundary exists: the largest neighbour distance dwarfs the
        // smallest (interior of a tight cluster).
        assert!(values[values.len() - 1] > 5.0 * values[0].max(1e-9));
    }

    #[test]
    fn class_footprint_counts_distinct_cells() {
        let data = blobs(7);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(8));
        let fp = som.class_footprint(&data);
        assert_eq!(fp.len(), 2);
        assert!(fp[0] >= 1 && fp[1] >= 1);
    }

    #[test]
    fn bmu_of_training_point_is_close() {
        let data = blobs(9);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(10));
        let row = data.row(0);
        let (x, y) = som.bmu(row);
        let d = trimgame_numerics::stats::euclidean(som.neuron(x, y), row);
        assert!(d < 5.0, "BMU distance {d}");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = blobs(11);
        let a = Som::fit(&data, SomConfig::small(), &mut seeded_rng(12));
        let b = Som::fit(&data, SomConfig::small(), &mut seeded_rng(12));
        assert_eq!(a.neuron(0, 0), b.neuron(0, 0));
        assert_eq!(a.u_matrix(), b.u_matrix());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let data = Dataset::new("e", 1, vec![], None, 1);
        let _ = Som::fit(&data, SomConfig::small(), &mut seeded_rng(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neuron_bounds_checked() {
        let data = blobs(13);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(14));
        let _ = som.neuron(6, 0);
    }
}
