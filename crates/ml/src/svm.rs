//! Linear SVM trained with Pegasos, one-vs-rest for multiclass.
//!
//! The Fig. 6(a)/Fig. 7 experiments run MATLAB's SVM on the labelled
//! Control dataset; the standard linear classifier for that task is a
//! hinge-loss SVM. Pegasos (Shalev-Shwartz et al.) is the classic
//! primal subgradient solver: at step `t`, with regularization `λ`,
//! `η_t = 1/(λ t)`, update on a single example, then optionally project
//! onto the `1/√λ` ball. One-vs-rest reduction handles the six classes.

use rand::Rng;
use trimgame_datasets::Dataset;

/// Pegasos training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Regularization parameter λ.
    pub lambda: f64,
    /// Number of epochs (passes over the data).
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 20,
        }
    }
}

/// A binary linear classifier `sign(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
}

impl LinearSvm {
    /// Trains a binary SVM on rows with ±1 targets via Pegasos.
    ///
    /// # Panics
    /// Panics if inputs are empty, lengths mismatch, or targets are not ±1.
    #[must_use]
    pub fn fit<R: Rng + ?Sized>(
        rows: &[&[f64]],
        targets: &[f64],
        config: SvmConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        assert!(
            targets.iter().all(|&y| y == 1.0 || y == -1.0),
            "targets must be +1/-1"
        );
        let dim = rows[0].len();
        let n = rows.len();
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut t: u64 = 0;
        for _ in 0..config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let x = rows[i];
                let y = targets[i];
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = y * (dot(&w, x) + b);
                // Subgradient step: shrink w, and add the hinge term when
                // the margin is violated.
                let shrink = 1.0 - eta * config.lambda;
                for wi in &mut w {
                    *wi *= shrink;
                }
                if margin < 1.0 {
                    for (wi, &xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
                // Projection onto the 1/sqrt(lambda) ball.
                let norm = dot(&w, &w).sqrt();
                let radius = 1.0 / config.lambda.sqrt();
                if norm > radius {
                    let scale = radius / norm;
                    for wi in &mut w {
                        *wi *= scale;
                    }
                }
            }
        }
        Self { w, b }
    }

    /// Decision value `w·x + b`.
    #[must_use]
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.w, x) + self.b
    }

    /// Predicted class in {−1, +1}.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Weight vector.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Bias term.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.b
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A one-vs-rest multiclass linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    machines: Vec<LinearSvm>,
    /// Per-feature means/scales used to standardize inputs.
    mean: Vec<f64>,
    scale: Vec<f64>,
}

impl SvmModel {
    /// Trains one binary machine per class on a labelled dataset.
    /// Features are standardized (zero mean, unit variance) internally.
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled or has no rows.
    #[must_use]
    pub fn fit<R: Rng + ?Sized>(data: &Dataset, config: SvmConfig, rng: &mut R) -> Self {
        let labels = data.labels().expect("SvmModel::fit needs labels");
        assert!(data.rows() > 0, "empty dataset");
        let classes = labels.iter().copied().max().unwrap() + 1;
        let dim = data.cols();
        let n = data.rows();

        // Standardization statistics.
        let mut mean = vec![0.0; dim];
        for row in data.iter_rows() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; dim];
        for row in data.iter_rows() {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let scale: Vec<f64> = var
            .iter()
            .map(|&s| {
                let sd = (s / n as f64).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();

        let standardized: Vec<Vec<f64>> = data
            .iter_rows()
            .map(|row| {
                row.iter()
                    .zip(&mean)
                    .zip(&scale)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = standardized.iter().map(Vec::as_slice).collect();

        let machines = (0..classes)
            .map(|c| {
                let targets: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { -1.0 })
                    .collect();
                LinearSvm::fit(&refs, &targets, config, rng)
            })
            .collect();
        Self {
            machines,
            mean,
            scale,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.machines.len()
    }

    /// Predicts the class of a raw (unstandardized) row: argmax of the
    /// one-vs-rest decision values.
    #[must_use]
    pub fn predict(&self, row: &[f64]) -> usize {
        let x: Vec<f64> = row
            .iter()
            .zip(&self.mean)
            .zip(&self.scale)
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (c, m) in self.machines.iter().enumerate() {
            let v = m.decision(&x);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        best
    }

    /// Accuracy over a labelled dataset.
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let labels = data.labels().expect("accuracy needs labels");
        let correct = data
            .iter_rows()
            .zip(labels)
            .filter(|(row, &l)| self.predict(row) == l)
            .count();
        correct as f64 / data.rows() as f64
    }

    /// Predictions for every row of a dataset.
    #[must_use]
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        data.iter_rows().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_datasets::synthetic::{GaussianComponent, GmmSpec};
    use trimgame_numerics::rand_ext::seeded_rng;

    fn separable(seed: u64, n: usize) -> Dataset {
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-4.0, -4.0], 0.8, 1.0),
            GaussianComponent::spherical(vec![4.0, 4.0], 0.8, 1.0),
        ]);
        spec.generate("sep", n, &mut seeded_rng(seed))
    }

    #[test]
    fn binary_svm_separates_blobs() {
        let data = separable(1, 300);
        let labels = data.labels().unwrap();
        let rows: Vec<&[f64]> = data.iter_rows().collect();
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1 { 1.0 } else { -1.0 })
            .collect();
        let svm = LinearSvm::fit(&rows, &targets, SvmConfig::default(), &mut seeded_rng(2));
        let correct = rows
            .iter()
            .zip(&targets)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.98);
    }

    #[test]
    fn multiclass_svm_on_three_blobs() {
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-6.0, 0.0], 0.7, 1.0),
            GaussianComponent::spherical(vec![6.0, 0.0], 0.7, 1.0),
            GaussianComponent::spherical(vec![0.0, 6.0], 0.7, 1.0),
        ]);
        let data = spec.generate("three", 450, &mut seeded_rng(3));
        let model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(4));
        assert_eq!(model.classes(), 3);
        assert!(
            model.accuracy(&data) > 0.95,
            "accuracy {}",
            model.accuracy(&data)
        );
    }

    #[test]
    fn poisoning_reduces_accuracy() {
        let clean = separable(5, 300);
        let model_clean = SvmModel::fit(&clean, SvmConfig::default(), &mut seeded_rng(6));
        let acc_clean = model_clean.accuracy(&clean);

        // Flip-label poison: points of class 1's region labelled 0.
        let mut dirty = clean.clone();
        for _ in 0..90 {
            dirty.push_row(&[4.0, 4.0], Some(0));
        }
        let model_dirty = SvmModel::fit(&dirty, SvmConfig::default(), &mut seeded_rng(6));
        let acc_dirty = model_dirty.accuracy(&clean);
        assert!(
            acc_dirty <= acc_clean + 1e-9,
            "poison should not improve accuracy: clean {acc_clean}, dirty {acc_dirty}"
        );
    }

    #[test]
    fn predict_all_matches_predict() {
        let data = separable(7, 100);
        let model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(8));
        let all = model.predict_all(&data);
        for (i, row) in data.iter_rows().enumerate() {
            assert_eq!(all[i], model.predict(row));
        }
    }

    #[test]
    #[should_panic(expected = "targets must be")]
    fn bad_targets_rejected() {
        let rows: Vec<&[f64]> = vec![&[1.0]];
        let _ = LinearSvm::fit(&rows, &[0.5], SvmConfig::default(), &mut seeded_rng(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let data = separable(9, 100);
        let a = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(10));
        let b = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(10));
        assert_eq!(a.predict_all(&data), b.predict_all(&data));
    }

    #[test]
    fn weights_accessible() {
        let rows: Vec<&[f64]> = vec![&[0.0, 1.0], &[0.0, -1.0]];
        let svm = LinearSvm::fit(
            &rows,
            &[1.0, -1.0],
            SvmConfig::default(),
            &mut seeded_rng(11),
        );
        assert_eq!(svm.weights().len(), 2);
        let _ = svm.bias();
    }
}
