//! k-means clustering (k-means++ initialization, Lloyd iterations).
//!
//! Figs. 4/5 of the paper run k-means over Control, Vehicle and Letter and
//! report two metrics per scheme: **SSE** (within-cluster sum of squared
//! errors) and **Distance** (Euclidean discrepancy between fitted centroids
//! and ground-truth centroids). [`KMeans::fit`] produces a model exposing
//! both.

use crate::matching::matched_centroid_distance;
use rand::Rng;
use trimgame_datasets::Dataset;
use trimgame_numerics::stats::sq_euclidean;

/// Configuration for a k-means fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
}

impl KMeansConfig {
    /// Default-ish configuration for `k` clusters.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    sse: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits k-means to a dataset.
    ///
    /// # Panics
    /// Panics if the dataset has fewer rows than `config.k` or `k == 0`.
    #[must_use]
    pub fn fit<R: Rng + ?Sized>(data: &Dataset, config: KMeansConfig, rng: &mut R) -> Self {
        let n = data.rows();
        let k = config.k;
        assert!(k > 0, "k must be positive");
        assert!(n >= k, "need at least k rows ({k}), got {n}");

        let mut centroids = kmeans_pp_init(data, k, rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assignment step.
            for (i, row) in data.iter_rows().enumerate() {
                assignments[i] = nearest(&centroids, row).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; data.cols()]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in data.iter_rows().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed at the point farthest from its
                    // centroid to keep k clusters alive.
                    let (far_idx, _) = data
                        .iter_rows()
                        .enumerate()
                        .map(|(i, row)| (i, sq_euclidean(row, &centroids[assignments[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                        .expect("non-empty dataset");
                    centroids[c] = data.row(far_idx).to_vec();
                    movement += f64::INFINITY;
                    continue;
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += sq_euclidean(&new, &centroids[c]).sqrt();
                centroids[c] = new;
            }
            if movement <= config.tol {
                break;
            }
        }

        // Final assignment + SSE.
        let mut sse = 0.0;
        for (i, row) in data.iter_rows().enumerate() {
            let (c, d2) = nearest(&centroids, row);
            assignments[i] = c;
            sse += d2;
        }

        Self {
            centroids,
            assignments,
            sse,
            iterations,
        }
    }

    /// Fits k-means by Lloyd iterations warm-started from the given
    /// centroids (MATLAB's `'Start', matrix`). Deterministic. This is how
    /// the Figs. 4/5 "Distance" metric is computed: starting from the
    /// clean data's clustering and letting the poisoned collection pull
    /// the centroids measures displacement without local-minima noise.
    ///
    /// # Panics
    /// Panics if `initial` is empty, row arities mismatch, or the dataset
    /// has fewer rows than centroids.
    #[must_use]
    pub fn fit_from(data: &Dataset, initial: &[Vec<f64>], config: KMeansConfig) -> Self {
        assert!(!initial.is_empty(), "need at least one initial centroid");
        assert!(
            initial.iter().all(|c| c.len() == data.cols()),
            "centroid arity mismatch"
        );
        assert!(data.rows() >= initial.len(), "fewer rows than centroids");
        let k = initial.len();
        let n = data.rows();
        let mut centroids = initial.to_vec();
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            for (i, row) in data.iter_rows().enumerate() {
                assignments[i] = nearest(&centroids, row).0;
            }
            let mut sums = vec![vec![0.0; data.cols()]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in data.iter_rows().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: keep the previous centroid (it may
                    // re-acquire points as others move).
                    continue;
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += sq_euclidean(&new, &centroids[c]).sqrt();
                centroids[c] = new;
            }
            if movement <= config.tol {
                break;
            }
        }
        let mut sse = 0.0;
        for (i, row) in data.iter_rows().enumerate() {
            let (c, d2) = nearest(&centroids, row);
            assignments[i] = c;
            sse += d2;
        }
        Self {
            centroids,
            assignments,
            sse,
            iterations,
        }
    }

    /// Fits k-means `restarts` times with different seedings and keeps the
    /// lowest-SSE model (the standard guard against k-means++ local
    /// minima; MATLAB's `kmeans` does the same via `Replicates`).
    ///
    /// # Panics
    /// Panics if `restarts == 0` or the dataset is smaller than `k`.
    #[must_use]
    pub fn fit_best<R: Rng + ?Sized>(
        data: &Dataset,
        config: KMeansConfig,
        restarts: usize,
        rng: &mut R,
    ) -> Self {
        assert!(restarts > 0, "need at least one restart");
        let mut best: Option<KMeans> = None;
        for _ in 0..restarts {
            let model = KMeans::fit(data, config, rng);
            if best.as_ref().is_none_or(|b| model.sse() < b.sse()) {
                best = Some(model);
            }
        }
        best.expect("restarts > 0")
    }

    /// Fitted centroids.
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster index per input row.
    #[must_use]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Within-cluster sum of squared errors (the paper's SSE metric).
    #[must_use]
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// Lloyd iterations executed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Predicts the cluster of a new row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn predict(&self, row: &[f64]) -> usize {
        nearest(&self.centroids, row).0
    }

    /// The paper's "Distance" metric: total Euclidean distance between these
    /// centroids and reference centroids under the optimal (Hungarian)
    /// matching.
    #[must_use]
    pub fn centroid_distance_to(&self, reference: &[Vec<f64>]) -> f64 {
        matched_centroid_distance(&self.centroids, reference)
    }
}

/// Nearest centroid index and squared distance.
fn nearest(centroids: &[Vec<f64>], row: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_euclidean(centroid, row);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centre uniform, subsequent centres with
/// probability proportional to squared distance to the nearest chosen
/// centre.
fn kmeans_pp_init<R: Rng + ?Sized>(data: &Dataset, k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let n = data.rows();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data.row(rng.gen_range(0..n)).to_vec());
    let mut d2 = vec![0.0f64; n];
    while centroids.len() < k {
        let last = centroids.last().expect("non-empty");
        let mut total = 0.0;
        for (i, row) in data.iter_rows().enumerate() {
            let d = sq_euclidean(row, last);
            if centroids.len() == 1 || d < d2[i] {
                d2[i] = d;
            }
            total += d2[i];
        }
        if total == 0.0 {
            // All points coincide with chosen centres; duplicate one.
            centroids.push(data.row(rng.gen_range(0..n)).to_vec());
            continue;
        }
        let mut t = rng.gen::<f64>() * total;
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if t < d {
                chosen = i;
                break;
            }
            t -= d;
        }
        centroids.push(data.row(chosen).to_vec());
    }
    centroids
}

/// Ground-truth centroids of a labelled dataset: per-class feature means.
///
/// # Panics
/// Panics if the dataset is unlabelled.
#[must_use]
pub fn class_centroids(data: &Dataset) -> Vec<Vec<f64>> {
    let labels = data.labels().expect("class_centroids needs labels");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sums = vec![vec![0.0; data.cols()]; k];
    let mut counts = vec![0usize; k];
    for (row, &l) in data.iter_rows().zip(labels) {
        counts[l] += 1;
        for (s, v) in sums[l].iter_mut().zip(row) {
            *s += v;
        }
    }
    sums.iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(s, &c)| s.iter().map(|v| v / c as f64).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_datasets::synthetic::{GaussianComponent, GmmSpec};
    use trimgame_numerics::rand_ext::seeded_rng;

    fn two_blob_data(seed: u64) -> Dataset {
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-10.0, 0.0], 0.5, 1.0),
            GaussianComponent::spherical(vec![10.0, 0.0], 0.5, 1.0),
        ]);
        spec.generate("blobs", 400, &mut seeded_rng(seed))
    }

    #[test]
    fn recovers_two_well_separated_blobs() {
        let data = two_blob_data(1);
        let model = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(2));
        let mut c: Vec<f64> = model.centroids().iter().map(|c| c[0]).collect();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] + 10.0).abs() < 0.3, "centroid {}", c[0]);
        assert!((c[1] - 10.0).abs() < 0.3, "centroid {}", c[1]);
    }

    #[test]
    fn sse_is_small_for_tight_clusters() {
        let data = two_blob_data(3);
        let model = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(4));
        // 400 points with per-coordinate variance 0.25 in 2D: expected SSE
        // ~ n * 2 * 0.25 = 200. A bad clustering would be in the tens of
        // thousands.
        assert!(model.sse() < 400.0, "sse {}", model.sse());
    }

    #[test]
    fn predict_matches_assignments() {
        let data = two_blob_data(5);
        let model = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(6));
        for (i, row) in data.iter_rows().enumerate() {
            assert_eq!(model.predict(row), model.assignments()[i]);
        }
    }

    #[test]
    fn centroid_distance_to_truth_is_small() {
        let data = two_blob_data(7);
        let truth = class_centroids(&data);
        let model = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(8));
        let d = model.centroid_distance_to(&truth);
        assert!(d < 0.5, "matched centroid distance {d}");
    }

    #[test]
    fn poisoned_data_increases_centroid_distance() {
        let data = two_blob_data(9);
        let truth = class_centroids(&data);
        let clean = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(10));

        // Add 15% poison far away.
        let mut poisoned = data.clone();
        for _ in 0..60 {
            poisoned.push_row(&[200.0, 200.0], Some(0));
        }
        let dirty = KMeans::fit(&poisoned, KMeansConfig::new(2), &mut seeded_rng(10));
        assert!(
            dirty.centroid_distance_to(&truth) > clean.centroid_distance_to(&truth),
            "poison should displace centroids"
        );
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let data = Dataset::new("t", 1, vec![1.0, 5.0, 9.0], None, 3);
        let model = KMeans::fit(&data, KMeansConfig::new(3), &mut seeded_rng(11));
        assert!(model.sse() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least k rows")]
    fn too_few_rows_rejected() {
        let data = Dataset::new("t", 1, vec![1.0], None, 1);
        let _ = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let data = two_blob_data(12);
        let a = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(13));
        let b = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(13));
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.sse(), b.sse());
    }

    #[test]
    fn class_centroids_per_class_means() {
        let data = Dataset::new(
            "t",
            1,
            vec![0.0, 2.0, 10.0, 14.0],
            Some(vec![0, 0, 1, 1]),
            2,
        );
        let c = class_centroids(&data);
        assert_eq!(c.len(), 2);
        assert!((c[0][0] - 1.0).abs() < 1e-12);
        assert!((c[1][0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = Dataset::new("dup", 1, vec![3.0; 20], None, 2);
        let model = KMeans::fit(&data, KMeansConfig::new(2), &mut seeded_rng(14));
        assert!(model.sse() < 1e-9);
    }
}
