//! Optimal assignment (Hungarian algorithm) and its two uses in the paper's
//! evaluation:
//!
//! * the **Distance** metric of Figs. 4/5 — fitted k-means centroids must be
//!   matched to ground-truth centroids before summing Euclidean distances,
//!   otherwise cluster permutation would dominate the metric;
//! * aligning predicted cluster indices with true class labels when
//!   computing clustering accuracy/confusions.

/// Solves the assignment problem for a rectangular cost matrix
/// (`rows × cols`), minimizing total cost.
///
/// Returns `assign` with `assign[i] = Some(j)` if row `i` is matched to
/// column `j`; when `rows > cols` the unmatched rows get `None`.
///
/// Implementation: the classic O(n²m) shortest-augmenting-path formulation
/// with row/column potentials (Kuhn–Munkres).
///
/// # Panics
/// Panics if the matrix is empty or ragged.
#[must_use]
pub fn hungarian(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let rows = cost.len();
    assert!(rows > 0, "empty cost matrix");
    let cols = cost[0].len();
    assert!(cols > 0, "empty cost matrix");
    for row in cost {
        assert_eq!(row.len(), cols, "ragged cost matrix");
    }

    if rows > cols {
        // Transpose so the classic n <= m precondition holds.
        let t: Vec<Vec<f64>> = (0..cols)
            .map(|j| (0..rows).map(|i| cost[i][j]).collect())
            .collect();
        let col_assign = hungarian(&t);
        let mut assign = vec![None; rows];
        for (j, a) in col_assign.iter().enumerate() {
            if let Some(i) = a {
                assign[*i] = Some(j);
            }
        }
        return assign;
    }

    let n = rows;
    let m = cols;
    // 1-based arrays per the standard formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assign = vec![None; n];
    for j in 1..=m {
        if p[j] != 0 {
            assign[p[j] - 1] = Some(j - 1);
        }
    }
    assign
}

/// Total Euclidean distance between two centroid sets under the optimal
/// matching — the Figs. 4/5 "Distance" metric.
///
/// If the sets have different sizes, only `min(len)` pairs are matched and
/// summed.
///
/// # Panics
/// Panics if either set is empty or dimensions mismatch.
#[must_use]
pub fn matched_centroid_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty centroid set");
    let cost: Vec<Vec<f64>> = a
        .iter()
        .map(|ca| {
            b.iter()
                .map(|cb| trimgame_numerics::stats::euclidean(ca, cb))
                .collect()
        })
        .collect();
    let assign = hungarian(&cost);
    assign
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| cost[i][j]))
        .sum()
}

/// Remaps predicted cluster indices so they agree maximally with true
/// labels (Hungarian on the negated co-occurrence matrix). Returns the
/// remapped predictions.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn align_clusters(predicted: &[usize], truth: &[usize]) -> Vec<usize> {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty label arrays");
    let kp = predicted.iter().copied().max().unwrap() + 1;
    let kt = truth.iter().copied().max().unwrap() + 1;
    let k = kp.max(kt);
    // co[i][j] = #points with predicted i and true j.
    let mut co = vec![vec![0.0f64; k]; k];
    for (&p, &t) in predicted.iter().zip(truth) {
        co[p][t] += 1.0;
    }
    let cost: Vec<Vec<f64>> = co
        .iter()
        .map(|row| row.iter().map(|&c| -c).collect())
        .collect();
    let assign = hungarian(&cost);
    predicted.iter().map(|&p| assign[p].unwrap_or(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_assignment_for_diagonal() {
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn picks_global_optimum_not_greedy() {
        // Greedy (row 0 takes col 0 at cost 1) forces total 1 + 10 = 11;
        // optimal is 2 + 2 = 4.
        let cost = vec![vec![1.0, 2.0], vec![2.0, 10.0]];
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![Some(1), Some(0)]);
    }

    #[test]
    fn known_3x3_optimum() {
        // Classic example: optimal assignment cost 5 (0->1:2, 1->0:3 ... ).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let assign = hungarian(&cost);
        let total: f64 = assign
            .iter()
            .enumerate()
            .map(|(i, j)| cost[i][j.unwrap()])
            .sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    fn rectangular_wide_matrix() {
        // 2 rows, 3 cols: every row matched.
        let cost = vec![vec![5.0, 1.0, 9.0], vec![1.0, 5.0, 9.0]];
        let assign = hungarian(&cost);
        assert_eq!(assign, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_tall_matrix() {
        // 3 rows, 2 cols: one row left unmatched.
        let cost = vec![vec![1.0, 9.0], vec![9.0, 1.0], vec![8.0, 8.0]];
        let assign = hungarian(&cost);
        assert_eq!(assign[0], Some(0));
        assert_eq!(assign[1], Some(1));
        assert_eq!(assign[2], None);
    }

    #[test]
    fn matched_distance_invariant_to_permutation() {
        let a = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let mut b = a.clone();
        b.rotate_left(1);
        assert!(matched_centroid_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn matched_distance_measures_displacement() {
        let a = vec![vec![0.0], vec![10.0]];
        let b = vec![vec![1.0], vec![12.0]];
        assert!((matched_centroid_distance(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn align_clusters_fixes_permutation() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let predicted = vec![2, 2, 0, 0, 1, 1];
        let aligned = align_clusters(&predicted, &truth);
        assert_eq!(aligned, truth);
    }

    #[test]
    fn align_clusters_tolerates_noise() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let predicted = vec![1, 1, 1, 0, 0, 0, 0, 0];
        let aligned = align_clusters(&predicted, &truth);
        // Majority agreement after alignment: predicted 1 -> 0, 0 -> 1.
        let agree = aligned.iter().zip(&truth).filter(|(a, b)| a == b).count();
        assert!(agree >= 6, "agreement {agree}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = hungarian(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn large_random_matrix_beats_greedy() {
        use rand::Rng;
        let mut rng = trimgame_numerics::rand_ext::seeded_rng(31);
        let n = 20;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let assign = hungarian(&cost);
        let optimal: f64 = assign
            .iter()
            .enumerate()
            .map(|(i, j)| cost[i][j.unwrap()])
            .sum();
        // Greedy row-wise baseline.
        let mut used = vec![false; n];
        let mut greedy = 0.0;
        for row in &cost {
            let (j, c) = (0..n)
                .filter(|&j| !used[j])
                .map(|j| (j, row[j]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            used[j] = true;
            greedy += c;
        }
        assert!(
            optimal <= greedy + 1e-9,
            "optimal {optimal} > greedy {greedy}"
        );
        // All columns distinct.
        let mut cols: Vec<usize> = assign.iter().map(|j| j.unwrap()).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), n);
    }
}
