//! Criterion microbenches for the trimming operators — the per-round hot
//! path of the collection engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trimgame_numerics::rand_ext::seeded_rng;
use trimgame_stream::trim::{trim, SketchThreshold, TrimOp, TrimScratch};

fn batch(n: usize) -> Vec<f64> {
    use rand::Rng;
    let mut rng = seeded_rng(7);
    (0..n).map(|_| rng.gen::<f64>() * 1000.0).collect()
}

fn bench_trimming(c: &mut Criterion) {
    let mut group = c.benchmark_group("trim");
    for n in [1_000usize, 10_000, 100_000] {
        let values = batch(n);
        group.bench_with_input(BenchmarkId::new("upper_percentile", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::UpperPercentile(0.9)));
        });
        group.bench_with_input(BenchmarkId::new("absolute", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::Absolute(900.0)));
        });
        group.bench_with_input(BenchmarkId::new("two_sided", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::TwoSided { lo: 0.05, hi: 0.95 }));
        });
        // The engine hot path: reused scratch, zero allocation after the
        // first iteration, selection-based threshold.
        group.bench_with_input(BenchmarkId::new("in_place", n), &values, |b, v| {
            let mut scratch = TrimScratch::with_capacity(v.len());
            let op = TrimOp::UpperPercentile(0.9);
            let _ = op.apply_in_place(v, &mut scratch); // warm the buffers
            b.iter(|| op.apply_in_place(black_box(v), &mut scratch).trimmed);
        });
        // Streaming threshold: the GK sketch ingests the batch and answers
        // the cut without any sort; the trim itself is the in-place pass.
        group.bench_with_input(BenchmarkId::new("sketch_threshold", n), &values, |b, v| {
            let mut scratch = TrimScratch::with_capacity(v.len());
            b.iter(|| {
                let mut source = SketchThreshold::new(0.02);
                source.observe(black_box(v));
                let op = source.op(0.9).expect("observed");
                op.apply_in_place(black_box(v), &mut scratch).trimmed
            });
        });
        // Steady-state streaming: the sketch already holds the stream
        // history (the realistic per-round cost — query + in-place cut).
        group.bench_with_input(BenchmarkId::new("sketch_query_only", n), &values, |b, v| {
            let mut scratch = TrimScratch::with_capacity(v.len());
            let mut source = SketchThreshold::new(0.02);
            source.observe(v);
            b.iter(|| {
                let op = source.op(0.9).expect("observed");
                op.apply_in_place(black_box(v), &mut scratch).trimmed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trimming);
criterion_main!(benches);
