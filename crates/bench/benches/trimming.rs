//! Criterion microbenches for the trimming operators — the per-round hot
//! path of the collection engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trimgame_numerics::rand_ext::seeded_rng;
use trimgame_stream::trim::{trim, TrimOp};

fn batch(n: usize) -> Vec<f64> {
    use rand::Rng;
    let mut rng = seeded_rng(7);
    (0..n).map(|_| rng.gen::<f64>() * 1000.0).collect()
}

fn bench_trimming(c: &mut Criterion) {
    let mut group = c.benchmark_group("trim");
    for n in [1_000usize, 10_000, 100_000] {
        let values = batch(n);
        group.bench_with_input(BenchmarkId::new("upper_percentile", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::UpperPercentile(0.9)));
        });
        group.bench_with_input(BenchmarkId::new("absolute", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::Absolute(900.0)));
        });
        group.bench_with_input(BenchmarkId::new("two_sided", n), &values, |b, v| {
            b.iter(|| trim(black_box(v), TrimOp::TwoSided { lo: 0.05, hi: 0.95 }));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trimming);
criterion_main!(benches);
