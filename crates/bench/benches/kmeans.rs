//! Criterion microbenches for the learners driving Figs. 4–8.

use criterion::{criterion_group, criterion_main, Criterion};
use trimgame_datasets::shapes::control;
use trimgame_ml::kmeans::{KMeans, KMeansConfig};
use trimgame_ml::som::{Som, SomConfig};
use trimgame_ml::svm::{SvmConfig, SvmModel};
use trimgame_numerics::rand_ext::seeded_rng;

fn bench_learners(c: &mut Criterion) {
    let data = control(&mut seeded_rng(1));

    c.bench_function("kmeans_control_k6", |b| {
        b.iter(|| KMeans::fit(&data, KMeansConfig::new(6), &mut seeded_rng(2)));
    });

    c.bench_function("svm_control_6class", |b| {
        let config = SvmConfig {
            epochs: 5,
            ..SvmConfig::default()
        };
        b.iter(|| SvmModel::fit(&data, config, &mut seeded_rng(3)));
    });

    c.bench_function("som_control_6x6", |b| {
        let config = SomConfig::small();
        b.iter(|| Som::fit(&data, config, &mut seeded_rng(4)));
    });
}

criterion_group!(benches, bench_learners);
criterion_main!(benches);
